//! Stress and robustness tests for the virtual GPU runtime: randomized
//! operation DAGs, the new extension primitives, and failure modes.
//!
//! Randomized cases use deterministic seeded loops over the workspace [`Rng`]
//! (the build environment is offline, so no `proptest`); every failure is
//! reproducible from its printed seed.

use multi_gpu_sort::data::Rng;
use multi_gpu_sort::gpu::{GpuSystem, OpId, Phase};
use multi_gpu_sort::prelude::*;

/// Random DAGs of copies and delays across random streams with random
/// backward waits: the executor must terminate, keep the clock
/// monotonic, and run every op exactly once.
#[test]
fn random_dags_terminate() {
    for seed in 0..32u64 {
        let mut rng = Rng::seed_from_u64(seed);
        let n_ops = rng.usize_in(1..40);
        let ops: Vec<(usize, usize, u64)> = (0..n_ops)
            .map(|_| (rng.usize_in(0..6), rng.usize_in(0..4), rng.u64_in(1..64)))
            .collect();
        let wait_mask = rng.u64();

        let platform = Platform::dgx_a100();
        let mut sys: GpuSystem<'_, u32> = GpuSystem::new(&platform, Fidelity::Full);
        let host = sys.world_mut().import_host(0, vec![7u32; 1 << 16], 1 << 16);
        let devs: Vec<_> = (0..4)
            .map(|g| sys.world_mut().alloc_gpu(g, 1 << 10))
            .collect();
        let streams: Vec<_> = (0..6).map(|_| sys.stream()).collect();

        let mut issued = Vec::new();
        for (i, &(s, g, len)) in ops.iter().enumerate() {
            // Waits reference only *earlier* ops (guaranteed acyclic).
            let waits: Vec<_> = issued
                .iter()
                .enumerate()
                .filter(|(j, _)| wait_mask >> ((i + j) % 64) & 1 == 1)
                .map(|(_, &op)| op)
                .take(3)
                .collect();
            let op = if i % 3 == 0 {
                sys.delay(
                    streams[s],
                    SimDuration::from_micros(len),
                    &waits,
                    Phase::Other,
                )
            } else if i % 3 == 1 {
                sys.memcpy(streams[s], host, 0, devs[g], 0, len, &waits, Phase::HtoD)
            } else {
                sys.memcpy(streams[s], devs[g], 0, host, len, len, &waits, Phase::DtoH)
            };
            issued.push(op);
        }
        let end = sys.synchronize();
        assert!(end > SimTime::ZERO, "seed {seed}");
        // Every op ran, and no op finished before it started or before any
        // of its dependencies finished.
        for &op in &issued {
            let (start, finish) = sys.op_span(op).expect("op completed");
            assert!(finish >= start, "seed {seed}");
        }
    }
}

/// RP sort as a property: any input length divisible by g, any data.
#[test]
fn rp_sort_any_input() {
    use multi_gpu_sort::core::{rp_sort, RpConfig};
    for seed in 0..32u64 {
        let mut rng = Rng::seed_from_u64(100 + seed);
        let len = rng.usize_in(1..600);
        let raw: Vec<u32> = (0..len).map(|_| rng.u32()).collect();
        let g = rng.usize_in(1..5);
        let mut input = raw;
        while !input.len().is_multiple_of(g) {
            input.push(u32::MAX);
        }
        let n = input.len() as u64;
        let platform = Platform::dgx_a100();
        let mut data = input.clone();
        let report = rp_sort(&platform, &RpConfig::new(g), &mut data, n);
        assert!(report.validated, "seed {seed}");
        assert!(same_multiset(&input, &data), "seed {seed}");
    }
}

/// Random DAGs of *data effects* sharing buffers: sorts over random
/// subranges, pairwise merges, and overlapping copies, on random streams
/// with random waits. The wall-clock effect executor must produce
/// bit-identical buffer contents whether it runs serially or with four
/// effect threads — conflicting jobs keep their simulated order, and the
/// kernels chunk by the process-wide pool width either way.
#[test]
fn random_effect_dags_bit_identical_across_effect_threads() {
    for seed in 0..16u64 {
        let run = |effect_threads: usize| -> Vec<Vec<u32>> {
            let mut rng = Rng::seed_from_u64(9_000 + seed);
            let platform = Platform::dgx_a100();
            let mut sys: GpuSystem<'_, u32> = GpuSystem::new(&platform, Fidelity::Full);
            sys.set_effect_threads(effect_threads);
            let n: u64 = 1 << 12;
            let host = sys.world_mut().import_host(
                0,
                (0..n as u32)
                    .map(|i| i.wrapping_mul(2_654_435_761))
                    .collect(),
                n,
            );
            let gpus = 4usize;
            let data: Vec<_> = (0..gpus).map(|g| sys.world_mut().alloc_gpu(g, n)).collect();
            let aux: Vec<_> = (0..gpus).map(|g| sys.world_mut().alloc_gpu(g, n)).collect();
            let streams: Vec<_> = (0..4).map(|_| sys.stream()).collect();
            let mut issued: Vec<OpId> = (0..gpus)
                .map(|g| sys.memcpy(streams[g % 4], host, 0, data[g], 0, n, &[], Phase::HtoD))
                .collect();
            for i in 0..24 {
                let s = streams[rng.usize_in(0..4)];
                let g = rng.usize_in(0..gpus);
                let waits: Vec<OpId> = (0..rng.usize_in(0..3))
                    .map(|_| issued[rng.usize_in(0..issued.len())])
                    .collect();
                let op = match i % 4 {
                    0 => {
                        // Sort a random subrange (conflicts with copies and
                        // merges touching the same buffer).
                        let lo = rng.u64_in(0..n / 2);
                        let hi = lo + rng.u64_in(1..n - lo);
                        sys.gpu_sort(
                            s,
                            GpuSortAlgo::ThrustLike,
                            data[g],
                            (lo, hi),
                            aux[g],
                            &waits,
                        )
                    }
                    1 => {
                        // Merge the halves of one buffer into its neighbor's
                        // aux (cross-buffer read/write edges).
                        let len = rng.u64_in(2..n);
                        sys.gpu_merge_into(s, data[g], len / 2, len, aux[g], &waits)
                    }
                    2 => {
                        // Device-to-device copy with ranges that overlap
                        // other ops' windows.
                        let len = rng.u64_in(1..n / 2);
                        let src_off = rng.u64_in(0..n - len);
                        let dst_off = rng.u64_in(0..n - len);
                        let dst = data[(g + 1) % gpus];
                        sys.memcpy(s, data[g], src_off, dst, dst_off, len, &waits, Phase::Merge)
                    }
                    _ => sys.delay(
                        s,
                        SimDuration::from_micros(rng.u64_in(1..32)),
                        &waits,
                        Phase::Other,
                    ),
                };
                issued.push(op);
            }
            sys.synchronize();
            let mut out: Vec<Vec<u32>> = Vec::new();
            for g in 0..gpus {
                out.push(sys.world().slice(data[g], 0, n).to_vec());
                out.push(sys.world().slice(aux[g], 0, n).to_vec());
            }
            out
        };
        assert_eq!(run(1), run(4), "seed {seed}: world contents diverged");
    }
}

#[test]
fn gpu_multiway_merge_op_merges() {
    let platform = Platform::dgx_a100();
    let mut sys: GpuSystem<'_, u32> = GpuSystem::new(&platform, Fidelity::Full);
    // Three sorted runs in one device buffer.
    let runs: Vec<u32> = (0..300).map(|i| (i % 100) * 3 + i / 100).collect();
    let host = sys.world_mut().import_host(0, runs, 300);
    let dev = sys.world_mut().alloc_gpu(0, 300);
    let out = sys.world_mut().alloc_gpu(0, 300);
    let s = sys.stream();
    let up = sys.memcpy(s, host, 0, dev, 0, 300, &[], Phase::HtoD);
    sys.gpu_multiway_merge(
        s,
        vec![(dev, 0, 100), (dev, 100, 100), (dev, 200, 100)],
        out,
        &[up],
    );
    sys.synchronize();
    let merged = sys.world().slice(out, 0, 300).to_vec();
    assert!(is_sorted(&merged));
    assert_eq!(merged, (0..300u32).collect::<Vec<_>>());
}

#[test]
fn memcpy_route_relay_moves_data_and_takes_longer_hops() {
    use multi_gpu_sort::topology::route::{route, route_via};
    let platform = Platform::delta_d22x();
    let mut sys: GpuSystem<'_, u32> = GpuSystem::new(&platform, Fidelity::Full);
    let host = sys
        .world_mut()
        .import_host(0, (0..64u32).rev().collect(), 64);
    let d0 = sys.world_mut().alloc_gpu(0, 64);
    let d3 = sys.world_mut().alloc_gpu(3, 64);
    let s = sys.stream();
    let up = sys.memcpy(s, host, 0, d0, 0, 64, &[], Phase::HtoD);
    let relay = route_via(&platform.topology, Endpoint::gpu(0), Endpoint::gpu(3), 2)
        .expect("ring relay exists");
    sys.memcpy_route(s, relay, d0, 0, d3, 0, 64, &[up], Phase::Merge);
    sys.synchronize();
    assert_eq!(sys.world().slice(d3, 0, 3), &[63, 62, 61]);

    // Sanity: the relay route is longer in hops than the direct route is
    // in... hops via host (2 vs 3) but faster in bandwidth (covered by
    // unit tests); here we only check data integrity and route shapes.
    let direct = route(&platform.topology, Endpoint::gpu(0), Endpoint::gpu(3)).unwrap();
    assert!(direct.traverses_host(&platform.topology));
}

#[test]
#[should_panic(expected = "route source must match")]
fn memcpy_route_rejects_mismatched_endpoints() {
    let platform = Platform::dgx_a100();
    let mut sys: GpuSystem<'_, u32> = GpuSystem::new(&platform, Fidelity::Full);
    let d0 = sys.world_mut().alloc_gpu(0, 16);
    let d1 = sys.world_mut().alloc_gpu(1, 16);
    let wrong = multi_gpu_sort::topology::route::route(
        &platform.topology,
        Endpoint::gpu(2),
        Endpoint::gpu(1),
    )
    .unwrap();
    let s = sys.stream();
    let _ = sys.memcpy_route(s, wrong, d0, 0, d1, 0, 16, &[], Phase::Merge);
}

#[test]
#[should_panic(expected = "only 4 GPUs")]
fn too_many_gpus_panics() {
    let platform = Platform::ibm_ac922();
    let mut data: Vec<u32> = generate(Distribution::Uniform, 1 << 10, 1);
    let _ = p2p_sort(&platform, &P2pConfig::new(8), &mut data, 1 << 10);
}

#[test]
#[should_panic(expected = "budget too small")]
fn impossible_memory_budget_panics() {
    let platform = Platform::test_pcie(2);
    let cfg = HetConfig::new(2).with_mem_budget(4); // 4 bytes per GPU
    let mut data: Vec<u32> = generate(Distribution::Uniform, 1 << 10, 1);
    let _ = het_sort(&platform, &cfg, &mut data, 1 << 10);
}

#[test]
fn chrome_trace_of_a_full_sort() {
    // A full P2P sort produces a coherent multi-stream trace.
    let platform = Platform::dgx_a100();
    let mut sys: GpuSystem<'_, u32> = GpuSystem::new(&platform, Fidelity::Full);
    let recorder = Recorder::new();
    sys.set_recorder(recorder.clone());
    let host = sys
        .world_mut()
        .import_host(0, generate(Distribution::Uniform, 1 << 12, 3), 1 << 12);
    let dev = sys.world_mut().alloc_gpu(0, 1 << 12);
    let aux = sys.world_mut().alloc_gpu(0, 1 << 12);
    let s = sys.stream();
    let up = sys.memcpy(s, host, 0, dev, 0, 1 << 12, &[], Phase::HtoD);
    let so = sys.gpu_sort(s, GpuSortAlgo::ThrustLike, dev, (0, 1 << 12), aux, &[up]);
    sys.memcpy(s, dev, 0, host, 0, 1 << 12, &[so], Phase::DtoH);
    sys.synchronize();
    let trace = chrome_trace(&recorder.snapshot().expect("recorder is enabled"));
    assert!(json_valid(&trace));
    assert!(trace.contains("gpu sort"));
    assert!(trace.contains("HtoD"));
    assert!(trace.contains("DtoH"));
}
