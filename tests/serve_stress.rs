//! Service-layer stress: 64 concurrent jobs from 4 tenants on one shared
//! simulated clock, on every paper platform, with validated outputs,
//! pinned fair-share bounds, and bit-reproducibility — including under an
//! injected fault plan.

use multi_gpu_sort::prelude::*;
use multi_gpu_sort::serve::ServiceReport;

const JOBS_PER_TENANT: u64 = 16;
const TENANTS: u32 = 4;
const SCALE: u64 = 64;

/// 64 jobs across 4 tenants, all submitted at t=0 so the service stays
/// saturated. Every tenant submits the *same* multiset of job shapes
/// (sizes, algorithms, gang sizes), so completed-key shares must come out
/// equal on a fair service; seeds differ so every input is distinct.
fn workload(seed_base: u64) -> Vec<(SimTime, SortJob)> {
    let mut arrivals = Vec::new();
    for tenant in 0..TENANTS {
        for slot in 0..JOBS_PER_TENANT {
            let keys = [1u64 << 14, 1 << 15, 1 << 14, 1 << 16][(slot % 4) as usize];
            let algo = [JobAlgo::P2p, JobAlgo::Rp, JobAlgo::Het][(slot % 3) as usize];
            let gpus = if slot % 5 == 0 { 4 } else { 2 };
            let dist = [
                Distribution::Uniform,
                Distribution::ReverseSorted,
                Distribution::NearlySorted,
            ][(slot % 3) as usize];
            arrivals.push((
                SimTime::ZERO,
                SortJob::new(TenantId(tenant), keys)
                    .with_algo(algo)
                    .with_gpus(gpus)
                    .with_dist(dist)
                    .with_seed(seed_base + u64::from(tenant) * 1_000 + slot),
            ));
        }
    }
    arrivals
}

fn config() -> ServeConfig {
    ServeConfig::new()
        .with_policy(QueuePolicy::WeightedFair)
        .with_placement(PlacementPolicy::TopologyAware)
        .sampled(SCALE)
}

fn run(platform: &Platform, config: ServeConfig, seed_base: u64) -> ServiceReport {
    SortService::<u64>::new(platform, config).serve(TraceWorkload::new(workload(seed_base)))
}

/// Max deviation of a tenant's key share from 1/TENANTS over the first
/// half of completions — the window where the backlog makes fairness
/// meaningful.
fn early_share_error(report: &ServiceReport) -> f64 {
    let early = &report.outcomes[..report.outcomes.len() / 2];
    let total: u64 = early.iter().map(|o| o.keys).sum();
    (0..TENANTS)
        .map(|t| {
            let mine: u64 = early
                .iter()
                .filter(|o| o.tenant == TenantId(t))
                .map(|o| o.keys)
                .sum();
            (mine as f64 / total as f64 - 1.0 / f64::from(TENANTS)).abs()
        })
        .fold(0.0, f64::max)
}

#[test]
fn sixty_four_jobs_from_four_tenants_on_every_platform() {
    for platform in [
        Platform::ibm_ac922(),
        Platform::delta_d22x(),
        Platform::dgx_a100(),
    ] {
        let report = run(&platform, config(), 42);
        let name = &report.platform;
        assert_eq!(report.outcomes.len(), 64, "{name}: all jobs complete");
        assert!(report.rejected.is_empty(), "{name}: nothing rejected");
        assert!(
            report.all_validated(),
            "{name}: every output must be a sorted permutation"
        );
        // Genuine concurrency on one clock: some pair of jobs overlaps in
        // time on disjoint gangs.
        let overlapping = report.outcomes.iter().enumerate().any(|(i, a)| {
            report.outcomes[i + 1..].iter().any(|b| {
                a.started < b.finished
                    && b.started < a.finished
                    && a.gpus.iter().all(|g| !b.gpus.contains(g))
            })
        });
        assert!(overlapping, "{name}: expected concurrently running gangs");
        // Identical per-tenant workloads fully drained: end-of-run shares
        // are equal by construction...
        assert!(
            report.fair_share_error() < 1e-9,
            "{name}: fair-share error {}",
            report.fair_share_error()
        );
        // ...so the pinned bound that actually tests the scheduler is the
        // share balance while everyone is still backlogged.
        let early = early_share_error(&report);
        assert!(
            early <= 0.20,
            "{name}: early fair-share deviation {early:.3} breaches the pinned 0.20 bound"
        );
        assert!(report.makespan > SimTime::ZERO);
        assert!(report.p99_latency() >= report.p50_latency());
    }
}

#[test]
fn service_is_bit_reproducible_from_seed() {
    let platform = Platform::delta_d22x();
    let a = run(&platform, config(), 7);
    let b = run(&platform, config(), 7);
    assert_eq!(a, b, "same seeds and arrivals must replay identically");
    let c = run(&platform, config(), 8);
    assert_ne!(a, c, "different input seeds must actually change the run");
}

#[test]
fn service_is_bit_reproducible_under_faults_on_every_platform() {
    for (i, platform) in [
        Platform::ibm_ac922(),
        Platform::delta_d22x(),
        Platform::dgx_a100(),
    ]
    .iter()
    .enumerate()
    {
        let faults = FaultPlan::randomized(platform, 1000 + i as u64, SimDuration::from_millis(20));
        let cfg = || config().with_run(RunConfig::new().with_faults(faults.clone()));
        let a = run(platform, cfg(), 42);
        let b = run(platform, cfg(), 42);
        assert_eq!(a, b, "{}: fault runs must replay identically", a.platform);
        assert_eq!(a.outcomes.len(), 64, "{}", a.platform);
        assert!(
            a.all_validated(),
            "{}: outputs must stay valid under injected faults",
            a.platform
        );
    }
}
