//! Chaos harness: seeded fault injection across platforms and algorithms.
//!
//! Every test here either uses a hand-built [`FaultPlan`] (the targeted
//! scenarios) or a seeded [`FaultPlan::randomized`] schedule; each failing
//! assertion carries the seed, and re-running with that seed replays the
//! exact fault schedule and the exact simulated run, e.g.:
//!
//! ```text
//! cargo test --release --test chaos randomized_chaos -- --nocapture
//! ```
//!
//! Simulated runs are pure functions of (input seed, config, fault plan),
//! so "reproducible" means *bit-identical*: same simulated end time, same
//! output bytes.

use multi_gpu_sort::data::{validate_sort, SortValidation};
use multi_gpu_sort::prelude::*;

fn uniform(n: usize, seed: u64) -> Vec<u32> {
    generate(Distribution::Uniform, n, seed)
}

/// Sorted-permutation check with a seed-carrying panic message.
fn assert_sorted_permutation(input: &[u32], output: &[u32], tag: &str) {
    let v = validate_sort(input, output);
    assert!(
        matches!(v, SortValidation::Valid),
        "{tag}: output is not a sorted permutation: {v:?}"
    );
}

/// The acceptance scenario: a DELTA D22x NVLink between merge partners
/// dies mid-merge. P2P sort's first merge stage swaps GPU 0's and GPU 1's
/// pivot blocks across exactly the 0--1 NVLink; with it dead the affected
/// copies must come back on a different route (NVLink relay through the
/// ring, or host fallback), the sort must still validate, and the whole
/// run must be bit-reproducible.
#[test]
fn delta_nvlink_death_mid_merge_reroutes_and_completes() {
    let p = Platform::delta_d22x();
    let n: u64 = 1 << 14;
    let input = uniform(n as usize, 0xDE17A);

    // Fault-free dry run to time the merge phase.
    let mut dry = input.clone();
    let clean = p2p_sort(&p, &P2pConfig::new(4), &mut dry, n);
    assert!(clean.validated);
    assert_eq!(clean.rerouted_transfers, 0);
    assert!(clean.p2p_swapped_keys > 0, "the merge must exchange blocks");
    // 1 us into the merge phase: during stage 1's pivot selection or its
    // pair-wise swaps (phases are sequential in in-core P2P sort, so the
    // merge starts at total - merge - dtoh).
    let at = SimTime(clean.total.0 - clean.phases.merge.0 - clean.phases.dtoh.0 + 1_000);

    let topo = &p.topology;
    let link = topo
        .link_between(topo.gpu(0), topo.gpu(1))
        .expect("DELTA has a 0--1 NVLink");
    let plan = FaultPlan::new().link_down(at, link);

    let run = |input: &[u32]| {
        let mut data = input.to_vec();
        let config = RunConfig::p2p(P2pConfig::new(4)).with_faults(plan.clone());
        let report = run_sort(&p, &config, &mut data, n);
        (report, data)
    };
    let (report, output) = run(&input);
    assert!(report.validated, "sort must survive the NVLink failure");
    assert_sorted_permutation(&input, &output, "nvlink death");
    assert!(
        report.rerouted_transfers >= 1,
        "swaps over the dead 0--1 NVLink must reroute"
    );
    // The detours cannot speed the sort up; they may not slow it down
    // either (the tiny pivot-block swaps hide under the local merges).
    assert!(
        report.total >= clean.total,
        "losing a 48.5 GB/s link cannot make the sort faster"
    );

    // Bit-reproducible: same inputs, same plan, same everything.
    let (report2, output2) = run(&input);
    assert_eq!(report.total, report2.total);
    assert_eq!(report.rerouted_transfers, report2.rerouted_transfers);
    assert_eq!(output, output2);
}

/// An empty fault plan is *exactly* the fault-free simulation — same
/// simulated clock, same output bytes, through the shared RunConfig
/// fault path. (The deprecated per-config `.with_faults` shim keeps its
/// own equivalence coverage next to the shim, in `msort_core::run`.)
#[test]
fn empty_fault_plan_is_bitwise_noop() {
    let p = Platform::dgx_a100();
    let n: u64 = 1 << 13;
    let input = uniform(n as usize, 0xE417);
    let mut a = input.clone();
    let plain = p2p_sort(&p, &P2pConfig::new(4), &mut a, n);
    let mut b = input.clone();
    let config = RunConfig::p2p(P2pConfig::new(4)).with_faults(FaultPlan::new());
    let with_empty = run_sort(&p, &config, &mut b, n);
    assert_eq!(plain.total, with_empty.total);
    assert_eq!(a, b);
    assert_eq!(with_empty.rerouted_transfers, 0);
}

/// Run `sort` under a seeded random fault schedule spanning the fault-free
/// run's duration and assert a sorted permutation comes out. `sort`
/// returns `(input, output, simulated duration)`.
fn chaos_case(
    platform: &Platform,
    seed: u64,
    sort: impl Fn(&Platform, FaultPlan) -> (Vec<u32>, Vec<u32>, SimDuration),
) {
    // Fault-free dry run fixes the horizon so faults land inside the run.
    let (_, _, horizon) = sort(platform, FaultPlan::new());
    let plan = FaultPlan::randomized(platform, seed, horizon);
    let (input, output, _) = sort(platform, plan);
    assert_sorted_permutation(&input, &output, &format!("seed {seed}"));
}

/// Randomized chaos across all four platforms and all three sorts.
#[test]
fn randomized_chaos_all_platforms() {
    for seed in 0..6u64 {
        for p in [
            Platform::ibm_ac922(),
            Platform::delta_d22x(),
            Platform::dgx_a100(),
            Platform::test_pcie(2),
        ] {
            let g = p.gpu_count().min(4);
            chaos_case(&p, seed, |p, faults| {
                let n: u64 = 1 << 13;
                let input = uniform(n as usize, 0xBAD + seed);
                let mut data = input.clone();
                let config = RunConfig::p2p(P2pConfig::new(g)).with_faults(faults);
                let report = run_sort(p, &config, &mut data, n);
                assert!(report.validated, "seed {seed} on {}", p.id.name());
                (input, data, report.total)
            });
        }
    }
}

/// HET sort (CPU merge pipeline) under random faults, including the
/// out-of-core chunked path.
#[test]
fn randomized_chaos_het_sort() {
    for seed in 100..104u64 {
        let p = Platform::test_pcie(2);
        chaos_case(&p, seed, |p, faults| {
            let n: u64 = 1 << 12;
            let input: Vec<u32> = uniform(n as usize, seed);
            let mut data = input.clone();
            let cfg =
                RunConfig::het(HetConfig::new(2).with_mem_budget(4 * 1024)).with_faults(faults);
            let report = run_sort(p, &cfg, &mut data, n);
            assert!(report.validated, "seed {seed}");
            (input, data, report.total)
        });
    }
}

/// RP sort (radix-partitioned exchange) under random faults.
#[test]
fn randomized_chaos_rp_sort() {
    for seed in 200..204u64 {
        let p = Platform::dgx_a100();
        chaos_case(&p, seed, |p, faults| {
            let n: u64 = 1 << 12;
            let input = uniform(n as usize, seed);
            let mut data = input.clone();
            let config = RunConfig::rp(RpConfig::new(4)).with_faults(faults);
            let report = run_sort(p, &config, &mut data, n);
            assert!(report.validated, "seed {seed}");
            (input, data, report.total)
        });
    }
}

/// Sample sort (splitter partition + all-to-all bucket exchange) under
/// random faults: the exchange is the fault surface — every GPU pair
/// carries a bucket copy, so a dead link mid-run forces reroutes.
#[test]
fn randomized_chaos_sample_sort() {
    for seed in 300..304u64 {
        let p = Platform::dgx_a100();
        chaos_case(&p, seed, |p, faults| {
            let n: u64 = 1 << 13;
            let input = uniform(n as usize, seed);
            let mut data = input.clone();
            let config = RunConfig::sample(SampleSortConfig::new(4)).with_faults(faults);
            let report = run_sort(p, &config, &mut data, n);
            assert!(report.validated, "seed {seed}");
            (input, data, report.total)
        });
    }
}

/// Multiway mergesort (pairwise merge tree) under random faults across
/// two interconnect generations, including a non-power-of-two gang whose
/// odd run rides a bye through level one.
#[test]
fn randomized_chaos_multiway_mergesort() {
    for seed in 400..404u64 {
        for (p, g) in [(Platform::delta_d22x(), 4), (Platform::ibm_ac922(), 3)] {
            chaos_case(&p, seed, |p, faults| {
                let n: u64 = 12_288; // divisible by both gang sizes
                let input = uniform(n as usize, seed);
                let mut data = input.clone();
                let config = RunConfig::mwms(MwmsConfig::new(g)).with_faults(faults);
                let report = run_sort(p, &config, &mut data, n);
                assert!(report.validated, "seed {seed} on {}", p.id.name());
                (input, data, report.total)
            });
        }
    }
}

/// Targeted scenario for the new exchange phase: the DELTA 0--1 NVLink
/// dies in the middle of sample sort's bucket exchange window. The
/// all-to-all ships a bucket across every GPU pair, so the 0<->1 copies
/// must reroute; the output must be byte-identical to the fault-free
/// run's (faults bend routes and clocks, never data), and the faulted run
/// must itself be bit-reproducible.
#[test]
fn delta_nvlink_death_mid_bucket_exchange() {
    let p = Platform::delta_d22x();
    let n: u64 = 1 << 14;
    let input = uniform(n as usize, 0x5A3E);

    let mut dry = input.clone();
    let clean = sample_sort(&p, &SampleSortConfig::new(4), &mut dry, n);
    assert!(clean.validated);
    assert_eq!(clean.rerouted_transfers, 0);
    assert!(clean.p2p_swapped_keys > 0, "the exchange must ship buckets");
    // Halfway through the merge window (splitter partition + exchange):
    // even if this lands during the partition kernels, the exchange
    // copies that follow still find the link down.
    let at = SimTime(clean.phases.htod.0 + clean.phases.merge.0 / 2);

    let topo = &p.topology;
    let link = topo
        .link_between(topo.gpu(0), topo.gpu(1))
        .expect("DELTA has a 0--1 NVLink");
    let plan = FaultPlan::new().link_down(at, link);

    let run = |input: &[u32]| {
        let mut data = input.to_vec();
        let config = RunConfig::sample(SampleSortConfig::new(4)).with_faults(plan.clone());
        let report = run_sort(&p, &config, &mut data, n);
        (report, data)
    };
    let (report, output) = run(&input);
    assert!(
        report.validated,
        "sample sort must survive the NVLink death"
    );
    assert_sorted_permutation(&input, &output, "bucket exchange kill");
    assert_eq!(output, dry, "faults must never change the sorted bytes");
    assert!(
        report.rerouted_transfers >= 1,
        "bucket copies over the dead 0--1 NVLink must reroute"
    );
    assert!(
        report.total >= clean.total,
        "losing a link cannot make the exchange faster"
    );

    let (report2, output2) = run(&input);
    assert_eq!(report.total, report2.total);
    assert_eq!(report.rerouted_transfers, report2.rerouted_transfers);
    assert_eq!(output, output2);
}

/// Cross-node scenario: one NIC uplink dies in the middle of the node
/// all-to-all bucket exchange on a 2-node DGX cluster. Node 1's traffic
/// must come back through its surviving sibling NIC (over the inter-socket
/// link), the sort must validate, the sorted bytes must match the clean
/// run exactly, and the faulted run must be bit-reproducible.
#[test]
fn cluster_nic_death_mid_bucket_exchange() {
    let p = dgx_a100_cluster(2, Fabric::IbHdr);
    let n: u64 = 1 << 14;
    let input = uniform(n as usize, 0xD1C2);

    let clean_config = || RunConfig::cross_node(CrossNodeConfig::new(InnerAlgo::SampleSort));
    let mut dry = input.clone();
    let clean = run_sort(&p, &clean_config(), &mut dry, n);
    assert!(clean.validated);
    assert_eq!(clean.rerouted_transfers, 0);
    assert!(
        clean.inter_node > SimDuration::ZERO,
        "the exchange must use the fabric"
    );
    // Halfway through the merge window (splitter selection + host
    // partition + node all-to-all): the exchange copies that follow find
    // the NIC uplink down.
    let at = SimTime(clean.phases.htod.0 + clean.phases.merge.0 / 2);

    let topo = &p.topology;
    let nic = *topo
        .nics()
        .iter()
        .find(|&&id| topo.node(id).name == "Node 1 NIC 0")
        .expect("2-node cluster has node 1's NIC 0");
    let switch = *topo
        .nics()
        .iter()
        .find(|&&id| topo.node(id).name.contains("switch"))
        .expect("the cluster has a fabric switch");
    let link = topo
        .link_between(nic, switch)
        .expect("every NIC has a switch uplink");
    let plan = FaultPlan::new().link_down(at, link);

    let run = |input: &[u32]| {
        let mut data = input.to_vec();
        let config = clean_config().with_faults(plan.clone());
        let report = run_sort(&p, &config, &mut data, n);
        (report, data)
    };
    let (report, output) = run(&input);
    assert!(report.validated, "the sort must survive the NIC death");
    assert_sorted_permutation(&input, &output, "NIC uplink kill");
    assert_eq!(output, dry, "faults must never change the sorted bytes");
    assert!(
        report.rerouted_transfers >= 1,
        "node 1's exchange copies must reroute via the surviving NIC"
    );
    assert!(
        report.total >= clean.total,
        "losing a NIC uplink cannot make the exchange faster"
    );

    let (report2, output2) = run(&input);
    assert_eq!(report.total, report2.total);
    assert_eq!(report.rerouted_transfers, report2.rerouted_transfers);
    assert_eq!(output, output2);
}

/// Fixed-seed chaos runs for CI: DELTA D22x, all three sorts where they
/// apply, with the run repeated to pin bit-reproducibility. CI invokes
/// `cargo test --release --test chaos chaos_fixed_seed`.
fn fixed_seed_case(seed: u64) {
    let p = Platform::delta_d22x();
    let n: u64 = 1 << 13;
    let input = uniform(n as usize, seed);
    // Horizon wide enough to cover the run; later events simply never fire.
    let plan = FaultPlan::randomized(&p, seed, SimDuration(2_000_000));
    let run = |input: &[u32]| {
        let mut data = input.to_vec();
        let config = RunConfig::p2p(P2pConfig::new(4)).with_faults(plan.clone());
        let report = run_sort(&p, &config, &mut data, n);
        (report, data)
    };
    let (report, output) = run(&input);
    assert!(report.validated, "seed {seed}");
    assert_sorted_permutation(&input, &output, &format!("seed {seed}"));
    let (report2, output2) = run(&input);
    assert_eq!(report.total, report2.total, "seed {seed} not reproducible");
    assert_eq!(output, output2, "seed {seed} not reproducible");
}

#[test]
fn chaos_fixed_seed_a() {
    fixed_seed_case(0xC0FFEE);
}

#[test]
fn chaos_fixed_seed_b() {
    fixed_seed_case(0x5EEDB);
}
