//! End-to-end observability: one multi-tenant serve run under an injected
//! fault plan must produce a single coherent recording fed by every layer
//! — GPU op spans, link-utilization counters, flow lifecycles, fault
//! instants, and per-tenant job spans — and recording must be purely
//! observational (the service report is bit-identical with the recorder
//! on and off).

use multi_gpu_sort::prelude::*;
use multi_gpu_sort::trace::{groups, EventKind, TraceData};

const SCALE: u64 = 64;

/// Three tenants, three algorithms, staggered arrivals — enough overlap
/// that jobs queue behind each other on the 4-GPU fleet.
fn arrivals() -> Vec<(SimTime, SortJob)> {
    let mut jobs = Vec::new();
    for i in 0..3u64 {
        jobs.push((
            SimTime::ZERO,
            SortJob::new(TenantId(0), 1 << 18).with_gpus(4).with_seed(i),
        ));
        jobs.push((
            SimTime::ZERO + SimDuration::from_micros(200 * i),
            SortJob::new(TenantId(1), 1 << 16)
                .with_algo(JobAlgo::Rp)
                .with_gpus(2)
                .with_seed(100 + i),
        ));
        jobs.push((
            SimTime::ZERO + SimDuration::from_micros(100 * i),
            SortJob::new(TenantId(2), 1 << 14)
                .with_algo(JobAlgo::Het)
                .with_gpus(2)
                .with_dist(Distribution::ReverseSorted)
                .interactive()
                .with_seed(200 + i),
        ));
    }
    jobs
}

fn faults(platform: &Platform) -> FaultPlan {
    // The first link touching GPU 0 (its NVSwitch uplink on the DGX).
    let topo = &platform.topology;
    let gpu0 = topo.gpu(0);
    let link = (0..topo.links().len())
        .map(multi_gpu_sort::topology::LinkId)
        .find(|&l| topo.link(l).a == gpu0 || topo.link(l).b == gpu0)
        .expect("GPU 0 has at least one link");
    FaultPlan::new()
        .link_down(SimTime(200_000), link)
        .link_restore(SimTime(2_000_000), link)
}

fn run(platform: &Platform, recorder: Recorder) -> ServiceReport {
    let config = ServeConfig::new().with_fleet(vec![0, 1, 2, 3]).with_run(
        RunConfig::new()
            .sampled(SCALE)
            .with_faults(faults(platform))
            .with_recorder(recorder),
    );
    SortService::<u32>::new(platform, config).serve(TraceWorkload::new(arrivals()))
}

/// Spans on one track must nest: sorted by (start, -end), every span is
/// either disjoint from or fully contained in the enclosing open one.
fn assert_well_nested(data: &TraceData) {
    let mut by_track: Vec<Vec<(u64, u64)>> = vec![Vec::new(); data.tracks.len()];
    for e in &data.events {
        if let EventKind::Span { start_ns, end_ns } = e.kind {
            assert!(end_ns >= start_ns, "span {} ends before it starts", e.name);
            by_track[e.track.0 as usize].push((start_ns, end_ns));
        }
    }
    for (t, mut spans) in by_track.into_iter().enumerate() {
        spans.sort_by_key(|&(s, e)| (s, std::cmp::Reverse(e)));
        let mut open: Vec<(u64, u64)> = Vec::new();
        for (s, e) in spans {
            while matches!(open.last(), Some(&(_, oe)) if oe <= s) {
                open.pop();
            }
            if let Some(&(os, oe)) = open.last() {
                assert!(
                    os <= s && e <= oe,
                    "track '{}': span [{s}, {e}] straddles [{os}, {oe}]",
                    data.tracks[t].name
                );
            }
            open.push((s, e));
        }
    }
}

#[test]
fn serve_run_records_every_layer() {
    let dgx = Platform::dgx_a100();
    let recorder = Recorder::new();
    let report = run(&dgx, recorder.clone());
    assert_eq!(report.outcomes.len(), 9);
    assert!(report.all_validated());

    let data = recorder.snapshot().expect("recorder is enabled");

    // GPU layer: op spans on per-stream tracks, covering compute and
    // copies.
    let gpu_spans: Vec<_> = data
        .events_in_group(groups::GPU)
        .filter(|e| matches!(e.kind, EventKind::Span { .. }))
        .collect();
    assert!(!gpu_spans.is_empty(), "no GPU op spans recorded");
    assert!(gpu_spans.iter().any(|e| e.name == "gpu sort"));
    assert!(gpu_spans.iter().any(|e| e.name.contains("copy")));

    // FlowSim layer: link-utilization counter samples, and at least one
    // link actually used.
    let counters: Vec<_> = data
        .events_in_group(groups::LINKS)
        .filter_map(|e| match e.kind {
            EventKind::Counter { value, .. } => Some(value),
            _ => None,
        })
        .collect();
    assert!(
        !counters.is_empty(),
        "no link-utilization counters recorded"
    );
    assert!(counters.iter().all(|&v| (0.0..=1.0 + 1e-9).contains(&v)));
    assert!(counters.iter().any(|&v| v > 0.0), "no link ever utilized");

    // Fault layer: the scheduled down/restore pair shows up as instants.
    let fault_names: Vec<_> = data
        .events_in_group(groups::FAULTS)
        .map(|e| e.name.as_str())
        .collect();
    assert!(fault_names.contains(&"link down"));
    assert!(fault_names.contains(&"link restored"));

    // Flow layer: async transfer lifetimes begin and end.
    assert!(data
        .events_in_group(groups::FLOWS)
        .any(|e| matches!(e.kind, EventKind::AsyncBegin { .. })));
    assert!(data
        .events_in_group(groups::FLOWS)
        .any(|e| matches!(e.kind, EventKind::AsyncEnd { .. })));

    // Serve layer: every tenant got a track group, every job a "job",
    // "executing", and "validated" event; queue-wait shows up because the
    // fleet saturates.
    for tenant in 0..3u32 {
        let group = groups::tenant(tenant);
        let jobs = data
            .events_in_group(&group)
            .filter(|e| e.name == "job")
            .count();
        assert_eq!(jobs, 3, "tenant{tenant} job spans");
        assert!(data
            .events_in_group(&group)
            .any(|e| e.name == "validated" && matches!(e.kind, EventKind::Instant { .. })));
        assert!(data
            .events_in_group(&group)
            .any(|e| e.name == "placed" && matches!(e.kind, EventKind::Instant { .. })));
    }
    let metrics = summarize(&data);
    assert_eq!(metrics.jobs, 9);
    assert!(metrics.queue_wait_ns > 0, "saturated fleet must queue jobs");
    assert!(metrics.service_ns > 0);
    assert!(!metrics.links.is_empty());
    assert!(json_valid(&metrics.to_json()));

    // Span trees nest on every track, and the unified exporter emits
    // RFC 8259-valid JSON for the whole recording.
    assert_well_nested(&data);
    let trace = chrome_trace(&data);
    assert!(json_valid(&trace), "unified Chrome trace is not valid JSON");
    assert!(trace.contains("\"ph\": \"C\""), "missing counter events");
    assert!(trace.contains("\"ph\": \"X\""), "missing span events");
    assert!(trace.contains("\"ph\": \"i\""), "missing instant events");
}

#[test]
fn recording_is_purely_observational() {
    let dgx = Platform::dgx_a100();
    let with_recorder = run(&dgx, Recorder::new());
    let without = run(&dgx, Recorder::disabled());
    // ServiceReport is PartialEq over every outcome timestamp, so this
    // pins bit-identical clocks, not just equal counts.
    assert_eq!(
        with_recorder, without,
        "attaching a recorder changed the simulation"
    );
}
