//! End-to-end integration tests: both multi-GPU sorting algorithms on all
//! three paper platforms, at full fidelity, validated on real data.

use multi_gpu_sort::prelude::*;

fn uniform(n: usize, seed: u64) -> Vec<u32> {
    generate(Distribution::Uniform, n, seed)
}

#[test]
fn p2p_sort_all_platforms_all_gpu_counts() {
    for id in PlatformId::paper_set() {
        let platform = Platform::paper(id);
        let max_g = platform.gpu_count();
        let mut g = 1;
        while g <= max_g {
            let n = 1u64 << 15;
            let input = uniform(n as usize, 11);
            let mut data = input.clone();
            let report = p2p_sort(&platform, &P2pConfig::new(g), &mut data, n);
            assert!(report.validated, "{id:?} g={g}");
            assert!(is_sorted(&data), "{id:?} g={g}");
            assert!(same_multiset(&input, &data), "{id:?} g={g}");
            assert_eq!(report.gpus.len(), g);
            assert!(report.total > SimDuration::ZERO);
            g *= 2;
        }
    }
}

#[test]
fn het_sort_all_platforms_all_gpu_counts() {
    for id in PlatformId::paper_set() {
        let platform = Platform::paper(id);
        let max_g = platform.gpu_count();
        let mut g = 1;
        while g <= max_g {
            let n = 1u64 << 15;
            let input = uniform(n as usize, 13);
            let mut data = input.clone();
            let report = het_sort(&platform, &HetConfig::new(g), &mut data, n);
            assert!(report.validated, "{id:?} g={g}");
            assert!(same_multiset(&input, &data), "{id:?} g={g}");
            g *= 2;
        }
    }
}

#[test]
fn both_algorithms_agree_on_output() {
    let platform = Platform::dgx_a100();
    let n = 1u64 << 16;
    let input = uniform(n as usize, 17);
    let mut a = input.clone();
    let mut b = input.clone();
    p2p_sort(&platform, &P2pConfig::new(4), &mut a, n);
    het_sort(&platform, &HetConfig::new(4), &mut b, n);
    assert_eq!(a, b, "two different algorithms, one sorted order");
}

#[test]
fn all_gpu_sort_primitives_end_to_end() {
    let platform = Platform::ibm_ac922();
    let n = 1u64 << 14;
    let input = uniform(n as usize, 19);
    for algo in GpuSortAlgo::all() {
        let mut data = input.clone();
        let cfg = P2pConfig {
            algo,
            ..P2pConfig::new(2)
        };
        let report = p2p_sort(&platform, &cfg, &mut data, n);
        assert!(report.validated, "{algo:?}");
        assert!(same_multiset(&input, &data), "{algo:?}");
    }
}

#[test]
fn paper_headline_shapes_hold_at_paper_scale() {
    // The qualitative results of Section 6.1 — evaluated at the paper's 2B
    // key scale via sampled fidelity (they concern GB-sized inputs, where
    // transfers and merges dominate the fixed per-stage latencies).
    let scale = 1u64 << 16;
    let n = 2_000_000_000u64 / (scale * 8) * (scale * 8);
    let fidelity = Fidelity::Sampled { scale };
    let input = uniform((n / scale) as usize, 23);

    // (1) On the DGX A100, P2P sort beats HET sort for every g.
    let dgx = Platform::dgx_a100();
    for g in [2usize, 4, 8] {
        let mut a = input.clone();
        let p2p = p2p_sort(
            &dgx,
            &P2pConfig {
                fidelity,
                ..P2pConfig::new(g)
            },
            &mut a,
            n,
        );
        let mut b = input.clone();
        let het = het_sort(
            &dgx,
            &HetConfig {
                fidelity,
                ..HetConfig::new(g)
            },
            &mut b,
            n,
        );
        assert!(
            p2p.total < het.total,
            "g={g}: P2P {} vs HET {}",
            p2p.total,
            het.total
        );
    }

    // (2) On the AC922, P2P on the NVLink pair beats HET on 2 GPUs.
    let ac = Platform::ibm_ac922();
    let mut a = input.clone();
    let p2p2 = p2p_sort(
        &ac,
        &P2pConfig {
            fidelity,
            ..P2pConfig::new(2)
        },
        &mut a,
        n,
    );
    let mut b = input.clone();
    let het2 = het_sort(
        &ac,
        &HetConfig {
            fidelity,
            ..HetConfig::new(2)
        },
        &mut b,
        n,
    );
    assert!(p2p2.total < het2.total);

    // (3) Both beat the CPU baseline everywhere.
    for id in PlatformId::paper_set() {
        let platform = Platform::paper(id);
        let mut c = input.clone();
        let cpu = cpu_only_sort(&platform, fidelity, &mut c, n);
        let mut d = input.clone();
        let p2p = p2p_sort(
            &platform,
            &P2pConfig {
                fidelity,
                ..P2pConfig::new(2)
            },
            &mut d,
            n,
        );
        assert!(cpu.total > p2p.total, "{id:?}");
    }
}

#[test]
fn out_of_core_het_end_to_end() {
    // Force many chunk groups with a tiny memory budget; real data.
    let platform = Platform::delta_d22x();
    let n = 1u64 << 17;
    let input = uniform(n as usize, 29);
    for approach in [LargeDataApproach::TwoN, LargeDataApproach::ThreeN] {
        for eager in [false, true] {
            let mut cfg = HetConfig::new(2)
                .with_approach(approach)
                .with_mem_budget(64 * 1024);
            if eager {
                cfg = cfg.with_eager_merge();
            }
            let mut data = input.clone();
            let report = het_sort(&platform, &cfg, &mut data, n);
            assert!(report.validated, "{approach:?} eager={eager}");
            assert!(same_multiset(&input, &data), "{approach:?} eager={eager}");
        }
    }
}

#[test]
fn key_types_end_to_end() {
    let platform = Platform::dgx_a100();
    let n = 1u64 << 14;

    let input: Vec<i32> = generate(Distribution::Normal, n as usize, 1);
    let mut d = input.clone();
    assert!(p2p_sort(&platform, &P2pConfig::new(2), &mut d, n).validated);
    assert!(same_multiset(&input, &d));

    let input: Vec<f32> = generate(Distribution::Normal, n as usize, 2);
    let mut d = input.clone();
    assert!(het_sort(&platform, &HetConfig::new(2), &mut d, n).validated);
    assert!(same_multiset(&input, &d));

    let input: Vec<i64> = generate(Distribution::Uniform, n as usize, 3);
    let mut d = input.clone();
    assert!(p2p_sort(&platform, &P2pConfig::new(4), &mut d, n).validated);
    assert!(same_multiset(&input, &d));

    let input: Vec<f64> = generate(Distribution::Normal, n as usize, 4);
    let mut d = input.clone();
    assert!(het_sort(&platform, &HetConfig::new(4), &mut d, n).validated);
    assert!(same_multiset(&input, &d));
}

#[test]
fn key_value_pairs_sort_by_key_with_payload_intact() {
    use multi_gpu_sort::data::Pair;
    let platform = Platform::dgx_a100();
    let n = 1u64 << 14;
    // Duplicate-heavy keys with unique payloads so we can verify the
    // payloads are a permutation and land under the right keys.
    let input: Vec<Pair<u32>> = (0..n as u32).map(|i| Pair::new(i % 256, i)).collect();
    let mut data = input.clone();
    let report = p2p_sort(&platform, &P2pConfig::new(4), &mut data, n);
    assert!(report.validated);
    assert!(is_sorted(&data));
    // Payloads are a permutation of the originals...
    let mut payloads: Vec<u32> = data.iter().map(|p| p.value).collect();
    payloads.sort_unstable();
    assert_eq!(payloads, (0..n as u32).collect::<Vec<_>>());
    // ...and every payload still sits under its original key.
    for p in &data {
        assert_eq!(p.value % 256, p.key);
    }
    // Pair elements are 8 bytes: the report's byte count reflects it.
    assert_eq!(report.bytes, n * 8);
}

#[test]
fn key_value_pairs_het_sort() {
    use multi_gpu_sort::data::Pair;
    let platform = Platform::ibm_ac922();
    let n = 1u64 << 13;
    let input: Vec<Pair<u64>> = (0..n as u32)
        .map(|i| Pair::new(u64::from(i).wrapping_mul(0x9E37_79B9_7F4A_7C15), i))
        .collect();
    let mut data = input.clone();
    let report = het_sort(&platform, &HetConfig::new(2), &mut data, n);
    assert!(report.validated);
    for p in &data {
        assert_eq!(
            u64::from(p.value).wrapping_mul(0x9E37_79B9_7F4A_7C15),
            p.key,
            "payload separated from its key"
        );
    }
    assert_eq!(report.bytes, n * 12);
}

#[test]
fn deterministic_simulation() {
    // Identical runs produce bit-identical reports and outputs.
    let platform = Platform::ibm_ac922();
    let n = 1u64 << 15;
    let input = uniform(n as usize, 31);
    let run = || {
        let mut data = input.clone();
        let report = p2p_sort(&platform, &P2pConfig::new(4), &mut data, n);
        (report.total, report.p2p_swapped_keys, data)
    };
    let (t1, s1, d1) = run();
    let (t2, s2, d2) = run();
    assert_eq!(t1, t2);
    assert_eq!(s1, s2);
    assert_eq!(d1, d2);
}
