//! Determinism guarantees of the wall-clock effect executor.
//!
//! PR 5 runs data effects (staged copies, device sorts/merges, host
//! multiway merges) concurrently on a shared worker pool instead of
//! inline on the driver thread. The contract is that this is *purely* a
//! wall-clock optimization: sorted outputs, `SortReport`s (including
//! every simulated clock in them), and serve-level `ServiceReport`s are
//! bit-identical whether the executor runs with one thread (the seed's
//! serial behavior) or many.
//!
//! Two mechanisms make that hold, and these tests pin both:
//!
//! * kernels always chunk by the process-wide `msort_cpu::pool::threads()`
//!   (never by the effect budget), so a buffer's bytes never depend on the
//!   effect-level schedule;
//! * conflicting effect jobs are serialized in submission order, which is
//!   the deterministic simulated completion order.
//!
//! `SortReport`/`ServiceReport` intentionally do not implement
//! `PartialEq`; comparing their `Debug` renderings compares every field,
//! including all simulated timings.

use multi_gpu_sort::prelude::*;

const DISTS: [Distribution; 3] = [
    Distribution::Uniform,
    Distribution::ReverseSorted,
    Distribution::ZipfDuplicates { skew_permille: 800 },
];

fn config_for(algo: &str, g: usize) -> RunConfig {
    match algo {
        "p2p" => RunConfig::p2p(P2pConfig::new(g)),
        "rp" => RunConfig::rp(RpConfig::new(g)),
        "het" => RunConfig::het(HetConfig::new(g)),
        "sample" => RunConfig::sample(SampleSortConfig::new(g)),
        "mwms" => RunConfig::mwms(MwmsConfig::new(g)),
        _ => unreachable!(),
    }
}

/// Run one sort with the given effect budget; return the output bytes and
/// the full report rendering.
fn run_once(
    platform: &Platform,
    algo: &str,
    dist: Distribution,
    n: u64,
    effect_threads: usize,
) -> (Vec<u32>, String) {
    let mut data: Vec<u32> = generate(dist, n as usize, 7);
    let cfg = config_for(algo, 4).with_effect_threads(effect_threads);
    let report = run_sort(platform, &cfg, &mut data, n);
    assert!(report.validated, "{algo} on {dist:?} must validate");
    (data, format!("{report:?}"))
}

/// The full matrix: every paper platform x every algorithm x three
/// distributions, serial executor vs four effect threads. Outputs and
/// reports must match byte for byte.
#[test]
fn outputs_and_reports_bit_identical_across_effect_threads() {
    for id in PlatformId::paper_set() {
        let platform = Platform::paper(id);
        // DGX gets the large case (per-GPU chunks cross the parallel-kernel
        // threshold when the pool is wide); the other platforms cover the
        // matrix at a size that keeps the debug-mode suite fast.
        let n: u64 = if id == PlatformId::DgxA100 {
            1 << 18
        } else {
            1 << 16
        };
        for algo in ["p2p", "rp", "het", "sample", "mwms"] {
            for dist in DISTS {
                let (out_serial, rep_serial) = run_once(&platform, algo, dist, n, 1);
                let (out_pool, rep_pool) = run_once(&platform, algo, dist, n, 4);
                assert_eq!(
                    out_serial, out_pool,
                    "{id:?}/{algo}/{dist:?}: output differs between effect_threads 1 and 4"
                );
                assert_eq!(
                    rep_serial, rep_pool,
                    "{id:?}/{algo}/{dist:?}: SortReport differs between effect_threads 1 and 4"
                );
            }
        }
    }
}

/// Sizes chosen so the per-GPU device sorts land just below and just above
/// the parallel-kernel dispatch floor (`PARALLEL_MIN_KEYS`, re-tuned with
/// the OneSweep kernels): with 4 GPUs, `2 * floor` total keys puts every
/// chunk at half the floor (sequential OneSweep) and `8 * floor` puts every
/// chunk at twice the floor (chained-lookback OneSweep, multi-tile). Both
/// sides must stay bit-identical across effect budgets — the dispatch
/// depends only on chunk size, never on who executes the effect.
#[test]
fn dispatch_floor_straddle_bit_identical() {
    let platform = Platform::dgx_a100();
    let floor = msort_gpu::primitives::PARALLEL_MIN_KEYS as u64;
    for n in [2 * floor, 8 * floor] {
        for algo in ["p2p", "het"] {
            for dist in [Distribution::Uniform, DISTS[2]] {
                let (out_serial, rep_serial) = run_once(&platform, algo, dist, n, 1);
                let (out_pool, rep_pool) = run_once(&platform, algo, dist, n, 4);
                assert_eq!(
                    out_serial, out_pool,
                    "{algo}/{dist:?} n={n}: output differs across effect budgets"
                );
                assert_eq!(
                    rep_serial, rep_pool,
                    "{algo}/{dist:?} n={n}: SortReport differs across effect budgets"
                );
            }
        }
    }
}

/// Sampled fidelity takes different code paths (scaled physical payloads);
/// the invariant must hold there too.
#[test]
fn sampled_fidelity_reports_bit_identical() {
    let platform = Platform::dgx_a100();
    let n: u64 = 1 << 22;
    let scale: u64 = 1 << 8;
    for algo in ["p2p", "het"] {
        let mut runs = Vec::new();
        for threads in [1usize, 4] {
            let mut data: Vec<u32> = generate(Distribution::Uniform, (n / scale) as usize, 9);
            let cfg = config_for(algo, 4)
                .sampled(scale)
                .with_effect_threads(threads);
            let report = run_sort(&platform, &cfg, &mut data, n);
            runs.push((data, format!("{report:?}")));
        }
        assert_eq!(runs[0], runs[1], "{algo}: sampled run differs");
    }
}

/// The serve layer drives many concurrent jobs through one `GpuSystem`;
/// its `ServiceReport` (per-job spans, per-tenant stats, all simulated
/// times) must not notice the effect budget either.
#[test]
fn service_report_bit_identical_across_effect_threads() {
    let platform = Platform::dgx_a100();
    let arrivals = |seed: u64| -> Vec<(SimTime, SortJob)> {
        (0..6u64)
            .map(|i| {
                let job = SortJob::new(TenantId((i % 3) as u32), 1 << 14)
                    .with_gpus(2)
                    .with_seed(seed + i)
                    .with_dist(DISTS[(i % 3) as usize]);
                (SimTime::ZERO + SimDuration::from_micros(i * 50), job)
            })
            .collect()
    };
    let mut reports = Vec::new();
    for threads in [1usize, 4] {
        let cfg = ServeConfig::new().with_run(RunConfig::new().with_effect_threads(threads));
        let report = SortService::<u32>::new(&platform, cfg).serve(TraceWorkload::new(arrivals(3)));
        reports.push(format!("{report:?}"));
    }
    assert_eq!(
        reports[0], reports[1],
        "ServiceReport differs between effect_threads 1 and 4"
    );
}

/// Faults compose with the effect pool: a DELTA NVLink killed in the
/// middle of sample sort's splitter/bucket-exchange window must leave
/// output bytes AND the full report (reroute counts, every simulated
/// clock) bit-identical between the serial executor and a 4-thread pool.
/// The exchange copies re-route while partition effects are still in
/// flight on worker threads — exactly the interleaving the determinism
/// contract has to be immune to.
#[test]
fn sample_sort_fault_mid_exchange_bit_identical_across_effect_threads() {
    let platform = Platform::delta_d22x();
    let n: u64 = 1 << 16;
    // Fault-free dry run times the exchange window.
    let mut dry: Vec<u32> = generate(Distribution::Uniform, n as usize, 21);
    let clean = run_sort(
        &platform,
        &RunConfig::sample(SampleSortConfig::new(4)),
        &mut dry,
        n,
    );
    assert!(clean.validated);
    let at = SimTime(clean.phases.htod.0 + clean.phases.merge.0 / 2);
    let topo = &platform.topology;
    let link = topo
        .link_between(topo.gpu(0), topo.gpu(1))
        .expect("DELTA has a 0--1 NVLink");
    let plan = FaultPlan::new().link_down(at, link);

    let mut runs = Vec::new();
    for threads in [1usize, 4] {
        let mut data: Vec<u32> = generate(Distribution::Uniform, n as usize, 21);
        let cfg = RunConfig::sample(SampleSortConfig::new(4))
            .with_faults(plan.clone())
            .with_effect_threads(threads);
        let report = run_sort(&platform, &cfg, &mut data, n);
        assert!(report.validated, "threads={threads}");
        assert!(
            report.rerouted_transfers >= 1,
            "threads={threads}: the dead link must force reroutes"
        );
        runs.push((data, format!("{report:?}")));
    }
    assert_eq!(
        runs[0], runs[1],
        "faulted sample sort differs between effect_threads 1 and 4"
    );
}

/// The cross-node sort composes inner drivers in lockstep over one shared
/// system — the widest effect-conflict surface in the workspace (two
/// nodes' partitions, exchanges, and inner sorts all in flight). Output
/// bytes and the full report must still be independent of the effect
/// budget.
#[test]
fn cross_node_bit_identical_across_effect_threads() {
    let cluster = dgx_a100_cluster(2, Fabric::IbHdr);
    let n: u64 = 1 << 15;
    for inner in [InnerAlgo::SampleSort, InnerAlgo::P2p] {
        let mut runs = Vec::new();
        for threads in [1usize, 4] {
            let mut data: Vec<u32> = generate(Distribution::Uniform, n as usize, 23);
            let cfg =
                RunConfig::cross_node(CrossNodeConfig::new(inner)).with_effect_threads(threads);
            let report = run_sort(&cluster, &cfg, &mut data, n);
            assert!(report.validated, "{inner:?} threads={threads}");
            assert!(
                report.inter_node > SimDuration::ZERO,
                "{inner:?} threads={threads}: must cross the fabric"
            );
            runs.push((data, format!("{report:?}")));
        }
        assert_eq!(
            runs[0], runs[1],
            "{inner:?}: cross-node run differs between effect_threads 1 and 4"
        );
    }
}
