//! Randomized-property tests over the core invariants of the reproduction:
//! sorting correctness across arbitrary inputs and configurations, pivot
//! selection laws, allocator feasibility, merge correctness.
//!
//! The build environment is offline, so instead of `proptest` these use
//! deterministic seeded loops over the workspace's own [`Rng`]: every case
//! is reproducible from its printed seed, and coverage is equivalent to the
//! original property tests (dozens of randomized cases per invariant,
//! including empty inputs and adversarial bit patterns).

use multi_gpu_sort::core::pivot::{select_pivot_slices, swap_plan};
use multi_gpu_sort::cpu::multiway::{multisequence_select, multiway_merge};
use multi_gpu_sort::cpu::{lsb_radix_sort, merge_path_sort, msb_radix_sort, paradis_sort};
use multi_gpu_sort::data::Rng;
use multi_gpu_sort::prelude::*;
use multi_gpu_sort::topology::{allocate_rates, ConstraintTable, FlowRequest};

/// Number of randomized cases per invariant (matches the proptest budget
/// the original suite used).
const CASES: u64 = 48;

fn random_vec_u32(rng: &mut Rng, max_len: usize) -> Vec<u32> {
    let len = rng.usize_in(0..max_len);
    (0..len).map(|_| rng.u32()).collect()
}

fn random_vec_u64(rng: &mut Rng, max_len: usize) -> Vec<u64> {
    let len = rng.usize_in(0..max_len);
    (0..len).map(|_| rng.u64()).collect()
}

// ---- CPU sorting algorithms vs. the standard library. ----

#[test]
fn lsb_radix_matches_std() {
    for seed in 0..CASES {
        let mut rng = Rng::seed_from_u64(seed);
        let mut v = random_vec_u32(&mut rng, 2000);
        let mut expected = v.clone();
        expected.sort_unstable();
        lsb_radix_sort(&mut v);
        assert_eq!(v, expected, "seed {seed}");
    }
}

#[test]
fn msb_radix_matches_std() {
    for seed in 0..CASES {
        let mut rng = Rng::seed_from_u64(1000 + seed);
        let mut v = random_vec_u64(&mut rng, 2000);
        let mut expected = v.clone();
        expected.sort_unstable();
        msb_radix_sort(&mut v);
        assert_eq!(v, expected, "seed {seed}");
    }
}

#[test]
fn merge_path_sort_matches_std() {
    for seed in 0..CASES {
        let mut rng = Rng::seed_from_u64(2000 + seed);
        let mut v: Vec<i32> = random_vec_u32(&mut rng, 2000)
            .into_iter()
            .map(|x| x as i32)
            .collect();
        let mut expected = v.clone();
        expected.sort_unstable();
        merge_path_sort(&mut v);
        assert_eq!(v, expected, "seed {seed}");
    }
}

#[test]
fn paradis_matches_std_on_floats() {
    for seed in 0..CASES {
        let mut rng = Rng::seed_from_u64(3000 + seed);
        // Arbitrary bit patterns: includes NaNs, infinities, -0.0.
        let mut v: Vec<f32> = random_vec_u32(&mut rng, 3000)
            .into_iter()
            .map(f32::from_bits)
            .collect();
        let mut expected = v.clone();
        expected.sort_unstable_by(|a, b| a.total_cmp_key(b));
        paradis_sort(&mut v);
        assert_eq!(v.len(), expected.len(), "seed {seed}");
        for (a, b) in v.iter().zip(&expected) {
            assert_eq!(a.to_radix(), b.to_radix(), "seed {seed}");
        }
    }
}

// ---- Multiway merge. ----

#[test]
fn multiway_merge_matches_flat_sort() {
    for seed in 0..CASES {
        let mut rng = Rng::seed_from_u64(4000 + seed);
        let k = rng.usize_in(1..9);
        let mut runs: Vec<Vec<u32>> = (0..k).map(|_| random_vec_u32(&mut rng, 200)).collect();
        let mut all: Vec<u32> = Vec::new();
        for r in &mut runs {
            r.sort_unstable();
            all.extend_from_slice(r);
        }
        let views: Vec<&[u32]> = runs.iter().map(Vec::as_slice).collect();
        let mut out = vec![0u32; all.len()];
        multiway_merge(&views, &mut out);
        all.sort_unstable();
        assert_eq!(out, all, "seed {seed}");
    }
}

#[test]
fn multisequence_select_is_a_valid_split() {
    for seed in 0..CASES {
        let mut rng = Rng::seed_from_u64(5000 + seed);
        let k = rng.usize_in(1..6);
        let runs: Vec<Vec<u32>> = (0..k)
            .map(|_| {
                let mut r = random_vec_u32(&mut rng, 150);
                r.sort_unstable();
                r
            })
            .collect();
        let views: Vec<&[u32]> = runs.iter().map(Vec::as_slice).collect();
        let total: usize = views.iter().map(|v| v.len()).sum();
        let rank = ((total as f64) * rng.f64()) as usize;
        let splits = multisequence_select(&views, rank);
        assert_eq!(splits.iter().sum::<usize>(), rank, "seed {seed}");
        let max_before = views
            .iter()
            .zip(&splits)
            .filter_map(|(r, &s)| r[..s].last().copied())
            .max();
        let min_after = views
            .iter()
            .zip(&splits)
            .filter_map(|(r, &s)| r.get(s).copied())
            .min();
        if let (Some(mb), Some(ma)) = (max_before, min_after) {
            assert!(mb <= ma, "seed {seed}");
        }
    }
}

// ---- Pivot selection (Algorithm 1). ----

#[test]
fn pivot_is_valid_and_leftmost() {
    for seed in 0..CASES {
        let mut rng = Rng::seed_from_u64(6000 + seed);
        let n = rng.usize_in(1..300);
        // Build two equal-size sorted arrays from independent pools.
        let mut a: Vec<u32> = (0..n).map(|_| rng.u32()).collect();
        let mut b: Vec<u32> = generate(Distribution::Uniform, n, rng.u64());
        a.sort_unstable();
        b.sort_unstable();
        let p = select_pivot_slices(&a, &b);
        assert!(p <= n, "seed {seed}");
        // Validity: max of the new A side <= min of the new B side.
        let max_a = a[..n - p].iter().chain(b[..p].iter()).max().copied();
        let min_b = a[n - p..].iter().chain(b[p..].iter()).min().copied();
        if let (Some(ma), Some(mb)) = (max_a, min_b) {
            assert!(ma <= mb, "seed {seed}");
        }
        // Leftmost: p - 1 must be invalid (when p > 0).
        if p > 0 {
            let q = p - 1;
            let max_a = a[..n - q].iter().chain(b[..q].iter()).max().copied();
            let min_b = a[n - q..].iter().chain(b[q..].iter()).min().copied();
            if let (Some(ma), Some(mb)) = (max_a, min_b) {
                assert!(ma > mb, "seed {seed}: p={p} not leftmost");
            }
        }
    }
}

#[test]
fn swap_plan_partitions_pivot() {
    for seed in 0..CASES {
        let mut rng = Rng::seed_from_u64(7000 + seed);
        let half = rng.usize_in(1..5);
        let chunk = rng.usize_in(1..100);
        let pivot = ((half * chunk) as f64 * rng.f64()) as usize;
        let plan = swap_plan(half, chunk, pivot);
        let total: usize = plan.swaps.iter().map(|s| s.len).sum();
        assert_eq!(total, pivot, "seed {seed}");
        // Each chunk's kept + received == chunk size; at most one partial pair.
        let partials = plan.swaps.iter().filter(|s| s.len < chunk).count();
        assert!(partials <= 1, "seed {seed}");
        for c in 0..2 * half {
            let (kept, recv) = plan.chunk_exchange(c);
            assert_eq!(kept + recv, chunk, "seed {seed}");
        }
    }
}

// ---- Max-min fair allocation. ----

#[test]
fn allocation_is_feasible_and_pareto() {
    use multi_gpu_sort::topology::{LinkKind, MemSpec};
    for seed in 0..CASES {
        let mut rng = Rng::seed_from_u64(8000 + seed);
        let n_flows = rng.usize_in(1..7);
        let caps: Vec<f64> = (0..3).map(|_| 1.0 + rng.f64() * 99.0).collect();
        // A tiny topology whose constraint capacities come from `caps`.
        let mut b = TopologyBuilder::new();
        let cpu = b.cpu(
            0,
            MemSpec {
                capacity_bytes: 1 << 30,
                read_cap: gbps(caps[0]),
                write_cap: gbps(caps[1]),
                combined_cap: Some(gbps(caps[2])),
            },
        );
        let g0 = b.gpu(0, GpuModel::Custom);
        let g1 = b.gpu(1, GpuModel::Custom);
        b.link(cpu, g0, LinkKind::Pcie3, gbps(13.0));
        b.link(cpu, g1, LinkKind::Pcie3, gbps(13.0));
        let topo = b.build();
        let table = ConstraintTable::new(&topo);

        // Random flows between random endpoints.
        let endpoints = [Endpoint::HOST0, Endpoint::gpu(0), Endpoint::gpu(1)];
        let mut flows = Vec::new();
        for _ in 0..n_flows {
            let src = endpoints[rng.usize_in(0..3)];
            let dst = endpoints[rng.usize_in(0..3)];
            if src == dst {
                continue;
            }
            let route = multi_gpu_sort::topology::route::route(&topo, src, dst).unwrap();
            flows.push(FlowRequest::new(table.route_constraints(&topo, &route)));
        }
        let rates = allocate_rates(&table, &flows);
        // Feasibility.
        let mut used = vec![0.0f64; table.constraints().len()];
        for (f, fl) in flows.iter().enumerate() {
            assert!(rates[f] >= 0.0, "seed {seed}");
            assert!(rates[f].is_finite(), "seed {seed}");
            for &(c, w) in fl.constraints.iter() {
                used[c.0] += rates[f] * w;
            }
        }
        for (u, c) in used.iter().zip(table.constraints()) {
            assert!(
                *u <= c.capacity * 1.0001,
                "seed {seed}: {u} > {}",
                c.capacity
            );
        }
        // Pareto: every flow crosses at least one ~saturated constraint.
        for fl in &flows {
            let bottleneck = fl
                .constraints
                .iter()
                .any(|&(c, _)| used[c.0] >= table.capacity(c) * 0.999);
            assert!(bottleneck, "seed {seed}");
        }
    }
}

// ---- End-to-end sorting as a property. ----

#[test]
fn p2p_sort_any_input() {
    for seed in 0..CASES {
        let mut rng = Rng::seed_from_u64(9000 + seed);
        let raw = random_vec_u32(&mut rng, 512);
        let g = 1usize << rng.usize_in(0..3);
        // Pad to a multiple of g.
        let mut input = raw;
        while !input.len().is_multiple_of(g * 2) {
            input.push(0);
        }
        if input.is_empty() {
            continue;
        }
        let n = input.len() as u64;
        let platform = Platform::dgx_a100();
        let mut data = input.clone();
        let report = p2p_sort(&platform, &P2pConfig::new(g), &mut data, n);
        assert!(report.validated, "seed {seed}");
        assert!(same_multiset(&input, &data), "seed {seed}");
    }
}

#[test]
fn every_sort_every_platform_every_distribution() {
    // The full cross product: all FIVE algorithm families (P2P, HET, RP,
    // sample sort, multiway mergesort) on each paper platform, over every
    // key distribution the generator knows, must produce a sorted
    // permutation of the input. One seeded case per combination — the
    // seed tags reproduce any failure exactly.
    use multi_gpu_sort::core::{rp_sort, RpConfig};
    let distributions = [
        Distribution::Uniform,
        Distribution::Normal,
        Distribution::Sorted,
        Distribution::ReverseSorted,
        Distribution::NearlySorted,
        Distribution::ZipfDuplicates {
            skew_permille: 1200,
        },
        Distribution::Constant,
    ];
    let platforms = [
        Platform::ibm_ac922(),
        Platform::delta_d22x(),
        Platform::dgx_a100(),
    ];
    let mut seed = 11_000u64;
    for platform in &platforms {
        for &dist in &distributions {
            seed += 1;
            // 4 GPUs everywhere; n divisible by g^2 for RP sort.
            let n: u64 = 1 << 12;
            let input: Vec<u32> = generate(dist, n as usize, seed);
            let tag = || format!("seed {seed} {dist:?} on {}", platform.id.name());

            let mut p2p = input.clone();
            let r = p2p_sort(platform, &P2pConfig::new(4), &mut p2p, n);
            assert!(r.validated, "p2p {}", tag());
            assert!(same_multiset(&input, &p2p), "p2p {}", tag());

            let mut het = input.clone();
            let r = het_sort(platform, &HetConfig::new(4), &mut het, n);
            assert!(r.validated, "het {}", tag());
            assert!(same_multiset(&input, &het), "het {}", tag());

            let mut rp = input.clone();
            let r = rp_sort(platform, &RpConfig::new(4), &mut rp, n);
            assert!(r.validated, "rp {}", tag());
            assert!(same_multiset(&input, &rp), "rp {}", tag());

            let mut sample = input.clone();
            let r = sample_sort(platform, &SampleSortConfig::new(4), &mut sample, n);
            assert!(r.validated, "sample {}", tag());
            assert!(same_multiset(&input, &sample), "sample {}", tag());

            let mut mwms = input.clone();
            let r = mwms_sort(platform, &MwmsConfig::new(4), &mut mwms, n);
            assert!(r.validated, "mwms {}", tag());
            assert!(same_multiset(&input, &mwms), "mwms {}", tag());

            // All five algorithms agree on the result.
            assert_eq!(p2p, het, "p2p vs het {}", tag());
            assert_eq!(p2p, rp, "p2p vs rp {}", tag());
            assert_eq!(p2p, sample, "p2p vs sample {}", tag());
            assert_eq!(p2p, mwms, "p2p vs mwms {}", tag());
        }
    }
}

#[test]
fn five_algorithms_bit_reproducible_from_seed() {
    // The whole run is a pure function of (seed, config): regenerating the
    // input from the seed and re-running must reproduce the output bytes
    // AND every field of the report (all simulated clocks included).
    // `SortReport` has no `PartialEq` by design; its Debug rendering
    // compares every field.
    let platform = Platform::delta_d22x();
    let n: u64 = 1 << 12;
    let run = |algo: &str, seed: u64| -> (Vec<u32>, String) {
        let mut data: Vec<u32> = generate(Distribution::Uniform, n as usize, seed);
        let report = match algo {
            "p2p" => p2p_sort(&platform, &P2pConfig::new(4), &mut data, n),
            "rp" => {
                use multi_gpu_sort::core::{rp_sort, RpConfig};
                rp_sort(&platform, &RpConfig::new(4), &mut data, n)
            }
            "het" => het_sort(&platform, &HetConfig::new(4), &mut data, n),
            "sample" => sample_sort(&platform, &SampleSortConfig::new(4), &mut data, n),
            "mwms" => mwms_sort(&platform, &MwmsConfig::new(4), &mut data, n),
            _ => unreachable!(),
        };
        assert!(report.validated, "{algo}");
        (data, format!("{report:?}"))
    };
    for algo in ["p2p", "rp", "het", "sample", "mwms"] {
        let (out_a, rep_a) = run(algo, 31_337);
        let (out_b, rep_b) = run(algo, 31_337);
        assert_eq!(out_a, out_b, "{algo}: output not reproducible from seed");
        assert_eq!(rep_a, rep_b, "{algo}: report not reproducible from seed");
        assert!(is_sorted(&out_a), "{algo}");
    }
}

#[test]
fn sample_sort_bucket_imbalance_bounded_on_skewed_input() {
    // Duplicate-heavy Zipf input is sample sort's adversary: a key-only
    // splitter comparison would dump every copy of the hot key into one
    // bucket. The (key, position) tie-break bounds the largest receive
    // partition — surfaced via `SortReport::max_partition_keys` — to ~2x
    // the even share even at heavy skew.
    let g = 8;
    let n: u64 = 1 << 15;
    for &skew_permille in &[1200u32, 1500] {
        let dist = Distribution::ZipfDuplicates { skew_permille };
        let input: Vec<u32> = generate(dist, n as usize, 0x5A17);
        let mut data = input.clone();
        let report = sample_sort(
            &Platform::dgx_a100(),
            &SampleSortConfig::new(g),
            &mut data,
            n,
        );
        assert!(report.validated, "skew {skew_permille}");
        assert!(same_multiset(&input, &data), "skew {skew_permille}");
        assert!(
            report.max_partition_keys > 0,
            "sample sort must report its largest bucket"
        );
        assert!(
            report.max_partition_keys <= 2 * (n / g as u64),
            "skew {skew_permille}: largest bucket {} exceeds 2x the even share {}",
            report.max_partition_keys,
            n / g as u64
        );
    }
}

#[test]
fn het_sort_any_input() {
    for seed in 0..CASES {
        let mut rng = Rng::seed_from_u64(10_000 + seed);
        let len = rng.usize_in(1..512);
        let input: Vec<u64> = (0..len).map(|_| rng.u64()).collect();
        let budget_kib = rng.u64_in(2..64);
        let n = input.len() as u64;
        let platform = Platform::test_pcie(2);
        let cfg = HetConfig::new(2).with_mem_budget(budget_kib * 1024);
        let mut data = input.clone();
        let report = het_sort(&platform, &cfg, &mut data, n);
        assert!(report.validated, "seed {seed}");
        assert!(same_multiset(&input, &data), "seed {seed}");
    }
}

// ---- Cross-node sort. ----

#[test]
fn cross_node_sorted_permutation_across_distributions() {
    let cluster = dgx_a100_cluster(2, Fabric::IbHdr);
    let n: u64 = 1 << 13;
    let mut seed = 20_000u64;
    for dist in [
        Distribution::Uniform,
        Distribution::ReverseSorted,
        Distribution::ZipfDuplicates {
            skew_permille: 1200,
        },
        Distribution::Constant,
    ] {
        for inner in [
            InnerAlgo::SampleSort,
            InnerAlgo::P2p,
            InnerAlgo::MultiwayMerge,
        ] {
            seed += 1;
            let input: Vec<u32> = generate(dist, n as usize, seed);
            let mut data = input.clone();
            let report = cross_node_sort(&cluster, &CrossNodeConfig::new(inner), &mut data, n);
            assert!(report.validated, "seed {seed} {dist:?} {inner:?}");
            assert!(is_sorted(&data), "seed {seed} {dist:?} {inner:?}");
            assert!(
                same_multiset(&input, &data),
                "seed {seed} {dist:?} {inner:?}"
            );
        }
    }
}

#[test]
fn cross_node_agrees_with_single_node_sorts() {
    // The same keys sorted on a 2-node cluster and on one DGX box must
    // produce byte-identical output (sorting is a pure function of the
    // input multiset), even though the cluster run crosses the fabric.
    let cluster = dgx_a100_cluster(2, Fabric::IbNdr);
    let single = Platform::dgx_a100();
    let n: u64 = 1 << 14;
    let input: Vec<u32> = generate(Distribution::Normal, n as usize, 0xAC_C0DE);

    let mut cross = input.clone();
    let rc = cross_node_sort(
        &cluster,
        &CrossNodeConfig::new(InnerAlgo::SampleSort),
        &mut cross,
        n,
    );
    assert!(rc.validated);
    assert!(rc.inter_node > SimDuration::ZERO, "must use the fabric");

    for (name, out) in [
        ("p2p", {
            let mut d = input.clone();
            let r = p2p_sort(&single, &P2pConfig::new(8), &mut d, n);
            assert!(r.validated);
            d
        }),
        ("mwms", {
            let mut d = input.clone();
            let r = mwms_sort(&single, &MwmsConfig::new(8), &mut d, n);
            assert!(r.validated);
            d
        }),
    ] {
        assert_eq!(cross, out, "cross-node vs single-node {name} diverge");
    }
}
