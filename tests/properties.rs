//! Property-based tests over the core invariants of the reproduction:
//! sorting correctness across arbitrary inputs and configurations, pivot
//! selection laws, allocator feasibility, merge correctness.

use multi_gpu_sort::core::pivot::{select_pivot_slices, swap_plan};
use multi_gpu_sort::cpu::multiway::{multisequence_select, multiway_merge};
use multi_gpu_sort::cpu::{lsb_radix_sort, merge_path_sort, msb_radix_sort, paradis_sort};
use multi_gpu_sort::prelude::*;
use multi_gpu_sort::topology::{allocate_rates, ConstraintTable, FlowRequest};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    // ---- CPU sorting algorithms vs. the standard library. ----

    #[test]
    fn lsb_radix_matches_std(mut v in proptest::collection::vec(any::<u32>(), 0..2000)) {
        let mut expected = v.clone();
        expected.sort_unstable();
        lsb_radix_sort(&mut v);
        prop_assert_eq!(v, expected);
    }

    #[test]
    fn msb_radix_matches_std(mut v in proptest::collection::vec(any::<u64>(), 0..2000)) {
        let mut expected = v.clone();
        expected.sort_unstable();
        msb_radix_sort(&mut v);
        prop_assert_eq!(v, expected);
    }

    #[test]
    fn merge_path_sort_matches_std(mut v in proptest::collection::vec(any::<i32>(), 0..2000)) {
        let mut expected = v.clone();
        expected.sort_unstable();
        merge_path_sort(&mut v);
        prop_assert_eq!(v, expected);
    }

    #[test]
    fn paradis_matches_std_on_floats(
        mut v in proptest::collection::vec(any::<u32>().prop_map(f32::from_bits), 0..3000)
    ) {
        // Arbitrary bit patterns: includes NaNs, infinities, -0.0.
        let mut expected = v.clone();
        expected.sort_unstable_by(|a, b| a.total_cmp_key(b));
        paradis_sort(&mut v);
        prop_assert_eq!(v.len(), expected.len());
        for (a, b) in v.iter().zip(&expected) {
            prop_assert_eq!(a.to_radix(), b.to_radix());
        }
    }

    // ---- Multiway merge. ----

    #[test]
    fn multiway_merge_matches_flat_sort(
        runs in proptest::collection::vec(
            proptest::collection::vec(any::<u32>(), 0..200), 1..9)
    ) {
        let mut runs = runs;
        let mut all: Vec<u32> = Vec::new();
        for r in &mut runs {
            r.sort_unstable();
            all.extend_from_slice(r);
        }
        let views: Vec<&[u32]> = runs.iter().map(Vec::as_slice).collect();
        let mut out = vec![0u32; all.len()];
        multiway_merge(&views, &mut out);
        all.sort_unstable();
        prop_assert_eq!(out, all);
    }

    #[test]
    fn multisequence_select_is_a_valid_split(
        runs in proptest::collection::vec(
            proptest::collection::vec(any::<u32>(), 0..150), 1..6),
        rank_frac in 0.0f64..=1.0
    ) {
        let runs: Vec<Vec<u32>> = runs.into_iter().map(|mut r| { r.sort_unstable(); r }).collect();
        let views: Vec<&[u32]> = runs.iter().map(Vec::as_slice).collect();
        let total: usize = views.iter().map(|v| v.len()).sum();
        let rank = ((total as f64) * rank_frac) as usize;
        let splits = multisequence_select(&views, rank);
        prop_assert_eq!(splits.iter().sum::<usize>(), rank);
        let max_before = views.iter().zip(&splits)
            .filter_map(|(r, &s)| r[..s].last().copied()).max();
        let min_after = views.iter().zip(&splits)
            .filter_map(|(r, &s)| r.get(s).copied()).min();
        if let (Some(mb), Some(ma)) = (max_before, min_after) {
            prop_assert!(mb <= ma);
        }
    }

    // ---- Pivot selection (Algorithm 1). ----

    #[test]
    fn pivot_is_valid_and_leftmost(
        mut a in proptest::collection::vec(any::<u32>(), 1..300),
        seed in any::<u64>()
    ) {
        // Build two equal-size sorted arrays from one pool.
        let n = a.len();
        let mut b: Vec<u32> = generate(Distribution::Uniform, n, seed);
        a.sort_unstable();
        b.sort_unstable();
        let p = select_pivot_slices(&a, &b);
        prop_assert!(p <= n);
        // Validity: max of the new A side <= min of the new B side.
        let max_a = a[..n - p].iter().chain(b[..p].iter()).max().copied();
        let min_b = a[n - p..].iter().chain(b[p..].iter()).min().copied();
        if let (Some(ma), Some(mb)) = (max_a, min_b) {
            prop_assert!(ma <= mb);
        }
        // Leftmost: p - 1 must be invalid (when p > 0).
        if p > 0 {
            let q = p - 1;
            let max_a = a[..n - q].iter().chain(b[..q].iter()).max().copied();
            let min_b = a[n - q..].iter().chain(b[q..].iter()).min().copied();
            if let (Some(ma), Some(mb)) = (max_a, min_b) {
                prop_assert!(ma > mb, "p={p} not leftmost");
            }
        }
    }

    #[test]
    fn swap_plan_partitions_pivot(half in 1usize..5, chunk in 1usize..100, frac in 0.0f64..=1.0) {
        let pivot = ((half * chunk) as f64 * frac) as usize;
        let plan = swap_plan(half, chunk, pivot);
        let total: usize = plan.swaps.iter().map(|s| s.len).sum();
        prop_assert_eq!(total, pivot);
        // Each chunk's kept + received == chunk size; at most one partial pair.
        let partials = plan.swaps.iter().filter(|s| s.len < chunk).count();
        prop_assert!(partials <= 1);
        for c in 0..2 * half {
            let (kept, recv) = plan.chunk_exchange(c);
            prop_assert_eq!(kept + recv, chunk);
        }
    }

    // ---- Max-min fair allocation. ----

    #[test]
    fn allocation_is_feasible_and_pareto(
        n_flows in 1usize..7,
        caps in proptest::collection::vec(1.0f64..100.0, 3),
        seed in any::<u64>()
    ) {
        use multi_gpu_sort::topology::{MemSpec, LinkKind};
        // A tiny topology whose constraint capacities come from `caps`.
        let mut b = TopologyBuilder::new();
        let cpu = b.cpu(0, MemSpec {
            capacity_bytes: 1 << 30,
            read_cap: gbps(caps[0]),
            write_cap: gbps(caps[1]),
            combined_cap: Some(gbps(caps[2])),
        });
        let g0 = b.gpu(0, GpuModel::Custom);
        let g1 = b.gpu(1, GpuModel::Custom);
        b.link(cpu, g0, LinkKind::Pcie3, gbps(13.0));
        b.link(cpu, g1, LinkKind::Pcie3, gbps(13.0));
        let topo = b.build();
        let table = ConstraintTable::new(&topo);

        // Random flows between random endpoints.
        let endpoints = [Endpoint::HOST0, Endpoint::gpu(0), Endpoint::gpu(1)];
        let mut flows = Vec::new();
        let mut s = seed;
        for _ in 0..n_flows {
            s = s.wrapping_mul(6364136223846793005).wrapping_add(1);
            let src = endpoints[(s >> 10) as usize % 3];
            s = s.wrapping_mul(6364136223846793005).wrapping_add(1);
            let dst = endpoints[(s >> 10) as usize % 3];
            if src == dst {
                continue;
            }
            let route = multi_gpu_sort::topology::route::route(&topo, src, dst).unwrap();
            flows.push(FlowRequest::new(table.route_constraints(&topo, &route)));
        }
        let rates = allocate_rates(&table, &flows);
        // Feasibility.
        let mut used = vec![0.0f64; table.constraints().len()];
        for (f, fl) in flows.iter().enumerate() {
            prop_assert!(rates[f] >= 0.0);
            prop_assert!(rates[f].is_finite());
            for &(c, w) in &fl.constraints {
                used[c.0] += rates[f] * w;
            }
        }
        for (u, c) in used.iter().zip(table.constraints()) {
            prop_assert!(*u <= c.capacity * 1.0001, "{u} > {}", c.capacity);
        }
        // Pareto: every flow crosses at least one ~saturated constraint.
        for fl in &flows {
            let bottleneck = fl.constraints.iter()
                .any(|&(c, _)| used[c.0] >= table.capacity(c) * 0.999);
            prop_assert!(bottleneck);
        }
    }

    // ---- End-to-end sorting as a property. ----

    #[test]
    fn p2p_sort_any_input(
        raw in proptest::collection::vec(any::<u32>(), 0..512),
        g_exp in 0u32..3
    ) {
        let g = 1usize << g_exp;
        // Pad to a multiple of g.
        let mut input = raw;
        while input.len() % (g * 2) != 0 {
            input.push(0);
        }
        if input.is_empty() {
            return Ok(());
        }
        let n = input.len() as u64;
        let platform = Platform::dgx_a100();
        let mut data = input.clone();
        let report = p2p_sort(&platform, &P2pConfig::new(g), &mut data, n);
        prop_assert!(report.validated);
        prop_assert!(same_multiset(&input, &data));
    }

    #[test]
    fn het_sort_any_input(
        raw in proptest::collection::vec(any::<u64>(), 1..512),
        budget_kib in 2u64..64
    ) {
        let input = raw;
        let n = input.len() as u64;
        let platform = Platform::test_pcie(2);
        let cfg = HetConfig::new(2).with_mem_budget(budget_kib * 1024);
        let mut data = input.clone();
        let report = het_sort(&platform, &cfg, &mut data, n);
        prop_assert!(report.validated);
        prop_assert!(same_multiset(&input, &data));
    }
}
