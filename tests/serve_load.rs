//! Open-loop service load, end to end: a seeded arrival generator drives
//! the full stack — admission, elastic fleet, gang placement, every
//! algorithm family's driver on one shared clock — and the result must be
//! a pure function of (workload seed, config): bit-identical across
//! replays, across effect-thread budgets, and under injected faults. The
//! recorder must capture the new service-layer signals (fleet-size
//! counter, shed instants) without perturbing the run.

use multi_gpu_sort::prelude::*;
use multi_gpu_sort::trace::{groups, EventKind};

const SCALE: u64 = 64;

/// A bursty MMPP mix across three tenants and three algorithm families —
/// enough concurrency that jobs queue, the fleet flexes, and admission
/// has real decisions to make.
fn open_loop(jobs: u64, seed: u64) -> OpenLoop {
    let mix = JobMix::of(
        SortJob::new(TenantId(0), 1 << 16)
            .with_algo(JobAlgo::Het)
            .interactive(),
    )
    .and(SortJob::new(TenantId(1), 1 << 18).with_gpus(4), 0.5)
    .and(
        SortJob::new(TenantId(2), 1 << 16)
            .with_algo(JobAlgo::Rp)
            .with_gpus(2),
        1.0,
    );
    OpenLoop::new(
        ArrivalProcess::Bursty {
            base_rate: 400.0,
            burst_rate: 20_000.0,
            mean_calm: SimDuration::from_millis(4),
            mean_burst: SimDuration::from_millis(2),
        },
        mix,
        jobs,
        seed,
    )
}

fn config() -> ServeConfig {
    ServeConfig::new()
        .sampled(SCALE)
        .with_policy(QueuePolicy::Edf)
        .with_admission(AdmissionPolicy::SloAware)
        .with_slo(TenantId(0), SimDuration::from_micros(50))
        .with_slo(TenantId(2), SimDuration::from_millis(50))
        .elastic(2, SimDuration::from_millis(2))
}

/// The determinism contract of the redesigned entry point: same seed,
/// same config → the bit-identical `ServiceReport`, replay after replay
/// and regardless of the host-side effect-thread budget.
#[test]
fn open_loop_serve_bit_identical_across_replays_and_effect_threads() {
    let dgx = Platform::dgx_a100();
    let mut reports = Vec::new();
    for threads in [1usize, 4] {
        for replay in 0..2 {
            let cfg =
                config().with_run(RunConfig::new().sampled(SCALE).with_effect_threads(threads));
            // with_run replaces the whole RunConfig, so re-apply the
            // service knobs the shared run settings do not carry.
            let cfg = cfg
                .with_policy(QueuePolicy::Edf)
                .with_admission(AdmissionPolicy::SloAware)
                .with_slo(TenantId(0), SimDuration::from_micros(50))
                .with_slo(TenantId(2), SimDuration::from_millis(50))
                .elastic(2, SimDuration::from_millis(2));
            let report = SortService::<u32>::new(&dgx, cfg).serve(open_loop(64, 0xAB5E));
            assert!(report.all_validated(), "threads={threads} replay={replay}");
            reports.push(format!("{report:?}"));
        }
    }
    for r in &reports[1..] {
        assert_eq!(
            &reports[0], r,
            "ServiceReport must not depend on replay or effect threads"
        );
    }
}

/// Under bursty overload the elastic fleet flexes between its floor and
/// the burst demand, SLO-aware admission sheds what the backlog could
/// never finish in time, and the queue-depth cap is never breached.
#[test]
fn elastic_fleet_flexes_and_admission_sheds_under_bursts() {
    let dgx = Platform::dgx_a100();
    let report = SortService::<u32>::new(&dgx, config().with_max_queue_depth(16))
        .serve(open_loop(96, 0x10AD));
    assert!(report.all_validated());
    assert_eq!(report.offered_jobs(), 96);

    let sizes: Vec<usize> = report.fleet_size.iter().map(|&(_, n)| n).collect();
    assert_eq!(sizes[0], 2, "fleet starts at its floor");
    let peak = sizes.iter().copied().max().unwrap();
    assert!(peak > 2, "bursts must lease extra GPUs (peak {peak})");
    assert!(
        sizes.windows(2).all(|w| w[0] != w[1]),
        "fleet log only records changes"
    );
    let mean = report.mean_fleet_size();
    assert!(
        mean < peak as f64,
        "elastic mean {mean} must undercut the {peak}-GPU peak"
    );

    assert!(
        report.shed_jobs() > 0,
        "a 10x burst against a tight interactive SLO must shed"
    );
    assert!(report.slo_attainment() < 1.0);
    assert!(
        report.goodput_jobs() > 0,
        "the service still does real work"
    );
    assert!(
        report.queue_depth.iter().all(|&(_, d)| d <= 16),
        "queue cap breached"
    );

    // Interactive jobs with deadlines dispatched EDF: every completed
    // tenant-0 job recorded its 50 µs deadline.
    for o in report.outcomes.iter().filter(|o| o.tenant == TenantId(0)) {
        assert_eq!(o.deadline, Some(o.submitted + SimDuration::from_micros(50)));
    }
}

/// The recorder sees the new service-layer signals — the fleet-size
/// counter track and shed/reject instants — and recording stays purely
/// observational (the report is bit-identical with the recorder on and
/// off).
#[test]
fn recorder_captures_fleet_counter_and_shed_instants() {
    let dgx = Platform::dgx_a100();
    let silent = SortService::<u32>::new(&dgx, config()).serve(open_loop(64, 0x0B5E));
    let recorder = Recorder::new();
    let observed = SortService::<u32>::new(&dgx, config().with_recorder(recorder.clone()))
        .serve(open_loop(64, 0x0B5E));
    assert_eq!(silent, observed, "recording must be purely observational");

    let data = recorder.snapshot().expect("recorder is enabled");
    let fleet_samples: Vec<(u64, f64)> = data
        .events_in_group(groups::SERVICE)
        .filter(|e| e.name == "active_gpus")
        .filter_map(|e| match e.kind {
            EventKind::Counter { at_ns, value } => Some((at_ns, value)),
            _ => None,
        })
        .collect();
    assert_eq!(
        fleet_samples.len(),
        observed.fleet_size.len(),
        "one counter sample per fleet-size change"
    );
    for (&(at, v), &(t, n)) in fleet_samples.iter().zip(&observed.fleet_size) {
        assert_eq!(at, t.0);
        assert!((v - n as f64).abs() < 1e-12);
    }

    let sheds = data
        .events_in_group(groups::SERVICE)
        .filter(|e| {
            matches!(e.kind, EventKind::Instant { .. })
                && (e.name == "shed" || e.name == "reject-slo-unattainable")
        })
        .count() as u64;
    assert_eq!(sheds, observed.shed_jobs(), "one instant per shed job");
    assert!(json_valid(&chrome_trace(&data)));
}

/// FaultPlans compose with the open-loop path: a randomized fault
/// schedule under bursty load still validates every job, still reroutes,
/// and the whole run stays bit-reproducible.
#[test]
fn faults_compose_with_open_loop_serving() {
    let dgx = Platform::dgx_a100();
    let plan = FaultPlan::randomized(&dgx, 0xFA57, SimDuration::from_millis(20));
    let run = || {
        let cfg = config().with_run(RunConfig::new().sampled(SCALE).with_faults(plan.clone()));
        let cfg = cfg
            .with_admission(AdmissionPolicy::SloAware)
            .with_slo(TenantId(0), SimDuration::from_micros(50))
            .elastic(2, SimDuration::from_millis(2));
        SortService::<u32>::new(&dgx, cfg).serve(open_loop(48, 0xF001))
    };
    let a = run();
    let b = run();
    assert_eq!(a, b, "faulted open-loop runs must replay bit-identically");
    assert!(a.all_validated());
    assert!(a.offered_jobs() == 48);
}
