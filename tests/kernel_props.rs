//! Property tests for the PR 6 kernels: the OneSweep single-pass radix
//! sort (sequential, chained-lookback parallel, and the write-combining
//! scatter variant) and the branchless merge-path merge.
//!
//! Three invariant families:
//!
//! * **Equivalence** — every kernel produces exactly `sort_unstable`'s
//!   output (radix order equals numeric order for unsigned keys) across
//!   random, adversarial, and paper-distribution inputs, for u32 and u64.
//! * **Bit-identity across thread counts** — the parallel OneSweep chunks
//!   by fixed-size tiles, never by the worker count, so its output at 1, 2
//!   and 4 threads is byte-for-byte the sequential kernel's output. This is
//!   the property the effect executor's determinism contract rests on.
//! * **Edge cases** — empty, singleton, all-duplicate, already-sorted,
//!   reverse-sorted, and tile-boundary-straddling lengths.
//!
//! Offline environment: deterministic seeded loops over the in-tree [`Rng`]
//! stand in for `proptest`, as in `tests/properties.rs`.

use multi_gpu_sort::cpu::{
    merge_path_sort, onesweep_sort, parallel_onesweep_sort, parallel_onesweep_sort_with_aux,
};
use multi_gpu_sort::data::Rng;
use multi_gpu_sort::prelude::*;

const CASES: u64 = 32;

fn random_vec_u32(rng: &mut Rng, max_len: usize) -> Vec<u32> {
    let len = rng.usize_in(0..max_len);
    (0..len).map(|_| rng.u32()).collect()
}

fn random_vec_u64(rng: &mut Rng, max_len: usize) -> Vec<u64> {
    let len = rng.usize_in(0..max_len);
    (0..len).map(|_| rng.u64()).collect()
}

#[test]
fn onesweep_matches_std_u32() {
    for seed in 0..CASES {
        let mut rng = Rng::seed_from_u64(seed);
        let v = random_vec_u32(&mut rng, 3000);
        let mut expected = v.clone();
        expected.sort_unstable();
        let mut got = v.clone();
        onesweep_sort(&mut got);
        assert_eq!(got, expected, "seed {seed}");
    }
}

#[test]
fn onesweep_matches_std_u64() {
    for seed in 0..CASES {
        let mut rng = Rng::seed_from_u64(seed);
        let v = random_vec_u64(&mut rng, 3000);
        let mut expected = v.clone();
        expected.sort_unstable();
        let mut got = v.clone();
        onesweep_sort(&mut got);
        assert_eq!(got, expected, "seed {seed}");
    }
}

#[test]
fn onesweep_matches_std_across_distributions() {
    for dist in Distribution::paper_set() {
        let v: Vec<u32> = generate(dist, 50_000, 23);
        let mut expected = v.clone();
        expected.sort_unstable();
        let mut got = v;
        onesweep_sort(&mut got);
        assert_eq!(got, expected, "{dist:?}");
    }
}

#[test]
fn onesweep_edge_cases() {
    // Lengths around the kernel's internal boundaries: empty, singleton,
    // one short of / exactly at / one past small powers of two, and a
    // couple of lengths that straddle 32 Ki-key scatter tiles.
    for len in [
        0usize,
        1,
        2,
        3,
        255,
        256,
        257,
        (1 << 15) - 1,
        (1 << 15) + 5,
        (1 << 16) + 1,
    ] {
        let mut rng = Rng::seed_from_u64(len as u64);
        let v: Vec<u32> = (0..len).map(|_| rng.u32()).collect();
        let mut expected = v.clone();
        expected.sort_unstable();
        let mut got = v;
        onesweep_sort(&mut got);
        assert_eq!(got, expected, "len {len}");
    }
    // All-duplicate input exercises the constant-digit pass skip on every
    // pass at once.
    let mut dup = vec![0xDEAD_BEEFu32; 10_000];
    onesweep_sort(&mut dup);
    assert!(dup.iter().all(|&k| k == 0xDEAD_BEEF));
    // Already-sorted and reverse-sorted inputs.
    let mut sorted: Vec<u64> = (0..20_000u64).collect();
    onesweep_sort(&mut sorted);
    assert!(sorted.windows(2).all(|w| w[0] <= w[1]));
    let mut rev: Vec<u64> = (0..20_000u64).rev().collect();
    onesweep_sort(&mut rev);
    assert_eq!(rev, (0..20_000u64).collect::<Vec<_>>());
}

#[test]
fn parallel_onesweep_bit_identical_across_thread_counts() {
    // Long enough to span multiple scatter tiles so the lookback chain
    // actually runs at width > 1.
    for dist in [
        Distribution::Uniform,
        Distribution::ZipfDuplicates { skew_permille: 800 },
        Distribution::ReverseSorted,
    ] {
        let input: Vec<u32> = generate(dist, 100_000, 77);
        let mut reference = input.clone();
        onesweep_sort(&mut reference);
        for threads in [1usize, 2, 4] {
            let mut par = input.clone();
            parallel_onesweep_sort(&mut par, threads);
            assert_eq!(par, reference, "{dist:?} threads={threads}");
        }
    }
}

#[test]
fn parallel_onesweep_with_aux_bit_identical() {
    let input: Vec<u64> = generate(Distribution::Uniform, 120_000, 91);
    let mut reference = input.clone();
    onesweep_sort(&mut reference);
    for threads in [2usize, 4] {
        let mut par = input.clone();
        // Oversized aux: only the first n slots may be used.
        let mut aux = vec![0u64; input.len() + 33];
        parallel_onesweep_sort_with_aux(&mut par, &mut aux, threads);
        assert_eq!(par, reference, "threads={threads}");
    }
}

#[test]
fn branchless_merge_path_matches_std() {
    for seed in 0..CASES {
        let mut rng = Rng::seed_from_u64(1000 + seed);
        let v = random_vec_u32(&mut rng, 4000);
        let mut expected = v.clone();
        expected.sort_unstable();
        let mut got = v.clone();
        merge_path_sort(&mut got);
        assert_eq!(got, expected, "seed {seed}");
    }
}

#[test]
fn branchless_merge_path_edge_cases() {
    for len in [0usize, 1, 2, 5, 4095, 4096, 4097] {
        let mut rng = Rng::seed_from_u64(len as u64);
        let v: Vec<u64> = (0..len).map(|_| rng.u64()).collect();
        let mut expected = v.clone();
        expected.sort_unstable();
        let mut got = v;
        merge_path_sort(&mut got);
        assert_eq!(got, expected, "len {len}");
    }
}
