//! Property tests for the PR 6 kernels: the OneSweep single-pass radix
//! sort (sequential, chained-lookback parallel, and the write-combining
//! scatter variant) and the branchless merge-path merge.
//!
//! Three invariant families:
//!
//! * **Equivalence** — every kernel produces exactly `sort_unstable`'s
//!   output (radix order equals numeric order for unsigned keys) across
//!   random, adversarial, and paper-distribution inputs, for u32 and u64.
//! * **Bit-identity across thread counts** — the parallel OneSweep chunks
//!   by fixed-size tiles, never by the worker count, so its output at 1, 2
//!   and 4 threads is byte-for-byte the sequential kernel's output. This is
//!   the property the effect executor's determinism contract rests on.
//! * **Edge cases** — empty, singleton, all-duplicate, already-sorted,
//!   reverse-sorted, and tile-boundary-straddling lengths.
//!
//! PR 7 adds the sample-sort host kernels to the same contract: the
//! splitter partition must be a stable permutation with boundaries that
//! match the predicted histogram, and the k-way merge must equal
//! `sort_unstable` bit-for-bit at every pool width.
//!
//! Offline environment: deterministic seeded loops over the in-tree [`Rng`]
//! stand in for `proptest`, as in `tests/properties.rs`.

use multi_gpu_sort::cpu::multiway::{parallel_multiway_merge_with, ParallelMergeConfig};
use multi_gpu_sort::cpu::{
    bucket_counts, bucket_of, merge_path_sort, multiway_merge, onesweep_sort,
    parallel_onesweep_sort, parallel_onesweep_sort_with_aux, partition_by_splitters,
    select_splitters,
};
use multi_gpu_sort::data::Rng;
use multi_gpu_sort::prelude::*;

const CASES: u64 = 32;

fn random_vec_u32(rng: &mut Rng, max_len: usize) -> Vec<u32> {
    let len = rng.usize_in(0..max_len);
    (0..len).map(|_| rng.u32()).collect()
}

fn random_vec_u64(rng: &mut Rng, max_len: usize) -> Vec<u64> {
    let len = rng.usize_in(0..max_len);
    (0..len).map(|_| rng.u64()).collect()
}

#[test]
fn onesweep_matches_std_u32() {
    for seed in 0..CASES {
        let mut rng = Rng::seed_from_u64(seed);
        let v = random_vec_u32(&mut rng, 3000);
        let mut expected = v.clone();
        expected.sort_unstable();
        let mut got = v.clone();
        onesweep_sort(&mut got);
        assert_eq!(got, expected, "seed {seed}");
    }
}

#[test]
fn onesweep_matches_std_u64() {
    for seed in 0..CASES {
        let mut rng = Rng::seed_from_u64(seed);
        let v = random_vec_u64(&mut rng, 3000);
        let mut expected = v.clone();
        expected.sort_unstable();
        let mut got = v.clone();
        onesweep_sort(&mut got);
        assert_eq!(got, expected, "seed {seed}");
    }
}

#[test]
fn onesweep_matches_std_across_distributions() {
    for dist in Distribution::paper_set() {
        let v: Vec<u32> = generate(dist, 50_000, 23);
        let mut expected = v.clone();
        expected.sort_unstable();
        let mut got = v;
        onesweep_sort(&mut got);
        assert_eq!(got, expected, "{dist:?}");
    }
}

#[test]
fn onesweep_edge_cases() {
    // Lengths around the kernel's internal boundaries: empty, singleton,
    // one short of / exactly at / one past small powers of two, and a
    // couple of lengths that straddle 32 Ki-key scatter tiles.
    for len in [
        0usize,
        1,
        2,
        3,
        255,
        256,
        257,
        (1 << 15) - 1,
        (1 << 15) + 5,
        (1 << 16) + 1,
    ] {
        let mut rng = Rng::seed_from_u64(len as u64);
        let v: Vec<u32> = (0..len).map(|_| rng.u32()).collect();
        let mut expected = v.clone();
        expected.sort_unstable();
        let mut got = v;
        onesweep_sort(&mut got);
        assert_eq!(got, expected, "len {len}");
    }
    // All-duplicate input exercises the constant-digit pass skip on every
    // pass at once.
    let mut dup = vec![0xDEAD_BEEFu32; 10_000];
    onesweep_sort(&mut dup);
    assert!(dup.iter().all(|&k| k == 0xDEAD_BEEF));
    // Already-sorted and reverse-sorted inputs.
    let mut sorted: Vec<u64> = (0..20_000u64).collect();
    onesweep_sort(&mut sorted);
    assert!(sorted.windows(2).all(|w| w[0] <= w[1]));
    let mut rev: Vec<u64> = (0..20_000u64).rev().collect();
    onesweep_sort(&mut rev);
    assert_eq!(rev, (0..20_000u64).collect::<Vec<_>>());
}

#[test]
fn parallel_onesweep_bit_identical_across_thread_counts() {
    // Long enough to span multiple scatter tiles so the lookback chain
    // actually runs at width > 1.
    for dist in [
        Distribution::Uniform,
        Distribution::ZipfDuplicates { skew_permille: 800 },
        Distribution::ReverseSorted,
    ] {
        let input: Vec<u32> = generate(dist, 100_000, 77);
        let mut reference = input.clone();
        onesweep_sort(&mut reference);
        for threads in [1usize, 2, 4] {
            let mut par = input.clone();
            parallel_onesweep_sort(&mut par, threads);
            assert_eq!(par, reference, "{dist:?} threads={threads}");
        }
    }
}

#[test]
fn parallel_onesweep_with_aux_bit_identical() {
    let input: Vec<u64> = generate(Distribution::Uniform, 120_000, 91);
    let mut reference = input.clone();
    onesweep_sort(&mut reference);
    for threads in [2usize, 4] {
        let mut par = input.clone();
        // Oversized aux: only the first n slots may be used.
        let mut aux = vec![0u64; input.len() + 33];
        parallel_onesweep_sort_with_aux(&mut par, &mut aux, threads);
        assert_eq!(par, reference, "threads={threads}");
    }
}

#[test]
fn branchless_merge_path_matches_std() {
    for seed in 0..CASES {
        let mut rng = Rng::seed_from_u64(1000 + seed);
        let v = random_vec_u32(&mut rng, 4000);
        let mut expected = v.clone();
        expected.sort_unstable();
        let mut got = v.clone();
        merge_path_sort(&mut got);
        assert_eq!(got, expected, "seed {seed}");
    }
}

#[test]
fn branchless_merge_path_edge_cases() {
    for len in [0usize, 1, 2, 5, 4095, 4096, 4097] {
        let mut rng = Rng::seed_from_u64(len as u64);
        let v: Vec<u64> = (0..len).map(|_| rng.u64()).collect();
        let mut expected = v.clone();
        expected.sort_unstable();
        let mut got = v;
        merge_path_sort(&mut got);
        assert_eq!(got, expected, "len {len}");
    }
}

// ---- Sample-sort splitter partition (PR 7). ----

/// Full permutation check for the splitter partition: the output must be
/// exactly the naive stable partition (per-bucket key lists in input
/// order, concatenated), with boundaries matching `bucket_counts`.
fn check_splitter_partition<K: SortKey + PartialEq + std::fmt::Debug>(
    input: &[K],
    buckets: usize,
    tag: &str,
) {
    let n = input.len();
    let views: Vec<&[K]> = if n == 0 {
        vec![input]
    } else {
        input.chunks(n.div_ceil(buckets)).collect()
    };
    let splitters = select_splitters(&views, buckets, 32);
    assert!(splitters.len() < buckets, "{tag}");

    // The naive reference: walk the input once, appending each key to its
    // `bucket_of` bucket; concatenation is the expected stable partition.
    let mut expect: Vec<Vec<K>> = vec![Vec::new(); splitters.len() + 1];
    for (i, &key) in input.iter().enumerate() {
        expect[bucket_of(key, i as u64, &splitters)].push(key);
    }
    let expected: Vec<K> = expect.iter().flatten().copied().collect();
    let counts = bucket_counts(input, &splitters);
    for (b, bucket) in expect.iter().enumerate() {
        assert_eq!(counts[b] as usize, bucket.len(), "{tag} bucket {b}");
    }

    let mut reference: Option<(Vec<K>, Vec<usize>)> = None;
    for threads in [1usize, 2, 4] {
        let mut data = input.to_vec();
        let mut aux = input.to_vec();
        let bounds = partition_by_splitters(&mut data, &mut aux, &splitters, threads);
        assert_eq!(
            data, expected,
            "{tag} threads={threads}: not the stable partition"
        );
        assert_eq!(*bounds.last().unwrap(), n, "{tag}");
        for (b, w) in bounds.windows(2).enumerate() {
            assert_eq!(counts[b] as usize, w[1] - w[0], "{tag} boundary {b}");
        }
        // Pool widths 1/2/4 must be byte-identical.
        match &reference {
            None => reference = Some((data, bounds)),
            Some((d, bo)) => {
                assert_eq!(&data, d, "{tag} threads={threads}");
                assert_eq!(&bounds, bo, "{tag} threads={threads}");
            }
        }
    }
}

#[test]
fn splitter_partition_is_a_stable_permutation_u32() {
    for dist in Distribution::paper_set() {
        let input: Vec<u32> = generate(dist, 60_000, 41);
        check_splitter_partition(&input, 8, &format!("u32 {dist:?}"));
    }
    for seed in 0..CASES / 4 {
        let mut rng = Rng::seed_from_u64(5000 + seed);
        let input = random_vec_u32(&mut rng, 5000);
        let buckets = 1 + rng.usize_in(1..9);
        check_splitter_partition(&input, buckets, &format!("u32 seed {seed}"));
    }
}

#[test]
fn splitter_partition_is_a_stable_permutation_u64() {
    for dist in Distribution::paper_set() {
        let input: Vec<u64> = generate(dist, 60_000, 43);
        check_splitter_partition(&input, 4, &format!("u64 {dist:?}"));
    }
    for seed in 0..CASES / 4 {
        let mut rng = Rng::seed_from_u64(6000 + seed);
        let input = random_vec_u64(&mut rng, 5000);
        let buckets = 1 + rng.usize_in(1..9);
        check_splitter_partition(&input, buckets, &format!("u64 seed {seed}"));
    }
}

#[test]
fn splitter_partition_edge_cases() {
    // Empty input, single bucket, and tile-straddling lengths.
    check_splitter_partition::<u32>(&[], 4, "empty");
    check_splitter_partition(&[9u32], 4, "singleton");
    let dup = vec![7u64; 40_000];
    check_splitter_partition(&dup, 8, "all-duplicate");
    let straddle: Vec<u32> = generate(Distribution::Uniform, (1 << 15) + 17, 47);
    check_splitter_partition(&straddle, 3, "tile straddle");
}

// ---- k-way merge vs. the standard library (PR 7). ----

#[test]
fn kway_merge_matches_std_at_every_pool_width() {
    for seed in 0..CASES {
        let mut rng = Rng::seed_from_u64(7000 + seed);
        let k = rng.usize_in(1..9);
        let mut runs: Vec<Vec<u64>> = (0..k).map(|_| random_vec_u64(&mut rng, 3000)).collect();
        let mut all: Vec<u64> = Vec::new();
        for r in &mut runs {
            r.sort_unstable();
            all.extend_from_slice(r);
        }
        all.sort_unstable();
        let views: Vec<&[u64]> = runs.iter().map(Vec::as_slice).collect();

        let mut sequential = vec![0u64; all.len()];
        multiway_merge(&views, &mut sequential);
        assert_eq!(sequential, all, "seed {seed}: loser tree vs std");

        // Pool widths 1/2/4, with the sequential cutoff forced off so the
        // parallel split path actually runs: all byte-identical.
        for threads in [1usize, 2, 4] {
            let mut out = vec![0u64; all.len()];
            parallel_multiway_merge_with(
                &views,
                &mut out,
                ParallelMergeConfig {
                    threads,
                    sequential_threshold: 0,
                },
            );
            assert_eq!(out, all, "seed {seed} threads={threads}: parallel vs std");
        }
    }
}

#[test]
fn kway_merge_duplicate_and_skewed_runs() {
    // Runs of wildly different lengths plus heavy duplication: the
    // multisequence split must still carve identical output at every
    // width.
    let runs: Vec<Vec<u32>> = vec![
        generate(
            Distribution::ZipfDuplicates {
                skew_permille: 1400,
            },
            50_000,
            3,
        ),
        vec![5u32; 10_000],
        generate(Distribution::Uniform, 100, 4),
        Vec::new(),
        generate(Distribution::ReverseSorted, 20_000, 5),
    ]
    .into_iter()
    .map(|mut r| {
        r.sort_unstable();
        r
    })
    .collect();
    let views: Vec<&[u32]> = runs.iter().map(Vec::as_slice).collect();
    let mut all: Vec<u32> = runs.iter().flatten().copied().collect();
    all.sort_unstable();
    for threads in [1usize, 2, 4] {
        let mut out = vec![0u32; all.len()];
        parallel_multiway_merge_with(
            &views,
            &mut out,
            ParallelMergeConfig {
                threads,
                sequential_threshold: 0,
            },
        );
        assert_eq!(out, all, "threads={threads}");
    }
}
