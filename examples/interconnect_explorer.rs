//! Interconnect explorer: reproduce the paper's transfer analysis
//! (Sections 4.2 / 4.3) interactively for all three platforms, and show
//! how topology drives every number.
//!
//! ```text
//! cargo run --release --example interconnect_explorer
//! ```

use multi_gpu_sort::prelude::*;
use multi_gpu_sort::sim::flows::measure_concurrent;
use multi_gpu_sort::topology::Route;

const GIB4: u64 = 4 << 30;

fn route(p: &Platform, src: Endpoint, dst: Endpoint) -> Route {
    multi_gpu_sort::topology::route::route(&p.topology, src, dst).expect("connected")
}

fn show(p: &Platform, label: &str, routes: &[Route]) {
    let report = measure_concurrent(p, routes, GIB4);
    println!(
        "  {label:<38} {:>8.1} GB/s  ({} streams x 4 GiB, makespan {})",
        report.throughput_gbps(),
        routes.len(),
        report.makespan,
    );
}

fn main() {
    for id in PlatformId::paper_set() {
        let p = Platform::paper(id);
        println!("\n=== {} ===", id.name());
        println!("{}", p.describe());

        println!("CPU-GPU transfers (Figures 2-4):");
        let g = |i: usize| Endpoint::gpu(i);
        show(
            &p,
            "serial HtoD, local GPU 0",
            &[route(&p, Endpoint::HOST0, g(0))],
        );
        let remote = p.gpu_count() / 2; // first GPU on the remote socket
        show(
            &p,
            &format!("serial HtoD, remote GPU {remote}"),
            &[route(&p, Endpoint::HOST0, g(remote))],
        );
        show(
            &p,
            "serial bidirectional, GPU 0",
            &[
                route(&p, Endpoint::HOST0, g(0)),
                route(&p, g(0), Endpoint::HOST0),
            ],
        );
        let all: Vec<Route> = (0..p.gpu_count())
            .map(|i| route(&p, Endpoint::HOST0, g(i)))
            .collect();
        show(&p, "parallel HtoD, all GPUs", &all);

        println!("P2P transfers (Figures 5-7):");
        show(&p, "serial P2P 0 -> 1", &[route(&p, g(0), g(1))]);
        let far = p.gpu_count() - 1;
        show(
            &p,
            &format!("serial P2P 0 -> {far}"),
            &[route(&p, g(0), g(far))],
        );
        // The merge-phase pattern: GPU i <-> GPU (g-1-i), bidirectional.
        let mut pairs = Vec::new();
        for i in 0..p.gpu_count() / 2 {
            pairs.push(route(&p, g(i), g(far - i)));
            pairs.push(route(&p, g(far - i), g(i)));
        }
        show(&p, "parallel P2P merge pattern (all GPUs)", &pairs);
    }

    // How the transfer profiles above translate into end-to-end sorts:
    // the scatter-heavy (sample sort) and merge-bound (multiway mergesort)
    // algorithm profiles on the DGX, plus one cluster point where the same
    // sort spans two nodes over an InfiniBand HDR fabric.
    let n: u64 = 1 << 20;
    let dgx = Platform::dgx_a100();
    println!("\n=== algorithm sweep (1M uniform keys, 8 GPUs/node) ===");
    let mut keys: Vec<u32> = generate(Distribution::Uniform, n as usize, 7);
    let r = sample_sort(&dgx, &SampleSortConfig::new(8), &mut keys, n);
    println!(
        "  {:<38} {:>8.1} Mkeys/s",
        "sample sort, DGX A100",
        r.mkeys_per_sec()
    );
    let mut keys: Vec<u32> = generate(Distribution::Uniform, n as usize, 7);
    let r = mwms_sort(&dgx, &MwmsConfig::new(8), &mut keys, n);
    println!(
        "  {:<38} {:>8.1} Mkeys/s",
        "multiway mergesort, DGX A100",
        r.mkeys_per_sec()
    );
    let cluster = dgx_a100_cluster(2, Fabric::IbHdr);
    let mut keys: Vec<u32> = generate(Distribution::Uniform, n as usize, 7);
    let r = cross_node_sort(
        &cluster,
        &CrossNodeConfig::new(InnerAlgo::SampleSort),
        &mut keys,
        n,
    );
    println!(
        "  {:<38} {:>8.1} Mkeys/s  (fabric busy {:.0}% of run)",
        "cross-node sample sort, 2x DGX A100",
        r.mkeys_per_sec(),
        100.0 * r.inter_node.as_secs_f64() / r.total.as_secs_f64(),
    );

    println!(
        "\nTakeaway (paper Section 4): NVSwitch keeps every P2P stream at \
         full rate; on the other systems the global merge stage must cross \
         the host side and collapses to the CPU interconnect's bandwidth — \
         and across nodes, to the NIC fabric's."
    );
}
