//! A multi-tenant sort service on a simulated DGX A100.
//!
//! Three tenants share the 8-GPU fleet: an interactive dashboard tenant
//! issuing small sorts, a batch ETL tenant issuing large ones, and an
//! index-build tenant in between. The example runs the same arrival
//! stream under FIFO and weighted-fair queueing, and under round-robin
//! and topology-aware placement, then prints the service reports.
//!
//! Run with: `cargo run --release --example sort_service`

use multi_gpu_sort::prelude::*;

fn arrivals() -> Vec<(SimTime, SortJob)> {
    let mut jobs = Vec::new();
    // Batch ETL: 6 large P2P sorts, all queued at t=0.
    for i in 0..6 {
        jobs.push((
            SimTime::ZERO,
            SortJob::new(TenantId(0), 1 << 22).with_gpus(4).with_seed(i),
        ));
    }
    // Index builds: RP sorts arriving every 2 ms.
    for i in 0..6 {
        jobs.push((
            SimTime::ZERO + SimDuration::from_millis(2 * i),
            SortJob::new(TenantId(1), 1 << 20)
                .with_algo(JobAlgo::Rp)
                .with_gpus(2)
                .with_seed(100 + i),
        ));
    }
    // Dashboard: small interactive HET sorts arriving every millisecond.
    for i in 0..8 {
        jobs.push((
            SimTime::ZERO + SimDuration::from_millis(i),
            SortJob::new(TenantId(2), 1 << 16)
                .with_algo(JobAlgo::Het)
                .with_gpus(2)
                .with_dist(Distribution::NearlySorted)
                .interactive()
                .with_seed(200 + i),
        ));
    }
    jobs
}

fn show(title: &str, report: &ServiceReport) {
    println!("\n== {title} ==");
    println!("{}", report.summary());
    for s in report.tenant_stats() {
        println!(
            "  tenant{} (w={:.0}): {} jobs, {:.1}M keys, mean latency {}",
            s.tenant.0,
            s.weight,
            s.jobs,
            s.keys as f64 / 1e6,
            s.mean_latency,
        );
    }
}

fn main() {
    let dgx = Platform::dgx_a100();
    let base = || {
        ServeConfig::new()
            .sampled(64)
            .with_weight(TenantId(0), 1.0)
            .with_weight(TenantId(1), 1.0)
            .with_weight(TenantId(2), 2.0)
    };

    for (title, config) in [
        (
            "FIFO + round-robin placement",
            base()
                .with_policy(QueuePolicy::Fifo)
                .with_placement(PlacementPolicy::RoundRobin),
        ),
        (
            "FIFO + topology-aware placement",
            base()
                .with_policy(QueuePolicy::Fifo)
                .with_placement(PlacementPolicy::TopologyAware),
        ),
        (
            "weighted fair share + topology-aware placement",
            base()
                .with_policy(QueuePolicy::WeightedFair)
                .with_placement(PlacementPolicy::TopologyAware),
        ),
    ] {
        let report = SortService::<u64>::new(&dgx, config).serve(TraceWorkload::new(arrivals()));
        assert!(report.all_validated());
        show(title, &report);
    }

    // The same service keeps running when a link fails mid-stream: jobs
    // reroute, placement avoids the wounded part of the fabric, and the
    // run stays bit-reproducible. A Recorder captures the whole run —
    // GPU op spans, link utilization, flow lifecycles, fault instants,
    // and per-tenant job spans — in one unified trace.
    let faults = FaultPlan::randomized(&dgx, 1, SimDuration::from_millis(30));
    let recorder = Recorder::new();
    let report = SortService::<u64>::new(
        &dgx,
        base().with_policy(QueuePolicy::WeightedFair).with_run(
            RunConfig::new()
                .with_faults(faults)
                .with_recorder(recorder.clone()),
        ),
    )
    .serve(TraceWorkload::new(arrivals()));
    assert!(report.all_validated());
    show("weighted fair share under injected link faults", &report);

    let data = recorder.snapshot().expect("recorder is enabled");
    let path = "target/sort_service_trace.json";
    if std::fs::write(path, chrome_trace(&data)).is_ok() {
        println!("\nwrote unified trace to {path} (open in https://ui.perfetto.dev)");
    }
    let metrics = summarize(&data);
    println!(
        "trace: {} events on {} tracks | {} jobs, queue-wait {} ns, service {} ns",
        data.events.len(),
        data.tracks.len(),
        metrics.jobs,
        metrics.queue_wait_ns,
        metrics.service_ns,
    );
    for l in metrics.links.iter().take(4) {
        println!(
            "  {}: mean {:.1}% / peak {:.1}%",
            l.link,
            l.mean * 100.0,
            l.peak * 100.0
        );
    }

    // Open-loop serving: instead of a fixed job list, a seeded bursty
    // (MMPP) generator keeps offering load while an elastic fleet leases
    // GPUs in against the bursts and releases them when calm returns, and
    // SLO-aware admission sheds what the backlog could never finish in
    // time. Same seed → bit-identical report, replay after replay.
    let mix = JobMix::of(
        SortJob::new(TenantId(2), 1 << 16)
            .with_algo(JobAlgo::Het)
            .interactive(),
    )
    .and(SortJob::new(TenantId(0), 1 << 20).with_gpus(4), 0.25);
    let open = OpenLoop::new(
        ArrivalProcess::Bursty {
            base_rate: 150.0,
            burst_rate: 3_000.0,
            mean_calm: SimDuration::from_millis(20),
            mean_burst: SimDuration::from_millis(4),
        },
        mix,
        96,
        0xC0FFEE,
    );
    let report = SortService::<u64>::new(
        &dgx,
        base()
            .with_policy(QueuePolicy::Edf)
            .with_admission(AdmissionPolicy::SloAware)
            .with_slo(TenantId(2), SimDuration::from_millis(20))
            .elastic(2, SimDuration::from_millis(5)),
    )
    .serve(open);
    show(
        "open-loop bursty load, elastic fleet, SLO-aware EDF",
        &report,
    );
    println!(
        "  offered {} jobs | goodput {:.0} jobs/s | SLO attainment {:.1}% | \
         shed {} | mean fleet {:.1} GPUs",
        report.offered_jobs(),
        report.goodput_per_sec(),
        report.slo_attainment() * 100.0,
        report.shed_jobs(),
        report.mean_fleet_size(),
    );
}
