//! Out-of-core sorting: HET sort on data exceeding the combined GPU
//! memory (paper Section 6.2), comparing the 2n and 3n pipelines with and
//! without eager merging at paper scale via sampled fidelity.
//!
//! ```text
//! cargo run --release --example out_of_core
//! ```

use multi_gpu_sort::prelude::*;

fn main() {
    let platform = Platform::dgx_a100();
    // 60B u32 keys = 240 GB, far beyond the 8x33 GB budget the paper uses.
    let scale: u64 = 1 << 23;
    let n: u64 = 60_000_000_000 / (scale * 8) * (scale * 8);
    let budget: u64 = 33 << 30;
    let physical = (n / scale) as usize;
    let input: Vec<u32> = generate(Distribution::Uniform, physical, 7);

    println!(
        "sorting {:.0} B keys ({} GB) on the simulated DGX A100 (8 GPUs, {} GB usable per GPU)\n",
        n as f64 / 1e9,
        (n * 4) >> 30,
        budget >> 30,
    );
    println!(
        "sampled fidelity: 1 physical key per {scale} logical keys \
         ({physical} keys really sorted; timing uses logical bytes)\n"
    );

    for approach in [LargeDataApproach::TwoN, LargeDataApproach::ThreeN] {
        for eager in [false, true] {
            let mut cfg = HetConfig::new(8)
                .with_approach(approach)
                .with_mem_budget(budget)
                .sampled(scale);
            if eager {
                cfg = cfg.with_eager_merge();
            }
            let mut data = input.clone();
            let report = het_sort(&platform, &cfg, &mut data, n);
            assert!(is_sorted(&data));
            println!(
                "{:<10} total {:>8}   (GPU window: HtoD {} | sort {} | DtoH {};  final CPU merge {})",
                format!("{}{}", approach.label(), if eager { "+EM" } else { "" }),
                format!("{}", report.total),
                report.phases.htod,
                report.phases.sort,
                report.phases.dtoh,
                report.phases.merge,
            );
        }
    }

    // The CPU-only comparison of Figure 15b.
    let mut data = input.clone();
    let cpu = cpu_only_sort(&platform, Fidelity::Sampled { scale }, &mut data, n);
    println!("\nPARADIS (CPU-only): {}", cpu.total);
    println!(
        "\nTakeaways (paper Section 6.2): 2n and 3n tie — overlapping copy \
         and compute no longer pays because transfers, not the sort kernel, \
         dominate; eager merging loses because its merges fight the \
         transfers for host memory bandwidth and imbalance the final merge."
    );
}
