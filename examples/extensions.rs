//! The Section 7 extensions in action: RP sort's single all-to-all and
//! multi-hop P2P routing, plus a Graphviz export of the topologies.
//!
//! ```text
//! cargo run --release --example extensions
//! ```

use multi_gpu_sort::prelude::*;

fn main() {
    let scale: u64 = 1 << 21;
    let n: u64 = 8_000_000_000 / (scale * 64) * (scale * 64);
    let input: Vec<u32> = generate(Distribution::Uniform, (n / scale) as usize, 5);

    // ---- RP sort vs P2P sort on the DGX A100. ----
    println!("== RP sort (one all-to-all) vs P2P sort (g-1 merge stages) ==\n");
    let dgx = Platform::dgx_a100();
    for g in [4usize, 8] {
        let mut a = input.clone();
        let p2p = p2p_sort(
            &dgx,
            &P2pConfig {
                fidelity: Fidelity::Sampled { scale },
                ..P2pConfig::new(g)
            },
            &mut a,
            n,
        );
        let mut b = input.clone();
        let rp = rp_sort(&dgx, &RpConfig::new(g).sampled(scale), &mut b, n);
        assert_eq!(a, b, "same sorted output");
        println!(
            "DGX A100, {g} GPUs, {:.0}B keys:  P2P {} (merge {})  |  RP {} (merge {})",
            n as f64 / 1e9,
            p2p.total,
            p2p.phases.merge,
            rp.total,
            rp.phases.merge,
        );
    }

    // ---- Multi-hop routing on the DELTA D22x. ----
    println!("\n== Multi-hop P2P routing on the DELTA D22x ==\n");
    let delta = Platform::delta_d22x();
    for (a, b) in [(0usize, 3usize), (1, 2)] {
        let (_, direct) = best_p2p_route(&delta, a, b, false);
        let (relay_route, relay) = best_p2p_route(&delta, a, b, true);
        println!(
            "GPU {a} -> GPU {b}: direct {:.0} GB/s (through the host), \
             best relay {:.0} GB/s over {} hops",
            direct / 1e9,
            relay / 1e9,
            relay_route.hop_count(),
        );
    }
    let n_small = 2_000_000_000u64 / (scale * 16) * (scale * 16);
    let small: Vec<u32> = generate(Distribution::Uniform, (n_small / scale) as usize, 6);
    let mut x = small.clone();
    let base = p2p_sort(
        &delta,
        &P2pConfig {
            fidelity: Fidelity::Sampled { scale },
            ..P2pConfig::new(4)
        },
        &mut x,
        n_small,
    );
    let mut y = small.clone();
    let hopped = p2p_sort(
        &delta,
        &P2pConfig {
            fidelity: Fidelity::Sampled { scale },
            ..P2pConfig::new(4)
        }
        .with_multi_hop(),
        &mut y,
        n_small,
    );
    println!(
        "\nP2P sort, 4 GPUs, 2B keys: host routing {} -> multi-hop {} \
         (merge phase {} -> {})",
        base.total, hopped.total, base.phases.merge, hopped.phases.merge,
    );

    // ---- Topology export. ----
    let path = std::env::temp_dir().join("dgx_a100_topology.dot");
    std::fs::write(&path, dgx.topology.to_dot()).expect("write dot file");
    println!(
        "\nwrote {} (render with `dot -Tsvg {} -o topo.svg`)",
        path.display(),
        path.display(),
    );
}
