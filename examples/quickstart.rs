//! Quickstart: sort 16M keys on a simulated DGX A100 with both multi-GPU
//! algorithms and compare them against the baselines.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use multi_gpu_sort::prelude::*;

fn main() {
    let platform = Platform::dgx_a100();
    let n: u64 = 1 << 24; // 16M keys (64 MiB) — full fidelity, real data
    let input: Vec<u32> = generate(Distribution::Uniform, n as usize, 42);

    println!("platform:\n{}", platform.describe());
    println!("sorting {} M uniform u32 keys\n", n >> 20);

    // CPU-only baseline (PARADIS).
    let mut data = input.clone();
    let cpu = cpu_only_sort(&platform, Fidelity::Full, &mut data, n);
    println!("{}", cpu.summary());

    // Single-GPU baseline (Thrust-style LSB radix sort).
    let mut data = input.clone();
    let one = single_gpu_sort(
        &platform,
        Fidelity::Full,
        GpuSortAlgo::ThrustLike,
        &mut data,
        n,
    );
    println!("{}", one.summary());

    // P2P sort on 2, 4, and 8 GPUs.
    for g in [2usize, 4, 8] {
        let mut data = input.clone();
        let report = p2p_sort(&platform, &P2pConfig::new(g), &mut data, n);
        assert!(is_sorted(&data));
        println!("{}", report.summary());
    }

    // HET sort on 2, 4, and 8 GPUs.
    for g in [2usize, 4, 8] {
        let mut data = input.clone();
        let report = het_sort(&platform, &HetConfig::new(g), &mut data, n);
        assert!(is_sorted(&data));
        println!("{}", report.summary());
    }

    println!(
        "\nAll outputs validated sorted; durations are simulated times on \
         the modeled DGX A100 (see DESIGN.md for the calibration)."
    );
}
