//! A database-flavored scenario: building a sorted index over 64-bit
//! composite keys (the sorting use case the paper's introduction motivates
//! — index creation, duplicate detection, merge-joins).
//!
//! Keys are `(order_date, order_id)` packed into a `u64` so that sorting
//! groups rows by date first — a classic clustered-index build. The
//! workload is duplicate-heavy (many orders per date), which exercises the
//! leftmost-pivot optimization of P2P sort's merge phase.
//!
//! ```text
//! cargo run --release --example db_index_build
//! ```

use multi_gpu_sort::data::Rng;
use multi_gpu_sort::prelude::*;

/// Pack `(date, id)` into one sortable key: date in the high 20 bits.
fn index_key(date: u32, id: u64) -> u64 {
    (u64::from(date) << 44) | (id & ((1 << 44) - 1))
}

fn date_of(key: u64) -> u32 {
    (key >> 44) as u32
}

fn main() {
    let platform = Platform::ibm_ac922();
    let rows: u64 = 1 << 22; // 4M index entries at full fidelity
    let days: u32 = 365;

    // Order stream: mostly-recent dates (a skewed OLTP-ish arrival order).
    let mut rng = Rng::seed_from_u64(7);
    let mut keys: Vec<u64> = (0..rows)
        .map(|id| {
            let day: u32 = days - (rng.f64().powi(3) * f64::from(days)) as u32;
            index_key(day.min(days - 1), id)
        })
        .collect();

    println!(
        "building a clustered index over {} M (date, order_id) entries on the {}\n",
        rows >> 20,
        platform.id.name()
    );

    // Sort on the GPUs with P2P sort (2 GPUs, NVLink pair).
    let report = p2p_sort(&platform, &P2pConfig::new(2), &mut keys, rows);
    assert!(report.validated);
    println!("{}", report.summary());
    println!(
        "P2P keys swapped during merge: {:.1} M ({}% of the input)",
        report.p2p_swapped_keys as f64 / 1e6,
        report.p2p_swapped_keys * 100 / rows,
    );

    // The index is usable immediately: range scan of one day = one binary
    // search + contiguous slice.
    let day = 180u32;
    let lo = keys.partition_point(|&k| date_of(k) < day);
    let hi = keys.partition_point(|&k| date_of(k) <= day);
    println!(
        "\nrange scan day {day}: rows [{lo}..{hi}) -> {} orders, all verified in-range",
        hi - lo
    );
    assert!(keys[lo..hi].iter().all(|&k| date_of(k) == day));
    assert!(is_sorted(&keys));

    // Compare with building the index on the CPU only.
    let mut cpu_keys: Vec<u64> = (0..rows)
        .map(|id| index_key(id as u32 % days, id))
        .collect();
    let cpu = cpu_only_sort(&platform, Fidelity::Full, &mut cpu_keys, rows);
    println!(
        "\nCPU-only index build (PARADIS): {} -> GPU speedup {:.1}x",
        cpu.total,
        cpu.total.as_secs_f64() / report.total.as_secs_f64(),
    );

    // Variant: explicit key-value pairs (thrust::sort_by_key style) —
    // 4-byte date key, 4-byte row id payload. Same sort machinery; the
    // payload rides along and the cost models account for the 8-byte
    // elements.
    use multi_gpu_sort::data::Pair;
    let mut rng2 = Rng::seed_from_u64(8);
    let mut pairs: Vec<Pair<u32>> = (0..rows as u32)
        .map(|row_id| Pair::new(rng2.u32_in(0..days), row_id))
        .collect();
    let pair_report = p2p_sort(&platform, &P2pConfig::new(2), &mut pairs, rows);
    assert!(pair_report.validated);
    // Row ids are intact and grouped under their dates.
    let lo = pairs.partition_point(|p| p.key < day);
    let hi = pairs.partition_point(|p| p.key <= day);
    println!(
        "\nkey-value variant (Pair<u32>): {} ({} MiB of 8-byte elements); \
         day {day} holds rows [{lo}..{hi})",
        pair_report.total,
        pair_report.bytes >> 20,
    );
}
