//! Build a *custom* platform with the topology builder and study how the
//! interconnect decides which sorting algorithm wins — the question the
//! paper answers for three real machines, answered here for a hypothetical
//! one.
//!
//! The machine: one CPU socket, four GPUs on PCIe 5.0 (64 GB/s), and an
//! optional all-to-all NVLink-style mesh we can switch on and off.
//!
//! ```text
//! cargo run --release --example custom_platform
//! ```

use multi_gpu_sort::prelude::*;
use multi_gpu_sort::topology::{LinkKind, MemSpec};

/// A single-socket machine with 4 GPUs; `p2p_mesh` adds direct GPU-GPU
/// links at `mesh_gbps`.
fn build(p2p_mesh: bool, mesh_gbps: f64) -> Platform {
    let mut b = TopologyBuilder::new();
    let cpu = b.cpu(
        0,
        MemSpec {
            capacity_bytes: 512 << 30,
            read_cap: gbps(120.0),
            write_cap: gbps(110.0),
            combined_cap: Some(gbps(150.0)),
        },
    );
    let gpus: Vec<_> = (0..4).map(|i| b.gpu(i, GpuModel::A100)).collect();
    for &g in &gpus {
        // PCIe 5.0-ish: 64 GB/s theoretical, ~50 effective, 80 duplex.
        b.link_full(
            cpu,
            g,
            LinkKind::Custom,
            gbps(50.0),
            gbps(50.0),
            Some(gbps(80.0)),
        );
    }
    if p2p_mesh {
        for i in 0..4 {
            for j in i + 1..4 {
                b.link(
                    gpus[i],
                    gpus[j],
                    LinkKind::NvLink2 { bricks: 2 },
                    gbps(mesh_gbps),
                );
            }
        }
    }
    Platform::custom(
        b.build(),
        multi_gpu_sort::topology::platforms::CpuModel::Custom,
    )
}

fn main() {
    let n: u64 = 1 << 24;
    let input: Vec<u32> = generate(Distribution::Uniform, n as usize, 99);

    println!("Hypothetical 4-GPU machine, PCIe 5.0 host links (50 GB/s effective)\n");
    println!(
        "{:<28} {:>12} {:>12} {:>9}",
        "configuration", "P2P sort", "HET sort", "winner"
    );

    for (label, mesh) in [
        ("no P2P mesh", None),
        ("P2P mesh @ 25 GB/s", Some(25.0)),
        ("P2P mesh @ 50 GB/s", Some(50.0)),
        ("P2P mesh @ 150 GB/s", Some(150.0)),
    ] {
        let platform = build(mesh.is_some(), mesh.unwrap_or(0.0));
        let mut a = input.clone();
        let p2p = p2p_sort(&platform, &P2pConfig::new(4), &mut a, n);
        let mut b_ = input.clone();
        let het = het_sort(&platform, &HetConfig::new(4), &mut b_, n);
        assert!(is_sorted(&a) && is_sorted(&b_));
        let winner = if p2p.total < het.total { "P2P" } else { "HET" };
        println!(
            "{:<28} {:>12} {:>12} {:>9}",
            label,
            format!("{}", p2p.total),
            format!("{}", het.total),
            winner,
        );
    }

    println!(
        "\nTwo effects, both from the paper's Section 5.4/7 analysis: \
         (1) P2P sort only pulls clearly ahead once the mesh bandwidth \
         approaches host memory bandwidth; (2) a *slow* mesh is worse than \
         no mesh at all — the copy engines route over the direct P2P link \
         once it exists, even when bouncing through the host would be \
         faster. Topology, not GPU count, decides the winner."
    );
}
