//! **multi-gpu-sort** — a from-scratch Rust reproduction of
//! *Evaluating Multi-GPU Sorting with Modern Interconnects* (Maltenberger,
//! Ilic, Tolovski, Rabl — SIGMOD 2022).
//!
//! The crate re-exports the whole workspace behind one facade:
//!
//! * [`data`] — sort keys (u32/i32/f32/u64/i64/f64 with order-preserving
//!   radix images), the paper's data distributions, generators, validation;
//! * [`topology`] — interconnect topology graphs, routing, max-min fair
//!   bandwidth allocation, and the paper's three calibrated platforms
//!   (IBM AC922, DELTA D22x, NVIDIA DGX A100);
//! * [`sim`] — the discrete-event fluid-flow simulator and the calibrated
//!   kernel/CPU cost models;
//! * [`gpu`] — the virtual GPU runtime (devices, buffers, streams, copy
//!   engines, device sort/merge primitives);
//! * [`cpu`] — real CPU algorithms: PARADIS parallel in-place radix sort,
//!   LSB/MSB radix sorts, loser-tree multiway merge, parallel multiway
//!   merge;
//! * [`core`] — the paper's contribution: **P2P sort** and **HET sort**
//!   (with the 2n/3n large-data pipelines and eager merging), GPU-set
//!   selection, baselines, and per-run reports;
//! * [`cluster`] — multi-node platforms: 2/4/8-node clusters of the paper
//!   machines joined by InfiniBand HDR/NDR or Slingshot NIC fabrics, for
//!   the cross-node sort ([`core::cross_node`]);
//! * [`serve`] — the multi-tenant sort service: open-loop workload
//!   sources (trace replay, Poisson/diurnal/bursty generators), queue
//!   policies with SLO-aware admission, an elastic GPU fleet,
//!   topology-aware gang placement, and concurrent jobs contending on one
//!   shared simulated clock;
//! * [`trace`] — cross-layer observability: the [`trace::Recorder`] every
//!   layer reports into (GPU op spans, link-utilization counters, flow
//!   lifecycles, fault instants, per-tenant job spans), the unified
//!   Chrome/Perfetto exporter, and the metrics summarizer. Attach one via
//!   [`core::RunConfig::with_recorder`] or `ServeConfig::with_recorder`.
//!
//! # Quickstart
//!
//! ```
//! use multi_gpu_sort::prelude::*;
//!
//! // Sort 1M uniform keys on a simulated DGX A100 with P2P sort (4 GPUs).
//! let platform = Platform::dgx_a100();
//! let mut keys: Vec<u32> = generate(Distribution::Uniform, 1 << 20, 42);
//! let report = p2p_sort(&platform, &P2pConfig::new(4), &mut keys, 1 << 20);
//! assert!(report.validated);
//! assert!(is_sorted(&keys));
//! println!("{}", report.summary());
//! ```

pub use msort_cluster as cluster;
pub use msort_core as core;
pub use msort_cpu as cpu;
pub use msort_data as data;
pub use msort_gpu as gpu;
pub use msort_serve as serve;
pub use msort_sim as sim;
pub use msort_topology as topology;
pub use msort_trace as trace;

/// The most common imports in one place.
pub mod prelude {
    pub use msort_cluster::{cluster_of, delta_d22x_cluster, dgx_a100_cluster, ibm_ac922_cluster};
    pub use msort_core::{
        best_p2p_route, cpu_only_sort, cross_node_sort, drive, het_sort, mwms_sort, p2p_sort,
        rp_sort, run_sort, sample_sort, single_gpu_sort, Algorithm, CrossNodeConfig,
        CrossNodeDriver, HetConfig, InnerAlgo, LargeDataApproach, MwmsConfig, P2pConfig,
        PhaseBreakdown, RpConfig, RunConfig, SampleSortConfig, SortDriver, SortReport,
    };
    pub use msort_data::{generate, is_sorted, same_multiset, DataType, Distribution, SortKey};
    pub use msort_gpu::{Fidelity, GpuSystem, Phase};
    pub use msort_serve::{
        AdmissionPolicy, ArrivalProcess, FleetPolicy, JobAlgo, JobMix, OpenLoop, PlacementPolicy,
        QueuePolicy, ServeConfig, ServiceReport, SortJob, SortService, TenantId, TraceWorkload,
        Workload,
    };
    pub use msort_sim::{
        CostModel, FaultEvent, FaultPlan, FlowSim, GpuSortAlgo, SimDuration, SimTime,
    };
    pub use msort_topology::{
        best_gpu_set, gbps, ClusterLayout, Endpoint, Fabric, FabricHealth, GpuModel, LinkState,
        NodeKind, Platform, PlatformId, TopologyBuilder,
    };
    pub use msort_trace::{
        chrome_trace, json_valid, summarize, MetricsSummary, Recorder, TraceData,
    };
}
