//! Open-loop service-load benchmark: throughput and latency under load
//! for the redesigned `Workload`-driven serve API, on two paper platforms.
//!
//! Three result families land in `BENCH_serve_load.json`:
//!
//! * `serve_load_wall_*` — real wall-clock of the scheduler end to end
//!   (admission, elastic fleet, gang placement, simulated execution) over
//!   a 96-job Poisson stream, with logical keys as the throughput unit;
//! * `serve_load_p99_*` — the goodput-vs-offered-load curve: one entry
//!   per offered rate, where `elements` carries the simulated goodput in
//!   jobs/s and the sample duration *is* the simulated p99 latency (the
//!   closure spins for exactly that long, so `median_ns` ≈ simulated
//!   p99 ns and the JSON is self-describing);
//! * `serve_load_capacity_*` — jobs/s at a fixed p99 budget: the highest
//!   swept rate whose p99 stays under 150 µs, per platform.
//!
//! The elastic-fleet acceptance claim is asserted here, not just
//! printed: on a bursty MMPP workload an elastic fleet must beat a fixed
//! fleet of the same mean size on p99 latency while spending no more
//! GPU-time.
//!
//! `MSORT_BENCH_QUICK=1` trims the sweep for CI smoke runs.

use msort_bench::Harness;
use msort_serve::{
    AdmissionPolicy, ArrivalProcess, JobAlgo, JobMix, OpenLoop, QueuePolicy, ServeConfig,
    ServiceReport, SortJob, SortService, TenantId,
};
use msort_sim::SimDuration;
use msort_topology::Platform;
use std::hint::black_box;
use std::time::{Duration, Instant};

const SCALE: u64 = 64;
const JOBS: u64 = 96;
/// The fixed p99 budget the capacity entries answer for.
const P99_BUDGET: SimDuration = SimDuration(150_000);

fn quick() -> bool {
    std::env::var_os("MSORT_BENCH_QUICK").is_some()
}

/// Busy-wait for exactly `d`, so a simulated duration becomes a measured
/// wall-clock sample (sleep granularity would distort sub-millisecond
/// values; a spin is µs-accurate).
fn spin_for(d: SimDuration) {
    let target = Duration::from_nanos(d.0);
    let start = Instant::now();
    while start.elapsed() < target {
        std::hint::spin_loop();
    }
}

/// Three tenants, three algorithm families, gangs of 1 and 2 — small
/// enough gangs that a fixed fleet of the elastic run's mean size is
/// always feasible.
fn mix() -> JobMix {
    JobMix::of(
        SortJob::new(TenantId(0), 1 << 16)
            .with_algo(JobAlgo::Het)
            .interactive(),
    )
    .and(SortJob::new(TenantId(1), 1 << 18).with_gpus(2), 0.75)
    .and(SortJob::new(TenantId(2), 1 << 16).with_gpus(2), 0.5)
}

fn elastic_config() -> ServeConfig {
    ServeConfig::new()
        .sampled(SCALE)
        .with_policy(QueuePolicy::Edf)
        .with_admission(AdmissionPolicy::SloAware)
        .with_slo(TenantId(0), P99_BUDGET)
        .elastic(2, SimDuration::from_millis(1))
}

fn serve(platform: &Platform, config: ServeConfig, workload: OpenLoop) -> ServiceReport {
    let report = SortService::<u32>::new(platform, config).serve(workload);
    assert!(report.all_validated());
    report
}

/// Goodput-vs-offered-load sweep plus the capacity-at-fixed-p99 knee,
/// on both paper platforms.
fn bench_offered_load_sweep(h: &mut Harness) {
    let rates: &[f64] = if quick() {
        &[1_000.0, 16_000.0]
    } else {
        &[250.0, 1_000.0, 4_000.0, 16_000.0, 64_000.0]
    };
    for platform in [Platform::dgx_a100(), Platform::ibm_ac922()] {
        let plat = format!("{:?}", platform.id);
        let mut knee: Option<(f64, ServiceReport)> = None;
        for &rate in rates {
            let workload = || OpenLoop::poisson(rate, mix(), JOBS, 0x5EED);
            let report = serve(&platform, elastic_config(), workload());
            println!(
                "{plat} offered {rate:>7.0}/s: goodput {:>8.1}/s  p99 {:>9} ns  \
                 shed {}  attainment {:.2}  mean fleet {:.2}",
                report.goodput_per_sec(),
                report.p99_latency().0,
                report.shed_jobs(),
                report.slo_attainment(),
                report.mean_fleet_size(),
            );
            if report.p99_latency() <= P99_BUDGET {
                knee = Some((rate, report.clone()));
            }
            // One curve point: `elements` = simulated goodput (jobs/s),
            // sample duration = simulated p99 latency.
            let p99 = report.p99_latency();
            h.bench_throughput(
                &format!("serve_load_p99_{plat}/offered_{rate:.0}"),
                report.goodput_per_sec().round() as u64,
                || spin_for(p99),
            );
        }
        let (rate, at_knee) = knee.expect("the lowest swept rate must meet the p99 budget");
        println!(
            "{plat}: capacity at p99 <= {} ns: {:.1} jobs/s (offered {rate:.0}/s)",
            P99_BUDGET.0,
            at_knee.goodput_per_sec(),
        );
        let p99 = at_knee.p99_latency();
        h.bench_throughput(
            &format!(
                "serve_load_capacity_{plat}/p99_le_{}us",
                P99_BUDGET.0 / 1_000
            ),
            at_knee.goodput_per_sec().round() as u64,
            || spin_for(p99),
        );
        // Real scheduler wall-clock at a saturating offered rate.
        let wall_rate = if quick() { 16_000.0 } else { 64_000.0 };
        let keys = serve(
            &platform,
            elastic_config(),
            OpenLoop::poisson(wall_rate, mix(), JOBS, 0x5EED),
        )
        .total_keys();
        h.bench_throughput(
            &format!("serve_load_wall_{plat}/offered_{wall_rate:.0}"),
            keys,
            || {
                let report = serve(
                    &platform,
                    elastic_config(),
                    OpenLoop::poisson(wall_rate, mix(), JOBS, 0x5EED),
                );
                black_box(report.makespan)
            },
        );
    }
}

/// The acceptance claim: under a bursty MMPP arrival process, leasing
/// GPUs elastically beats a fixed fleet of the same mean size — lower
/// p99 at no extra GPU-time.
fn bench_elastic_vs_fixed(h: &mut Harness) {
    let dgx = Platform::dgx_a100();
    let bursty = || {
        OpenLoop::new(
            ArrivalProcess::Bursty {
                base_rate: 300.0,
                burst_rate: 15_000.0,
                mean_calm: SimDuration::from_millis(4),
                mean_burst: SimDuration::from_millis(2),
            },
            mix(),
            JOBS,
            0xB0B,
        )
    };
    let elastic = serve(&dgx, elastic_config(), bursty());
    // A fixed fleet with as many GPUs as the elastic run leased on
    // average (rounded; never below the largest gang in the mix).
    let gpus = (elastic.mean_fleet_size().round() as usize).max(2);
    let fixed_config = ServeConfig::new()
        .sampled(SCALE)
        .with_policy(QueuePolicy::Edf)
        .with_admission(AdmissionPolicy::SloAware)
        .with_slo(TenantId(0), P99_BUDGET)
        .with_fleet((0..gpus).collect());
    let fixed = serve(&dgx, fixed_config, bursty());

    assert!(
        elastic.mean_fleet_size() <= gpus as f64 + 0.05,
        "elastic must not spend more GPU-time than the fixed-{gpus} fleet \
         (mean {:.2})",
        elastic.mean_fleet_size(),
    );
    assert!(
        elastic.p99_latency() < fixed.p99_latency(),
        "elastic p99 {} ns must beat a fixed fleet of its mean size ({gpus} \
         GPUs) at {} ns",
        elastic.p99_latency().0,
        fixed.p99_latency().0,
    );
    println!(
        "bursty MMPP, DGX: elastic (mean {:.2} GPUs) p99 {} ns vs fixed-{gpus} p99 {} ns",
        elastic.mean_fleet_size(),
        elastic.p99_latency().0,
        fixed.p99_latency().0,
    );
    for (label, report) in [("Elastic", &elastic), ("Fixed", &fixed)] {
        let p99 = report.p99_latency();
        h.bench_throughput(
            &format!("serve_load_bursty_dgx/{label}"),
            report.goodput_per_sec().round() as u64,
            || spin_for(p99),
        );
    }
}

fn main() {
    let samples = if quick() { 2 } else { 5 };
    let mut h = Harness::new("serve_load").sample_size(samples);
    bench_offered_load_sweep(&mut h);
    bench_elastic_vs_fixed(&mut h);
    h.finish();
}
