//! Wall-clock effect-executor benchmarks: serial vs pooled execution.
//!
//! PR 5 moved every data effect (staged copies, device sorts/merges, host
//! multiway merges) off the driver thread onto a conflict-aware executor
//! backed by the shared worker pool. These benches measure exactly that
//! delta: the same full-fidelity simulated sort with the executor pinned
//! to one thread (`serial`, the seed behavior) and with the pool width
//! (`pool`). Simulated clocks and outputs are bit-identical between the
//! two — only the wall-clock differs, so the speedup scales with the
//! runner's core count (a 1-core container reports ~1.0x by design).
//!
//! `MSORT_BENCH_QUICK=1` shrinks the inputs for CI smoke runs.

use msort_bench::Harness;
use msort_core::{run_sort, HetConfig, P2pConfig, RunConfig};
use msort_data::{generate, Distribution};
use msort_topology::Platform;
use std::hint::black_box;

fn quick() -> bool {
    std::env::var_os("MSORT_BENCH_QUICK").is_some()
}

/// The headline case: full-fidelity 8-GPU P2P sort on the DGX A100.
/// Every key really moves and really gets sorted, so the wall clock is
/// dominated by data effects — the executor's target.
fn bench_p2p_dgx(h: &mut Harness) {
    let n: u64 = if quick() { 1 << 21 } else { 1 << 26 };
    let platform = Platform::dgx_a100();
    let input: Vec<u32> = generate(Distribution::Uniform, n as usize, 11);
    let label = if quick() { "p2p_dgx_2m" } else { "p2p_dgx_64m" };
    for (mode, threads) in [("serial", Some(1)), ("pool", None)] {
        let mut cfg = RunConfig::p2p(P2pConfig::new(8));
        if let Some(t) = threads {
            cfg = cfg.with_effect_threads(t);
        }
        h.bench_throughput(&format!("{label}/{mode}"), n, || {
            let mut d = input.clone();
            black_box(run_sort(&platform, &cfg, &mut d, n).total)
        });
    }
}

/// HET sort leans on the host multiway merge — the zero-copy borrowed-run
/// path — so this case isolates the merge-side win.
fn bench_het_multiway(h: &mut Harness) {
    let n: u64 = if quick() { 1 << 21 } else { 1 << 25 };
    let platform = Platform::dgx_a100();
    let input: Vec<u32> = generate(
        Distribution::ZipfDuplicates { skew_permille: 80 },
        n as usize,
        12,
    );
    let label = if quick() {
        "het_multiway_2m"
    } else {
        "het_multiway_32m"
    };
    for (mode, threads) in [("serial", Some(1)), ("pool", None)] {
        let mut cfg = RunConfig::het(HetConfig::new(4));
        if let Some(t) = threads {
            cfg = cfg.with_effect_threads(t);
        }
        h.bench_throughput(&format!("{label}/{mode}"), n, || {
            let mut d = input.clone();
            black_box(run_sort(&platform, &cfg, &mut d, n).total)
        });
    }
}

fn main() {
    let samples = if quick() { 3 } else { 5 };
    let mut h = Harness::new("exec").sample_size(samples);
    bench_p2p_dgx(&mut h);
    bench_het_multiway(&mut h);
    h.finish();
}
