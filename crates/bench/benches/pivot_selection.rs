//! Criterion benchmarks of pivot selection (Algorithm 1) and
//! multisequence selection — the O(log n) host-side steps whose
//! negligible cost the paper asserts (0.03% of the total sort).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use msort_core::pivot::{select_pivot_slices, swap_plan};
use msort_cpu::multiway::multisequence_select;
use msort_data::{generate, Distribution};
use std::hint::black_box;

fn bench_pivot(c: &mut Criterion) {
    let mut group = c.benchmark_group("pivot_selection");
    for &n in &[1usize << 12, 1 << 16, 1 << 20] {
        let mut a: Vec<u32> = generate(Distribution::Uniform, n, 1);
        let mut b: Vec<u32> = generate(Distribution::Uniform, n, 2);
        a.sort_unstable();
        b.sort_unstable();
        group.bench_with_input(BenchmarkId::from_parameter(n), &(a, b), |bench, (a, b)| {
            bench.iter(|| black_box(select_pivot_slices(a, b)));
        });
    }
    group.finish();
}

fn bench_swap_plan(c: &mut Criterion) {
    c.bench_function("swap_plan_g8", |b| {
        b.iter(|| black_box(swap_plan(4, 1 << 20, 3 * (1 << 20) + 12345)));
    });
}

fn bench_multiselect(c: &mut Criterion) {
    let mut group = c.benchmark_group("multisequence_select");
    for &k in &[2usize, 8, 32] {
        let runs: Vec<Vec<u32>> = (0..k)
            .map(|i| {
                let mut v: Vec<u32> = generate(Distribution::Uniform, 1 << 14, i as u64);
                v.sort_unstable();
                v
            })
            .collect();
        let views: Vec<&[u32]> = runs.iter().map(Vec::as_slice).collect();
        let total: usize = views.iter().map(|r| r.len()).sum();
        group.bench_with_input(BenchmarkId::from_parameter(k), &views, |b, views| {
            b.iter(|| black_box(multisequence_select(views, total / 2)));
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_pivot, bench_swap_plan, bench_multiselect
}
criterion_main!(benches);
