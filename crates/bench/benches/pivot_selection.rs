//! Benchmarks of pivot selection (Algorithm 1) and multisequence
//! selection — the O(log n) host-side steps whose negligible cost the
//! paper asserts (0.03% of the total sort).

use msort_bench::Harness;
use msort_core::pivot::{select_pivot_slices, swap_plan};
use msort_cpu::multiway::multisequence_select;
use msort_data::{generate, Distribution};
use std::hint::black_box;

fn bench_pivot(h: &mut Harness) {
    for &n in &[1usize << 12, 1 << 16, 1 << 20] {
        let mut a: Vec<u32> = generate(Distribution::Uniform, n, 1);
        let mut b: Vec<u32> = generate(Distribution::Uniform, n, 2);
        a.sort_unstable();
        b.sort_unstable();
        h.bench(&format!("pivot_selection/{n}"), || {
            black_box(select_pivot_slices(&a, &b))
        });
    }
}

fn bench_swap_plan(h: &mut Harness) {
    h.bench("swap_plan_g8", || {
        black_box(swap_plan(4, 1 << 20, 3 * (1 << 20) + 12345))
    });
}

fn bench_multiselect(h: &mut Harness) {
    for &k in &[2usize, 8, 32] {
        let runs: Vec<Vec<u32>> = (0..k)
            .map(|i| {
                let mut v: Vec<u32> = generate(Distribution::Uniform, 1 << 14, i as u64);
                v.sort_unstable();
                v
            })
            .collect();
        let views: Vec<&[u32]> = runs.iter().map(Vec::as_slice).collect();
        let total: usize = views.iter().map(|r| r.len()).sum();
        h.bench(&format!("multisequence_select/{k}"), || {
            black_box(multisequence_select(&views, total / 2))
        });
    }
}

fn main() {
    let mut h = Harness::new("pivot_selection").sample_size(20);
    bench_pivot(&mut h);
    bench_swap_plan(&mut h);
    bench_multiselect(&mut h);
    h.finish();
}
