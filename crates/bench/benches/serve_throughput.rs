//! Service-layer benchmark: wall-clock cost of the msort-serve scheduler
//! and the simulated-throughput win of topology-aware gang placement.
//!
//! The placement comparison pins the acceptance claim: on a 3-GPU DGX
//! fleet the jobs serialize, so gang quality shows up directly — topology
//! aware keeps taking the PCIe switch-disjoint pair {0,2} while round
//! robin's cursor keeps landing on switch-sharing pairs, and the
//! simulated makespan gap is asserted, not just printed.

use msort_bench::Harness;
use msort_core::RunConfig;
use msort_serve::{
    PlacementPolicy, QueuePolicy, ServeConfig, ServiceReport, SortJob, SortService, TenantId,
    TraceWorkload,
};
use msort_sim::SimTime;
use msort_topology::Platform;
use std::hint::black_box;

const SCALE: u64 = 64;

fn arrivals(jobs: u64, keys: u64) -> Vec<(SimTime, SortJob)> {
    (0..jobs)
        .map(|i| {
            (
                SimTime::ZERO,
                SortJob::new(TenantId((i % 4) as u32), keys).with_seed(11 + i),
            )
        })
        .collect()
}

fn run(platform: &Platform, placement: PlacementPolicy, jobs: u64, keys: u64) -> ServiceReport {
    let config = ServeConfig::new()
        .with_policy(QueuePolicy::WeightedFair)
        .with_placement(placement)
        .with_fleet(vec![0, 1, 2])
        .with_run(RunConfig::new().sampled(SCALE));
    SortService::<u32>::new(platform, config).serve(TraceWorkload::new(arrivals(jobs, keys)))
}

/// Scheduler wall-clock: a saturated 64-job stream end to end.
fn bench_scheduler_wall_clock(h: &mut Harness) {
    let dgx = Platform::dgx_a100();
    for placement in [PlacementPolicy::RoundRobin, PlacementPolicy::TopologyAware] {
        let id = format!("serve_64_jobs_dgx/{placement:?}");
        h.bench_throughput(&id, 64 * (1 << 16), || {
            let report = run(&dgx, placement, 64, 1 << 16);
            assert!(report.all_validated());
            black_box(report.makespan)
        });
    }
}

/// The simulated placement win itself (asserted, and recorded as a
/// benchmark so BENCH_serve.json pins both simulated makespans).
fn bench_simulated_placement_win(h: &mut Harness) {
    let dgx = Platform::dgx_a100();
    let rr = run(&dgx, PlacementPolicy::RoundRobin, 12, 1 << 18);
    let topo = run(&dgx, PlacementPolicy::TopologyAware, 12, 1 << 18);
    assert!(
        topo.makespan < rr.makespan,
        "topology-aware makespan {} must beat round-robin {}",
        topo.makespan,
        rr.makespan
    );
    println!(
        "simulated DGX fleet {{0,1,2}}: topology-aware {:.0} Mkeys/s vs round-robin {:.0} Mkeys/s ({:.1}% faster)",
        topo.throughput_mkeys(),
        rr.throughput_mkeys(),
        (rr.makespan.as_secs_f64() / topo.makespan.as_secs_f64() - 1.0) * 100.0,
    );
    // Record the simulated makespans as pseudo-samples so the JSON dump
    // carries the comparison (ids sort adjacent in the report).
    h.bench("serve_simulated_makespan_dgx/RoundRobin", || {
        std::thread::sleep(std::time::Duration::from_nanos(1));
        black_box(rr.makespan)
    });
    h.bench("serve_simulated_makespan_dgx/TopologyAware", || {
        std::thread::sleep(std::time::Duration::from_nanos(1));
        black_box(topo.makespan)
    });
}

fn main() {
    let mut h = Harness::new("serve").sample_size(5);
    bench_scheduler_wall_clock(&mut h);
    bench_simulated_placement_win(&mut h);
    h.finish();
}
