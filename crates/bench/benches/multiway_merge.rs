//! Benchmarks of the k-way merging primitives (the HET sort merge phase's
//! building blocks).

use msort_bench::Harness;
use msort_cpu::multiway::{multiway_merge, parallel_multiway_merge_with, ParallelMergeConfig};
use msort_cpu::LoserTree;
use msort_data::{generate, Distribution};
use std::hint::black_box;

fn sorted_runs(k: usize, n_per: usize, seed: u64) -> Vec<Vec<u32>> {
    (0..k)
        .map(|i| {
            let mut v: Vec<u32> = generate(Distribution::Uniform, n_per, seed + i as u64);
            v.sort_unstable();
            v
        })
        .collect()
}

fn bench_loser_tree(h: &mut Harness) {
    for &k in &[2usize, 4, 8, 16, 64] {
        let runs = sorted_runs(k, 1 << 14, 1);
        let views: Vec<&[u32]> = runs.iter().map(Vec::as_slice).collect();
        let total: u64 = views.iter().map(|r| r.len() as u64).sum();
        h.bench_throughput(&format!("loser_tree_pop/{k}"), total, || {
            let mut tree = LoserTree::new(&views);
            let mut sum = 0u64;
            while let Some(x) = tree.pop() {
                sum += u64::from(x);
            }
            black_box(sum)
        });
    }
}

fn bench_sequential_vs_parallel(h: &mut Harness) {
    let k = 8;
    let runs = sorted_runs(k, 1 << 16, 3);
    let views: Vec<&[u32]> = runs.iter().map(Vec::as_slice).collect();
    let total: usize = views.iter().map(|r| r.len()).sum();
    let mut out = vec![0u32; total];
    h.bench_throughput("multiway_merge/sequential_k8", total as u64, || {
        multiway_merge(&views, &mut out);
        black_box(out.last().copied())
    });
    for threads in [2usize, 4] {
        h.bench_throughput(
            &format!("multiway_merge/parallel_k8/{threads}"),
            total as u64,
            || {
                parallel_multiway_merge_with(
                    &views,
                    &mut out,
                    ParallelMergeConfig {
                        threads,
                        sequential_threshold: 0,
                    },
                );
                black_box(out.last().copied())
            },
        );
    }
}

fn main() {
    let mut h = Harness::new("multiway_merge").sample_size(10);
    bench_loser_tree(&mut h);
    bench_sequential_vs_parallel(&mut h);
    h.finish();
}
