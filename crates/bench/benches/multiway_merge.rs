//! Criterion benchmarks of the k-way merging primitives (the HET sort
//! merge phase's building blocks).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use msort_cpu::multiway::{multiway_merge, parallel_multiway_merge_with, ParallelMergeConfig};
use msort_cpu::LoserTree;
use msort_data::{generate, Distribution};
use std::hint::black_box;

fn sorted_runs(k: usize, n_per: usize, seed: u64) -> Vec<Vec<u32>> {
    (0..k)
        .map(|i| {
            let mut v: Vec<u32> = generate(Distribution::Uniform, n_per, seed + i as u64);
            v.sort_unstable();
            v
        })
        .collect()
}

fn bench_loser_tree(c: &mut Criterion) {
    let mut group = c.benchmark_group("loser_tree_pop");
    for &k in &[2usize, 4, 8, 16, 64] {
        let runs = sorted_runs(k, 1 << 14, 1);
        let views: Vec<&[u32]> = runs.iter().map(Vec::as_slice).collect();
        let total: u64 = views.iter().map(|r| r.len() as u64).sum();
        group.throughput(Throughput::Elements(total));
        group.bench_with_input(BenchmarkId::from_parameter(k), &views, |b, views| {
            b.iter(|| {
                let mut tree = LoserTree::new(views);
                let mut sum = 0u64;
                while let Some(x) = tree.pop() {
                    sum += u64::from(x);
                }
                black_box(sum)
            });
        });
    }
    group.finish();
}

fn bench_sequential_vs_parallel(c: &mut Criterion) {
    let mut group = c.benchmark_group("multiway_merge");
    let k = 8;
    let runs = sorted_runs(k, 1 << 16, 3);
    let views: Vec<&[u32]> = runs.iter().map(Vec::as_slice).collect();
    let total: usize = views.iter().map(|r| r.len()).sum();
    group.throughput(Throughput::Elements(total as u64));
    group.bench_function("sequential_k8", |b| {
        let mut out = vec![0u32; total];
        b.iter(|| {
            multiway_merge(&views, &mut out);
            black_box(&mut out);
        });
    });
    for threads in [2usize, 4] {
        group.bench_with_input(
            BenchmarkId::new("parallel_k8", threads),
            &threads,
            |b, &threads| {
                let mut out = vec![0u32; total];
                b.iter(|| {
                    parallel_multiway_merge_with(
                        &views,
                        &mut out,
                        ParallelMergeConfig {
                            threads,
                            sequential_threshold: 0,
                        },
                    );
                    black_box(&mut out);
                });
            },
        );
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_loser_tree, bench_sequential_vs_parallel
}
criterion_main!(benches);
