//! Five-algorithm rank bench: P2P, RP, HET, sample sort, and multiway
//! mergesort on each paper platform, at paper scale under sampled
//! fidelity.
//!
//! Two outputs per platform:
//!
//! * the **simulated five-way ranking** — each algorithm's simulated
//!   total on a 1 Gi-key run, sorted fastest-first and baked into the
//!   benchmark ids (`DgxA100/rank0_sample`, ...), so the committed
//!   `BENCH_algorithms.json` records which family wins on which
//!   interconnect generation;
//! * the **wall-clock cost** of driving each simulated run, the usual
//!   harness-regression signal (the simulated clocks come from the cost
//!   model and never change; the wall clock is what CI can regress).
//!
//! `MSORT_BENCH_QUICK=1` shrinks the run for CI smoke; full sizes seed
//! `BENCH_algorithms.json` via `MSORT_BENCH_JSON=<dir>`.

use msort_bench::Harness;
use msort_core::{
    run_sort, HetConfig, MwmsConfig, P2pConfig, RpConfig, RunConfig, SampleSortConfig,
};
use msort_data::{generate, Distribution};
use msort_topology::{Platform, PlatformId};
use std::hint::black_box;

fn quick() -> bool {
    std::env::var_os("MSORT_BENCH_QUICK").is_some()
}

const ALGOS: [&str; 5] = ["p2p", "rp", "het", "sample", "mwms"];

fn config_for(algo: &str, g: usize, scale: u64) -> RunConfig {
    let c = match algo {
        "p2p" => RunConfig::p2p(P2pConfig::new(g)),
        "rp" => RunConfig::rp(RpConfig::new(g)),
        "het" => RunConfig::het(HetConfig::new(g)),
        "sample" => RunConfig::sample(SampleSortConfig::new(g)),
        "mwms" => RunConfig::mwms(MwmsConfig::new(g)),
        _ => unreachable!("unknown algorithm '{algo}'"),
    };
    c.sampled(scale)
}

fn main() {
    // 1 Gi keys across a 4-GPU gang: multiway mergesort's transient 2n
    // concatenation (8 GB of u32 keys) fits the smallest paper GPU
    // (32 GB V100), so all five families run everywhere.
    let (n, scale): (u64, u64) = if quick() {
        (1 << 22, 1 << 10)
    } else {
        (1 << 30, 1 << 18)
    };
    let g = 4usize;
    let samples = if quick() { 3 } else { 5 };
    let mut h = Harness::new("algorithms").sample_size(samples);

    for id in PlatformId::paper_set() {
        let platform = Platform::paper(id);
        let input: Vec<u32> = generate(Distribution::Uniform, (n / scale) as usize, 71);

        // One run per algorithm fixes the simulated totals (they are
        // deterministic; repetition would measure nothing new).
        let mut ranked: Vec<(&str, u64)> = ALGOS
            .iter()
            .map(|&algo| {
                let mut d = input.clone();
                let report = run_sort(&platform, &config_for(algo, g, scale), &mut d, n);
                assert!(report.validated, "{algo} on {id:?} must validate");
                (algo, report.total.0)
            })
            .collect();
        ranked.sort_by_key(|&(_, total)| total);
        println!(
            "five-way ranking on {id:?} ({} Mi keys, {g} GPUs): {}",
            n >> 20,
            ranked
                .iter()
                .map(|(a, t)| format!("{a} ({:.1} ms)", *t as f64 / 1e6))
                .collect::<Vec<_>>()
                .join(" < "),
        );

        // Wall-clock benches, ids carrying the simulated rank.
        for (rank, &(algo, _)) in ranked.iter().enumerate() {
            h.bench_throughput(&format!("{id:?}/rank{rank}_{algo}"), n, || {
                let mut d = input.clone();
                let report = run_sort(&platform, &config_for(algo, g, scale), &mut d, n);
                black_box(report.total)
            });
        }
    }

    h.finish();
}
