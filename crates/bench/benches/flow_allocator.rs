//! Benchmarks of the fluid-flow engine and the max-min fair allocator —
//! the inner loop of every simulated transfer (Figures 2-7 run thousands
//! of these allocations).

use msort_bench::Harness;
use msort_gpu::{Fidelity, GpuSystem, Phase};
use msort_sim::flows::measure_concurrent;
use msort_sim::reference::ReferenceFlowSim;
use msort_sim::FlowSim;
use msort_topology::{allocate_rates, Endpoint, Platform, Route};
use std::hint::black_box;

fn all_routes(platform: &Platform) -> Vec<Route> {
    let mut routes = Vec::new();
    for g in 0..platform.gpu_count() {
        routes.push(
            msort_topology::route::route(&platform.topology, Endpoint::HOST0, Endpoint::gpu(g))
                .unwrap(),
        );
        routes.push(
            msort_topology::route::route(&platform.topology, Endpoint::gpu(g), Endpoint::HOST0)
                .unwrap(),
        );
    }
    routes
}

fn bench_allocator(h: &mut Harness) {
    for platform in [
        Platform::ibm_ac922(),
        Platform::delta_d22x(),
        Platform::dgx_a100(),
    ] {
        let routes = all_routes(&platform);
        let flows: Vec<_> = routes.iter().map(|r| platform.flow_request(r)).collect();
        h.bench(&format!("max_min_allocation/{:?}", platform.id), || {
            black_box(allocate_rates(platform.constraint_table(), &flows))
        });
    }
}

fn bench_fig4_style_measurement(h: &mut Harness) {
    let platform = Platform::dgx_a100();
    let routes = all_routes(&platform);
    h.bench("fig4_all8_bidi_measurement", || {
        black_box(measure_concurrent(&platform, &routes, 4 << 30).throughput_gbps())
    });
}

fn bench_staggered_flows(h: &mut Harness) {
    // Many flows arriving at staggered times: the worst case for rate
    // re-allocation frequency.
    let platform = Platform::dgx_a100();
    let routes = all_routes(&platform);
    h.bench("staggered_16_flows", || {
        let mut sim = FlowSim::new(&platform);
        for (i, r) in routes.iter().enumerate() {
            sim.start(r, (1 << 28) + (i as u64) * (1 << 20));
        }
        black_box(sim.run_to_idle())
    });
}

/// 256 flows arriving in staggered waves: 32 start upfront, and every
/// completion triggers a new arrival until 256 have run — the executor's
/// natural pattern (a drained stream immediately issues its next copy, so
/// arrivals come in batches at completion times). This is the scenario the
/// event-queue engine was built for: the original engine pays one full
/// re-allocation per start and per completion batch plus a rescan of every
/// flow ever started per event, while the event-queue engine coalesces
/// each wave into a single allocation over just the active flows. Both
/// engines run in the same binary so the speedup is directly comparable.
fn bench_staggered_256(h: &mut Harness) {
    const TOTAL: usize = 256;
    const UPFRONT: usize = 32;
    const BYTES: u64 = 1 << 24;
    let platform = Platform::dgx_a100();
    let routes = all_routes(&platform);

    h.bench("staggered_256_flows/event_queue", || {
        let mut sim = FlowSim::new(&platform);
        let mut started = 0;
        while started < UPFRONT {
            sim.start(&routes[started % routes.len()], BYTES);
            started += 1;
        }
        while let Some((t, _)) = sim.next_completion() {
            let finished = sim.advance_to(t).len();
            for _ in 0..finished {
                if started < TOTAL {
                    sim.start(&routes[started % routes.len()], BYTES);
                    started += 1;
                }
            }
        }
        black_box(sim.now())
    });

    h.bench("staggered_256_flows/reference", || {
        let mut sim = ReferenceFlowSim::new(&platform);
        let mut started = 0;
        while started < UPFRONT {
            sim.start(&routes[started % routes.len()], BYTES);
            started += 1;
        }
        while let Some((t, _)) = sim.next_completion() {
            let finished = sim.advance_to(t).len();
            for _ in 0..finished {
                if started < TOTAL {
                    sim.start(&routes[started % routes.len()], BYTES);
                    started += 1;
                }
            }
        }
        black_box(sim.now())
    });
}

/// End-to-end executor pressure: 512 small copies over 8 streams at full
/// fidelity. Exercises the route cache (every copy routes between the same
/// few endpoint pairs) and the executor/flow-engine interaction, not just
/// the allocator in isolation.
fn bench_gpu_system_many_memcpys(h: &mut Harness) {
    let platform = Platform::dgx_a100();
    h.bench("gpu_system_512_memcpys", || {
        let mut sys: GpuSystem<u32> = GpuSystem::new(&platform, Fidelity::Full);
        let keys_per_copy = 1u64 << 10;
        let gpus = platform.gpu_count();
        let host = sys.world_mut().alloc_host(0, keys_per_copy * 512);
        let bufs: Vec<_> = (0..gpus)
            .map(|g| sys.world_mut().alloc_gpu(g, keys_per_copy * 64))
            .collect();
        let streams: Vec<_> = (0..8).map(|_| sys.stream()).collect();
        for i in 0..512u64 {
            let s = streams[(i % 8) as usize];
            let g = (i as usize) % gpus;
            let slot = (i / 8) % 64;
            if i.is_multiple_of(2) {
                sys.memcpy(
                    s,
                    host,
                    (i % 512) * keys_per_copy,
                    bufs[g],
                    slot * keys_per_copy,
                    keys_per_copy,
                    &[],
                    Phase::HtoD,
                );
            } else {
                sys.memcpy(
                    s,
                    bufs[g],
                    slot * keys_per_copy,
                    host,
                    (i % 512) * keys_per_copy,
                    keys_per_copy,
                    &[],
                    Phase::DtoH,
                );
            }
        }
        black_box(sys.synchronize())
    });
}

fn main() {
    let mut h = Harness::new("flow_allocator").sample_size(20);
    bench_allocator(&mut h);
    bench_fig4_style_measurement(&mut h);
    bench_staggered_flows(&mut h);
    bench_staggered_256(&mut h);
    bench_gpu_system_many_memcpys(&mut h);
    h.finish();
}
