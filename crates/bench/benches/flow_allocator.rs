//! Benchmarks of the fluid-flow engine and the max-min fair allocator —
//! the inner loop of every simulated transfer (Figures 2-7 run thousands
//! of these allocations).

use msort_bench::Harness;
use msort_sim::flows::measure_concurrent;
use msort_sim::FlowSim;
use msort_topology::{allocate_rates, Endpoint, Platform, Route};
use std::hint::black_box;

fn all_routes(platform: &Platform) -> Vec<Route> {
    let mut routes = Vec::new();
    for g in 0..platform.gpu_count() {
        routes.push(
            msort_topology::route::route(&platform.topology, Endpoint::HOST0, Endpoint::gpu(g))
                .unwrap(),
        );
        routes.push(
            msort_topology::route::route(&platform.topology, Endpoint::gpu(g), Endpoint::HOST0)
                .unwrap(),
        );
    }
    routes
}

fn bench_allocator(h: &mut Harness) {
    for platform in [
        Platform::ibm_ac922(),
        Platform::delta_d22x(),
        Platform::dgx_a100(),
    ] {
        let routes = all_routes(&platform);
        let flows: Vec<_> = routes.iter().map(|r| platform.flow_request(r)).collect();
        h.bench(&format!("max_min_allocation/{:?}", platform.id), || {
            black_box(allocate_rates(platform.constraint_table(), &flows))
        });
    }
}

fn bench_fig4_style_measurement(h: &mut Harness) {
    let platform = Platform::dgx_a100();
    let routes = all_routes(&platform);
    h.bench("fig4_all8_bidi_measurement", || {
        black_box(measure_concurrent(&platform, &routes, 4 << 30).throughput_gbps())
    });
}

fn bench_staggered_flows(h: &mut Harness) {
    // Many flows arriving at staggered times: the worst case for rate
    // re-allocation frequency.
    let platform = Platform::dgx_a100();
    let routes = all_routes(&platform);
    h.bench("staggered_16_flows", || {
        let mut sim = FlowSim::new(&platform);
        for (i, r) in routes.iter().enumerate() {
            sim.start(r, (1 << 28) + (i as u64) * (1 << 20));
        }
        black_box(sim.run_to_idle())
    });
}

fn main() {
    let mut h = Harness::new("flow_allocator").sample_size(20);
    bench_allocator(&mut h);
    bench_fig4_style_measurement(&mut h);
    bench_staggered_flows(&mut h);
    h.finish();
}
