//! Single-node kernel microbenchmarks: classic LSB radix vs the OneSweep
//! kernel vs merge-path merge sort.
//!
//! These are the data-effect kernels that dominate the *wall clock* of a
//! full-fidelity simulated sort (the simulated clocks come from the cost
//! model and never change). Cases cover the sizes the effect executor
//! actually sees per GPU (1M–32M keys) across uniform, duplicate-heavy
//! Zipf, sorted, and reverse-sorted inputs; the parallel variants run at
//! the pool width, so on a multi-worker pool (`MSORT_POOL_THREADS >= 2`)
//! the chained-lookback scatter path is exercised for real.
//!
//! The run doubles as a regression guard: at the largest benched size the
//! OneSweep kernel must not be slower than the classic LSB radix it
//! replaced (10% noise allowance); a violation aborts the bench.
//!
//! `MSORT_BENCH_QUICK=1` shrinks the matrix for CI smoke runs. Results
//! seed `BENCH_kernels.json` via `MSORT_BENCH_JSON=<dir>`.

use msort_bench::Harness;
use msort_cpu::pool;
use msort_data::{generate, Distribution};
use std::hint::black_box;

fn quick() -> bool {
    std::env::var_os("MSORT_BENCH_QUICK").is_some()
}

fn dist_label(dist: Distribution) -> &'static str {
    match dist {
        Distribution::Uniform => "uniform",
        Distribution::ZipfDuplicates { .. } => "zipf",
        Distribution::Sorted => "sorted",
        Distribution::ReverseSorted => "reverse",
        _ => "other",
    }
}

fn size_label(n: usize) -> String {
    if n >= 1 << 20 {
        format!("{}m", n >> 20)
    } else {
        format!("{}k", n >> 10)
    }
}

fn main() {
    let samples = if quick() { 3 } else { 5 };
    let sizes: &[usize] = if quick() {
        &[1 << 18]
    } else {
        &[1 << 20, 1 << 23, 1 << 25]
    };
    let dists = [
        Distribution::Uniform,
        Distribution::ZipfDuplicates { skew_permille: 800 },
        Distribution::Sorted,
        Distribution::ReverseSorted,
    ];
    let threads = pool::threads();
    let mut h = Harness::new("kernels").sample_size(samples);

    for &n in sizes {
        let sl = size_label(n);
        let mut aux = vec![0u32; n];
        for dist in dists {
            let dl = dist_label(dist);
            let input: Vec<u32> = generate(dist, n, 42);
            h.bench_throughput(&format!("lsb_radix/{sl}/{dl}"), n as u64, || {
                let mut d = input.clone();
                msort_cpu::lsb_radix::lsb_radix_sort_with_aux(&mut d, &mut aux);
                black_box(d.len())
            });
            h.bench_throughput(&format!("onesweep/{sl}/{dl}"), n as u64, || {
                let mut d = input.clone();
                msort_cpu::onesweep_sort_with_aux(&mut d, &mut aux);
                black_box(d.len())
            });
        }
        // Merge sort is comparison bound — one distribution carries the
        // signal; the branchless inner loop shows up most on uniform keys
        // (the data-dependent branch is unpredictable there).
        let uniform: Vec<u32> = generate(Distribution::Uniform, n, 42);
        h.bench_throughput(&format!("merge_path/{sl}/uniform"), n as u64, || {
            let mut d = uniform.clone();
            msort_cpu::merge_path_sort(&mut d);
            black_box(d.len())
        });
        // Parallel variants at the pool width (on a 1-thread pool these
        // take the sequential fallback by design — same output, same code
        // path the dispatch would pick).
        h.bench_throughput(
            &format!("par_lsb_radix/{sl}/uniform/t{threads}"),
            n as u64,
            || {
                let mut d = uniform.clone();
                msort_cpu::parallel_lsb_radix_sort_with_aux(&mut d, &mut aux, threads);
                black_box(d.len())
            },
        );
        h.bench_throughput(
            &format!("par_onesweep/{sl}/uniform/t{threads}"),
            n as u64,
            || {
                let mut d = uniform.clone();
                msort_cpu::parallel_onesweep_sort_with_aux(&mut d, &mut aux, threads);
                black_box(d.len())
            },
        );
    }

    // Regression guard: OneSweep must not regress below the kernel it
    // replaced at the largest benched size (uniform keys). 10% headroom
    // absorbs scheduler noise on shared CI runners.
    let largest = size_label(*sizes.last().expect("at least one size"));
    let median = |id: String| {
        h.results()
            .iter()
            .find(|r| r.id == id)
            .map(|r| r.median())
            .filter(|d| !d.is_zero())
    };
    if let (Some(lsb), Some(ones)) = (
        median(format!("lsb_radix/{largest}/uniform")),
        median(format!("onesweep/{largest}/uniform")),
    ) {
        assert!(
            ones.as_secs_f64() <= lsb.as_secs_f64() * 1.10,
            "OneSweep regressed below the classic LSB radix at {largest} keys: \
             onesweep {ones:?} vs lsb {lsb:?}"
        );
        println!(
            "guard: onesweep/{largest} {:.0} ms vs lsb_radix/{largest} {:.0} ms ({:.2}x)",
            ones.as_secs_f64() * 1e3,
            lsb.as_secs_f64() * 1e3,
            lsb.as_secs_f64() / ones.as_secs_f64(),
        );
    }

    h.finish();
}
