//! Benchmarks of the *simulated* end-to-end sorts: one group per
//! evaluation figure, tracking the harness's wall-clock cost.
//!
//! These keep `cargo bench` exercising the exact code paths the figure
//! harness uses, so regressions in the simulator or the algorithms show up
//! as wall-clock deltas.

use msort_bench::Harness;
use msort_core::{het_sort, p2p_sort, rp_sort, HetConfig, P2pConfig, RpConfig};
use msort_data::{generate, Distribution};
use msort_gpu::Fidelity;
use msort_topology::{Platform, PlatformId};
use std::hint::black_box;

const SCALE: u64 = 1 << 18;

fn paper_input(n: u64, seed: u64) -> Vec<u32> {
    generate(Distribution::Uniform, (n / SCALE) as usize, seed)
}

/// Figures 12-14: the 2B-key runs on each platform.
fn bench_fig12_to_14(h: &mut Harness) {
    let n = 2_000_000_000u64 / (SCALE * 8) * (SCALE * 8);
    let input = paper_input(n, 1);
    for id in PlatformId::paper_set() {
        let platform = Platform::paper(id);
        for g in [2usize, 4] {
            h.bench(&format!("simulated_2B_{id:?}/p2p/{g}"), || {
                let mut d = input.clone();
                let cfg = P2pConfig {
                    fidelity: Fidelity::Sampled { scale: SCALE },
                    ..P2pConfig::new(g)
                };
                black_box(p2p_sort(&platform, &cfg, &mut d, n).total)
            });
            h.bench(&format!("simulated_2B_{id:?}/het/{g}"), || {
                let mut d = input.clone();
                let cfg = HetConfig {
                    fidelity: Fidelity::Sampled { scale: SCALE },
                    ..HetConfig::new(g)
                };
                black_box(het_sort(&platform, &cfg, &mut d, n).total)
            });
        }
    }
}

/// Section 7 extension: RP sort at 8 GPUs on the DGX.
fn bench_rp_sort(h: &mut Harness) {
    let platform = Platform::dgx_a100();
    let n = 2_000_000_000u64 / (SCALE * 64) * (SCALE * 64);
    let input = paper_input(n, 4);
    h.bench("simulated_2B_rp_sort_dgx_8gpu", || {
        let mut d = input.clone();
        black_box(rp_sort(&platform, &RpConfig::new(8).sampled(SCALE), &mut d, n).total)
    });
}

/// Figure 15: one large-data pipelined run.
fn bench_fig15(h: &mut Harness) {
    let platform = Platform::dgx_a100();
    let scale = 1u64 << 22;
    let n = 60_000_000_000u64 / (scale * 8) * (scale * 8);
    let input: Vec<u32> = generate(Distribution::Uniform, (n / scale) as usize, 2);
    h.bench("simulated_60B_het_2n_dgx", || {
        let mut d = input.clone();
        let cfg = HetConfig::new(8).with_mem_budget(33 << 30).sampled(scale);
        black_box(het_sort(&platform, &cfg, &mut d, n).total)
    });
}

/// Full-fidelity small run: the real-data path the tests use.
fn bench_full_fidelity(h: &mut Harness) {
    let platform = Platform::dgx_a100();
    let n = 1u64 << 18;
    let input: Vec<u32> = generate(Distribution::Uniform, n as usize, 3);
    h.bench("full_fidelity_p2p_256k_keys", || {
        let mut d = input.clone();
        black_box(p2p_sort(&platform, &P2pConfig::new(4), &mut d, n).total)
    });
}

fn main() {
    let mut h = Harness::new("simulated_sorts").sample_size(10);
    bench_fig12_to_14(&mut h);
    bench_rp_sort(&mut h);
    bench_fig15(&mut h);
    bench_full_fidelity(&mut h);
    h.finish();
}
