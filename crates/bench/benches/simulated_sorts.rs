//! Criterion benchmarks of the *simulated* end-to-end sorts: one group per
//! evaluation figure, tracking both the harness's wall-clock cost and
//! (via the custom reporting in `reproduce`) the simulated durations.
//!
//! These keep `cargo bench` exercising the exact code paths the figure
//! harness uses, so regressions in the simulator or the algorithms show up
//! as criterion deltas.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use msort_core::{het_sort, p2p_sort, rp_sort, HetConfig, P2pConfig, RpConfig};
use msort_data::{generate, Distribution};
use msort_gpu::Fidelity;
use msort_topology::{Platform, PlatformId};
use std::hint::black_box;

const SCALE: u64 = 1 << 18;

fn paper_input(n: u64, seed: u64) -> Vec<u32> {
    generate(Distribution::Uniform, (n / SCALE) as usize, seed)
}

/// Figures 12-14: the 2B-key runs on each platform.
fn bench_fig12_to_14(c: &mut Criterion) {
    let n = 2_000_000_000u64 / (SCALE * 8) * (SCALE * 8);
    let input = paper_input(n, 1);
    for id in PlatformId::paper_set() {
        let platform = Platform::paper(id);
        let mut group = c.benchmark_group(format!("simulated_2B_{id:?}"));
        for g in [2usize, 4] {
            group.bench_with_input(BenchmarkId::new("p2p", g), &g, |b, &g| {
                b.iter(|| {
                    let mut d = input.clone();
                    let cfg = P2pConfig {
                        fidelity: Fidelity::Sampled { scale: SCALE },
                        ..P2pConfig::new(g)
                    };
                    black_box(p2p_sort(&platform, &cfg, &mut d, n).total)
                });
            });
            group.bench_with_input(BenchmarkId::new("het", g), &g, |b, &g| {
                b.iter(|| {
                    let mut d = input.clone();
                    let cfg = HetConfig {
                        fidelity: Fidelity::Sampled { scale: SCALE },
                        ..HetConfig::new(g)
                    };
                    black_box(het_sort(&platform, &cfg, &mut d, n).total)
                });
            });
        }
        group.finish();
    }
}

/// Section 7 extension: RP sort at 8 GPUs on the DGX.
fn bench_rp_sort(c: &mut Criterion) {
    let platform = Platform::dgx_a100();
    let n = 2_000_000_000u64 / (SCALE * 64) * (SCALE * 64);
    let input = paper_input(n, 4);
    c.bench_function("simulated_2B_rp_sort_dgx_8gpu", |b| {
        b.iter(|| {
            let mut d = input.clone();
            black_box(rp_sort(&platform, &RpConfig::new(8).sampled(SCALE), &mut d, n).total)
        });
    });
}

/// Figure 15: one large-data pipelined run.
fn bench_fig15(c: &mut Criterion) {
    let platform = Platform::dgx_a100();
    let scale = 1u64 << 22;
    let n = 60_000_000_000u64 / (scale * 8) * (scale * 8);
    let input: Vec<u32> = generate(Distribution::Uniform, (n / scale) as usize, 2);
    c.bench_function("simulated_60B_het_2n_dgx", |b| {
        b.iter(|| {
            let mut d = input.clone();
            let cfg = HetConfig::new(8).with_mem_budget(33 << 30).sampled(scale);
            black_box(het_sort(&platform, &cfg, &mut d, n).total)
        });
    });
}

/// Full-fidelity small run: the real-data path the tests use.
fn bench_full_fidelity(c: &mut Criterion) {
    let platform = Platform::dgx_a100();
    let n = 1u64 << 18;
    let input: Vec<u32> = generate(Distribution::Uniform, n as usize, 3);
    c.bench_function("full_fidelity_p2p_256k_keys", |b| {
        b.iter(|| {
            let mut d = input.clone();
            black_box(p2p_sort(&platform, &P2pConfig::new(4), &mut d, n).total)
        });
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_fig12_to_14, bench_rp_sort, bench_fig15, bench_full_fidelity
}
criterion_main!(benches);
