//! Criterion benchmarks of the *real* CPU sorting algorithms (wall clock
//! on the machine running the bench, not simulated time).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use msort_cpu::{
    lsb_radix_sort, merge_path_sort, msb_radix_sort, paradis_sort, parallel_sort, ParadisConfig,
};
use msort_data::{generate, Distribution};
use std::hint::black_box;

fn bench_sorts(c: &mut Criterion) {
    let mut group = c.benchmark_group("cpu_sorts_u32");
    for &n in &[1usize << 14, 1 << 17, 1 << 20] {
        let input: Vec<u32> = generate(Distribution::Uniform, n, 42);
        group.throughput(Throughput::Elements(n as u64));
        group.bench_with_input(BenchmarkId::new("lsb_radix", n), &input, |b, inp| {
            b.iter(|| {
                let mut v = inp.clone();
                lsb_radix_sort(&mut v);
                black_box(v)
            });
        });
        group.bench_with_input(BenchmarkId::new("msb_radix", n), &input, |b, inp| {
            b.iter(|| {
                let mut v = inp.clone();
                msb_radix_sort(&mut v);
                black_box(v)
            });
        });
        group.bench_with_input(BenchmarkId::new("merge_path", n), &input, |b, inp| {
            b.iter(|| {
                let mut v = inp.clone();
                merge_path_sort(&mut v);
                black_box(v)
            });
        });
        group.bench_with_input(BenchmarkId::new("paradis", n), &input, |b, inp| {
            b.iter(|| {
                let mut v = inp.clone();
                paradis_sort(&mut v);
                black_box(v)
            });
        });
        group.bench_with_input(BenchmarkId::new("std_unstable", n), &input, |b, inp| {
            b.iter(|| {
                let mut v = inp.clone();
                v.sort_unstable();
                black_box(v)
            });
        });
    }
    group.finish();
}

fn bench_paradis_threads(c: &mut Criterion) {
    let mut group = c.benchmark_group("paradis_threads");
    let n = 1usize << 19;
    let input: Vec<u64> = generate(Distribution::Uniform, n, 7);
    group.throughput(Throughput::Elements(n as u64));
    for threads in [1usize, 2, 4] {
        group.bench_with_input(
            BenchmarkId::from_parameter(threads),
            &threads,
            |b, &threads| {
                b.iter(|| {
                    let mut v = input.clone();
                    msort_cpu::paradis::paradis_sort_with(
                        &mut v,
                        ParadisConfig {
                            threads,
                            small_sort_threshold: 256,
                        },
                    );
                    black_box(v)
                });
            },
        );
    }
    group.finish();
}

fn bench_parallel_sort(c: &mut Criterion) {
    let mut group = c.benchmark_group("parallel_sort_distributions");
    let n = 1usize << 18;
    for dist in Distribution::paper_set() {
        let input: Vec<u32> = generate(dist, n, 9);
        group.bench_with_input(
            BenchmarkId::from_parameter(dist.label()),
            &input,
            |b, inp| {
                b.iter(|| {
                    let mut v = inp.clone();
                    parallel_sort(&mut v);
                    black_box(v)
                });
            },
        );
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_sorts, bench_paradis_threads, bench_parallel_sort
}
criterion_main!(benches);
