//! Benchmarks of the *real* CPU sorting algorithms (wall clock on the
//! machine running the bench, not simulated time).

use msort_bench::Harness;
use msort_cpu::{
    lsb_radix_sort, merge_path_sort, msb_radix_sort, paradis_sort, parallel_sort, ParadisConfig,
};
use msort_data::{generate, Distribution};
use std::hint::black_box;

fn bench_sorts(h: &mut Harness) {
    for &n in &[1usize << 14, 1 << 17, 1 << 20] {
        let input: Vec<u32> = generate(Distribution::Uniform, n, 42);
        h.bench_throughput(&format!("cpu_sorts_u32/lsb_radix/{n}"), n as u64, || {
            let mut v = input.clone();
            lsb_radix_sort(&mut v);
            black_box(v)
        });
        h.bench_throughput(&format!("cpu_sorts_u32/msb_radix/{n}"), n as u64, || {
            let mut v = input.clone();
            msb_radix_sort(&mut v);
            black_box(v)
        });
        h.bench_throughput(&format!("cpu_sorts_u32/merge_path/{n}"), n as u64, || {
            let mut v = input.clone();
            merge_path_sort(&mut v);
            black_box(v)
        });
        h.bench_throughput(&format!("cpu_sorts_u32/paradis/{n}"), n as u64, || {
            let mut v = input.clone();
            paradis_sort(&mut v);
            black_box(v)
        });
        h.bench_throughput(&format!("cpu_sorts_u32/std_unstable/{n}"), n as u64, || {
            let mut v = input.clone();
            v.sort_unstable();
            black_box(v)
        });
    }
}

fn bench_paradis_threads(h: &mut Harness) {
    let n = 1usize << 19;
    let input: Vec<u64> = generate(Distribution::Uniform, n, 7);
    for threads in [1usize, 2, 4] {
        h.bench_throughput(&format!("paradis_threads/{threads}"), n as u64, || {
            let mut v = input.clone();
            msort_cpu::paradis::paradis_sort_with(
                &mut v,
                ParadisConfig {
                    threads,
                    small_sort_threshold: 256,
                },
            );
            black_box(v)
        });
    }
}

fn bench_parallel_sort(h: &mut Harness) {
    let n = 1usize << 18;
    for dist in Distribution::paper_set() {
        let input: Vec<u32> = generate(dist, n, 9);
        h.bench_throughput(
            &format!("parallel_sort_distributions/{}", dist.label()),
            n as u64,
            || {
                let mut v = input.clone();
                parallel_sort(&mut v);
                black_box(v)
            },
        );
    }
}

fn main() {
    let mut h = Harness::new("cpu_algorithms").sample_size(10);
    bench_sorts(&mut h);
    bench_paradis_threads(&mut h);
    bench_parallel_sort(&mut h);
    h.finish();
}
