//! Cluster scaling: the cross-node sort at 1/2/4/8 DGX A100 nodes.
//!
//! Holds keys-per-GPU fixed (weak scaling) and grows the node count, so
//! the per-node work is constant and the delta between points is purely
//! the node-level machinery: the scatter over node 0's NIC, the global
//! splitter selection, the all-to-all bucket exchange over the fabric,
//! and the gather. Alongside the wall-clock samples the bench checks the
//! *simulated* decomposition: the share of the run the inter-node fabric
//! is busy must grow monotonically with the node count (1 node ⇒ zero;
//! more nodes ⇒ a larger fraction of every chunk crosses the NICs).
//!
//! `MSORT_BENCH_QUICK=1` shrinks the inputs for CI smoke runs.

use msort_bench::Harness;
use msort_cluster::dgx_a100_cluster;
use msort_core::{cross_node_sort, CrossNodeConfig, InnerAlgo};
use msort_data::{generate, Distribution};
use msort_topology::Fabric;
use std::hint::black_box;

fn quick() -> bool {
    std::env::var_os("MSORT_BENCH_QUICK").is_some()
}

fn main() {
    let samples = if quick() { 2 } else { 5 };
    let per_gpu: u64 = if quick() { 1 << 14 } else { 1 << 18 };
    let mut h = Harness::new("cluster").sample_size(samples);

    let mut shares: Vec<(usize, f64)> = Vec::new();
    for nodes in [1usize, 2, 4, 8] {
        let cluster = dgx_a100_cluster(nodes, Fabric::IbHdr);
        let n = per_gpu * 8 * nodes as u64;
        let input: Vec<u32> = generate(Distribution::Uniform, n as usize, 17);
        let config = CrossNodeConfig::new(InnerAlgo::SampleSort);
        let mut share = 0.0;
        h.bench_throughput(&format!("cross_node/dgx_x{nodes}/ib-hdr"), n, || {
            let mut d = input.clone();
            let report = cross_node_sort(&cluster, &config, &mut d, n);
            assert!(report.validated);
            share = report.inter_node.as_secs_f64() / report.total.as_secs_f64();
            black_box(report.total)
        });
        shares.push((nodes, share));
    }

    for w in shares.windows(2) {
        let ((a, sa), (b, sb)) = (w[0], w[1]);
        assert!(
            sb > sa,
            "inter-node share must grow with node count: {a} nodes -> {sa:.3}, {b} nodes -> {sb:.3}"
        );
    }
    for (nodes, share) in &shares {
        println!(
            "inter-node fabric share at {nodes} node(s): {:.1}%",
            100.0 * share
        );
    }

    h.finish();
}
