//! Million-job scale benchmark for the indexed serve core.
//!
//! Two result families land in `BENCH_serve_scale.json`:
//!
//! * `serve_scale_indexed_*` vs `serve_scale_reference_*` — wall-clock of
//!   the indexed scheduler against the golden linear-scan
//!   [`ReferenceService`] on identical queued-heavy workloads (a deep
//!   bounded queue, so the reference's per-event rescans are O(depth)
//!   while the indexed core stays O(log depth)). `elements` carries the
//!   offered job count, so `melems/s` reads as simulated jobs per
//!   wall-second. The ≥3x acceptance claim at the largest size is
//!   asserted here, not just printed.
//! * `serve_scale_million_*` — the headline: one million offered jobs
//!   through the indexed core in a single open-loop Poisson run, with
//!   admission, placement, gang leasing, and simulated execution all
//!   live. The reference is *not* run at this size — that is the point.
//!
//! `MSORT_BENCH_QUICK=1` trims sizes for CI smoke runs.

use msort_bench::Harness;
use msort_serve::{
    JobAlgo, JobMix, OpenLoop, QueuePolicy, ReferenceService, ServeConfig, ServiceReport, SortJob,
    SortService, TenantId,
};
use std::hint::black_box;

const SCALE: u64 = 64;
const SEED: u64 = 0x5CA1E;

fn quick() -> bool {
    std::env::var_os("MSORT_BENCH_QUICK").is_some()
}

/// Tiny one-GPU jobs with an occasional two-GPU straggler: at million-job
/// scale the *scheduler* is the measured object, so per-job sort work is
/// kept minimal (sampled fidelity, 2^12 logical keys).
fn mix() -> JobMix {
    JobMix::of(
        SortJob::new(TenantId(0), 1 << 12)
            .with_gpus(1)
            .interactive(),
    )
    .and(
        SortJob::new(TenantId(1), 1 << 12)
            .with_gpus(1)
            .with_algo(JobAlgo::SampleSort),
        0.7,
    )
    .and(SortJob::new(TenantId(2), 1 << 13).with_gpus(2), 0.2)
}

/// Queued-heavy configuration: SJF over a deep bounded queue. The cap
/// keeps the reference's O(depth) rescans finite while still forcing
/// every dispatch through a long pick scan; overflow beyond the cap is
/// cheap O(1) backpressure in both implementations.
fn config(depth: usize) -> ServeConfig {
    ServeConfig::new()
        .sampled(SCALE)
        .with_policy(QueuePolicy::Sjf)
        .with_max_queue_depth(depth)
}

/// Offered rate far beyond the DGX's ~2.6M tiny-jobs/s simulated
/// capacity, so the queue pegs at its cap for the whole run —
/// "queued-heavy" by construction (verified by the max-depth print).
const HEAVY_RATE: f64 = 10_000_000.0;

fn run_indexed(jobs: u64, rate: f64, depth: usize) -> ServiceReport {
    let dgx = msort_topology::Platform::dgx_a100();
    let report = SortService::<u32>::new(&dgx, config(depth)).serve(OpenLoop::poisson(
        rate,
        mix(),
        jobs,
        SEED,
    ));
    assert!(report.all_validated());
    report
}

fn run_reference(jobs: u64, rate: f64, depth: usize) -> ServiceReport {
    let dgx = msort_topology::Platform::dgx_a100();
    let report = ReferenceService::<u32>::new(&dgx, config(depth)).serve(OpenLoop::poisson(
        rate,
        mix(),
        jobs,
        SEED,
    ));
    assert!(report.all_validated());
    report
}

fn main() {
    let mut h = Harness::new("serve_scale").sample_size(1);

    // Indexed vs reference on identical queued-heavy workloads.
    let (sizes, depth): (&[u64], usize) = if quick() {
        (&[2_000, 8_000], 4_096)
    } else {
        (&[10_000, 30_000, 100_000], 8_192)
    };
    let mut at_largest = (0u128, 0u128);
    for &jobs in sizes {
        h.bench_throughput(
            &format!("serve_scale_indexed_dgx/jobs_{jobs}"),
            jobs,
            || {
                let report = run_indexed(jobs, HEAVY_RATE, depth);
                let max_depth = report
                    .queue_depth
                    .iter()
                    .map(|&(_, d)| d)
                    .max()
                    .unwrap_or(0);
                println!(
                    "  jobs {jobs}: completed {} rejected {} max depth {max_depth}",
                    report.outcomes.len(),
                    report.rejected.len(),
                );
                black_box(report.makespan)
            },
        );
        h.bench_throughput(
            &format!("serve_scale_reference_dgx/jobs_{jobs}"),
            jobs,
            || black_box(run_reference(jobs, HEAVY_RATE, depth).makespan),
        );
        let results = h.results();
        let (idx, rf) = (
            results[results.len() - 2].median().as_nanos(),
            results[results.len() - 1].median().as_nanos(),
        );
        println!(
            "jobs {jobs:>8}: indexed {:>8.1} ms  reference {:>8.1} ms  speedup {:.2}x",
            idx as f64 / 1e6,
            rf as f64 / 1e6,
            rf as f64 / idx as f64,
        );
        at_largest = (idx, rf);
    }
    // The acceptance claim: ≥3x over the reference at the largest
    // queued-heavy size (100k jobs in the full run).
    let (idx, rf) = at_largest;
    assert!(
        rf >= 3 * idx,
        "indexed core must beat the reference by >=3x at {} jobs \
         (indexed {} ns, reference {} ns)",
        sizes.last().unwrap(),
        idx,
        rf
    );

    // The headline: one million offered jobs through the indexed core.
    // Offered just under capacity so the service stays busy end to end
    // and (nearly) everything completes — the measured number is the
    // full admission → queue → placement → execution → retire path.
    let million = if quick() { 20_000 } else { 1_000_000 };
    let rate = 1_000_000.0;
    h.bench_throughput(
        &format!("serve_scale_million_dgx/jobs_{million}"),
        million,
        || {
            let report = run_indexed(million, rate, usize::MAX);
            println!(
                "  {} offered, {} completed, {} rejected, makespan {}, \
                 p99 {} ns, mean depth sample count {}",
                report.offered_jobs(),
                report.outcomes.len(),
                report.rejected.len(),
                report.makespan,
                report.p99_latency().0,
                report.queue_depth.len(),
            );
            black_box(report.makespan)
        },
    );

    h.finish();
}
