//! `simulate` — run one multi-GPU sort on a simulated platform.
//!
//! ```text
//! simulate --platform dgx-a100 --algo p2p --gpus 4 --keys 2e9 \
//!          --dist uniform --type u32 [--scale 2097152] [--multi-hop] \
//!          [--nodes N] [--fabric ib-hdr|ib-ndr|slingshot] \
//!          [--approach 2n|3n] [--eager-merge] [--trace out.json]
//! ```
//!
//! With `--nodes N` (N > 1) the platform becomes an N-node cluster of the
//! selected box joined by the `--fabric` interconnect, and the sort runs
//! as the cross-node sort with `--algo` as the per-node inner sort.
//!
//! With `--serve` the binary switches from one sort to open-loop service
//! mode: a seeded arrival process (`--process`, `--rate`, `--jobs`)
//! drives a multi-tenant sort service with EDF queueing, SLO-aware
//! admission (`--slo-us`) and an elastic GPU fleet, and the service
//! report is printed instead of a sort report.
//!
//! Prints the sort report (total simulated duration + phase breakdown) and
//! optionally writes a Chrome trace of the run.

use msort_cluster::cluster_of;
use msort_core::{
    cpu_only_sort, cross_node_sort, het_sort, mwms_sort, p2p_sort, rp_sort, sample_sort,
    single_gpu_sort, CrossNodeConfig, HetConfig, InnerAlgo, LargeDataApproach, MwmsConfig,
    P2pConfig, RpConfig, SampleSortConfig, SortReport,
};
use msort_data::{generate, DataType, Distribution};
use msort_gpu::Fidelity;
use msort_sim::GpuSortAlgo;
use msort_topology::{Fabric, Platform, PlatformId};

/// Parsed command-line options.
struct Options {
    platform: PlatformId,
    algo: String,
    gpus: usize,
    keys: u64,
    dist: Distribution,
    data_type: DataType,
    scale: u64,
    multi_hop: bool,
    approach: LargeDataApproach,
    eager_merge: bool,
    primitive: GpuSortAlgo,
    trace: Option<String>,
    seed: u64,
    nodes: usize,
    fabric: Fabric,
    serve: bool,
    rate: f64,
    jobs: u64,
    process: String,
    slo_us: Option<u64>,
}

impl Default for Options {
    fn default() -> Self {
        Self {
            platform: PlatformId::DgxA100,
            algo: "p2p".to_owned(),
            gpus: 4,
            keys: 1 << 24,
            dist: Distribution::Uniform,
            data_type: DataType::U32,
            scale: 1,
            multi_hop: false,
            approach: LargeDataApproach::TwoN,
            eager_merge: false,
            primitive: GpuSortAlgo::ThrustLike,
            trace: None,
            seed: 42,
            nodes: 1,
            fabric: Fabric::IbHdr,
            serve: false,
            rate: 4_000.0,
            jobs: 96,
            process: "poisson".to_owned(),
            slo_us: None,
        }
    }
}

fn usage() -> ! {
    eprintln!(
        "usage: simulate [--platform ac922|delta|dgx-a100] [--algo p2p|het|rp|sample|mwms|1gpu|cpu]\n\
         \x20               [--gpus N] [--keys N|Xe9] [--dist uniform|normal|sorted|reverse|nearly|zipf]\n\
         \x20               [--type u32|i32|f32|u64|i64|f64|kv32|kv64] [--scale N] [--seed N]\n\
         \x20               [--multi-hop] [--approach 2n|3n] [--eager-merge]\n\
         \x20               [--nodes N] [--fabric ib-hdr|ib-ndr|slingshot]\n\
         \x20               [--primitive thrust|cub|stehle|mgpu] [--trace file.json]\n\
         \x20               [--serve] [--rate R] [--jobs N] [--process poisson|diurnal|bursty]\n\
         \x20               [--slo-us N]\n\
         \n\
         --nodes N (N > 1) simulates an N-node cluster of the chosen platform\n\
         joined by the --fabric interconnect (default ib-hdr); the sort runs\n\
         as the cross-node sort with --algo as the per-node inner sort and\n\
         --gpus as the GPUs used per node.\n\
         \n\
         --serve switches to open-loop service mode: a seeded arrival\n\
         process (--process poisson|diurnal|bursty at --rate jobs/s,\n\
         --jobs arrivals total) drives a multi-tenant sort service with\n\
         EDF queueing, SLO-aware admission (--slo-us sets tenant 0's\n\
         latency budget) and an elastic GPU fleet; prints the service\n\
         report instead of a single sort report."
    );
    std::process::exit(2);
}

fn parse_count(s: &str) -> Option<u64> {
    if let Ok(v) = s.parse::<u64>() {
        return Some(v);
    }
    s.parse::<f64>()
        .ok()
        .filter(|v| *v >= 0.0)
        .map(|v| v as u64)
}

fn parse(args: &[String]) -> Option<Options> {
    let mut opts = Options::default();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut value = |name: &str| -> Option<String> {
            let v = it.next();
            if v.is_none() {
                eprintln!("missing value for {name}");
            }
            v.cloned()
        };
        match arg.as_str() {
            "--platform" => {
                opts.platform = match value("--platform")?.as_str() {
                    "ac922" | "ibm" => PlatformId::IbmAc922,
                    "delta" | "d22x" => PlatformId::DeltaD22x,
                    "dgx-a100" | "dgx" => PlatformId::DgxA100,
                    other => {
                        eprintln!("unknown platform '{other}'");
                        return None;
                    }
                }
            }
            "--algo" => opts.algo = value("--algo")?,
            "--gpus" => opts.gpus = value("--gpus")?.parse().ok()?,
            "--keys" => opts.keys = parse_count(&value("--keys")?)?,
            "--scale" => opts.scale = value("--scale")?.parse().ok()?,
            "--seed" => opts.seed = value("--seed")?.parse().ok()?,
            "--dist" => {
                opts.dist = match value("--dist")?.as_str() {
                    "uniform" => Distribution::Uniform,
                    "normal" => Distribution::Normal,
                    "sorted" => Distribution::Sorted,
                    "reverse" | "reverse-sorted" => Distribution::ReverseSorted,
                    "nearly" | "nearly-sorted" => Distribution::NearlySorted,
                    "zipf" => Distribution::ZipfDuplicates {
                        skew_permille: 1200,
                    },
                    other => {
                        eprintln!("unknown distribution '{other}'");
                        return None;
                    }
                }
            }
            "--type" => {
                opts.data_type = match value("--type")?.as_str() {
                    "u32" => DataType::U32,
                    "i32" => DataType::I32,
                    "f32" => DataType::F32,
                    "u64" => DataType::U64,
                    "i64" => DataType::I64,
                    "f64" => DataType::F64,
                    "kv32" => DataType::Kv32,
                    "kv64" => DataType::Kv64,
                    other => {
                        eprintln!("unknown data type '{other}'");
                        return None;
                    }
                }
            }
            "--approach" => {
                opts.approach = match value("--approach")?.as_str() {
                    "2n" => LargeDataApproach::TwoN,
                    "3n" => LargeDataApproach::ThreeN,
                    other => {
                        eprintln!("unknown approach '{other}'");
                        return None;
                    }
                }
            }
            "--primitive" => {
                opts.primitive = match value("--primitive")?.as_str() {
                    "thrust" => GpuSortAlgo::ThrustLike,
                    "cub" => GpuSortAlgo::CubLike,
                    "stehle" => GpuSortAlgo::StehleLike,
                    "mgpu" => GpuSortAlgo::MgpuLike,
                    other => {
                        eprintln!("unknown primitive '{other}'");
                        return None;
                    }
                }
            }
            "--nodes" => {
                opts.nodes = value("--nodes")?.parse().ok()?;
                if opts.nodes == 0 {
                    eprintln!("--nodes must be at least 1");
                    return None;
                }
            }
            "--fabric" => {
                let v = value("--fabric")?;
                let Some(f) = Fabric::parse(&v) else {
                    eprintln!("unknown fabric '{v}' (ib-hdr, ib-ndr, slingshot)");
                    return None;
                };
                opts.fabric = f;
            }
            "--serve" => opts.serve = true,
            "--rate" => opts.rate = value("--rate")?.parse().ok().filter(|r| *r > 0.0)?,
            "--jobs" => opts.jobs = value("--jobs")?.parse().ok().filter(|j| *j > 0)?,
            "--process" => {
                let v = value("--process")?;
                if !matches!(v.as_str(), "poisson" | "diurnal" | "bursty") {
                    eprintln!("unknown arrival process '{v}' (poisson, diurnal, bursty)");
                    return None;
                }
                opts.process = v;
            }
            "--slo-us" => opts.slo_us = Some(value("--slo-us")?.parse().ok()?),
            "--multi-hop" => opts.multi_hop = true,
            "--eager-merge" => opts.eager_merge = true,
            "--trace" => opts.trace = Some(value("--trace")?),
            "--help" | "-h" => return None,
            other => {
                eprintln!("unknown argument '{other}'");
                return None;
            }
        }
    }
    Some(opts)
}

fn run_typed<K: msort_data::SortKey>(opts: &Options, platform: &Platform) -> SortReport {
    let scale = opts.scale.max(1);
    // Align the key count so every algorithm's chunking divides evenly.
    let align = scale * opts.gpus.max(1) as u64 * 8 * opts.nodes as u64;
    let n = (opts.keys / align * align).max(align);
    let fidelity = if scale == 1 {
        Fidelity::Full
    } else {
        Fidelity::Sampled { scale }
    };
    let mut data: Vec<K> = generate(opts.dist, (n / scale) as usize, opts.seed);
    if opts.nodes > 1 {
        let inner = match opts.algo.as_str() {
            "p2p" => InnerAlgo::P2p,
            "het" => InnerAlgo::Het,
            "rp" => InnerAlgo::Rp,
            "sample" => InnerAlgo::SampleSort,
            "mwms" => InnerAlgo::MultiwayMerge,
            other => {
                eprintln!("--nodes > 1 needs --algo p2p|het|rp|sample|mwms (got '{other}')");
                usage()
            }
        };
        let mut cfg = CrossNodeConfig::new(inner);
        cfg.fidelity = fidelity;
        cfg.algo = opts.primitive;
        cfg.gpus_per_node = Some(opts.gpus);
        return cross_node_sort(platform, &cfg, &mut data, n);
    }
    match opts.algo.as_str() {
        "p2p" => {
            let mut cfg = P2pConfig {
                fidelity,
                algo: opts.primitive,
                ..P2pConfig::new(opts.gpus)
            };
            cfg.multi_hop = opts.multi_hop;
            p2p_sort(platform, &cfg, &mut data, n)
        }
        "het" => {
            let mut cfg = HetConfig {
                fidelity,
                algo: opts.primitive,
                ..HetConfig::new(opts.gpus)
            };
            cfg.approach = opts.approach;
            cfg.eager_merge = opts.eager_merge;
            het_sort(platform, &cfg, &mut data, n)
        }
        "rp" => {
            let cfg = RpConfig {
                fidelity,
                algo: opts.primitive,
                ..RpConfig::new(opts.gpus)
            };
            rp_sort(platform, &cfg, &mut data, n)
        }
        "sample" => {
            let cfg = SampleSortConfig {
                fidelity,
                algo: opts.primitive,
                ..SampleSortConfig::new(opts.gpus)
            };
            sample_sort(platform, &cfg, &mut data, n)
        }
        "mwms" => {
            let cfg = MwmsConfig {
                fidelity,
                algo: opts.primitive,
                ..MwmsConfig::new(opts.gpus)
            };
            mwms_sort(platform, &cfg, &mut data, n)
        }
        "1gpu" => single_gpu_sort(platform, fidelity, opts.primitive, &mut data, n),
        "cpu" => cpu_only_sort(platform, fidelity, &mut data, n),
        other => {
            eprintln!("unknown algorithm '{other}'");
            usage()
        }
    }
}

/// Open-loop service mode: a seeded arrival process against a
/// multi-tenant sort service with SLO-aware admission and an elastic
/// fleet. Serving is u32-only (the mix is fixed; `--type` is ignored).
fn run_serve(opts: &Options, platform: &Platform) {
    use msort_serve::{
        AdmissionPolicy, ArrivalProcess, JobAlgo, JobMix, OpenLoop, QueuePolicy, ServeConfig,
        SortJob, SortService, TenantId,
    };
    use msort_sim::SimDuration;

    let mix = JobMix::of(
        SortJob::new(TenantId(0), 1 << 16)
            .with_algo(JobAlgo::Het)
            .interactive(),
    )
    .and(SortJob::new(TenantId(1), 1 << 18).with_gpus(2), 0.75)
    .and(SortJob::new(TenantId(2), 1 << 16).with_gpus(2), 0.5);
    let process = match opts.process.as_str() {
        "diurnal" => ArrivalProcess::Diurnal {
            rate: opts.rate,
            amplitude: 0.8,
            period: SimDuration::from_millis(20),
        },
        "bursty" => ArrivalProcess::Bursty {
            base_rate: opts.rate / 4.0,
            burst_rate: opts.rate * 4.0,
            mean_calm: SimDuration::from_millis(4),
            mean_burst: SimDuration::from_millis(2),
        },
        _ => ArrivalProcess::Poisson { rate: opts.rate },
    };
    let mut config = ServeConfig::new()
        .sampled(opts.scale.max(1))
        .with_policy(QueuePolicy::Edf)
        .with_admission(AdmissionPolicy::SloAware)
        .elastic(2, SimDuration::from_millis(1));
    if let Some(us) = opts.slo_us {
        config = config.with_slo(TenantId(0), SimDuration::from_micros(us));
    }
    let workload = OpenLoop::new(process, mix, opts.jobs, opts.seed);
    let report = SortService::<u32>::new(platform, config).serve(workload);
    println!("{}", report.summary());
    println!(
        "offered: {} jobs ({} at {:.0}/s)  |  goodput: {:.1} jobs/s  |  \
         SLO attainment: {:.1}%  |  shed: {}  |  mean fleet: {:.2} GPUs  |  \
         validated: {}",
        report.offered_jobs(),
        opts.process,
        opts.rate,
        report.goodput_per_sec(),
        report.slo_attainment() * 100.0,
        report.shed_jobs(),
        report.mean_fleet_size(),
        report.all_validated(),
    );
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(opts) = parse(&args) else { usage() };
    if opts.serve {
        let platform = Platform::paper(opts.platform);
        run_serve(&opts, &platform);
        return;
    }
    let platform = if opts.nodes > 1 {
        cluster_of(opts.platform, opts.nodes, opts.fabric)
    } else {
        Platform::paper(opts.platform)
    };
    let gpus_avail = if opts.nodes > 1 {
        opts.platform.gpus_per_node()
    } else {
        platform.gpu_count()
    };
    if opts.gpus == 0 || opts.gpus > gpus_avail {
        eprintln!(
            "--gpus must be between 1 and {} on the {}",
            gpus_avail,
            platform.name()
        );
        std::process::exit(2);
    }
    if matches!(opts.algo.as_str(), "p2p") && !opts.gpus.is_power_of_two() {
        eprintln!(
            "--algo p2p needs a power-of-two GPU count (got {})",
            opts.gpus
        );
        std::process::exit(2);
    }
    if opts.trace.is_some() {
        eprintln!(
            "note: --trace re-runs the workload to capture the timeline; \
             reported numbers are from the first run"
        );
    }

    let report = match opts.data_type {
        DataType::U32 => run_typed::<u32>(&opts, &platform),
        DataType::I32 => run_typed::<i32>(&opts, &platform),
        DataType::F32 => run_typed::<f32>(&opts, &platform),
        DataType::U64 => run_typed::<u64>(&opts, &platform),
        DataType::I64 => run_typed::<i64>(&opts, &platform),
        DataType::F64 => run_typed::<f64>(&opts, &platform),
        DataType::Kv32 => run_typed::<msort_data::Pair<u32>>(&opts, &platform),
        DataType::Kv64 => run_typed::<msort_data::Pair<u64>>(&opts, &platform),
    };

    println!("{}", report.summary());
    println!(
        "throughput: {:.1} M keys/s  |  {} of {} data  |  validated: {}",
        report.mkeys_per_sec(),
        report.total,
        human_bytes(report.bytes),
        report.validated,
    );
    if report.p2p_swapped_keys > 0 {
        println!(
            "P2P exchange volume: {:.2} B keys",
            report.p2p_swapped_keys as f64 / 1e9
        );
    }
    if report.inter_node > msort_sim::SimDuration::ZERO {
        println!(
            "inter-node fabric busy: {} ({:.0}% of total)",
            report.inter_node,
            100.0 * report.inter_node.as_secs_f64() / report.total.as_secs_f64()
        );
    }

    if let Some(ref path) = opts.trace {
        // Re-run on a traced system. Keep it simple: only u32 runs get a
        // trace (the common case for the paper's experiments).
        let trace = trace_u32(&opts, &platform);
        std::fs::write(path, trace).expect("write trace file");
        println!("wrote Chrome trace to {path} (open in chrome://tracing)");
    }
}

/// Re-run the u32 version of the workload capturing the op timeline.
fn trace_u32(opts: &Options, platform: &Platform) -> String {
    use msort_gpu::{GpuSystem, Phase};
    let scale = opts.scale.max(1);
    let align = scale * opts.gpus.max(1) as u64 * 8;
    let n = (opts.keys / align * align).max(align);
    let fidelity = if scale == 1 {
        Fidelity::Full
    } else {
        Fidelity::Sampled { scale }
    };
    // A minimal traced workload: scatter + sort + gather on each GPU (the
    // full algorithms manage their own GpuSystem internally; the trace of
    // phase structure is what users inspect).
    let mut sys: GpuSystem<'_, u32> = GpuSystem::new(platform, fidelity);
    let recorder = msort_trace::Recorder::new();
    sys.set_recorder(recorder.clone());
    let data: Vec<u32> = generate(opts.dist, (n / scale) as usize, opts.seed);
    let host = sys.world_mut().import_host(0, data, n);
    let chunk = n / opts.gpus as u64;
    for i in 0..opts.gpus {
        let dev = sys.world_mut().alloc_gpu(i, chunk);
        let aux = sys.world_mut().alloc_gpu(i, chunk);
        let cs = sys.stream();
        let up = sys.memcpy(cs, host, i as u64 * chunk, dev, 0, chunk, &[], Phase::HtoD);
        let so = sys.gpu_sort(cs, opts.primitive, dev, (0, chunk), aux, &[up]);
        sys.memcpy(
            cs,
            dev,
            0,
            host,
            i as u64 * chunk,
            chunk,
            &[so],
            Phase::DtoH,
        );
    }
    sys.synchronize();
    // The unified exporter: op spans per stream plus link-utilization
    // counters and flow lifetimes from the same run.
    msort_trace::chrome_trace(&recorder.snapshot().expect("recorder is enabled"))
}

fn human_bytes(b: u64) -> String {
    if b >= 1 << 30 {
        format!("{:.1} GiB", b as f64 / (1u64 << 30) as f64)
    } else if b >= 1 << 20 {
        format!("{:.1} MiB", b as f64 / (1u64 << 20) as f64)
    } else {
        format!("{b} B")
    }
}
