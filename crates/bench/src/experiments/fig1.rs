//! Figure 1: sorting 16 GB (4 B u32 keys) on the DGX A100 — the paper's
//! headline comparison of PARADIS, single-GPU Thrust, P2P sort, and HET
//! sort on 2 and 4 GPUs.

use super::align_down;
use crate::{ExperimentResult, PAPER_SCALE};
use msort_core::{cpu_only_sort, het_sort, p2p_sort, single_gpu_sort, HetConfig, P2pConfig};
use msort_data::{generate, Distribution};
use msort_gpu::Fidelity;
use msort_sim::GpuSortAlgo;
use msort_topology::Platform;

/// Run Figure 1.
#[must_use]
pub fn run() -> ExperimentResult {
    let p = Platform::dgx_a100();
    let scale = PAPER_SCALE;
    // 4B keys, aligned so it divides into 4 chunks of whole samples.
    let n = align_down(4_000_000_000, scale * 8);
    let phys = (n / scale) as usize;
    let fidelity = Fidelity::Sampled { scale };
    let input: Vec<u32> = generate(Distribution::Uniform, phys, 2022);

    let mut r = ExperimentResult::new(
        "fig1",
        "Sorting 16 GB (4B keys) on the DGX A100: CPU vs. GPUs",
        "s",
    );

    let mut d = input.clone();
    r.push(
        "PARADIS (CPU)",
        2.25,
        cpu_only_sort(&p, fidelity, &mut d, n).total.as_secs_f64(),
    );
    let mut d = input.clone();
    r.push(
        "Thrust (1 GPU)",
        1.47,
        single_gpu_sort(&p, fidelity, GpuSortAlgo::ThrustLike, &mut d, n)
            .total
            .as_secs_f64(),
    );
    for (g, paper) in [(2usize, 0.75), (4, 0.45)] {
        let mut d = input.clone();
        let cfg = P2pConfig {
            fidelity,
            ..P2pConfig::new(g)
        };
        r.push(
            format!("P2P sort ({g} GPUs)"),
            paper,
            p2p_sort(&p, &cfg, &mut d, n).total.as_secs_f64(),
        );
    }
    for (g, paper) in [(2usize, 1.09), (4, 0.75)] {
        let mut d = input.clone();
        let cfg = HetConfig {
            fidelity,
            ..HetConfig::new(g)
        };
        r.push(
            format!("HET sort ({g} GPUs)"),
            paper,
            het_sort(&p, &cfg, &mut d, n).total.as_secs_f64(),
        );
    }
    r
}

#[cfg(test)]
mod tests {
    #[test]
    fn fig1_shape_holds() {
        let r = super::run();
        let v: Vec<f64> = r.rows.iter().map(|x| x.ours).collect();
        let (paradis, thrust1, p2p2, p2p4, het2, het4) = (v[0], v[1], v[2], v[3], v[4], v[5]);
        // Orderings the paper's Figure 1 shows.
        assert!(p2p4 < p2p2 && p2p2 < thrust1 && thrust1 < paradis, "{v:?}");
        assert!(het4 < het2 && het2 < thrust1, "{v:?}");
        assert!(p2p2 < het2 && p2p4 < het4, "P2P beats HET on NVSwitch");
        // Rough magnitudes.
        assert!(r.mean_abs_delta().unwrap() < 25.0, "{}", r.to_markdown());
    }
}
