//! What-if study: where is the P2P-vs-HET crossover?
//!
//! The paper's discussion (Section 7) argues that multi-GPU platforms now
//! need *CPU-GPU* bandwidth to scale, and that P2P sort beats HET sort
//! once the P2P interconnect bandwidth approaches host memory bandwidth.
//! With a simulator we can chart both claims directly: build a family of
//! synthetic 4-GPU platforms and sweep one link technology at a time.

use crate::{ExperimentResult, PAPER_SCALE};
use msort_core::{het_sort, p2p_sort, HetConfig, P2pConfig};
use msort_data::{generate, Distribution};
use msort_gpu::Fidelity;
use msort_topology::platforms::CpuModel;
use msort_topology::{gbps, GpuModel, LinkKind, MemSpec, Platform, TopologyBuilder};

/// A single-socket 4-GPU machine with `host_gbps` CPU-GPU links and a
/// `mesh_gbps` all-to-all P2P mesh (0 = no mesh).
fn build(host_gbps: f64, mesh_gbps: f64) -> Platform {
    let mut b = TopologyBuilder::new();
    let cpu = b.cpu(
        0,
        MemSpec {
            capacity_bytes: 512 << 30,
            read_cap: gbps(140.0),
            write_cap: gbps(110.0),
            combined_cap: Some(gbps(150.0)),
        },
    );
    let gpus: Vec<_> = (0..4).map(|i| b.gpu(i, GpuModel::A100)).collect();
    for &g in &gpus {
        b.link_full(
            cpu,
            g,
            LinkKind::Custom,
            gbps(host_gbps),
            gbps(host_gbps),
            Some(gbps(host_gbps * 1.7)),
        );
    }
    if mesh_gbps > 0.0 {
        for i in 0..4 {
            for j in i + 1..4 {
                b.link(
                    gpus[i],
                    gpus[j],
                    LinkKind::NvLink2 { bricks: 2 },
                    gbps(mesh_gbps),
                );
            }
        }
    }
    Platform::custom(b.build(), CpuModel::Epyc7742)
}

fn durations(platform: &Platform, n: u64, input: &[u32]) -> (f64, f64) {
    let fidelity = Fidelity::Sampled { scale: PAPER_SCALE };
    let mut a = input.to_vec();
    let p2p = p2p_sort(
        platform,
        &P2pConfig {
            fidelity,
            ..P2pConfig::new(4)
        },
        &mut a,
        n,
    );
    let mut b = input.to_vec();
    let het = het_sort(
        platform,
        &HetConfig {
            fidelity,
            ..HetConfig::new(4)
        },
        &mut b,
        n,
    );
    (p2p.total.as_secs_f64(), het.total.as_secs_f64())
}

/// Sweep the P2P mesh bandwidth at fixed host links, then sweep the host
/// bandwidth at a fixed mesh.
#[must_use]
pub fn run() -> ExperimentResult {
    let mut r = ExperimentResult::new(
        "whatif",
        "What-if: P2P-vs-HET crossover on synthetic 4-GPU platforms (2B keys)",
        "s",
    );
    let n = 2_000_000_000u64 / (PAPER_SCALE * 8) * (PAPER_SCALE * 8);
    let input: Vec<u32> = generate(Distribution::Uniform, (n / PAPER_SCALE) as usize, 71);

    // Sweep 1: mesh bandwidth at PCIe-4.0-class host links (25 GB/s).
    for mesh in [0.0, 12.0, 25.0, 50.0, 100.0, 200.0] {
        let p = build(25.0, mesh);
        let (p2p, het) = durations(&p, n, &input);
        r.push_ours(format!("host 25 GB/s, mesh {mesh:>3} GB/s: P2P sort"), p2p);
        r.push_ours(format!("host 25 GB/s, mesh {mesh:>3} GB/s: HET sort"), het);
    }
    // Sweep 2: host bandwidth at an NVLink-class mesh (100 GB/s).
    for host in [12.0, 25.0, 50.0, 72.0, 100.0] {
        let p = build(host, 100.0);
        let (p2p, het) = durations(&p, n, &input);
        r.push_ours(format!("host {host:>3} GB/s, mesh 100 GB/s: P2P sort"), p2p);
        r.push_ours(format!("host {host:>3} GB/s, mesh 100 GB/s: HET sort"), het);
    }
    r.note(
        "Shapes to look for: (1) HET sort is flat in mesh bandwidth while \
         P2P sort improves until the swap phase stops mattering; (2) both \
         algorithms scale with host bandwidth — the paper's conclusion that \
         CPU-GPU transfers, not P2P, are the scaling frontier.",
    );
    r
}

#[cfg(test)]
mod tests {
    #[test]
    fn het_flat_in_mesh_and_p2p_improves() {
        let r = super::run();
        let get = |label: &str| {
            r.rows
                .iter()
                .find(|row| row.label == label)
                .unwrap_or_else(|| panic!("{label} missing"))
                .ours
        };
        // HET is mesh-insensitive.
        let het_no_mesh = get("host 25 GB/s, mesh   0 GB/s: HET sort");
        let het_big_mesh = get("host 25 GB/s, mesh 200 GB/s: HET sort");
        assert!((het_no_mesh / het_big_mesh - 1.0).abs() < 0.02);
        // P2P with a big mesh beats P2P with a small one.
        let p2p_small = get("host 25 GB/s, mesh  12 GB/s: P2P sort");
        let p2p_big = get("host 25 GB/s, mesh 200 GB/s: P2P sort");
        assert!(p2p_big < p2p_small);
        // With a big mesh, P2P beats HET; host-bandwidth sweep helps both.
        assert!(p2p_big < het_big_mesh);
        let p2p_slow_host = get("host  12 GB/s, mesh 100 GB/s: P2P sort");
        let p2p_fast_host = get("host 100 GB/s, mesh 100 GB/s: P2P sort");
        assert!(p2p_fast_host < p2p_slow_host / 2.0);
    }
}
