//! Table 2: single-GPU sorting primitives on the NVIDIA A100 (1 B u32).
//!
//! Runs each modeled primitive through the virtual runtime (the data really
//! gets sorted — at sampled fidelity — by the primitive's functional
//! counterpart) and reports the kernel duration.

use crate::ExperimentResult;
use msort_data::{generate, Distribution};
use msort_gpu::{Fidelity, GpuSystem, Phase};
use msort_sim::GpuSortAlgo;
use msort_topology::Platform;

/// Sort duration of one primitive for `n` logical u32 keys on a DGX A100
/// GPU (kernel only — no transfers, matching the paper's Table 2).
#[must_use]
pub fn gpu_sort_duration_ms(algo: GpuSortAlgo, n: u64, scale: u64) -> f64 {
    let p = Platform::dgx_a100();
    let mut sys: GpuSystem<'_, u32> = GpuSystem::new(&p, Fidelity::Sampled { scale });
    let n = n / scale * scale;
    let phys = (n / scale) as usize;
    let host = sys
        .world_mut()
        .import_host(0, generate(Distribution::Uniform, phys, 42), n);
    let dev = sys.world_mut().alloc_gpu(0, n);
    let aux = sys.world_mut().alloc_gpu(0, n);
    let s = sys.stream();
    let up = sys.memcpy(s, host, 0, dev, 0, n, &[], Phase::HtoD);
    let sort = sys.gpu_sort(s, algo, dev, (0, n), aux, &[up]);
    sys.synchronize();
    let (start, end) = sys.op_span(sort).expect("sort ran");
    assert!(msort_data::is_sorted(sys.world().slice(dev, 0, n)));
    end.since(start).as_millis_f64()
}

/// Run Table 2.
#[must_use]
pub fn run() -> ExperimentResult {
    let mut r = ExperimentResult::new("table2", "NVIDIA A100 GPU sorting 1B integers (4 GB)", "ms");
    let n: u64 = 1_000_000_000;
    let scale = 1 << 20;
    for (algo, paper) in [
        (GpuSortAlgo::ThrustLike, 36.0),
        (GpuSortAlgo::CubLike, 36.0),
        (GpuSortAlgo::StehleLike, 57.0),
        (GpuSortAlgo::MgpuLike, 200.0),
    ] {
        r.push(
            format!("{} ({:?})", algo.name(), algo),
            paper,
            gpu_sort_duration_ms(algo, n, scale),
        );
    }
    r.note(
        "Each primitive functionally sorts the (sampled) data with its own \
         algorithm family: LSB radix for Thrust/CUB, in-place MSB radix for \
         Stehle, merge-path merge sort for MGPU.",
    );
    r
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table2_reproduces_within_tolerance() {
        let r = run();
        assert!(r.mean_abs_delta().unwrap() < 3.0, "{}", r.to_markdown());
    }

    #[test]
    fn thrust_equals_cub() {
        let t = gpu_sort_duration_ms(GpuSortAlgo::ThrustLike, 1 << 24, 1 << 10);
        let c = gpu_sort_duration_ms(GpuSortAlgo::CubLike, 1 << 24, 1 << 10);
        assert_eq!(t, c);
    }
}
