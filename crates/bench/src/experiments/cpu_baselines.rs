//! The paper's CPU-baseline bake-off (Section 6, "CPU Sort Baseline").
//!
//! The authors benchmark gnu_parallel sort, TBB, parallel `std::sort`,
//! PARADIS, and the Polychroniou & Ross LSB radix sort, and pick PARADIS
//! as the platform-independent baseline (the SIMD LSB radix wins only for
//! small inputs on x86). We repeat the bake-off with our real
//! implementations — wall clock on the machine running the harness — and
//! report the modeled PARADIS rates used in the simulated figures.

use crate::ExperimentResult;
use msort_cpu::{parallel_lsb_radix_sort, parallel_sort, ParadisConfig};
use msort_data::{generate, Distribution};
use msort_sim::CostModel;
use msort_topology::PlatformId;
use std::time::Instant;

fn time_sort(label: &str, r: &mut ExperimentResult, n: usize, f: impl Fn(&mut Vec<u32>)) {
    let input: Vec<u32> = generate(Distribution::Uniform, n, 2022);
    // Warm up once, then take the best of 3 (tiny container, noisy clock).
    let mut best = f64::MAX;
    for _ in 0..3 {
        let mut data = input.clone();
        let start = Instant::now();
        f(&mut data);
        best = best.min(start.elapsed().as_secs_f64());
        assert!(msort_data::is_sorted(&data), "{label} failed to sort");
    }
    r.push_ours(
        format!("{label}: {n} keys [M keys/s]"),
        n as f64 / best / 1e6,
    );
}

/// Run the bake-off.
#[must_use]
pub fn run() -> ExperimentResult {
    let mut r = ExperimentResult::new(
        "cpu-baselines",
        "CPU sorting baselines: real wall-clock on this host + modeled rates",
        "M keys/s",
    );
    let threads = msort_cpu::default_threads();
    for n in [1usize << 18, 1 << 21] {
        time_sort("std::sort_unstable", &mut r, n, |d| d.sort_unstable());
        time_sort(
            "parallel library sort (gnu_parallel-style)",
            &mut r,
            n,
            |d| parallel_sort(d),
        );
        time_sort("PARADIS", &mut r, n, |d| paradis_sort_threads(d, threads));
        time_sort("parallel LSB radix (Polychroniou-style)", &mut r, n, |d| {
            parallel_lsb_radix_sort(d, threads)
        });
    }
    for id in PlatformId::paper_set() {
        let m = CostModel::for_platform_id(id);
        r.push_ours(
            format!("modeled PARADIS rate on the {}", id.name()),
            m.cpu.paradis_keys_per_sec / 1e6,
        );
    }
    r.note(
        "Wall-clock rows depend on the harness host (the container the \
         tests run in is not a 128-core EPYC); the modeled rows are the \
         calibrated per-platform rates the simulated figures use.",
    );
    r
}

fn paradis_sort_threads(data: &mut [u32], threads: usize) {
    msort_cpu::paradis::paradis_sort_with(
        data,
        ParadisConfig {
            threads,
            small_sort_threshold: 256,
        },
    );
}

#[cfg(test)]
mod tests {
    #[test]
    fn bakeoff_runs_and_everything_sorts() {
        let r = super::run();
        // 8 wall-clock rows + 3 modeled rows.
        assert_eq!(r.rows.len(), 11);
        assert!(r.rows.iter().all(|row| row.ours > 0.0));
    }
}
