//! One module per table/figure of the paper, plus the extra ablations.

pub mod ablations;
pub mod conclusion;
pub mod cpu_baselines;
pub mod datatypes;
pub mod distributions;
pub mod extensions;
pub mod fig1;
pub mod large;
pub mod scaling;
pub mod table1;
pub mod table2;
pub mod transfers;
pub mod whatif;

use msort_data::GIB;

/// The transfer benchmarks copy 4 GB buffers, like the paper.
pub(crate) const TRANSFER_BYTES: u64 = 4 * GIB;

/// Round a logical key count down to a multiple of `align` (sampling and
/// chunk alignment).
pub(crate) fn align_down(n: u64, align: u64) -> u64 {
    n / align * align
}
