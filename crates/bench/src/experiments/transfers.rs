//! Figures 2–7: CPU-GPU and P2P data transfer benchmarks.
//!
//! The measurement loop is the paper's: 4 GB pinned buffers, one flow per
//! copy stream, all flows start at `t = 0`, reported value is total bytes
//! over the makespan in decimal GB/s. Serial = one flow; parallel = one
//! flow per GPU; bidirectional = one flow per direction.

use super::TRANSFER_BYTES;
use crate::ExperimentResult;
use msort_sim::flows::measure_concurrent;
use msort_topology::{Endpoint, Platform, Route};

/// Transfer directions of the CPU-GPU benchmarks.
#[derive(Clone, Copy)]
enum Dir {
    HtoD,
    DtoH,
    Bidi,
}

fn cpu_gpu_routes(platform: &Platform, gpus: &[usize], dir: Dir) -> Vec<Route> {
    let mut routes = Vec::new();
    for &g in gpus {
        match dir {
            Dir::HtoD => routes.push(route(platform, Endpoint::HOST0, Endpoint::gpu(g))),
            Dir::DtoH => routes.push(route(platform, Endpoint::gpu(g), Endpoint::HOST0)),
            Dir::Bidi => {
                routes.push(route(platform, Endpoint::HOST0, Endpoint::gpu(g)));
                routes.push(route(platform, Endpoint::gpu(g), Endpoint::HOST0));
            }
        }
    }
    routes
}

fn route(platform: &Platform, src: Endpoint, dst: Endpoint) -> Route {
    msort_topology::route::route(&platform.topology, src, dst).expect("connected")
}

/// Aggregate GB/s for one scenario.
fn gbps_for(platform: &Platform, routes: &[Route]) -> f64 {
    measure_concurrent(platform, routes, TRANSFER_BYTES).throughput_gbps()
}

fn cpu_gpu_case(platform: &Platform, gpus: &[usize], dir: Dir) -> f64 {
    gbps_for(platform, &cpu_gpu_routes(platform, gpus, dir))
}

/// Bidirectional P2P pairs: one flow per direction per pair.
fn p2p_pairs(platform: &Platform, pairs: &[(usize, usize)]) -> f64 {
    let mut routes = Vec::new();
    for &(a, b) in pairs {
        routes.push(route(platform, Endpoint::gpu(a), Endpoint::gpu(b)));
        routes.push(route(platform, Endpoint::gpu(b), Endpoint::gpu(a)));
    }
    gbps_for(platform, &routes)
}

/// One-directional serial P2P copy.
fn p2p_serial(platform: &Platform, a: usize, b: usize) -> f64 {
    gbps_for(
        platform,
        &[route(platform, Endpoint::gpu(a), Endpoint::gpu(b))],
    )
}

/// Figure 2: CPU-GPU data transfers on the IBM AC922.
#[must_use]
pub fn fig2() -> ExperimentResult {
    let p = Platform::ibm_ac922();
    let mut r = ExperimentResult::new("fig2", "CPU-GPU data transfers on the IBM AC922", "GB/s");
    // (a) serial, per GPU locality class.
    for (label, gpu, paper) in [
        ("serial {0,1} HtoD", 0, 72.0),
        ("serial {2,3} HtoD", 2, 41.0),
    ] {
        r.push(label, paper, cpu_gpu_case(&p, &[gpu], Dir::HtoD));
    }
    for (label, gpu, paper) in [
        ("serial {0,1} DtoH", 0, 72.0),
        ("serial {2,3} DtoH", 2, 35.0),
    ] {
        r.push(label, paper, cpu_gpu_case(&p, &[gpu], Dir::DtoH));
    }
    for (label, gpu, paper) in [
        ("serial {0,1} HtoD/DtoH", 0, 127.0),
        ("serial {2,3} HtoD/DtoH", 2, 65.0),
    ] {
        r.push(label, paper, cpu_gpu_case(&p, &[gpu], Dir::Bidi));
    }
    // (b) parallel.
    let sets: [(&str, &[usize]); 3] = [
        ("(0,1)", &[0, 1]),
        ("(2,3)", &[2, 3]),
        ("(0,1,2,3)", &[0, 1, 2, 3]),
    ];
    let paper_vals = [
        [141.0, 109.0, 136.0],
        [39.0, 30.0, 53.0],
        [74.0, 54.0, 98.0],
    ];
    for ((name, set), paper) in sets.iter().zip(paper_vals) {
        r.push(
            format!("parallel {name} HtoD"),
            paper[0],
            cpu_gpu_case(&p, set, Dir::HtoD),
        );
        r.push(
            format!("parallel {name} DtoH"),
            paper[1],
            cpu_gpu_case(&p, set, Dir::DtoH),
        );
        r.push(
            format!("parallel {name} HtoD/DtoH"),
            paper[2],
            cpu_gpu_case(&p, set, Dir::Bidi),
        );
    }
    r.note(
        "X-Bus sustained rates (41/35 GB/s) and the NUMA memory caps are \
         calibrated from the paper's serial bars; all parallel and \
         bidirectional bars are model predictions.",
    );
    r
}

/// Figure 3: CPU-GPU data transfers on the DELTA D22x.
#[must_use]
pub fn fig3() -> ExperimentResult {
    let p = Platform::delta_d22x();
    let mut r = ExperimentResult::new("fig3", "CPU-GPU data transfers on the DELTA D22x", "GB/s");
    for (label, gpu, dir, paper) in [
        ("serial {0,1} HtoD", 0, Dir::HtoD, 12.0),
        ("serial {2,3} HtoD", 2, Dir::HtoD, 12.0),
        ("serial {0,1} DtoH", 0, Dir::DtoH, 13.0),
        ("serial {2,3} DtoH", 2, Dir::DtoH, 13.0),
        ("serial {0,1} HtoD/DtoH", 0, Dir::Bidi, 20.0),
        ("serial {2,3} HtoD/DtoH", 2, Dir::Bidi, 20.0),
    ] {
        r.push(label, paper, cpu_gpu_case(&p, &[gpu], dir));
    }
    let sets: [(&str, &[usize]); 3] = [
        ("(0,1)", &[0, 1]),
        ("(2,3)", &[2, 3]),
        ("(0,1,2,3)", &[0, 1, 2, 3]),
    ];
    let paper_vals = [[24.0, 26.0, 40.0], [24.0, 25.0, 40.0], [49.0, 51.0, 79.0]];
    for ((name, set), paper) in sets.iter().zip(paper_vals) {
        r.push(
            format!("parallel {name} HtoD"),
            paper[0],
            cpu_gpu_case(&p, set, Dir::HtoD),
        );
        r.push(
            format!("parallel {name} DtoH"),
            paper[1],
            cpu_gpu_case(&p, set, Dir::DtoH),
        );
        r.push(
            format!("parallel {name} HtoD/DtoH"),
            paper[2],
            cpu_gpu_case(&p, set, Dir::Bidi),
        );
    }
    r.note("PCIe 3.0 shows no NUMA effects; parallel copies scale 4x (exclusive switches).");
    r
}

/// Figure 4: CPU-GPU data transfers on the DGX A100.
#[must_use]
pub fn fig4() -> ExperimentResult {
    let p = Platform::dgx_a100();
    let mut r = ExperimentResult::new("fig4", "CPU-GPU data transfers on the DGX A100", "GB/s");
    let cases: [(&str, &[usize], [f64; 3]); 7] = [
        ("{0-3} serial", &[0], [24.0, 24.0, 39.0]),
        ("{4-7} serial", &[4], [24.0, 25.0, 32.0]),
        ("(0,1)", &[0, 1], [25.0, 26.0, 29.0]),
        ("(0,2)", &[0, 2], [49.0, 47.0, 82.0]),
        ("(4,6)", &[4, 6], [46.0, 47.0, 61.0]),
        ("(0,2,4,6)", &[0, 2, 4, 6], [87.0, 92.0, 113.0]),
        ("(0-7)", &[0, 1, 2, 3, 4, 5, 6, 7], [89.0, 104.0, 111.0]),
    ];
    for (name, set, paper) in cases {
        r.push(
            format!("{name} HtoD"),
            paper[0],
            cpu_gpu_case(&p, set, Dir::HtoD),
        );
        r.push(
            format!("{name} DtoH"),
            paper[1],
            cpu_gpu_case(&p, set, Dir::DtoH),
        );
        r.push(
            format!("{name} HtoD/DtoH"),
            paper[2],
            cpu_gpu_case(&p, set, Dir::Bidi),
        );
    }
    r.note(
        "GPU pairs (0,1)(2,3)(4,5)(6,7) share one PCIe switch uplink, so \
         (0,1) does not scale while (0,2) does — the paper's scalability \
         ceiling. The paper's 32 GB/s remote serial bidi bar is the \
         'discrepancy to be investigated' (we predict the local 39).",
    );
    r
}

/// Figure 5: P2P data transfers on the IBM AC922.
#[must_use]
pub fn fig5() -> ExperimentResult {
    let p = Platform::ibm_ac922();
    let mut r = ExperimentResult::new("fig5", "P2P data transfers on the IBM AC922", "GB/s");
    r.push("serial 0->1", 72.0, p2p_serial(&p, 0, 1));
    r.push("serial 0->2", 32.0, p2p_serial(&p, 0, 2));
    r.push("serial 0->3", 33.0, p2p_serial(&p, 0, 3));
    r.push("parallel 0<->1", 145.0, p2p_pairs(&p, &[(0, 1)]));
    r.push("parallel 2<->3", 145.0, p2p_pairs(&p, &[(2, 3)]));
    r.push(
        "parallel 0<->3, 1<->2",
        53.0,
        p2p_pairs(&p, &[(0, 3), (1, 2)]),
    );
    r.note(
        "Host-traversing P2P streams cap at 32 GB/s (calibrated); the \
         four-stream collapse to 53 GB/s is predicted by the X-Bus duplex \
         weight.",
    );
    r
}

/// Figure 6: P2P data transfers on the DELTA D22x.
#[must_use]
pub fn fig6() -> ExperimentResult {
    let p = Platform::delta_d22x();
    let mut r = ExperimentResult::new("fig6", "P2P data transfers on the DELTA D22x", "GB/s");
    r.push("serial 0->1", 48.0, p2p_serial(&p, 0, 1));
    r.push("serial 0->2", 48.0, p2p_serial(&p, 0, 2));
    r.push("serial 0->3", 9.0, p2p_serial(&p, 0, 3));
    r.push("parallel 0<->1", 97.0, p2p_pairs(&p, &[(0, 1)]));
    r.push("parallel 2<->3", 97.0, p2p_pairs(&p, &[(2, 3)]));
    r.push(
        "parallel 0<->3, 1<->2",
        30.0,
        p2p_pairs(&p, &[(0, 3), (1, 2)]),
    );
    r.note("Pairs (0,3) and (1,2) have no direct NVLink: they cross PCIe 3.0 twice.");
    r
}

/// Figure 7: P2P data transfers on the DGX A100.
#[must_use]
pub fn fig7() -> ExperimentResult {
    let p = Platform::dgx_a100();
    let mut r = ExperimentResult::new("fig7", "P2P data transfers on the DGX A100", "GB/s");
    r.push("serial i->j", 279.0, p2p_serial(&p, 0, 5));
    r.push("parallel 0<->1", 530.0, p2p_pairs(&p, &[(0, 1)]));
    r.push("parallel 0<->2", 453.0, p2p_pairs(&p, &[(0, 2)]));
    r.push(
        "parallel 0<->6, 2<->4",
        894.0,
        p2p_pairs(&p, &[(0, 6), (2, 4)]),
    );
    r.push(
        "parallel 0<->3, 1<->2",
        1060.0,
        p2p_pairs(&p, &[(0, 3), (1, 2)]),
    );
    r.push(
        "parallel all 8 (0<->7 ... 3<->4)",
        2116.0,
        p2p_pairs(&p, &[(0, 7), (1, 6), (2, 5), (3, 4)]),
    );
    r.note(
        "NVSwitch is uniform in the model (265 GB/s per GPU per direction); \
         the paper's 530-vs-453 spread between equivalent pairs is \
         measurement variance the model cannot (and should not) encode.",
    );
    r
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig2_deltas_are_small() {
        let r = fig2();
        assert!(r.mean_abs_delta().unwrap() < 12.0, "{:?}", r.to_markdown());
    }

    #[test]
    fn fig3_deltas_are_small() {
        let r = fig3();
        assert!(r.mean_abs_delta().unwrap() < 10.0, "{}", r.to_markdown());
    }

    #[test]
    fn fig5_and_fig6_deltas() {
        assert!(
            fig5().mean_abs_delta().unwrap() < 10.0,
            "{}",
            fig5().to_markdown()
        );
        assert!(
            fig6().mean_abs_delta().unwrap() < 10.0,
            "{}",
            fig6().to_markdown()
        );
    }

    #[test]
    fn fig7_shape_holds() {
        let r = fig7();
        // 8-GPU all-to-all must scale ~8x over serial.
        let serial = r.rows[0].ours;
        let all8 = r.rows.last().unwrap().ours;
        assert!(all8 / serial > 7.0, "{}", r.to_markdown());
    }
}
