//! Figures 12–14: multi-GPU sort performance per platform.
//!
//! Each figure has two parts per algorithm: the data-size sweep (total
//! sort duration for increasing key counts per GPU count) and the phase
//! breakdown at 2 B keys.

use super::align_down;
use crate::{ExperimentResult, PAPER_SCALE};
use msort_core::{het_sort, p2p_sort, single_gpu_sort, HetConfig, P2pConfig, SortReport};
use msort_data::{generate, Distribution};
use msort_gpu::Fidelity;
use msort_sim::GpuSortAlgo;
use msort_topology::{Platform, PlatformId};

/// GPU counts evaluated per platform (Figures 12–14).
fn gpu_counts(id: PlatformId) -> &'static [usize] {
    match id {
        PlatformId::DgxA100 => &[1, 2, 4, 8],
        _ => &[1, 2, 4],
    }
}

/// Alignment that keeps every configuration's chunks on whole samples.
fn alignment(id: PlatformId) -> u64 {
    let max_g = *gpu_counts(id).last().expect("non-empty") as u64;
    PAPER_SCALE * max_g
}

fn run_one(platform: &Platform, algo: &str, gpus: usize, n: u64, input: &[u32]) -> SortReport {
    let fidelity = Fidelity::Sampled { scale: PAPER_SCALE };
    let mut data = input.to_vec();
    match (algo, gpus) {
        (_, 1) => single_gpu_sort(platform, fidelity, GpuSortAlgo::ThrustLike, &mut data, n),
        ("p2p", g) => {
            let cfg = P2pConfig {
                fidelity,
                ..P2pConfig::new(g)
            };
            p2p_sort(platform, &cfg, &mut data, n)
        }
        ("het", g) => {
            let cfg = HetConfig {
                fidelity,
                ..HetConfig::new(g)
            };
            het_sort(platform, &cfg, &mut data, n)
        }
        _ => unreachable!("algo is 'p2p' or 'het'"),
    }
}

/// The per-GPU-count maximum in-core data size (keys): chunk + aux per GPU.
fn max_keys(platform: &Platform, gpus: usize) -> u64 {
    let per_gpu = platform.topology.gpu_memory_bytes(0) / 2 / 4;
    per_gpu * gpus as u64
}

/// Sweep + breakdown for one algorithm on one platform.
fn figure(
    platform: &Platform,
    algo: &str,
    sweep_b_keys: &[f64],
    paper: &PaperRefs,
) -> Vec<ExperimentResult> {
    let id = platform.id;
    let align = alignment(id);
    let fig = match id {
        PlatformId::IbmAc922 => "fig12",
        PlatformId::DeltaD22x => "fig13",
        PlatformId::DgxA100 => "fig14",
        PlatformId::Custom => "figX",
    };
    let algo_label = if algo == "p2p" {
        "P2P sort"
    } else {
        "HET sort"
    };

    // (top) data size sweep.
    let mut sweep = ExperimentResult::new(
        format!("{fig}{}-sweep", if algo == "p2p" { "a" } else { "b" }),
        format!("{algo_label} sweep on the {}", id.name()),
        "s",
    );
    for &g in gpu_counts(id) {
        for &b in sweep_b_keys {
            let n = align_down((b * 1e9) as u64, align);
            if n == 0 || n > max_keys(platform, g) {
                continue;
            }
            let input: Vec<u32> = generate(Distribution::Uniform, (n / PAPER_SCALE) as usize, 7);
            let report = run_one(platform, algo, g, n, &input);
            sweep.push_ours(
                format!("{algo_label} {g} GPU(s), {b}B keys"),
                report.total.as_secs_f64(),
            );
        }
    }
    sweep.note("Line-plot points; the paper reports no exact numbers for these.");

    // (bottom) breakdown at 2B keys.
    let mut breakdown = ExperimentResult::new(
        format!("{fig}{}-breakdown", if algo == "p2p" { "a" } else { "b" }),
        format!("{algo_label} 2B-key breakdown on the {}", id.name()),
        "s",
    );
    let n = align_down(2_000_000_000, align);
    let input: Vec<u32> = generate(Distribution::Uniform, (n / PAPER_SCALE) as usize, 7);
    for (&g, &paper_total) in gpu_counts(id).iter().zip(paper.totals(algo)) {
        let report = run_one(platform, algo, g, n, &input);
        breakdown.push(
            format!("{algo_label} {g} GPU(s) total"),
            paper_total,
            report.total.as_secs_f64(),
        );
        breakdown.push_ours(
            format!("  {g} GPU(s) HtoD"),
            report.phases.htod.as_secs_f64(),
        );
        breakdown.push_ours(
            format!("  {g} GPU(s) sort"),
            report.phases.sort.as_secs_f64(),
        );
        breakdown.push_ours(
            format!("  {g} GPU(s) merge"),
            report.phases.merge.as_secs_f64(),
        );
        breakdown.push_ours(
            format!("  {g} GPU(s) DtoH"),
            report.phases.dtoh.as_secs_f64(),
        );
    }
    if id == PlatformId::IbmAc922 && algo == "p2p" {
        breakdown.note(
            "Known deviation: at 4 GPUs the simulated X-Bus merge stage is \
             ~25% faster than the paper's (fluid flows have no per-swap \
             launch/sync overhead), pulling the 4-GPU total ~14% low. The \
             shape — 4 GPUs slower than 2 because of the host-traversing \
             global stage — is preserved.",
        );
    }
    vec![sweep, breakdown]
}

/// Paper-reported 2B-key totals per GPU count.
struct PaperRefs {
    p2p: &'static [f64],
    het: &'static [f64],
}

impl PaperRefs {
    fn totals(&self, algo: &str) -> &'static [f64] {
        if algo == "p2p" {
            self.p2p
        } else {
            self.het
        }
    }
}

/// Figure 12: the IBM AC922.
#[must_use]
pub fn fig12() -> Vec<ExperimentResult> {
    let p = Platform::ibm_ac922();
    let sweep = [0.5, 1.0, 2.0, 4.0, 8.0];
    let refs = PaperRefs {
        p2p: &[0.35, 0.24, 0.45],
        het: &[0.35, 0.35, 0.45],
    };
    let mut out = figure(&p, "p2p", &sweep, &refs);
    out.extend(figure(&p, "het", &sweep, &refs));
    out
}

/// Figure 13: the DELTA D22x.
#[must_use]
pub fn fig13() -> Vec<ExperimentResult> {
    let p = Platform::delta_d22x();
    let sweep = [0.5, 1.0, 2.0, 4.0, 8.0];
    let refs = PaperRefs {
        p2p: &[1.37, 0.74, 0.64],
        het: &[1.37, 0.90, 0.64],
    };
    let mut out = figure(&p, "p2p", &sweep, &refs);
    out.extend(figure(&p, "het", &sweep, &refs));
    out
}

/// Figure 14: the DGX A100.
#[must_use]
pub fn fig14() -> Vec<ExperimentResult> {
    let p = Platform::dgx_a100();
    let sweep = [2.0, 4.0, 8.0, 16.0];
    let refs = PaperRefs {
        p2p: &[0.72, 0.38, 0.25, 0.24],
        het: &[0.72, 0.56, 0.39, 0.37],
    };
    let mut out = figure(&p, "p2p", &sweep, &refs);
    out.extend(figure(&p, "het", &sweep, &refs));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig12_breakdown_totals_close() {
        let results = fig12();
        // results[1] is the P2P breakdown, results[3] the HET breakdown.
        for r in [&results[1], &results[3]] {
            assert!(r.mean_abs_delta().unwrap() < 20.0, "{}", r.to_markdown());
        }
    }

    #[test]
    fn fig14_p2p_beats_het_everywhere() {
        let results = fig14();
        let p2p = &results[1];
        let het = &results[3];
        for (a, b) in p2p
            .rows
            .iter()
            .zip(het.rows.iter())
            .filter(|(a, _)| a.label.contains("total") && !a.label.contains("1 GPU"))
        {
            assert!(a.ours <= b.ours, "{} vs {}", a.label, b.label);
        }
    }
}
