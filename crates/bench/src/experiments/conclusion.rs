//! Section 6.1.4's cross-platform conclusion, quantified: "The IBM AC922
//! achieves the same sort performance with only two GPUs as the DGX A100
//! with eight GPUs even though the DGX A100 has faster GPUs" — because the
//! AC922 is the only system with NVLink CPU-GPU transfers. This experiment
//! puts the best configuration of every platform side by side.

use super::align_down;
use crate::{ExperimentResult, PAPER_SCALE};
use msort_core::{p2p_sort, P2pConfig, SortReport};
use msort_data::{generate, Distribution};
use msort_gpu::Fidelity;
use msort_topology::{Platform, PlatformId};

fn best_run(platform: &Platform, g: usize, n: u64, input: &[u32]) -> SortReport {
    let mut data = input.to_vec();
    let cfg = P2pConfig {
        fidelity: Fidelity::Sampled { scale: PAPER_SCALE },
        ..P2pConfig::new(g)
    };
    p2p_sort(platform, &cfg, &mut data, n)
}

/// Cross-platform comparison at 2 B keys.
#[must_use]
pub fn run() -> ExperimentResult {
    let mut r = ExperimentResult::new(
        "conclusion",
        "Cross-platform: best P2P sort configuration per system (2B keys)",
        "s",
    );
    let n = align_down(2_000_000_000, PAPER_SCALE * 8);
    let input: Vec<u32> = generate(Distribution::Uniform, (n / PAPER_SCALE) as usize, 61);

    // The paper's 2B-key bests: AC922 2 GPUs 0.24 s; DGX 8 GPUs 0.24 s;
    // DELTA 4 GPUs 0.64 s.
    let ac = Platform::ibm_ac922();
    r.push(
        "IBM AC922, 2 GPUs (NVLink CPU-GPU)",
        0.24,
        best_run(&ac, 2, n, &input).total.as_secs_f64(),
    );
    let dgx = Platform::dgx_a100();
    r.push(
        "DGX A100, 8 GPUs (PCIe 4.0 CPU-GPU)",
        0.24,
        best_run(&dgx, 8, n, &input).total.as_secs_f64(),
    );
    let delta = Platform::delta_d22x();
    r.push(
        "DELTA D22x, 4 GPUs (PCIe 3.0 CPU-GPU)",
        0.64,
        best_run(&delta, 4, n, &input).total.as_secs_f64(),
    );

    // Per-platform transfer share of the end-to-end duration — the basis
    // of the paper's "CPU-GPU interconnects are the key deciding factor".
    for id in PlatformId::paper_set() {
        let p = Platform::paper(id);
        let g = if id == PlatformId::DgxA100 { 8 } else { 2 };
        let report = best_run(&p, g, n, &input);
        let transfer = report.phases.htod + report.phases.dtoh;
        r.push_ours(
            format!("{}: transfer share of total [%]", id.name()),
            transfer.as_secs_f64() / report.total.as_secs_f64() * 100.0,
        );
    }
    r.note(
        "Two NVLink-fed V100s match eight PCIe-4.0-fed A100s end to end: \
         faster GPUs cannot buy back slow CPU-GPU transfers.",
    );
    r
}

#[cfg(test)]
mod tests {
    #[test]
    fn ac922_two_gpus_match_dgx_eight() {
        let r = super::run();
        let ac = r.rows[0].ours;
        let dgx = r.rows[1].ours;
        let ratio = ac / dgx;
        assert!(
            (0.85..=1.25).contains(&ratio),
            "AC922x2 {ac} vs DGXx8 {dgx}"
        );
        // And the DELTA is far behind both.
        assert!(r.rows[2].ours > ac * 1.8);
    }
}
