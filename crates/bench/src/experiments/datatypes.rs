//! Section 6.3 data-type experiment: sorting 8 GB of 32-bit vs 64-bit
//! keys on the A100 (DGX) and V100 (AC922).
//!
//! The paper sorts 4 B ints/floats and 2 B doubles/longs — 8 GB either
//! way — and finds the widths within 95% of each other on the A100 while
//! the V100 sorts 32-bit data in 83–88% of the 64-bit time.

use super::align_down;
use crate::{ExperimentResult, PAPER_SCALE};
use msort_core::{p2p_sort, P2pConfig};
use msort_data::{generate, Distribution, SortKey};
use msort_gpu::Fidelity;
use msort_topology::{Platform, PlatformId};

fn run_typed<K: SortKey>(platform: &Platform, n: u64, seed: u64) -> f64 {
    let scale = PAPER_SCALE;
    let input: Vec<K> = generate(Distribution::Uniform, (n / scale) as usize, seed);
    let mut data = input;
    let cfg = P2pConfig {
        fidelity: Fidelity::Sampled { scale },
        ..P2pConfig::new(2)
    };
    p2p_sort(platform, &cfg, &mut data, n).total.as_secs_f64()
}

/// Run the data-type comparison.
#[must_use]
pub fn run() -> ExperimentResult {
    let mut r = ExperimentResult::new(
        "datatypes",
        "Sorting 8 GB of 32-bit vs 64-bit keys (P2P sort, 2 GPUs)",
        "s",
    );
    let n32 = align_down(4_000_000_000, PAPER_SCALE * 2);
    let n64 = align_down(2_000_000_000, PAPER_SCALE * 2);
    for id in [PlatformId::DgxA100, PlatformId::IbmAc922] {
        let p = Platform::paper(id);
        let gpu = p.topology.gpu_model(0).name();
        let t_u32 = run_typed::<u32>(&p, n32, 1);
        let t_f32 = run_typed::<f32>(&p, n32, 2);
        let t_u64 = run_typed::<u64>(&p, n64, 3);
        let t_f64 = run_typed::<f64>(&p, n64, 4);
        r.push_ours(format!("{gpu}: 4B u32"), t_u32);
        r.push_ours(format!("{gpu}: 4B f32"), t_f32);
        r.push_ours(format!("{gpu}: 2B u64"), t_u64);
        r.push_ours(format!("{gpu}: 2B f64"), t_f64);
        let ratio = t_u32 / t_u64;
        let paper_ratio = if id == PlatformId::DgxA100 {
            0.97
        } else {
            0.855
        };
        r.push(
            format!("{gpu}: 32-bit / 64-bit time ratio"),
            paper_ratio,
            ratio,
        );
    }
    r.note(
        "A100: widths within ~95% for equal bytes; V100: 32-bit takes \
         83-88% of the 64-bit time (the kernel-only ratios; end-to-end \
         ratios are damped by the width-independent transfer phases).",
    );
    r
}

#[cfg(test)]
mod tests {
    #[test]
    fn datatype_ratios_hold() {
        let r = super::run();
        let ratios: Vec<f64> = r
            .rows
            .iter()
            .filter(|row| row.label.contains("ratio"))
            .map(|row| row.ours)
            .collect();
        assert_eq!(ratios.len(), 2);
        // A100 ratio close to 1; V100 ratio visibly below the A100's.
        assert!(ratios[0] > 0.93 && ratios[0] <= 1.0, "{ratios:?}");
        assert!(ratios[1] < ratios[0], "{ratios:?}");
    }
}
