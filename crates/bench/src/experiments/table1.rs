//! Table 1: topology and specification of the evaluated platforms.
//!
//! There is nothing to measure here — the experiment renders our modeled
//! topologies so they can be compared line by line against the paper's
//! Table 1, and reports the theoretical link rates as sanity rows.

use crate::ExperimentResult;
use msort_topology::{Platform, PlatformId};

/// Render the three platforms.
#[must_use]
pub fn run() -> ExperimentResult {
    let mut r = ExperimentResult::new(
        "table1",
        "Topology and specification of the evaluated hardware platforms",
        "GB/s (theoretical per direction)",
    );
    for id in PlatformId::paper_set() {
        let p = Platform::paper(id);
        r.push_ours(format!("{}: GPUs", id.name()), p.gpu_count() as f64);
        r.push_ours(
            format!("{}: combined GPU memory [GiB]", id.name()),
            (p.combined_gpu_memory() >> 30) as f64,
        );
        for note_line in p.describe().lines() {
            r.note(note_line.to_owned());
        }
    }
    // Theoretical rates the paper quotes in Section 2 / Table 1.
    use msort_topology::LinkKind;
    r.push(
        "PCIe 3.0 x16",
        16.0,
        LinkKind::Pcie3.theoretical_per_dir() / 1e9,
    );
    r.push(
        "PCIe 4.0 x16",
        32.0,
        LinkKind::Pcie4.theoretical_per_dir() / 1e9,
    );
    r.push(
        "NVLink 2.0 x3",
        75.0,
        LinkKind::NvLink2 { bricks: 3 }.theoretical_per_dir() / 1e9,
    );
    r.push(
        "NVLink 3.0 (12 bricks)",
        300.0,
        LinkKind::NvLink3.theoretical_per_dir() / 1e9,
    );
    r.push("X-Bus", 64.0, LinkKind::XBus.theoretical_per_dir() / 1e9);
    r.push("UPI", 62.0, LinkKind::Upi.theoretical_per_dir() / 1e9);
    r.push(
        "Infinity Fabric",
        102.0,
        LinkKind::InfinityFabric.theoretical_per_dir() / 1e9,
    );
    r
}

#[cfg(test)]
mod tests {
    #[test]
    fn table1_matches_exactly() {
        let r = super::run();
        assert_eq!(r.mean_abs_delta().unwrap(), 0.0);
    }
}
