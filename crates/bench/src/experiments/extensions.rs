//! Section 7 extensions: the future-work directions the paper proposes,
//! implemented and measured.
//!
//! * **RP sort** — the partitioning-based multi-GPU sort with a single
//!   all-to-all key exchange ("would highly benefit systems with many
//!   NVSwitch-interconnected GPUs such as the DGX A100");
//! * **multi-hop P2P routing** — relaying host-traversing swaps through an
//!   intermediate GPU ("limited to systems where multi-hop traversals can
//!   benefit from high-speed interconnects (e.g., DELTA D22x)").

use super::align_down;
use crate::{ExperimentResult, PAPER_SCALE};
use msort_core::{p2p_sort, rp_sort, P2pConfig, RpConfig};
use msort_data::{generate, Distribution};
use msort_gpu::Fidelity;
use msort_topology::{Platform, PlatformId};

/// RP sort vs P2P sort across platforms and GPU counts.
#[must_use]
pub fn rp_vs_p2p() -> ExperimentResult {
    let scale = PAPER_SCALE;
    let fidelity = Fidelity::Sampled { scale };
    let mut r = ExperimentResult::new(
        "rp-sort",
        "Extension (paper §7): RP sort (one all-to-all) vs P2P sort (g-1 merge stages)",
        "s",
    );
    for (id, counts, b_keys) in [
        (PlatformId::DgxA100, &[4usize, 8][..], 8.0),
        (PlatformId::IbmAc922, &[4][..], 2.0),
        (PlatformId::DeltaD22x, &[4][..], 2.0),
    ] {
        let p = Platform::paper(id);
        let n = align_down((b_keys * 1e9) as u64, scale * 64);
        let input: Vec<u32> = generate(Distribution::Uniform, (n / scale) as usize, 41);
        for &g in counts {
            let mut a = input.clone();
            let p2p = p2p_sort(
                &p,
                &P2pConfig {
                    fidelity,
                    ..P2pConfig::new(g)
                },
                &mut a,
                n,
            );
            let mut b = input.clone();
            let rp = rp_sort(&p, &RpConfig::new(g).sampled(scale), &mut b, n);
            r.push_ours(
                format!(
                    "{}: P2P sort, {g} GPUs, {b_keys}B keys (merge {})",
                    id.name(),
                    p2p.phases.merge
                ),
                p2p.total.as_secs_f64(),
            );
            r.push_ours(
                format!(
                    "{}: RP sort, {g} GPUs, {b_keys}B keys (merge {})",
                    id.name(),
                    rp.phases.merge
                ),
                rp.total.as_secs_f64(),
            );
        }
    }
    r.note(
        "RP sort replaces the g-1 merge stages with one splitter-balanced \
         all-to-all plus a local k-way merge. On NVSwitch the exchange runs \
         at full per-GPU rate, shrinking the merge phase severalfold; on \
         host-traversing systems the cross-socket volume is the same as the \
         global merge stage's, so the gain reduces to skipping the \
         pair-wise stages.",
    );
    r
}

/// Multi-hop P2P routing on the DELTA D22x.
#[must_use]
pub fn multihop() -> ExperimentResult {
    let scale = PAPER_SCALE;
    let fidelity = Fidelity::Sampled { scale };
    let mut r = ExperimentResult::new(
        "multihop",
        "Extension (paper §7): multi-hop P2P routing over the DELTA's NVLink ring",
        "s",
    );
    let p = Platform::delta_d22x();
    let n = align_down(2_000_000_000, scale * 16);
    let input: Vec<u32> = generate(Distribution::Uniform, (n / scale) as usize, 43);

    let mut a = input.clone();
    let base = p2p_sort(
        &p,
        &P2pConfig {
            fidelity,
            ..P2pConfig::new(4)
        },
        &mut a,
        n,
    );
    let mut b = input.clone();
    let hopped = p2p_sort(
        &p,
        &P2pConfig {
            fidelity,
            ..P2pConfig::new(4)
        }
        .with_multi_hop(),
        &mut b,
        n,
    );
    r.push_ours(
        format!("P2P sort, host routing (merge {})", base.phases.merge),
        base.total.as_secs_f64(),
    );
    r.push_ours(
        format!(
            "P2P sort, multi-hop routing (merge {})",
            hopped.phases.merge
        ),
        hopped.total.as_secs_f64(),
    );
    r.push_ours(
        "merge-phase speedup from multi-hop",
        base.phases.merge.as_secs_f64() / hopped.phases.merge.as_secs_f64(),
    );
    // Single-flow rates for the global stage's pairs.
    for (x, y) in [(0usize, 3usize), (1, 2)] {
        let (_, direct) = msort_core::best_p2p_route(&p, x, y, false);
        let (_, relay) = msort_core::best_p2p_route(&p, x, y, true);
        r.push_ours(format!("{x}->{y} direct rate [GB/s]"), direct / 1e9);
        r.push_ours(format!("{x}->{y} best relay rate [GB/s]"), relay / 1e9);
    }
    r.note(
        "The global merge stage's (0,3) and (1,2) swaps have no direct \
         NVLink; relaying through a ring neighbor (0->2->3, 1->0->2) \
         replaces the 9 GB/s host path with a 48 GB/s two-hop NVLink \
         path — the concurrent relays then share the ring's links.",
    );
    r
}

#[cfg(test)]
mod tests {
    #[test]
    fn rp_wins_big_on_dgx() {
        let r = super::rp_vs_p2p();
        let dgx_p2p_8 = r
            .rows
            .iter()
            .find(|row| row.label.contains("DGX") && row.label.contains("P2P sort, 8"))
            .unwrap()
            .ours;
        let dgx_rp_8 = r
            .rows
            .iter()
            .find(|row| row.label.contains("DGX") && row.label.contains("RP sort, 8"))
            .unwrap()
            .ours;
        assert!(dgx_rp_8 < dgx_p2p_8, "{dgx_rp_8} vs {dgx_p2p_8}");
    }

    #[test]
    fn multihop_speeds_up_merge() {
        let r = super::multihop();
        let speedup = r
            .rows
            .iter()
            .find(|row| row.label.contains("speedup"))
            .unwrap()
            .ours;
        assert!(speedup > 1.5, "merge speedup only {speedup}");
    }
}
