//! Figure 16: sorting 2 B keys of varying data distributions with 2 GPUs
//! on the IBM AC922.
//!
//! P2P sort's duration tracks the swap volume the pivot dictates (stable
//! for uniform/normal, worst for reverse-sorted, best for (nearly-)sorted)
//! while HET sort is insensitive — its merge is memory-bandwidth-bound
//! regardless of the key order.

use super::align_down;
use crate::{ExperimentResult, PAPER_SCALE};
use msort_core::{het_sort, p2p_sort, HetConfig, P2pConfig};
use msort_data::{generate, Distribution};
use msort_gpu::Fidelity;
use msort_topology::Platform;

/// Run Figure 16.
#[must_use]
pub fn fig16() -> ExperimentResult {
    let p = Platform::ibm_ac922();
    let scale = PAPER_SCALE;
    let n = align_down(2_000_000_000, scale * 2);
    let fidelity = Fidelity::Sampled { scale };
    let mut r = ExperimentResult::new(
        "fig16",
        "Sorting 2B keys of varying distributions, 2 GPUs on the IBM AC922",
        "s",
    );
    let paper_p2p = [0.24, 0.24, 0.20, 0.26, 0.22];
    let paper_het = [0.36, 0.36, 0.35, 0.35, 0.35];
    for (i, dist) in Distribution::paper_set().into_iter().enumerate() {
        let input: Vec<u32> = generate(dist, (n / scale) as usize, 33);
        let mut d = input.clone();
        let cfg = P2pConfig {
            fidelity,
            ..P2pConfig::new(2)
        };
        let p2p = p2p_sort(&p, &cfg, &mut d, n);
        r.push(
            format!("P2P sort, {}", dist.label()),
            paper_p2p[i],
            p2p.total.as_secs_f64(),
        );
        let mut d = input.clone();
        let cfg = HetConfig {
            fidelity,
            ..HetConfig::new(2)
        };
        let het = het_sort(&p, &cfg, &mut d, n);
        r.push(
            format!("HET sort, {}", dist.label()),
            paper_het[i],
            het.total.as_secs_f64(),
        );
    }

    // The paper's 4-GPU observation: the spread widens (1.4-1.6x speedup
    // for optimal distributions) because the merge phase weighs more.
    let n4 = super::align_down(2_000_000_000, scale * 4);
    for dist in [Distribution::Uniform, Distribution::Sorted] {
        let input: Vec<u32> = generate(dist, (n4 / scale) as usize, 33);
        let mut d = input.clone();
        let cfg = P2pConfig {
            fidelity,
            ..P2pConfig::new(4)
        };
        let rep = p2p_sort(&p, &cfg, &mut d, n4);
        r.push_ours(
            format!("P2P sort 4 GPUs, {}", dist.label()),
            rep.total.as_secs_f64(),
        );
    }
    // Paper: "we measure less variance for different distributions on the
    // DGX A100 with NVSwitch" — P2P swaps are cheap there, so the pivot's
    // data-dependence barely shows.
    let dgx = Platform::dgx_a100();
    for dist in [Distribution::Uniform, Distribution::ReverseSorted] {
        let input: Vec<u32> = generate(dist, (n / scale) as usize, 33);
        let mut d = input.clone();
        let cfg = P2pConfig {
            fidelity,
            ..P2pConfig::new(2)
        };
        let rep = p2p_sort(&dgx, &cfg, &mut d, n);
        r.push_ours(
            format!("DGX A100 P2P sort, {}", dist.label()),
            rep.total.as_secs_f64(),
        );
    }
    r.note("P2P swap volume per distribution drives the spread; HET is flat.");
    r.note(
        "With four GPUs the sorted-vs-uniform gap widens (paper: 1.4-1.6x) \
         because the X-Bus-bound merge phase is a larger share of the total.",
    );
    r.note(
        "On the DGX A100 the distribution variance shrinks (NVSwitch makes \
         even the worst-case swap cheap), matching Section 6.3.",
    );
    r
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig16_shape() {
        let r = fig16();
        let val = |label: &str| {
            r.rows
                .iter()
                .find(|row| row.label == label)
                .unwrap_or_else(|| panic!("{label} missing"))
                .ours
        };
        // Sorted is fastest for P2P; reverse-sorted slowest.
        assert!(val("P2P sort, sorted") < val("P2P sort, uniform"));
        assert!(val("P2P sort, reverse-sorted") > val("P2P sort, uniform"));
        // HET is stable across distributions (within 5%).
        let het: Vec<f64> = r
            .rows
            .iter()
            .filter(|row| row.label.starts_with("HET"))
            .map(|row| row.ours)
            .collect();
        let (min, max) = (
            het.iter().copied().fold(f64::MAX, f64::min),
            het.iter().copied().fold(0.0, f64::max),
        );
        assert!(max / min < 1.05, "HET spread too wide: {het:?}");
        // P2P beats HET for every distribution on this platform.
        for dist in Distribution::paper_set() {
            assert!(
                val(&format!("P2P sort, {}", dist.label()))
                    < val(&format!("HET sort, {}", dist.label())),
                "{dist:?}"
            );
        }
        assert!(r.mean_abs_delta().unwrap() < 20.0, "{}", r.to_markdown());
        // Four GPUs widen the sorted-vs-uniform gap beyond the 2-GPU one.
        let gap2 = val("P2P sort, uniform") / val("P2P sort, sorted");
        let gap4 = val("P2P sort 4 GPUs, uniform") / val("P2P sort 4 GPUs, sorted");
        assert!(gap4 > gap2, "gap2 {gap2:.3} vs gap4 {gap4:.3}");
        assert!(gap4 > 1.25, "{gap4:.3}");
        // The DGX's reverse-vs-uniform variance is smaller than the
        // AC922's (NVSwitch absorbs even worst-case swap volume).
        let ac_spread = val("P2P sort, reverse-sorted") / val("P2P sort, uniform");
        let dgx_spread =
            val("DGX A100 P2P sort, reverse-sorted") / val("DGX A100 P2P sort, uniform");
        assert!(
            dgx_spread < ac_spread,
            "DGX spread {dgx_spread:.3} !< AC922 spread {ac_spread:.3}"
        );
    }
}
