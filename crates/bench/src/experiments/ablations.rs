//! Ablations beyond the paper's numbered figures:
//!
//! * GPU-set order on the AC922 (Section 5.4's (0,1,2,3) vs (0,2,1,3));
//! * leftmost-pivot optimization (Section 5.2's "skip the P2P swap");
//! * multiway-merge bandwidth utilization (Section 5.3's gnu_parallel
//!   saturation measurements).

use super::align_down;
use crate::{ExperimentResult, PAPER_SCALE};
use msort_core::gpuset::score_gpu_set;
use msort_core::{p2p_sort, P2pConfig};
use msort_cpu::multiway::{parallel_multiway_merge_with, ParallelMergeConfig};
use msort_data::{generate, Distribution, GIB};
use msort_gpu::Fidelity;
use msort_sim::CostModel;
use msort_topology::Platform;
use std::time::Instant;

/// GPU set order on the AC922: identity vs interleaved, end-to-end and by
/// the transfer-pattern score.
#[must_use]
pub fn gpuset_order() -> ExperimentResult {
    let p = Platform::ibm_ac922();
    let scale = PAPER_SCALE;
    let n = align_down(2_000_000_000, scale * 4);
    let fidelity = Fidelity::Sampled { scale };
    let input: Vec<u32> = generate(Distribution::Uniform, (n / scale) as usize, 54);

    let mut r = ExperimentResult::new(
        "gpuset",
        "P2P sort GPU-set order on the IBM AC922 (2B keys, 4 GPUs)",
        "s",
    );
    for order in [vec![0usize, 1, 2, 3], vec![0, 2, 1, 3]] {
        let mut d = input.clone();
        let cfg = P2pConfig {
            fidelity,
            ..P2pConfig::new(4)
        }
        .with_order(order.clone());
        let report = p2p_sort(&p, &cfg, &mut d, n);
        r.push_ours(
            format!("end-to-end, order {order:?}"),
            report.total.as_secs_f64(),
        );
        r.push_ours(
            format!("transfer score, order {order:?}"),
            score_gpu_set(&p, &order, n / 4 * 4),
        );
    }
    r.note("(0,1,2,3) keeps the pair-wise merges on NVLink; (0,2,1,3) forces them over the X-Bus.");
    r
}

/// Leftmost-pivot optimization: P2P swap volume per distribution, with the
/// alternative (middle-of-ties pivot) as reference.
#[must_use]
pub fn pivot_leftmost() -> ExperimentResult {
    let p = Platform::ibm_ac922();
    let scale = PAPER_SCALE;
    let n = align_down(2_000_000_000, scale * 2);
    let fidelity = Fidelity::Sampled { scale };
    let mut r = ExperimentResult::new(
        "pivot-ablation",
        "Leftmost-pivot optimization: P2P keys swapped (2 GPUs, 2B keys)",
        "B keys",
    );
    for dist in [
        Distribution::Uniform,
        Distribution::Sorted,
        Distribution::NearlySorted,
        Distribution::ReverseSorted,
        Distribution::ZipfDuplicates {
            skew_permille: 1200,
        },
        Distribution::Constant,
    ] {
        let input: Vec<u32> = generate(dist, (n / scale) as usize, 77);
        let mut d = input.clone();
        let cfg = P2pConfig {
            fidelity,
            ..P2pConfig::new(2)
        };
        let report = p2p_sort(&p, &cfg, &mut d, n);
        r.push_ours(
            format!("{}: swapped", dist.label()),
            report.p2p_swapped_keys as f64 / 1e9,
        );
        r.push_ours(
            format!("{}: sort duration [s]", dist.label()),
            report.total.as_secs_f64(),
        );
    }
    r.note(
        "Sorted/constant inputs swap zero keys — the swap is skipped \
         entirely; duplicates shrink the pivot because the leftmost valid \
         position is taken.",
    );
    r
}

/// Multiway-merge utilization: the *modeled* merge rates per platform and
/// the *real* parallel multiway merge wall-clock on this container
/// (mirroring the paper's Likwid/STREAM methodology on our own host).
#[must_use]
pub fn multiway_utilization() -> ExperimentResult {
    let mut r = ExperimentResult::new(
        "multiway",
        "CPU multiway merge: modeled platform rates + host measurement",
        "GB/s",
    );
    for id in msort_topology::PlatformId::paper_set() {
        let model = CostModel::for_platform_id(id);
        for k in [2usize, 4, 8] {
            // Output rate x2 = stream traffic rate.
            r.push_ours(
                format!("{} modeled stream rate, k={k}", id.name()),
                model.cpu_merge_rate(k) * 2.0 / 1e9,
            );
        }
    }
    // Real measurement on this container: merge 8 runs of 4 MiB keys.
    let k = 8;
    let run_len = (4 * GIB / 1024 / 4) as usize; // 1 Mi keys per run
    let runs: Vec<Vec<u32>> = (0..k)
        .map(|i| {
            let mut v: Vec<u32> = generate(Distribution::Uniform, run_len, i as u64);
            v.sort_unstable();
            v
        })
        .collect();
    let views: Vec<&[u32]> = runs.iter().map(Vec::as_slice).collect();
    let total: usize = views.iter().map(|v| v.len()).sum();
    let mut out = vec![0u32; total];
    let start = Instant::now();
    parallel_multiway_merge_with(
        &views,
        &mut out,
        ParallelMergeConfig {
            threads: msort_cpu::default_threads(),
            sequential_threshold: 0,
        },
    );
    let secs = start.elapsed().as_secs_f64();
    let bytes_moved = 2.0 * total as f64 * 4.0;
    r.push_ours(
        format!("this host: real k={k} merge of {total} keys"),
        bytes_moved / secs / 1e9,
    );
    let copy = msort_cpu::stream::stream_copy(run_len, 3);
    r.push_ours("this host: STREAM copy", copy.gb_per_sec());
    r.note(
        "The paper measures gnu_parallel::multiway_merge at 71-94% of \
         STREAM bandwidth; the last two rows repeat that comparison on \
         whatever machine runs this harness.",
    );
    r
}

#[cfg(test)]
mod tests {
    #[test]
    fn gpuset_identity_wins() {
        let r = super::gpuset_order();
        let e2e: Vec<f64> = r
            .rows
            .iter()
            .filter(|row| row.label.starts_with("end-to-end"))
            .map(|row| row.ours)
            .collect();
        assert!(e2e[0] < e2e[1], "{e2e:?}");
    }

    #[test]
    fn pivot_ablation_sorted_swaps_nothing() {
        let r = super::pivot_leftmost();
        let swapped = |label: &str| {
            r.rows
                .iter()
                .find(|row| row.label.starts_with(label) && row.label.contains("swapped"))
                .unwrap()
                .ours
        };
        assert_eq!(swapped("sorted"), 0.0);
        assert_eq!(swapped("constant"), 0.0);
        assert!(swapped("uniform") > 0.0);
        assert!(swapped("reverse-sorted") >= swapped("uniform"));
    }
}
