//! Figure 15: sorting large out-of-core data on the DGX A100 (8 GPUs).
//!
//! (a) the HET pipeline variants — 2n vs 3n, each with and without eager
//! merging — for data far beyond the combined GPU memory;
//! (b) the best variant (2n, no eager merging) against CPU-only PARADIS.
//!
//! Both use the paper's fixed 33 GB usable memory per GPU so the 2n and 3n
//! approaches are compared at equal budgets (chunks of 4.125 B vs 2.75 B
//! keys).

use super::align_down;
use crate::ExperimentResult;
use msort_core::{cpu_only_sort, het_sort, HetConfig, LargeDataApproach};
use msort_data::{generate, Distribution, GIB};
use msort_gpu::Fidelity;
use msort_topology::Platform;

/// Sampling for the 60 B-key runs (240 GB logical).
const SCALE: u64 = 1 << 23;

/// The paper's fixed memory budget per GPU for Figure 15a.
const MEM_BUDGET: u64 = 33 * GIB;

fn het_run(p: &Platform, approach: LargeDataApproach, eager: bool, n: u64, input: &[u32]) -> f64 {
    let mut cfg = HetConfig::new(8)
        .with_approach(approach)
        .with_mem_budget(MEM_BUDGET)
        .sampled(SCALE);
    if eager {
        cfg = cfg.with_eager_merge();
    }
    let mut data = input.to_vec();
    het_sort(p, &cfg, &mut data, n).total.as_secs_f64()
}

/// Figure 15a: HET pipeline variants.
#[must_use]
pub fn fig15a() -> ExperimentResult {
    let p = Platform::dgx_a100();
    let mut r = ExperimentResult::new(
        "fig15a",
        "HET sort approaches, large data on the DGX A100 (8 GPUs)",
        "s",
    );
    for b in [20u64, 40, 60] {
        let n = align_down(b * 1_000_000_000, SCALE * 8);
        let input: Vec<u32> = generate(Distribution::Uniform, (n / SCALE) as usize, 15);
        let n3 = het_run(&p, LargeDataApproach::ThreeN, false, n, &input);
        let n3em = het_run(&p, LargeDataApproach::ThreeN, true, n, &input);
        let n2 = het_run(&p, LargeDataApproach::TwoN, false, n, &input);
        let n2em = het_run(&p, LargeDataApproach::TwoN, true, n, &input);
        r.push_ours(format!("3n, {b}B keys"), n3);
        r.push_ours(format!("3n + EM, {b}B keys"), n3em);
        r.push_ours(format!("2n, {b}B keys"), n2);
        r.push_ours(format!("2n + EM, {b}B keys"), n2em);
    }
    // The paper's one quantified point: ~10 s at 60 B keys for 2n/3n, and
    // eager merging 1.5-1.75x worse.
    let n = align_down(60_000_000_000, SCALE * 8);
    let input: Vec<u32> = generate(Distribution::Uniform, (n / SCALE) as usize, 15);
    let n2 = het_run(&p, LargeDataApproach::TwoN, false, n, &input);
    let n2em = het_run(&p, LargeDataApproach::TwoN, true, n, &input);
    r.push("2n total at 60B keys", 10.0, n2);
    r.push("EM slowdown factor at 60B", 1.6, n2em / n2);
    r.note("Eager merging loses because its merges contend with the CPU-GPU transfers for host memory bandwidth and the merge queue drains slower than chunk groups arrive.");
    r
}

/// Figure 15b: HET sort (2n) vs CPU-only PARADIS for 10–60 B keys.
#[must_use]
pub fn fig15b() -> ExperimentResult {
    let p = Platform::dgx_a100();
    let mut r = ExperimentResult::new(
        "fig15b",
        "HET sort vs. CPU-only sort, large data on the DGX A100",
        "s",
    );
    for b in [10u64, 20, 30, 40, 50, 60] {
        let n = align_down(b * 1_000_000_000, SCALE * 8);
        let input: Vec<u32> = generate(Distribution::Uniform, (n / SCALE) as usize, 16);
        let mut d = input.clone();
        let paradis = cpu_only_sort(&p, Fidelity::Sampled { scale: SCALE }, &mut d, n)
            .total
            .as_secs_f64();
        let het = het_run(&p, LargeDataApproach::TwoN, false, n, &input);
        r.push_ours(format!("PARADIS, {b}B keys"), paradis);
        r.push_ours(format!("HET sort (8 GPUs), {b}B keys"), het);
    }
    // Quantified anchor: 2.6x speedup at 60B keys.
    let speedup = r.rows[r.rows.len() - 2].ours / r.rows[r.rows.len() - 1].ours;
    r.push("HET speedup over PARADIS at 60B keys", 2.6, speedup);
    r
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eager_merging_never_wins() {
        // Must exceed the combined 33 GB x 8 budget (33 B keys) so the
        // pipeline actually forms chunk groups.
        let p = Platform::dgx_a100();
        let n = align_down(60_000_000_000, SCALE * 8);
        let input: Vec<u32> = generate(Distribution::Uniform, (n / SCALE) as usize, 1);
        let plain = het_run(&p, LargeDataApproach::TwoN, false, n, &input);
        let eager = het_run(&p, LargeDataApproach::TwoN, true, n, &input);
        assert!(eager > plain, "eager {eager} vs plain {plain}");
    }

    #[test]
    fn two_n_and_three_n_within_ten_percent() {
        // Section 6.2: the approaches "sort equally as fast".
        let p = Platform::dgx_a100();
        let n = align_down(30_000_000_000, SCALE * 8);
        let input: Vec<u32> = generate(Distribution::Uniform, (n / SCALE) as usize, 2);
        let n2 = het_run(&p, LargeDataApproach::TwoN, false, n, &input);
        let n3 = het_run(&p, LargeDataApproach::ThreeN, false, n, &input);
        let ratio = n3 / n2;
        assert!((0.9..=1.1).contains(&ratio), "2n {n2} vs 3n {n3}");
    }
}
