//! Experiment harness: regenerates every table and figure of the paper.
//!
//! Each experiment module produces an [`ExperimentResult`] — a set of rows
//! with the paper's reported value and our simulated value side by side —
//! and the `reproduce` binary prints them (and can write the whole set to
//! `EXPERIMENTS.md`).
//!
//! Run a single experiment:
//! ```text
//! cargo run -p msort-bench --bin reproduce -- fig5
//! ```
//! or everything:
//! ```text
//! cargo run -p msort-bench --bin reproduce -- all
//! ```

pub mod experiments;
pub mod harness;
pub mod result;

pub use harness::Harness;
pub use result::{ExperimentResult, Row};

/// Default sampling factor for paper-scale simulated runs: one physical
/// key per ~2 M logical keys keeps a 60 B-key experiment's payload around
/// 30 K keys while pivot fractions stay statistically faithful.
pub const PAPER_SCALE: u64 = 1 << 21;

/// The list of all experiment names understood by the `reproduce` binary,
/// in paper order.
pub const ALL_EXPERIMENTS: &[&str] = &[
    "table1",
    "fig2",
    "fig3",
    "fig4",
    "fig5",
    "fig6",
    "fig7",
    "table2",
    "fig1",
    "fig12",
    "fig13",
    "fig14",
    "fig15a",
    "fig15b",
    "fig16",
    "datatypes",
    "gpuset",
    "pivot-ablation",
    "multiway",
    "rp-sort",
    "multihop",
    "conclusion",
    "cpu-baselines",
    "whatif",
];

/// Run one experiment by name.
///
/// # Panics
/// Panics on an unknown experiment name.
#[must_use]
pub fn run_experiment(name: &str) -> Vec<ExperimentResult> {
    use experiments as ex;
    match name {
        "table1" => vec![ex::table1::run()],
        "fig2" => vec![ex::transfers::fig2()],
        "fig3" => vec![ex::transfers::fig3()],
        "fig4" => vec![ex::transfers::fig4()],
        "fig5" => vec![ex::transfers::fig5()],
        "fig6" => vec![ex::transfers::fig6()],
        "fig7" => vec![ex::transfers::fig7()],
        "table2" => vec![ex::table2::run()],
        "fig1" => vec![ex::fig1::run()],
        "fig12" => ex::scaling::fig12(),
        "fig13" => ex::scaling::fig13(),
        "fig14" => ex::scaling::fig14(),
        "fig15a" => vec![ex::large::fig15a()],
        "fig15b" => vec![ex::large::fig15b()],
        "fig16" => vec![ex::distributions::fig16()],
        "datatypes" => vec![ex::datatypes::run()],
        "gpuset" => vec![ex::ablations::gpuset_order()],
        "pivot-ablation" => vec![ex::ablations::pivot_leftmost()],
        "multiway" => vec![ex::ablations::multiway_utilization()],
        "rp-sort" => vec![ex::extensions::rp_vs_p2p()],
        "multihop" => vec![ex::extensions::multihop()],
        "conclusion" => vec![ex::conclusion::run()],
        "cpu-baselines" => vec![ex::cpu_baselines::run()],
        "whatif" => vec![ex::whatif::run()],
        other => panic!("unknown experiment '{other}'; see ALL_EXPERIMENTS"),
    }
}
