//! Minimal wall-clock benchmark harness.
//!
//! The build environment is offline, so the microbenchmarks under
//! `crates/bench/benches/` use this self-contained harness instead of
//! criterion. It keeps the parts that matter for this workspace:
//!
//! * warmup + repeated samples with min/median/mean reporting,
//! * optional element-throughput reporting,
//! * a machine-readable JSON dump (hand-rolled; no serde) used to seed the
//!   `BENCH_*.json` trajectory files at the repository root,
//! * a substring filter from the command line (`cargo bench -- staggered`).
//!
//! Every bench target (`harness = false`) builds a [`Harness`], registers
//! closures, and calls [`Harness::finish`].

use std::hint::black_box;
use std::time::{Duration, Instant};

/// One benchmark's collected samples.
#[derive(Debug, Clone)]
pub struct BenchResult {
    /// Full benchmark id, e.g. `"max_min_allocation/DgxA100"`.
    pub id: String,
    /// Per-sample wall-clock durations (one closure call each).
    pub samples: Vec<Duration>,
    /// Elements processed per sample, for throughput reporting.
    pub throughput_elements: Option<u64>,
}

impl BenchResult {
    /// Smallest sample — the least-noisy estimate on a busy machine.
    #[must_use]
    pub fn min(&self) -> Duration {
        self.samples.iter().copied().min().unwrap_or_default()
    }

    /// Median sample.
    #[must_use]
    pub fn median(&self) -> Duration {
        let mut s = self.samples.clone();
        s.sort_unstable();
        s.get(s.len() / 2).copied().unwrap_or_default()
    }

    /// Arithmetic mean of the samples.
    #[must_use]
    pub fn mean(&self) -> Duration {
        if self.samples.is_empty() {
            return Duration::ZERO;
        }
        self.samples.iter().sum::<Duration>() / self.samples.len() as u32
    }

    /// Million elements per second at the median sample, if a throughput
    /// was registered.
    #[must_use]
    pub fn melems_per_sec(&self) -> Option<f64> {
        let n = self.throughput_elements?;
        let t = self.median().as_secs_f64();
        (t > 0.0).then(|| n as f64 / t / 1e6)
    }
}

/// Benchmark registry and runner.
pub struct Harness {
    name: String,
    sample_size: usize,
    filter: Option<String>,
    results: Vec<BenchResult>,
}

/// Format a duration the way the summary table prints it.
fn fmt_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 10_000 {
        format!("{ns} ns")
    } else if ns < 10_000_000 {
        format!("{:.2} µs", ns as f64 / 1e3)
    } else if ns < 10_000_000_000 {
        format!("{:.2} ms", ns as f64 / 1e6)
    } else {
        format!("{:.2} s", ns as f64 / 1e9)
    }
}

impl Harness {
    /// Create a harness for the bench target `name`, reading the sample
    /// filter from the process arguments (criterion-style: the first
    /// non-flag argument is a substring filter).
    #[must_use]
    pub fn new(name: &str) -> Self {
        let filter = std::env::args().skip(1).find(|a| !a.starts_with('-'));
        Self {
            name: name.to_string(),
            sample_size: 10,
            filter,
            results: Vec::new(),
        }
    }

    /// Set the number of timed samples per benchmark (default 10).
    #[must_use]
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    /// Run one benchmark: a warmup call, then `sample_size` timed calls.
    pub fn bench<R>(&mut self, id: &str, mut f: impl FnMut() -> R) {
        self.bench_inner(id, None, &mut f);
    }

    /// Like [`Harness::bench`], reporting throughput as `elements` per call.
    pub fn bench_throughput<R>(&mut self, id: &str, elements: u64, mut f: impl FnMut() -> R) {
        self.bench_inner(id, Some(elements), &mut f);
    }

    fn bench_inner<R>(&mut self, id: &str, elements: Option<u64>, f: &mut dyn FnMut() -> R) {
        if let Some(filter) = &self.filter {
            if !id.contains(filter.as_str()) {
                return;
            }
        }
        black_box(f()); // warmup (fills caches, faults pages)
        let samples: Vec<Duration> = (0..self.sample_size)
            .map(|_| {
                let start = Instant::now();
                black_box(f());
                start.elapsed()
            })
            .collect();
        let result = BenchResult {
            id: id.to_string(),
            samples,
            throughput_elements: elements,
        };
        let tp = result
            .melems_per_sec()
            .map(|m| format!("  ({m:.1} Melem/s)"))
            .unwrap_or_default();
        println!(
            "{:<48} median {:>12}  min {:>12}  mean {:>12}{}",
            result.id,
            fmt_duration(result.median()),
            fmt_duration(result.min()),
            fmt_duration(result.mean()),
            tp,
        );
        self.results.push(result);
    }

    /// Results collected so far (in registration order).
    #[must_use]
    pub fn results(&self) -> &[BenchResult] {
        &self.results
    }

    /// Hand-rolled JSON dump of all results (median/min/mean in
    /// nanoseconds), suitable for the repository's `BENCH_*.json` files.
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n");
        out.push_str(&format!("  \"bench\": \"{}\",\n", self.name));
        out.push_str("  \"results\": [\n");
        for (i, r) in self.results.iter().enumerate() {
            out.push_str(&format!(
                "    {{\"id\": \"{}\", \"median_ns\": {}, \"min_ns\": {}, \"mean_ns\": {}{}}}{}\n",
                r.id,
                r.median().as_nanos(),
                r.min().as_nanos(),
                r.mean().as_nanos(),
                r.throughput_elements
                    .map(|n| format!(", \"elements\": {n}"))
                    .unwrap_or_default(),
                if i + 1 < self.results.len() { "," } else { "" },
            ));
        }
        out.push_str("  ]\n}\n");
        out
    }

    /// Print the footer; if the environment variable `MSORT_BENCH_JSON` is
    /// set, also write the JSON dump to `$MSORT_BENCH_JSON/BENCH_<name>.json`.
    pub fn finish(self) {
        println!("{}: {} benchmarks run", self.name, self.results.len());
        if let Ok(dir) = std::env::var("MSORT_BENCH_JSON") {
            let path = std::path::Path::new(&dir).join(format!("BENCH_{}.json", self.name));
            match std::fs::write(&path, self.to_json()) {
                Ok(()) => println!("wrote {}", path.display()),
                Err(e) => eprintln!("failed to write {}: {e}", path.display()),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fmt_duration_picks_units() {
        assert_eq!(fmt_duration(Duration::from_nanos(500)), "500 ns");
        assert!(fmt_duration(Duration::from_micros(500)).ends_with("µs"));
        assert!(fmt_duration(Duration::from_millis(500)).ends_with("ms"));
        assert!(fmt_duration(Duration::from_secs(500)).ends_with('s'));
    }

    #[test]
    fn result_stats() {
        let r = BenchResult {
            id: "x".into(),
            samples: vec![
                Duration::from_nanos(30),
                Duration::from_nanos(10),
                Duration::from_nanos(20),
            ],
            throughput_elements: Some(1_000_000),
        };
        assert_eq!(r.min(), Duration::from_nanos(10));
        assert_eq!(r.median(), Duration::from_nanos(20));
        assert_eq!(r.mean(), Duration::from_nanos(20));
        assert!(r.melems_per_sec().unwrap() > 0.0);
    }

    #[test]
    fn json_shape() {
        let mut h = Harness {
            name: "t".into(),
            sample_size: 2,
            filter: None,
            results: Vec::new(),
        };
        h.bench("a/b", || 1 + 1);
        let j = h.to_json();
        assert!(j.contains("\"bench\": \"t\""));
        assert!(j.contains("\"id\": \"a/b\""));
        assert!(j.contains("median_ns"));
    }
}
