//! Experiment result rows and rendering.

use std::fmt::Write as _;

/// One row: a measurement point with the paper's value and ours.
#[derive(Debug, Clone)]
pub struct Row {
    /// Label ("GPU {0,1} HtoD", "P2P sort, 2 GPUs, 4B keys", ...).
    pub label: String,
    /// The paper's reported value (None where the paper gives no number,
    /// e.g. values read off a line plot between markers).
    pub paper: Option<f64>,
    /// Our simulated value.
    pub ours: f64,
}

impl Row {
    /// Build a row with a paper reference value.
    #[must_use]
    pub fn new(label: impl Into<String>, paper: f64, ours: f64) -> Self {
        Self {
            label: label.into(),
            paper: Some(paper),
            ours,
        }
    }

    /// Build a row without a paper reference.
    #[must_use]
    pub fn ours_only(label: impl Into<String>, ours: f64) -> Self {
        Self {
            label: label.into(),
            paper: None,
            ours,
        }
    }

    /// Relative deviation from the paper value, if present.
    #[must_use]
    pub fn delta_percent(&self) -> Option<f64> {
        self.paper
            .filter(|p| *p != 0.0)
            .map(|p| (self.ours - p) / p * 100.0)
    }
}

/// One table or figure's worth of rows.
#[derive(Debug, Clone)]
pub struct ExperimentResult {
    /// Experiment id ("fig5", "table2", ...).
    pub id: String,
    /// Human title.
    pub title: String,
    /// The value unit ("GB/s", "ms", "s").
    pub unit: String,
    /// The rows.
    pub rows: Vec<Row>,
    /// Free-form notes (modeling caveats, known deviations).
    pub notes: Vec<String>,
}

impl ExperimentResult {
    /// Start an empty result.
    #[must_use]
    pub fn new(id: impl Into<String>, title: impl Into<String>, unit: impl Into<String>) -> Self {
        Self {
            id: id.into(),
            title: title.into(),
            unit: unit.into(),
            rows: Vec::new(),
            notes: Vec::new(),
        }
    }

    /// Append a row with a paper reference.
    pub fn push(&mut self, label: impl Into<String>, paper: f64, ours: f64) {
        self.rows.push(Row::new(label, paper, ours));
    }

    /// Append a row without a paper reference.
    pub fn push_ours(&mut self, label: impl Into<String>, ours: f64) {
        self.rows.push(Row::ours_only(label, ours));
    }

    /// Append a note.
    pub fn note(&mut self, text: impl Into<String>) {
        self.notes.push(text.into());
    }

    /// Render as a GitHub-flavored markdown table.
    #[must_use]
    pub fn to_markdown(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "### {} — {}\n", self.id, self.title);
        let _ = writeln!(
            out,
            "| measurement | paper [{u}] | ours [{u}] | Δ |",
            u = self.unit
        );
        let _ = writeln!(out, "|---|---:|---:|---:|");
        for row in &self.rows {
            let paper = row
                .paper
                .map(format_value)
                .unwrap_or_else(|| "—".to_owned());
            let delta = row
                .delta_percent()
                .map(|d| format!("{d:+.0}%"))
                .unwrap_or_else(|| "—".to_owned());
            let _ = writeln!(
                out,
                "| {} | {} | {} | {} |",
                row.label,
                paper,
                format_value(row.ours),
                delta
            );
        }
        for note in &self.notes {
            let _ = writeln!(out, "\n*{note}*");
        }
        out
    }

    /// Render as CSV (`label,paper,ours,delta_percent`), suitable for
    /// external plotting tools.
    #[must_use]
    pub fn to_csv(&self) -> String {
        let mut out = String::from("label,paper,ours,delta_percent\n");
        for row in &self.rows {
            let paper = row.paper.map(|p| p.to_string()).unwrap_or_default();
            let delta = row
                .delta_percent()
                .map(|d| format!("{d:.2}"))
                .unwrap_or_default();
            let _ = writeln!(
                out,
                "\"{}\",{},{},{}",
                row.label.replace('"', "'"),
                paper,
                row.ours,
                delta
            );
        }
        out
    }

    /// Mean absolute relative deviation across rows with paper values.
    #[must_use]
    pub fn mean_abs_delta(&self) -> Option<f64> {
        let deltas: Vec<f64> = self
            .rows
            .iter()
            .filter_map(Row::delta_percent)
            .map(f64::abs)
            .collect();
        if deltas.is_empty() {
            None
        } else {
            Some(deltas.iter().sum::<f64>() / deltas.len() as f64)
        }
    }
}

fn format_value(v: f64) -> String {
    if v == 0.0 {
        "0".to_owned()
    } else if v.abs() >= 100.0 {
        format!("{v:.0}")
    } else if v.abs() >= 1.0 {
        format!("{v:.2}")
    } else {
        format!("{v:.3}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rows_and_deltas() {
        let r = Row::new("x", 10.0, 11.0);
        assert!((r.delta_percent().unwrap() - 10.0).abs() < 1e-9);
        assert!(Row::ours_only("y", 1.0).delta_percent().is_none());
        assert!(Row::new("z", 0.0, 1.0).delta_percent().is_none());
    }

    #[test]
    fn markdown_renders() {
        let mut e = ExperimentResult::new("fig0", "test", "GB/s");
        e.push("a", 72.0, 71.5);
        e.push_ours("b", 12.0);
        e.note("a note");
        let md = e.to_markdown();
        assert!(md.contains("### fig0"));
        assert!(md.contains("| a | 72.00 | 71.50 | -1% |"), "{md}");
        assert!(md.contains("| b | — | 12.00 | — |"));
        assert!(md.contains("*a note*"));
    }

    #[test]
    fn csv_renders() {
        let mut e = ExperimentResult::new("fig0", "test", "GB/s");
        e.push("a \"quoted\"", 72.0, 71.5);
        e.push_ours("b", 12.0);
        let csv = e.to_csv();
        assert!(csv.starts_with("label,paper,ours,delta_percent\n"));
        assert!(csv.contains("\"a 'quoted'\",72,71.5,-0.69"));
        assert!(csv.contains("\"b\",,12,"));
    }

    #[test]
    fn mean_abs_delta() {
        let mut e = ExperimentResult::new("x", "t", "u");
        e.push("a", 100.0, 110.0);
        e.push("b", 100.0, 90.0);
        assert!((e.mean_abs_delta().unwrap() - 10.0).abs() < 1e-9);
        let empty = ExperimentResult::new("y", "t", "u");
        assert!(empty.mean_abs_delta().is_none());
    }
}
