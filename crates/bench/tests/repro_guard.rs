//! Regression guard over the cheap figure reproductions.
//!
//! EXPERIMENTS.md reports each section's mean absolute deviation from the
//! paper's published numbers; this test re-runs the fast experiments
//! in-process and pins each deviation to its current value plus one
//! percentage point of headroom, so calibration drift breaks `cargo test`
//! instead of silently degrading the document.

use msort_bench::run_experiment;

/// Assert every section of `name` stays within `bound` mean absolute
/// deviation (percent).
fn guard(name: &str, bound: f64) {
    for result in run_experiment(name) {
        let mad = result
            .mean_abs_delta()
            .unwrap_or_else(|| panic!("{name}/{} has no paper references", result.id));
        assert!(
            mad <= bound,
            "{name}/{} drifted to {mad:.2}% mean absolute deviation \
             (bound {bound}%)\n{}",
            result.id,
            result.to_markdown()
        );
    }
}

#[test]
fn fig2_single_transfer_bandwidths() {
    guard("fig2", 9.1);
}

#[test]
fn fig3_parallel_transfer_bandwidths() {
    guard("fig3", 2.2);
}

#[test]
fn fig5_p2p_direct_bandwidths() {
    guard("fig5", 1.7);
}

#[test]
fn fig6_p2p_host_traversing_bandwidths() {
    guard("fig6", 1.8);
}

#[test]
fn table2_single_gpu_sort_times() {
    guard("table2", 1.2);
}
