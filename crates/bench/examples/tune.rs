//! One-off tuning probe (not shipped in CI): seq vs parallel onesweep and
//! copy vs par_copy around their dispatch floors.
use msort_data::{generate, Distribution};
use std::time::Instant;

fn med(mut v: Vec<f64>) -> f64 {
    v.sort_by(f64::total_cmp);
    v[v.len() / 2]
}

fn main() {
    let threads = msort_cpu::pool::threads();
    println!("pool threads = {threads}");
    for shift in [14usize, 15, 16, 17, 18, 20] {
        let n = 1usize << shift;
        let input: Vec<u32> = generate(Distribution::Uniform, n, 7);
        let mut aux = vec![0u32; n];
        let reps = (1 << 24) / n.max(1);
        let mut seq = Vec::new();
        let mut par = Vec::new();
        for _ in 0..7 {
            let t = Instant::now();
            for _ in 0..reps {
                let mut d = input.clone();
                msort_cpu::onesweep_sort_with_aux(&mut d, &mut aux);
                std::hint::black_box(d.len());
            }
            seq.push(t.elapsed().as_secs_f64() / reps as f64);
            let t = Instant::now();
            for _ in 0..reps {
                let mut d = input.clone();
                msort_cpu::parallel_onesweep_sort_with_aux(&mut d, &mut aux, threads);
                std::hint::black_box(d.len());
            }
            par.push(t.elapsed().as_secs_f64() / reps as f64);
        }
        println!(
            "n=2^{shift}: seq {:.1} us, par {:.1} us ({:.2}x)",
            med(seq.clone()) * 1e6,
            med(par.clone()) * 1e6,
            med(seq) / med(par),
        );
    }

    // Copy floor: serial copy_from_slice vs a pool-split copy, same split
    // rule as msort-gpu's par_copy.
    for shift in [18usize, 20, 22] {
        let n = (1usize << shift) / 4; // bytes -> u32 keys
        let src: Vec<u32> = (0..n as u32).map(|i| i.wrapping_mul(0x9e37_79b9)).collect();
        let mut dst = vec![0u32; n];
        let reps = (1 << 26) / n.max(1);
        let mut ser = Vec::new();
        let mut par = Vec::new();
        for _ in 0..7 {
            let t = Instant::now();
            for _ in 0..reps {
                dst.copy_from_slice(&src);
                std::hint::black_box(dst[0]);
            }
            ser.push(t.elapsed().as_secs_f64() / reps as f64);
            let t = Instant::now();
            for _ in 0..reps {
                let chunk = n.div_ceil(threads.min(8));
                msort_cpu::pool::scope(|s| {
                    for (d, sr) in dst.chunks_mut(chunk).zip(src.chunks(chunk)) {
                        s.spawn(move || d.copy_from_slice(sr));
                    }
                });
                std::hint::black_box(dst[0]);
            }
            par.push(t.elapsed().as_secs_f64() / reps as f64);
        }
        println!(
            "copy 2^{shift} B: serial {:.1} us, pooled {:.1} us ({:.2}x)",
            med(ser.clone()) * 1e6,
            med(par.clone()) * 1e6,
            med(ser) / med(par),
        );
    }
}
