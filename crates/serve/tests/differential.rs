//! Differential bit-identity: the indexed [`SortService`] core against
//! the golden linear-scan [`ReferenceService`].
//!
//! The indexed scheduler replaces every per-event rescan (queue rebuild,
//! backlog re-collect, free-set re-collect, wait-list retain sweep) with
//! incrementally maintained structures. None of that is allowed to change
//! a single scheduling decision: on the same workload and configuration,
//! both implementations must produce the **same** [`ServiceReport`] —
//! outcomes in the same order with the same timestamps, the same
//! rejections with the same reasons, the same deduplicated queue-depth
//! and fleet-size timelines. `ServiceReport` derives `PartialEq`, so one
//! `assert_eq!` covers all of it.
//!
//! Coverage axes, each driven by seeded randomized workloads:
//! * all four [`QueuePolicy`] variants (Fifo, Sjf, Edf, WeightedFair);
//! * both [`AdmissionPolicy`] variants, with tight SLOs so `SloAware`
//!   genuinely sheds;
//! * fixed and elastic fleets (scale-up *and* hysteresis scale-down);
//! * randomized [`FaultPlan`]s rerouting placement mid-run;
//! * backpressure (`with_max_queue_depth`) exercising mid-queue lazy
//!   invalidation in the indexed structures.

use msort_core::RunConfig;
use msort_serve::{
    AdmissionPolicy, ArrivalProcess, JobAlgo, JobMix, OpenLoop, QueuePolicy, ReferenceService,
    ServeConfig, ServiceReport, SortJob, SortService, TenantId, Workload,
};
use msort_sim::{FaultPlan, SimDuration};
use msort_topology::Platform;

/// Sampled-fidelity scale: differential runs compare scheduling
/// decisions, not kernel timings, so keep per-job work tiny.
const SCALE: u64 = 64;

/// splitmix64: derives independent workload parameters from one case
/// seed without an external RNG crate.
fn splitmix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// A seeded four-tenant mix spanning deadline classes, gang sizes, and
/// algorithm families (two fixed families plus two seed-picked ones).
fn mix(seed: u64) -> JobMix {
    let r = splitmix(seed);
    let algos = JobAlgo::all();
    let a = algos[(r % 5) as usize];
    let b = algos[((r >> 8) % 5) as usize];
    JobMix::of(
        SortJob::new(TenantId(0), 1 << 14)
            .with_algo(JobAlgo::Het)
            .interactive()
            .with_seed(r | 1),
    )
    .and(
        SortJob::new(TenantId(1), 1 << (13 + (r >> 16) % 3))
            .with_algo(a)
            .with_gpus(2)
            .with_seed(r ^ 0xA5A5),
        0.8,
    )
    .and(
        SortJob::new(TenantId(2), 1 << 13)
            .with_algo(b)
            .with_seed(r ^ 0x5A5A),
        0.6,
    )
    .and(
        SortJob::new(TenantId(3), 1 << 12)
            .with_algo(JobAlgo::P2p)
            .with_gpus(2)
            .interactive()
            .with_seed(r ^ 0xC3C3),
        0.4,
    )
}

fn base_config(policy: QueuePolicy) -> ServeConfig {
    ServeConfig::new()
        .sampled(SCALE)
        .with_policy(policy)
        .with_weight(TenantId(0), 3.0)
        .with_weight(TenantId(1), 2.0)
        .with_weight(TenantId(2), 1.0)
        .with_weight(TenantId(3), 1.5)
        .with_slo(TenantId(0), SimDuration::from_micros(400))
        .with_slo(TenantId(3), SimDuration::from_micros(600))
}

/// Run both schedulers on clones of the same config and workload and
/// demand structural equality of the whole report.
fn assert_identical<W: Workload + Clone>(
    platform: &Platform,
    config: ServeConfig,
    workload: W,
    what: &str,
) -> ServiceReport {
    let indexed = SortService::<u32>::new(platform, config.clone()).serve(workload.clone());
    let reference = ReferenceService::<u32>::new(platform, config).serve(workload);
    assert_eq!(indexed, reference, "indexed vs reference diverged: {what}");
    indexed
}

#[test]
fn all_policies_match_on_randomized_open_loop() {
    let platforms = [Platform::dgx_a100(), Platform::ibm_ac922()];
    for policy in [
        QueuePolicy::Fifo,
        QueuePolicy::Sjf,
        QueuePolicy::Edf,
        QueuePolicy::WeightedFair,
    ] {
        for (i, platform) in platforms.iter().enumerate() {
            let seed = splitmix(policy as u64 * 17 + i as u64);
            // High enough offered load that a real queue forms and the
            // pick order — not just arrival order — decides dispatch.
            let workload = OpenLoop::poisson(24_000.0, mix(seed), 64, seed);
            let report = assert_identical(
                platform,
                base_config(policy),
                workload,
                &format!("{policy:?} on {:?}", platform.id),
            );
            assert!(report.offered_jobs() >= 64);
            assert!(report.all_validated());
        }
    }
}

#[test]
fn slo_admission_and_backpressure_match() {
    let dgx = Platform::dgx_a100();
    for (case, admission) in [AdmissionPolicy::Permissive, AdmissionPolicy::SloAware]
        .into_iter()
        .enumerate()
    {
        let seed = splitmix(0xAD_0001 + case as u64);
        // A shallow queue cap forces backpressure rejections; the burst
        // rate forces SloAware sheds against the backlog estimate.
        let config = base_config(QueuePolicy::Edf)
            .with_admission(admission)
            .with_max_queue_depth(6);
        let workload = OpenLoop::poisson(400_000.0, mix(seed), 72, seed);
        let report = assert_identical(&dgx, config, workload, &format!("{admission:?}"));
        assert!(
            !report.rejected.is_empty(),
            "{admission:?} case must actually exercise the reject path"
        );
    }
}

#[test]
fn elastic_fleet_and_faults_match() {
    for (i, platform) in [Platform::dgx_a100(), Platform::ibm_ac922()]
        .iter()
        .enumerate()
    {
        let seed = splitmix(0xE1A5_71C0 + i as u64);
        let faults = FaultPlan::randomized(platform, seed, SimDuration::from_millis(4));
        assert!(!faults.is_empty(), "the randomized plan must inject faults");
        let config = base_config(QueuePolicy::WeightedFair)
            .with_admission(AdmissionPolicy::SloAware)
            .elastic(2, SimDuration::from_micros(500))
            .with_run(RunConfig::new().sampled(SCALE).with_faults(faults));
        // Bursty arrivals: calm stretches let the elastic fleet scale
        // down, bursts force scale-up, and the fault plan reroutes
        // placement underneath both schedulers.
        let workload = OpenLoop::new(
            ArrivalProcess::Bursty {
                base_rate: 2_000.0,
                burst_rate: 40_000.0,
                mean_calm: SimDuration::from_millis(1),
                mean_burst: SimDuration::from_micros(500),
            },
            mix(seed),
            56,
            seed,
        );
        let report = assert_identical(
            platform,
            config,
            workload,
            &format!("elastic+faults on {:?}", platform.id),
        );
        // The fleet log must show real elasticity or the case is vacuous.
        let sizes: Vec<usize> = report.fleet_size.iter().map(|&(_, n)| n).collect();
        assert!(
            sizes.iter().max() > sizes.iter().min(),
            "fleet never moved on {:?}: {sizes:?}",
            platform.id
        );
    }
}

/// Satellite property test: shed/reject decision sequences under
/// `SloAware` admission plus an elastic fleet that scales down between
/// bursts are identical indexed-vs-reference across 16 random seeds.
/// This is the hardest path for the indexed core — mid-queue lazy
/// invalidation (shed jobs leave stale heap entries) interleaved with
/// the incremental backlog counter that drives the shed decision itself.
#[test]
fn shed_sequences_match_across_sixteen_seeds() {
    let dgx = Platform::dgx_a100();
    let mut total_rejects = 0usize;
    for case in 0..16u64 {
        let seed = splitmix(0x5EED_0000 + case);
        let config = base_config(QueuePolicy::Sjf)
            .with_admission(AdmissionPolicy::SloAware)
            .with_max_queue_depth(8)
            .elastic(2, SimDuration::from_micros(300));
        let workload = OpenLoop::new(
            ArrivalProcess::Bursty {
                base_rate: 1_500.0,
                burst_rate: 600_000.0,
                mean_calm: SimDuration::from_millis(1),
                mean_burst: SimDuration::from_micros(400),
            },
            mix(seed),
            48,
            seed,
        );
        let report = assert_identical(&dgx, config, workload, &format!("seed case {case}"));
        // `assert_identical` already compared the full reports; spell out
        // the outcome *sequence* claim the satellite names, so a future
        // loosening of `ServiceReport: PartialEq` can't silently gut it.
        total_rejects += report.rejected.len();
    }
    assert!(
        total_rejects >= 16,
        "the sweep must shed work to mean anything (got {total_rejects} rejects)"
    );
}
