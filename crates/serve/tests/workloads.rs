//! Workload-generator properties: every open-loop source must be a pure
//! function of its seed (bit-reproducible), honor its configured offered
//! rate in the long run, and the trace adapter must replay an explicit
//! job list exactly as the old closed-loop entry point consumed it.

use msort_serve::{
    ArrivalProcess, JobMix, OpenLoop, ServeConfig, SortJob, SortService, TenantId, TraceWorkload,
    Workload,
};
use msort_sim::{SimDuration, SimTime};
use msort_topology::Platform;

fn mix() -> JobMix {
    JobMix::of(SortJob::new(TenantId(0), 1 << 12))
}

fn processes() -> [ArrivalProcess; 3] {
    [
        ArrivalProcess::Poisson { rate: 1_000.0 },
        ArrivalProcess::Diurnal {
            rate: 1_000.0,
            amplitude: 0.9,
            period: SimDuration::from_millis(20),
        },
        ArrivalProcess::Bursty {
            base_rate: 200.0,
            burst_rate: 2_000.0,
            mean_calm: SimDuration::from_millis(10),
            mean_burst: SimDuration::from_millis(2),
        },
    ]
}

/// Same seed → the identical timed arrival stream, draw for draw; a
/// different seed must actually change it.
#[test]
fn seeded_streams_are_bit_reproducible() {
    for p in processes() {
        let a = OpenLoop::new(p, mix(), 2_000, 77).collect_arrivals();
        let b = OpenLoop::new(p, mix(), 2_000, 77).collect_arrivals();
        assert_eq!(a, b, "{p:?}: same seed must replay bit-identically");
        let c = OpenLoop::new(p, mix(), 2_000, 78).collect_arrivals();
        assert_ne!(a, c, "{p:?}: a different seed must change the stream");
    }
}

/// The empirical offered rate (jobs ÷ span of the stream) converges on
/// the configured long-run mean for all three processes.
#[test]
fn empirical_rate_matches_the_configured_mean() {
    let n = 20_000u64;
    for (p, tolerance) in [
        (processes()[0], 0.05),
        (processes()[1], 0.05),
        // The MMPP averages over state dwells, not just arrivals — give
        // the two-timescale process a little more room.
        (processes()[2], 0.10),
    ] {
        let arrivals = OpenLoop::new(p, mix(), n, 1234).collect_arrivals();
        assert_eq!(arrivals.len() as u64, n);
        let span = arrivals.last().unwrap().0.since(arrivals[0].0);
        let empirical = (n - 1) as f64 / span.as_secs_f64();
        let expected = p.mean_rate();
        let err = (empirical - expected).abs() / expected;
        assert!(
            err < tolerance,
            "{p:?}: empirical rate {empirical:.1}/s vs configured {expected:.1}/s \
             (error {:.1}% > {:.0}%)",
            err * 100.0,
            tolerance * 100.0
        );
    }
}

/// A horizon cuts the stream exactly at the boundary and a drained
/// generator stays drained.
#[test]
fn horizon_bounds_are_exact_and_final() {
    let horizon = SimTime::ZERO + SimDuration::from_millis(50);
    let mut w = OpenLoop::poisson(1_000.0, mix(), u64::MAX >> 1, 5).until(horizon);
    let arrivals = w.collect_arrivals();
    assert!(!arrivals.is_empty());
    assert!(arrivals.iter().all(|&(t, _)| t < horizon));
    assert_eq!(
        w.next_arrival(),
        None,
        "exhausted generators stay exhausted"
    );
}

/// `TraceWorkload` replays exactly what the old closed-list entry point
/// consumed: stable sort by timestamp, ties in submission order — so
/// draining the adapter reproduces the old pre-processing bit for bit.
#[test]
fn trace_workload_round_trips_the_old_job_list_path() {
    let jobs: Vec<(SimTime, SortJob)> = (0..64u64)
        .map(|i| {
            (
                // Colliding timestamps on purpose: i and 63-i share slots.
                SimTime(u64::from(((i as u32) % 8) * 100)),
                SortJob::new(TenantId((i % 3) as u32), 1 << 12).with_seed(i),
            )
        })
        .collect();
    // What `run` used to do to the list before consuming it.
    let mut old_path = jobs.clone();
    old_path.sort_by_key(|&(t, _)| t);
    let replayed = TraceWorkload::new(jobs).collect_arrivals();
    assert_eq!(replayed, old_path);
}

/// End to end: serving the same open-loop generator twice produces the
/// bit-identical `ServiceReport` — arrivals, placement, contention,
/// latencies, everything.
#[test]
fn open_loop_service_runs_are_bit_reproducible() {
    let p = Platform::dgx_a100();
    let gen = || {
        OpenLoop::new(
            ArrivalProcess::Bursty {
                base_rate: 300.0,
                burst_rate: 3_000.0,
                mean_calm: SimDuration::from_millis(8),
                mean_burst: SimDuration::from_millis(2),
            },
            JobMix::of(SortJob::new(TenantId(0), 1 << 14))
                .and(SortJob::new(TenantId(1), 1 << 16).with_gpus(4), 0.5),
            48,
            0xBEEF,
        )
    };
    let cfg = || {
        ServeConfig::new()
            .sampled(64)
            .elastic(2, SimDuration::from_millis(1))
    };
    let a = SortService::<u32>::new(&p, cfg()).serve(gen());
    let b = SortService::<u32>::new(&p, cfg()).serve(gen());
    assert_eq!(a, b);
    assert!(a.all_validated());
    assert_eq!(a.offered_jobs(), 48);
}
