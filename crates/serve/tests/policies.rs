//! Policy-level behavior of the sort service: queue policies, placement
//! policies, and per-tenant fairness, all on seeded deterministic
//! workloads.

use msort_data::DataType;
use msort_serve::{
    estimate_job_cost, JobAlgo, PlacementPolicy, QueuePolicy, ServeConfig, SortJob, SortService,
    TenantId, TraceWorkload,
};
use msort_sim::SimTime;
use msort_topology::Platform;

fn run(
    platform: &Platform,
    config: ServeConfig,
    arrivals: Vec<(SimTime, SortJob)>,
) -> msort_serve::ServiceReport {
    SortService::<u32>::new(platform, config).serve(TraceWorkload::new(arrivals))
}

/// One large job then a burst of small ones, all queued behind a 2-GPU
/// fleet. FIFO serves the elephant first and every mouse eats its
/// latency; SJF reorders and the median collapses.
#[test]
fn sjf_beats_fifo_on_a_bimodal_mix() {
    let p = Platform::ibm_ac922();
    // Everything arrives in one burst (all due before the first dispatch
    // decision), elephant first, so the queue policy alone decides order.
    let mut arrivals = vec![(
        SimTime::ZERO,
        SortJob::new(TenantId(0), 1 << 20).with_seed(11),
    )];
    for i in 0..6 {
        arrivals.push((
            SimTime::ZERO,
            SortJob::new(TenantId(1), 1 << 12).with_seed(100 + i),
        ));
    }
    let config = |policy| {
        ServeConfig::new()
            .with_policy(policy)
            .with_fleet(vec![0, 1])
    };
    let fifo = run(&p, config(QueuePolicy::Fifo), arrivals.clone());
    let sjf = run(&p, config(QueuePolicy::Sjf), arrivals);
    assert_eq!(fifo.outcomes.len(), 7);
    assert_eq!(sjf.outcomes.len(), 7);
    assert!(fifo.all_validated() && sjf.all_validated());
    assert!(
        sjf.p50_latency() < fifo.p50_latency(),
        "SJF p50 {} must beat FIFO p50 {}",
        sjf.p50_latency(),
        fifo.p50_latency()
    );
    assert!(
        sjf.mean_latency() < fifo.mean_latency(),
        "SJF mean {} must beat FIFO mean {}",
        sjf.mean_latency(),
        fifo.mean_latency()
    );
    // Both policies sort the same total work; reordering does not change
    // the total completed keys.
    assert_eq!(fifo.total_keys(), sjf.total_keys());
}

/// Topology-aware placement lands gangs on the interconnect-preferred
/// pairs of each paper platform: the same-socket NVLink pair on the
/// AC922, the full-width NVLink pair on the DELTA, and the PCIe
/// switch-disjoint pair on the DGX.
#[test]
fn topology_aware_placement_picks_preferred_pairs() {
    let cases = [
        (Platform::ibm_ac922(), vec![0, 1]),
        (Platform::delta_d22x(), vec![0, 1]),
        (Platform::dgx_a100(), vec![0, 2]),
    ];
    for (p, expected) in cases {
        let report = run(
            &p,
            ServeConfig::new().with_placement(PlacementPolicy::TopologyAware),
            vec![(SimTime::ZERO, SortJob::new(TenantId(0), 1 << 12))],
        );
        assert_eq!(
            report.outcomes[0].gpus, expected,
            "wrong gang on {}",
            report.platform
        );
    }
}

/// On a 3-GPU DGX fleet the jobs serialize (each needs a 2-GPU gang), so
/// per-job gang quality shows up directly in the makespan: topology-aware
/// placement always takes the switch-disjoint pair {0,2}, while round
/// robin's rotating cursor keeps landing on switch-sharing pairs whose
/// scatter/gather halves its PCIe uplink bandwidth.
#[test]
fn topology_aware_beats_round_robin_on_dgx() {
    let p = Platform::dgx_a100();
    let arrivals: Vec<(SimTime, SortJob)> = (0..6)
        .map(|i| {
            (
                SimTime::ZERO,
                SortJob::new(TenantId(i % 3), 1 << 16).with_seed(7 + u64::from(i)),
            )
        })
        .collect();
    let config = |placement| {
        ServeConfig::new()
            .with_placement(placement)
            .with_fleet(vec![0, 1, 2])
    };
    let rr = run(&p, config(PlacementPolicy::RoundRobin), arrivals.clone());
    let topo = run(&p, config(PlacementPolicy::TopologyAware), arrivals);
    assert_eq!(rr.outcomes.len(), 6);
    assert_eq!(topo.outcomes.len(), 6);
    assert!(rr.all_validated() && topo.all_validated());
    assert!(
        topo.outcomes.iter().all(|o| o.gpus == vec![0, 2]),
        "topology-aware must keep choosing the switch-disjoint pair"
    );
    assert!(
        topo.makespan < rr.makespan,
        "topology-aware makespan {} must beat round-robin {}",
        topo.makespan,
        rr.makespan
    );
    assert!(topo.throughput_mkeys() > rr.throughput_mkeys());
}

/// Four equally weighted tenants saturate a 2-GPU fleet with equal jobs:
/// weighted fair share must serve them near-equally, while the same
/// workload under FIFO is also fair here (arrival interleaving) — the
/// interesting contrast is a skewed arrival mix, where one tenant floods
/// the queue.
#[test]
fn weighted_fair_share_protects_light_tenants_from_a_flood() {
    let p = Platform::ibm_ac922();
    // Tenant 0 floods 12 jobs at t=0; tenants 1-3 submit 4 each slightly
    // later. Under FIFO the flood monopolizes the fleet; fair share
    // round-robins across tenants.
    let mut arrivals = Vec::new();
    for i in 0..12 {
        arrivals.push((
            SimTime::ZERO,
            SortJob::new(TenantId(0), 1 << 14).with_seed(i),
        ));
    }
    for t in 1..4u32 {
        for i in 0..4 {
            arrivals.push((
                SimTime(1),
                SortJob::new(TenantId(t), 1 << 14).with_seed(u64::from(t) * 50 + i),
            ));
        }
    }
    let config = |policy| {
        ServeConfig::new()
            .with_policy(policy)
            .with_fleet(vec![0, 1])
    };
    let fair = run(&p, config(QueuePolicy::WeightedFair), arrivals.clone());
    let fifo = run(&p, config(QueuePolicy::Fifo), arrivals);
    assert_eq!(fair.outcomes.len(), 24);
    assert!(fair.all_validated());
    // The light tenants' jobs finish far earlier under fair share than
    // under FIFO (which drains the flood first).
    let mean_light = |r: &msort_serve::ServiceReport| {
        let stats = r.tenant_stats();
        let light: Vec<_> = stats.iter().filter(|s| s.tenant != TenantId(0)).collect();
        light.iter().map(|s| s.mean_latency.0).sum::<u64>() / light.len() as u64
    };
    assert!(
        mean_light(&fair) < mean_light(&fifo),
        "fair share must protect light tenants: {} vs {}",
        mean_light(&fair),
        mean_light(&fifo)
    );
}

/// Doubling a tenant's weight roughly doubles its share of early service:
/// with two tenants backlogged at 2:1 weights, the heavy tenant's
/// completed keys stay ahead of the light tenant's throughout the run.
#[test]
fn weights_bias_the_fair_share() {
    let p = Platform::dgx_a100();
    let mut arrivals = Vec::new();
    for i in 0..8 {
        arrivals.push((
            SimTime::ZERO,
            SortJob::new(TenantId(0), 1 << 14).with_seed(i),
        ));
        arrivals.push((
            SimTime::ZERO,
            SortJob::new(TenantId(1), 1 << 14).with_seed(100 + i),
        ));
    }
    let report = run(
        &p,
        ServeConfig::new()
            .with_policy(QueuePolicy::WeightedFair)
            .with_fleet(vec![0, 1])
            .with_weight(TenantId(0), 2.0)
            .with_weight(TenantId(1), 1.0),
        arrivals,
    );
    assert_eq!(report.outcomes.len(), 16);
    // Among the first half of completions, the 2× tenant must hold a
    // strict majority.
    let early = &report.outcomes[..8];
    let heavy = early.iter().filter(|o| o.tenant == TenantId(0)).count();
    assert!(heavy > 4, "2x-weighted tenant got {heavy}/8 early slots");
    // Full drain: everyone eventually completes everything.
    assert_eq!(report.tenant_stats()[0].jobs, 8);
    assert_eq!(report.tenant_stats()[1].jobs, 8);
}

/// Cost-model regression for the two PR 7 algorithm families: SJF only
/// works if the calibrated estimates *rank* jobs the way the simulator
/// actually serves them. For SampleSort and MultiwayMerge the solo
/// estimates must order a bimodal mix with no inversion against the
/// measured service times, and SJF must still collapse the median
/// against FIFO when the elephant runs those algorithms.
#[test]
fn sjf_cost_model_ranks_sample_and_mwms_jobs_without_inversion() {
    let p = Platform::dgx_a100();
    for algo in [JobAlgo::SampleSort, JobAlgo::MultiwayMerge] {
        // 1) Estimate vs. measurement: solo-run a small and a large job of
        //    this family; the cost model's ordering must match the
        //    simulator's measured service times.
        let job = |keys: u64, seed: u64| {
            SortJob::new(TenantId(0), keys)
                .with_algo(algo)
                .with_gpus(4)
                .with_seed(seed)
        };
        let small = job(1 << 12, 5);
        let large = job(1 << 18, 6);
        let est_small = estimate_job_cost(&p, &small, DataType::U32);
        let est_large = estimate_job_cost(&p, &large, DataType::U32);
        assert!(
            est_small < est_large,
            "{}: estimate inverted: {est_small:?} !< {est_large:?}",
            algo.name()
        );
        let solo = |j: SortJob| {
            let r = run(&p, ServeConfig::new(), vec![(SimTime::ZERO, j)]);
            assert!(r.all_validated(), "{}", algo.name());
            r.outcomes[0].service_time()
        };
        let meas_small = solo(small);
        let meas_large = solo(large);
        assert!(
            meas_small < meas_large,
            "{}: measured service times inverted",
            algo.name()
        );

        // 2) The ranking pays off end to end: elephant-first bimodal burst,
        //    SJF must reorder and beat FIFO on median latency.
        let mut arrivals = vec![(SimTime::ZERO, job(1 << 18, 11))];
        for i in 0..6 {
            arrivals.push((SimTime::ZERO, job(1 << 12, 100 + i)));
        }
        let config = |policy| {
            ServeConfig::new()
                .with_policy(policy)
                .with_fleet(vec![0, 1, 2, 3])
        };
        let fifo = run(&p, config(QueuePolicy::Fifo), arrivals.clone());
        let sjf = run(&p, config(QueuePolicy::Sjf), arrivals);
        assert!(
            fifo.all_validated() && sjf.all_validated(),
            "{}",
            algo.name()
        );
        assert_eq!(sjf.outcomes.len(), 7);
        assert!(
            sjf.p50_latency() < fifo.p50_latency(),
            "{}: SJF p50 {} must beat FIFO p50 {}",
            algo.name(),
            sjf.p50_latency(),
            fifo.p50_latency()
        );
        assert_eq!(fifo.total_keys(), sjf.total_keys());
    }
}

/// The same arrivals under the same config produce the identical report —
/// the whole service is bit-reproducible.
#[test]
fn service_runs_are_bit_reproducible() {
    let p = Platform::delta_d22x();
    let arrivals: Vec<(SimTime, SortJob)> = (0..10)
        .map(|i| {
            (
                SimTime(i * 1_000_000),
                SortJob::new(TenantId((i % 3) as u32), 1 << 14).with_seed(i),
            )
        })
        .collect();
    let config = ServeConfig::new().with_policy(QueuePolicy::Sjf);
    let a = run(&p, config.clone(), arrivals.clone());
    let b = run(&p, config, arrivals);
    assert_eq!(a, b);
}
