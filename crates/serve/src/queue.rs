//! Pluggable queue policies: which pending job is dispatched next.
//!
//! All policies respect the [`DeadlineClass`](crate::DeadlineClass):
//! interactive jobs are considered before batch jobs. Within a class:
//!
//! * [`QueuePolicy::Fifo`] — arrival order;
//! * [`QueuePolicy::Sjf`] — shortest estimated cost first (from
//!   [`crate::cost::estimate_job_cost`]), arrival order as tie-break;
//! * [`QueuePolicy::Edf`] — earliest deadline first: jobs with an SLO
//!   (per-job or per-tenant) order by their absolute deadline instant;
//!   best-effort jobs (no SLO) sort behind every deadline, FIFO among
//!   themselves. This is the policy SLO-aware serving wants: within a
//!   class the job closest to blowing its budget runs next;
//! * [`QueuePolicy::WeightedFair`] — the tenant with the least normalized
//!   service (charged work ÷ weight) goes first, FIFO within the tenant.
//!
//! Dispatch is strictly head-of-line: the scheduler asks for *one*
//! candidate, and if that job cannot be placed (gang or memory
//! unavailable) nothing behind it runs. That keeps every policy's ordering
//! meaningful and starvation-free at the price of head-of-line blocking —
//! the paper's gang-scheduling trade-off.

use crate::job::TenantId;
use msort_sim::{SimDuration, SimTime};

/// Dispatch-order policy for the pending-job queue.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum QueuePolicy {
    /// First in, first out (within deadline class).
    Fifo,
    /// Shortest (estimated) job first.
    Sjf,
    /// Earliest (absolute) deadline first; best-effort jobs last.
    Edf,
    /// Weighted per-tenant fair share.
    WeightedFair,
}

/// What a policy sees of a queued job.
#[derive(Debug, Clone, Copy)]
pub(crate) struct QueueView {
    /// Submission sequence number (global arrival order).
    pub seq: u64,
    /// Owning tenant.
    pub tenant: TenantId,
    /// Estimated solo service time.
    pub cost: SimDuration,
    /// `true` for [`crate::DeadlineClass::Interactive`].
    pub interactive: bool,
    /// Absolute deadline (submit + SLO), if the job has one.
    pub deadline: Option<SimTime>,
}

impl QueueView {
    fn class_rank(&self) -> u8 {
        u8::from(!self.interactive)
    }

    /// Deadline as an orderable key: best-effort jobs sort last.
    fn deadline_rank(&self) -> u64 {
        self.deadline.map_or(u64::MAX, |d| d.0)
    }
}

impl QueuePolicy {
    /// Index of the entry to dispatch next, or `None` on an empty queue.
    /// `credit(t)` is tenant `t`'s charged work ÷ weight so far; only
    /// [`QueuePolicy::WeightedFair`] consults it.
    pub(crate) fn pick(
        &self,
        queue: &[QueueView],
        credit: &dyn Fn(TenantId) -> f64,
    ) -> Option<usize> {
        if queue.is_empty() {
            return None;
        }
        let by_key = |key: &dyn Fn(&QueueView) -> (u8, u64, u64)| -> usize {
            let mut best = 0;
            for i in 1..queue.len() {
                if key(&queue[i]) < key(&queue[best]) {
                    best = i;
                }
            }
            best
        };
        match self {
            QueuePolicy::Fifo => Some(by_key(&|v| (v.class_rank(), v.seq, 0))),
            QueuePolicy::Sjf => Some(by_key(&|v| (v.class_rank(), v.cost.0, v.seq))),
            QueuePolicy::Edf => Some(by_key(&|v| (v.class_rank(), v.deadline_rank(), v.seq))),
            QueuePolicy::WeightedFair => {
                // Pick the least-served tenant present (lower id on ties —
                // f64 credits are deterministic, so the ordering is too),
                // then FIFO within that tenant.
                let mut tenant = queue[0].tenant;
                let mut tenant_credit = credit(tenant);
                for v in &queue[1..] {
                    let c = credit(v.tenant);
                    if c < tenant_credit || (c == tenant_credit && v.tenant < tenant) {
                        tenant = v.tenant;
                        tenant_credit = c;
                    }
                }
                let mut best: Option<usize> = None;
                for (i, v) in queue.iter().enumerate() {
                    if v.tenant != tenant {
                        continue;
                    }
                    let better = match best {
                        None => true,
                        Some(b) => (v.class_rank(), v.seq) < (queue[b].class_rank(), queue[b].seq),
                    };
                    if better {
                        best = Some(i);
                    }
                }
                best
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(seq: u64, tenant: u32, cost_us: u64, interactive: bool) -> QueueView {
        QueueView {
            seq,
            tenant: TenantId(tenant),
            cost: SimDuration::from_micros(cost_us),
            interactive,
            deadline: None,
        }
    }

    fn vd(seq: u64, deadline_us: Option<u64>, interactive: bool) -> QueueView {
        QueueView {
            deadline: deadline_us.map(|d| SimTime::ZERO + SimDuration::from_micros(d)),
            ..v(seq, 0, 1, interactive)
        }
    }

    #[test]
    fn fifo_is_arrival_order_with_interactive_priority() {
        let q = [v(0, 0, 5, false), v(1, 1, 1, false), v(2, 2, 9, true)];
        let p = QueuePolicy::Fifo;
        assert_eq!(p.pick(&q, &|_| 0.0), Some(2), "interactive jumps ahead");
        let q2 = [v(0, 0, 5, false), v(1, 1, 1, false)];
        assert_eq!(p.pick(&q2, &|_| 0.0), Some(0));
        assert_eq!(p.pick(&[], &|_| 0.0), None);
    }

    #[test]
    fn sjf_prefers_cheapest_then_earliest() {
        let p = QueuePolicy::Sjf;
        let q = [v(0, 0, 9, false), v(1, 1, 2, false), v(2, 2, 2, false)];
        assert_eq!(
            p.pick(&q, &|_| 0.0),
            Some(1),
            "cost tie goes to earlier seq"
        );
    }

    #[test]
    fn edf_orders_by_deadline_within_class() {
        let p = QueuePolicy::Edf;
        // Tightest deadline wins, regardless of arrival order.
        let q = [
            vd(0, Some(90), false),
            vd(1, Some(10), false),
            vd(2, None, false),
        ];
        assert_eq!(p.pick(&q, &|_| 0.0), Some(1));
        // Best-effort jobs (no deadline) sort behind every deadline, FIFO
        // among themselves.
        let q2 = [vd(0, None, false), vd(1, None, false)];
        assert_eq!(p.pick(&q2, &|_| 0.0), Some(0));
        // Class still dominates: an interactive job outranks a tighter
        // batch deadline.
        let q3 = [vd(0, Some(1), false), vd(1, Some(500), true)];
        assert_eq!(p.pick(&q3, &|_| 0.0), Some(1));
        // Deadline tie → earlier submission.
        let q4 = [vd(5, Some(10), false), vd(3, Some(10), false)];
        assert_eq!(p.pick(&q4, &|_| 0.0), Some(1));
    }

    #[test]
    fn weighted_fair_picks_least_served_tenant() {
        let p = QueuePolicy::WeightedFair;
        let q = [v(0, 0, 5, false), v(1, 1, 5, false), v(2, 0, 5, false)];
        // Tenant 0 has been served 3× as much as tenant 1.
        let credit = |t: TenantId| if t.0 == 0 { 3.0 } else { 1.0 };
        assert_eq!(p.pick(&q, &credit), Some(1));
        // Equal credit: lower tenant id, FIFO within it.
        assert_eq!(p.pick(&q, &|_| 0.0), Some(0));
    }
}
