//! Pluggable queue policies: which pending job is dispatched next.
//!
//! All policies respect the [`DeadlineClass`](crate::DeadlineClass):
//! interactive jobs are considered before batch jobs. Within a class:
//!
//! * [`QueuePolicy::Fifo`] — arrival order;
//! * [`QueuePolicy::Sjf`] — shortest estimated cost first (from
//!   [`crate::cost::estimate_job_cost`]), arrival order as tie-break;
//! * [`QueuePolicy::Edf`] — earliest deadline first: jobs with an SLO
//!   (per-job or per-tenant) order by their absolute deadline instant;
//!   best-effort jobs (no SLO) sort behind every deadline, FIFO among
//!   themselves. This is the policy SLO-aware serving wants: within a
//!   class the job closest to blowing its budget runs next;
//! * [`QueuePolicy::WeightedFair`] — the tenant with the least normalized
//!   service (charged work ÷ weight) goes first, FIFO within the tenant.
//!
//! Dispatch is strictly head-of-line: the scheduler asks for *one*
//! candidate, and if that job cannot be placed (gang or memory
//! unavailable) nothing behind it runs. That keeps every policy's ordering
//! meaningful and starvation-free at the price of head-of-line blocking —
//! the paper's gang-scheduling trade-off.

use crate::job::TenantId;
use msort_sim::{SimDuration, SimTime};
use std::cmp::Reverse;
use std::collections::{BTreeSet, BinaryHeap, HashMap, VecDeque};

/// Total-order key for an f64 tenant credit.
///
/// The mapping is the standard sign-magnitude → biased transform: negative
/// floats have their bits inverted, non-negative floats get the sign bit
/// set, so `credit_key(a) < credit_key(b)` iff `a < b` for every pair of
/// non-NaN floats (and every NaN maps to one totally-ordered bucket at the
/// extremes instead of poisoning comparisons). Both the linear-scan
/// [`QueuePolicy::pick`] and the ordered [`IndexedQueue`] credit index
/// compare credits through this key, so WeightedFair ties resolve
/// identically in both paths by construction.
pub(crate) fn credit_key(credit: f64) -> u64 {
    let bits = credit.to_bits();
    if bits >> 63 == 1 {
        !bits
    } else {
        bits | (1 << 63)
    }
}

/// Dispatch-order policy for the pending-job queue.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum QueuePolicy {
    /// First in, first out (within deadline class).
    Fifo,
    /// Shortest (estimated) job first.
    Sjf,
    /// Earliest (absolute) deadline first; best-effort jobs last.
    Edf,
    /// Weighted per-tenant fair share.
    WeightedFair,
}

/// What a policy sees of a queued job.
#[derive(Debug, Clone, Copy)]
pub(crate) struct QueueView {
    /// Submission sequence number (global arrival order).
    pub seq: u64,
    /// Owning tenant.
    pub tenant: TenantId,
    /// Estimated solo service time.
    pub cost: SimDuration,
    /// `true` for [`crate::DeadlineClass::Interactive`].
    pub interactive: bool,
    /// Absolute deadline (submit + SLO), if the job has one.
    pub deadline: Option<SimTime>,
}

impl QueueView {
    fn class_rank(&self) -> u8 {
        u8::from(!self.interactive)
    }

    /// Deadline as an orderable key: best-effort jobs sort last.
    fn deadline_rank(&self) -> u64 {
        self.deadline.map_or(u64::MAX, |d| d.0)
    }
}

impl QueuePolicy {
    /// Index of the entry to dispatch next, or `None` on an empty queue.
    /// `credit(t)` is tenant `t`'s charged work ÷ weight so far; only
    /// [`QueuePolicy::WeightedFair`] consults it.
    pub(crate) fn pick(
        &self,
        queue: &[QueueView],
        credit: &dyn Fn(TenantId) -> f64,
    ) -> Option<usize> {
        if queue.is_empty() {
            return None;
        }
        let by_key = |key: &dyn Fn(&QueueView) -> (u8, u64, u64)| -> usize {
            // Cache the incumbent's key: recomputing it per comparison made
            // the scan cost two key evaluations per entry.
            let mut best = 0;
            let mut best_key = key(&queue[0]);
            for (i, v) in queue.iter().enumerate().skip(1) {
                let k = key(v);
                if k < best_key {
                    best = i;
                    best_key = k;
                }
            }
            best
        };
        match self {
            QueuePolicy::Fifo => Some(by_key(&|v| (v.class_rank(), v.seq, 0))),
            QueuePolicy::Sjf => Some(by_key(&|v| (v.class_rank(), v.cost.0, v.seq))),
            QueuePolicy::Edf => Some(by_key(&|v| (v.class_rank(), v.deadline_rank(), v.seq))),
            QueuePolicy::WeightedFair => {
                // Pick the least-served tenant present (lower id on ties),
                // then FIFO within that tenant. Credits compare through
                // `credit_key`, the same total order the indexed path's
                // BTree index uses — see `credit_key`'s docs.
                let mut tenant = queue[0].tenant;
                let mut tenant_key = credit_key(credit(tenant));
                for v in &queue[1..] {
                    let k = credit_key(credit(v.tenant));
                    if (k, v.tenant) < (tenant_key, tenant) {
                        tenant = v.tenant;
                        tenant_key = k;
                    }
                }
                let mut best: Option<(usize, (u8, u64))> = None;
                for (i, v) in queue.iter().enumerate() {
                    if v.tenant != tenant {
                        continue;
                    }
                    let k = (v.class_rank(), v.seq);
                    if best.is_none_or(|(_, bk)| k < bk) {
                        best = Some((i, k));
                    }
                }
                best.map(|(i, _)| i)
            }
        }
    }
}

/// The indexed pending queue: every [`QueuePolicy`] answers "who runs
/// next?" in O(log n) instead of the linear scan `pick` performs.
///
/// * Fifo/Sjf/Edf keep one min-heap over exactly the `(class, …, seq)`
///   tuples `pick` compares, so the head — including every seq tie-break —
///   is the entry the scan would have chosen.
/// * WeightedFair keeps per-tenant FIFO deques (one per deadline class)
///   under an ordered `(credit_key, tenant)` index, so the least-served
///   tenant's head-of-line job is one ordered lookup away.
///
/// Mid-queue removals (shed, timeout, dispatch of a non-head entry) don't
/// restructure anything: the entry just leaves the `entries` map, and the
/// stale heap/deque slot is discarded when it surfaces — the same lazy
/// invalidation the flow engine's completion heap uses. Sequence numbers
/// are globally unique and never reused, so "still in `entries`" is a
/// complete liveness test.
/// The Fifo/Sjf/Edf comparison tuple: `(deadline-class rank, policy
/// key, seq tie-break)` — exactly what the linear scan compares.
type PolicyKey = (u8, u64, u64);

pub(crate) struct IndexedQueue<T> {
    policy: QueuePolicy,
    /// Live queued jobs by submission seq.
    entries: HashMap<u64, (QueueView, T)>,
    /// Fifo/Sjf/Edf: min-heap of `(policy key, seq)`, lazily invalidated.
    heap: BinaryHeap<Reverse<(PolicyKey, u64)>>,
    /// WeightedFair: per-tenant seq FIFOs, `[interactive, batch]`.
    tenants: HashMap<TenantId, [VecDeque<u64>; 2]>,
    /// WeightedFair: tenants ordered by `(credit_key, id)`.
    by_credit: BTreeSet<(u64, u32)>,
    /// Current credit key per tenant (to locate its `by_credit` entry).
    credits: HashMap<TenantId, u64>,
}

impl<T> IndexedQueue<T> {
    pub fn new(policy: QueuePolicy) -> Self {
        Self {
            policy,
            entries: HashMap::new(),
            heap: BinaryHeap::new(),
            tenants: HashMap::new(),
            by_credit: BTreeSet::new(),
            credits: HashMap::new(),
        }
    }

    pub fn len(&self) -> usize {
        self.entries.len()
    }

    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    fn key(&self, v: &QueueView) -> PolicyKey {
        match self.policy {
            QueuePolicy::Fifo => (v.class_rank(), v.seq, 0),
            QueuePolicy::Sjf => (v.class_rank(), v.cost.0, v.seq),
            QueuePolicy::Edf => (v.class_rank(), v.deadline_rank(), v.seq),
            QueuePolicy::WeightedFair => unreachable!("WeightedFair uses the tenant index"),
        }
    }

    /// Enqueue a job. Its `QueueView` is immutable from here on (class,
    /// cost, and deadline are fixed at submission), which is what lets the
    /// heap key stand for the entry forever.
    pub fn push(&mut self, view: QueueView, payload: T) {
        let seq = view.seq;
        if self.policy == QueuePolicy::WeightedFair {
            let tenant = view.tenant;
            if let std::collections::hash_map::Entry::Vacant(e) = self.credits.entry(tenant) {
                // First sighting: index the tenant at zero credit (the same
                // starting credit the service's tenant table assigns).
                let k = credit_key(0.0);
                e.insert(k);
                self.by_credit.insert((k, tenant.0));
            }
            self.tenants.entry(tenant).or_default()[usize::from(view.class_rank())].push_back(seq);
        } else {
            self.heap.push(Reverse((self.key(&view), seq)));
        }
        self.entries.insert(seq, (view, payload));
    }

    /// Record tenant `t`'s new credit (charged work ÷ weight). O(log
    /// tenants); no queued entry moves — only the tenant's rank does.
    pub fn set_credit(&mut self, tenant: TenantId, credit: f64) {
        let k = credit_key(credit);
        match self.credits.insert(tenant, k) {
            Some(old) if old == k => {}
            Some(old) => {
                self.by_credit.remove(&(old, tenant.0));
                self.by_credit.insert((k, tenant.0));
            }
            None => {
                self.by_credit.insert((k, tenant.0));
            }
        }
    }

    /// Seq of the entry [`QueuePolicy::pick`] would choose, or `None` on
    /// an empty queue. `&mut` because surfacing stale heads retires them.
    pub fn pick(&mut self) -> Option<u64> {
        if self.policy == QueuePolicy::WeightedFair {
            // Least-credit tenant with a live entry; interactive FIFO
            // outranks batch FIFO within the tenant.
            for &(_, tid) in &self.by_credit {
                // Tenants can be indexed before their first job (credit
                // updates arrive from the service's tenant table).
                let Some(deques) = self.tenants.get_mut(&TenantId(tid)) else {
                    continue;
                };
                for q in deques.iter_mut() {
                    while let Some(&seq) = q.front() {
                        if self.entries.contains_key(&seq) {
                            break;
                        }
                        q.pop_front();
                    }
                }
                match (deques[0].front(), deques[1].front()) {
                    (Some(&s), _) => return Some(s),
                    (None, Some(&s)) => return Some(s),
                    (None, None) => {}
                }
            }
            None
        } else {
            while let Some(&Reverse((_, seq))) = self.heap.peek() {
                if self.entries.contains_key(&seq) {
                    return Some(seq);
                }
                self.heap.pop();
            }
            None
        }
    }

    pub fn get(&self, seq: u64) -> Option<&(QueueView, T)> {
        self.entries.get(&seq)
    }

    /// Remove an entry anywhere in the queue (dispatch, shed, timeout).
    /// O(1): index residue is invalidated lazily.
    pub fn remove(&mut self, seq: u64) -> Option<(QueueView, T)> {
        self.entries.remove(&seq)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(seq: u64, tenant: u32, cost_us: u64, interactive: bool) -> QueueView {
        QueueView {
            seq,
            tenant: TenantId(tenant),
            cost: SimDuration::from_micros(cost_us),
            interactive,
            deadline: None,
        }
    }

    fn vd(seq: u64, deadline_us: Option<u64>, interactive: bool) -> QueueView {
        QueueView {
            deadline: deadline_us.map(|d| SimTime::ZERO + SimDuration::from_micros(d)),
            ..v(seq, 0, 1, interactive)
        }
    }

    #[test]
    fn fifo_is_arrival_order_with_interactive_priority() {
        let q = [v(0, 0, 5, false), v(1, 1, 1, false), v(2, 2, 9, true)];
        let p = QueuePolicy::Fifo;
        assert_eq!(p.pick(&q, &|_| 0.0), Some(2), "interactive jumps ahead");
        let q2 = [v(0, 0, 5, false), v(1, 1, 1, false)];
        assert_eq!(p.pick(&q2, &|_| 0.0), Some(0));
        assert_eq!(p.pick(&[], &|_| 0.0), None);
    }

    #[test]
    fn sjf_prefers_cheapest_then_earliest() {
        let p = QueuePolicy::Sjf;
        let q = [v(0, 0, 9, false), v(1, 1, 2, false), v(2, 2, 2, false)];
        assert_eq!(
            p.pick(&q, &|_| 0.0),
            Some(1),
            "cost tie goes to earlier seq"
        );
    }

    #[test]
    fn edf_orders_by_deadline_within_class() {
        let p = QueuePolicy::Edf;
        // Tightest deadline wins, regardless of arrival order.
        let q = [
            vd(0, Some(90), false),
            vd(1, Some(10), false),
            vd(2, None, false),
        ];
        assert_eq!(p.pick(&q, &|_| 0.0), Some(1));
        // Best-effort jobs (no deadline) sort behind every deadline, FIFO
        // among themselves.
        let q2 = [vd(0, None, false), vd(1, None, false)];
        assert_eq!(p.pick(&q2, &|_| 0.0), Some(0));
        // Class still dominates: an interactive job outranks a tighter
        // batch deadline.
        let q3 = [vd(0, Some(1), false), vd(1, Some(500), true)];
        assert_eq!(p.pick(&q3, &|_| 0.0), Some(1));
        // Deadline tie → earlier submission.
        let q4 = [vd(5, Some(10), false), vd(3, Some(10), false)];
        assert_eq!(p.pick(&q4, &|_| 0.0), Some(1));
    }

    #[test]
    fn weighted_fair_picks_least_served_tenant() {
        let p = QueuePolicy::WeightedFair;
        let q = [v(0, 0, 5, false), v(1, 1, 5, false), v(2, 0, 5, false)];
        // Tenant 0 has been served 3× as much as tenant 1.
        let credit = |t: TenantId| if t.0 == 0 { 3.0 } else { 1.0 };
        assert_eq!(p.pick(&q, &credit), Some(1));
        // Equal credit: lower tenant id, FIFO within it.
        assert_eq!(p.pick(&q, &|_| 0.0), Some(0));
    }

    #[test]
    fn credit_key_is_monotone() {
        let samples = [
            f64::NEG_INFINITY,
            -1e300,
            -2.5,
            -0.0,
            0.0,
            1e-12,
            0.5,
            1.0,
            1e300,
            f64::INFINITY,
        ];
        for w in samples.windows(2) {
            assert!(credit_key(w[0]) <= credit_key(w[1]), "{} vs {}", w[0], w[1]);
        }
        assert_ne!(credit_key(-0.0), credit_key(0.0));
        assert!(credit_key(-0.0) < credit_key(0.0), "-0 sorts before +0");
    }

    /// The indexed queue must agree with the linear-scan `pick` on every
    /// policy, under interleaved pushes, mid-queue removals, and credit
    /// updates — the structural claim the whole PR rests on.
    #[test]
    fn indexed_queue_matches_linear_pick_under_churn() {
        use msort_data::Rng;
        for policy in [
            QueuePolicy::Fifo,
            QueuePolicy::Sjf,
            QueuePolicy::Edf,
            QueuePolicy::WeightedFair,
        ] {
            for seed in 0..4u64 {
                let mut rng = Rng::seed_from_u64(0xC0FF_EE00 ^ seed);
                let mut linear: Vec<QueueView> = Vec::new();
                let mut indexed: IndexedQueue<()> = IndexedQueue::new(policy);
                let mut credits: std::collections::HashMap<TenantId, f64> =
                    std::collections::HashMap::new();
                let mut seq = 0u64;
                for step in 0..600 {
                    match rng.below(10) {
                        // Push (weighted toward growth so the queue deepens).
                        0..=5 => {
                            let view = QueueView {
                                seq,
                                tenant: TenantId(rng.u32_in(0..4)),
                                cost: SimDuration::from_micros(rng.u64_in(1..50)),
                                interactive: rng.chance(0.3),
                                deadline: rng
                                    .chance(0.5)
                                    .then(|| SimTime(rng.u64_in(0..1_000_000))),
                            };
                            credits.entry(view.tenant).or_insert(0.0);
                            indexed.push(view, ());
                            linear.push(view);
                            seq += 1;
                        }
                        // Remove a random mid-queue entry (shed/timeout).
                        6..=7 if !linear.is_empty() => {
                            let i = rng.usize_in(0..linear.len());
                            let victim = linear.swap_remove(i);
                            assert!(indexed.remove(victim.seq).is_some());
                        }
                        // Charge a tenant (dispatch-side credit bump).
                        _ => {
                            let t = TenantId(rng.u32_in(0..4));
                            let c = credits.entry(t).or_insert(0.0);
                            *c += rng.f64() * 10.0;
                            indexed.set_credit(t, *c);
                        }
                    }
                    let want = policy
                        .pick(&linear, &|t| credits.get(&t).copied().unwrap_or(0.0))
                        .map(|i| linear[i].seq);
                    assert_eq!(
                        indexed.pick(),
                        want,
                        "policy {policy:?} seed {seed} step {step}"
                    );
                    assert_eq!(indexed.len(), linear.len());
                }
            }
        }
    }
}
