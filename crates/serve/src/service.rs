//! The sort service: admission, queueing, gang placement, and concurrent
//! execution of many sort jobs on one shared simulated clock.
//!
//! [`SortService::serve`] consumes any open-loop [`Workload`] — a trace
//! replay, a Poisson stream, a diurnal cycle, an MMPP burst source — and
//! drives every admitted job's [`SortDriver`] over a single [`GpuSystem`],
//! so co-scheduled jobs genuinely contend for links in the fluid-flow
//! engine (and reroute around injected faults together). Gang leases are
//! exclusive: a GPU serves one job at a time, and a job's device buffers
//! are freed the moment it completes.
//!
//! Scheduling is deliberately simple and fully deterministic:
//!
//! 1. admit every arrival whose timestamp is due, subject to the
//!    [`AdmissionPolicy`] (backpressure and SLO-aware shedding reject, they
//!    never block the clock);
//! 2. resize the active fleet under the [`FleetPolicy`] (elastic fleets
//!    lease GPUs in against queued demand and out after an idle window);
//! 3. dispatch head-of-line jobs chosen by the [`QueuePolicy`] onto gangs
//!    chosen by the [`PlacementPolicy`] while active GPUs and device
//!    memory allow;
//! 4. step every running job whose wait-set has drained;
//! 5. advance the shared clock to the next job-op completion, arrival, or
//!    elastic lease-release instant.
//!
//! The pre-redesign closed-list entry point survives as a deprecated shim:
//! `run(arrivals)` is exactly `serve(TraceWorkload::new(arrivals))`.
//!
//! Internally the loop is built for million-job runs: the pending queue is
//! an [`IndexedQueue`] (per-policy heaps / an ordered tenant-credit index)
//! answering "who runs next" in O(log n), SLO admission reads an
//! incrementally maintained backlog gang-nanosecond counter instead of
//! re-collecting the backlog, the free-GPU set is a maintained count, job
//! wakeups ride the [`GpuSystem`] op-completion log instead of rescanning
//! every running job's wait list, and job inputs are generated into a
//! reused scratch pool. The pre-index linear-scan loop survives verbatim
//! as [`crate::reference::ReferenceService`], and a differential test
//! proves both produce bit-identical [`ServiceReport`]s.

use crate::cost::{device_footprint_keys, estimate_job_cost, estimate_queue_wait_ns};
use crate::job::{DeadlineClass, JobAlgo, SortJob, TenantId};
use crate::placement::PlacementPolicy;
use crate::queue::{IndexedQueue, QueuePolicy, QueueView};
use crate::report::{push_step, JobOutcome, RejectReason, RejectedJob, ServiceReport};
use crate::workload::{TraceWorkload, Workload};
use msort_core::{
    DriverStep, HetConfig, HetDriver, MwmsConfig, MwmsDriver, P2pConfig, P2pDriver, RpConfig,
    RpDriver, RunConfig, SampleSortConfig, SampleSortDriver, SortDriver,
};
use msort_data::{generate_into, is_sorted, same_multiset, SortKey};
use msort_gpu::{Fidelity, GpuSystem, OpId};
use msort_sim::{FaultPlan, SimDuration, SimTime};
use msort_topology::Platform;
use msort_trace::{groups, ArgValue, Recorder, TrackId};
use std::collections::{BTreeMap, BTreeSet, HashMap};

/// What the service does with a feasible submission whose latency budget
/// is in doubt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AdmissionPolicy {
    /// Admit everything feasible; only queue backpressure refuses work.
    Permissive,
    /// Refuse jobs whose SLO cannot be met: a deadline no idle fleet could
    /// reach is rejected as unattainable, and a deadline the current
    /// backlog would blow is shed at the door — goodput over throughput
    /// under overload. Jobs without an SLO are always admitted.
    SloAware,
}

/// How the service sizes its active GPU fleet over a run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FleetPolicy {
    /// Every configured fleet GPU is active for the whole run.
    Fixed,
    /// Lease GPUs in and out against demand. The active set grows
    /// immediately to cover leased gangs plus queued gang sizes (an
    /// arriving burst never waits on a timer) and shrinks — never below
    /// `min_gpus`, never a leased GPU — once a GPU has sat idle for
    /// `idle_release` (hysteresis against thrashing on job boundaries).
    Elastic {
        /// Floor on the active set (0 allows scale-to-zero between
        /// bursts).
        min_gpus: usize,
        /// Idle time before an unleased GPU is released.
        idle_release: SimDuration,
    },
}

/// Service configuration.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Queue (dispatch-order) policy.
    pub policy: QueuePolicy,
    /// Gang placement policy.
    pub placement: PlacementPolicy,
    /// Admission policy for feasible submissions.
    pub admission: AdmissionPolicy,
    /// Fleet-sizing policy.
    pub fleet_policy: FleetPolicy,
    /// Run-level settings shared by every job: fidelity, the fault
    /// schedule for the shared fabric, and the observability recorder.
    /// The algorithm part is ignored — each job picks its own.
    pub run: RunConfig,
    /// GPUs the service may lease (default: the whole platform). Under
    /// [`FleetPolicy::Elastic`] this is the *maximum* fleet.
    pub fleet: Option<Vec<usize>>,
    /// Maximum pending jobs before submissions are rejected.
    pub max_queue_depth: usize,
    /// Fair-share weights (tenants default to weight 1).
    pub tenant_weights: Vec<(TenantId, f64)>,
    /// Per-tenant latency SLOs: the default submit-to-finish budget for a
    /// tenant's jobs (a job's own [`SortJob::with_slo`] overrides it).
    pub tenant_slos: Vec<(TenantId, SimDuration)>,
}

impl ServeConfig {
    /// FIFO + topology-aware placement at full fidelity, permissive
    /// admission, fixed whole fleet, queue depth 1024, equal weights,
    /// pristine fabric.
    #[must_use]
    pub fn new() -> Self {
        Self {
            policy: QueuePolicy::Fifo,
            placement: PlacementPolicy::TopologyAware,
            admission: AdmissionPolicy::Permissive,
            fleet_policy: FleetPolicy::Fixed,
            run: RunConfig::new(),
            fleet: None,
            max_queue_depth: 1024,
            tenant_weights: Vec::new(),
            tenant_slos: Vec::new(),
        }
    }

    /// Select the queue policy.
    #[must_use]
    pub fn with_policy(mut self, policy: QueuePolicy) -> Self {
        self.policy = policy;
        self
    }

    /// Select the placement policy.
    #[must_use]
    pub fn with_placement(mut self, placement: PlacementPolicy) -> Self {
        self.placement = placement;
        self
    }

    /// Select the admission policy.
    #[must_use]
    pub fn with_admission(mut self, admission: AdmissionPolicy) -> Self {
        self.admission = admission;
        self
    }

    /// Lease GPUs elastically: scale up against demand, release after
    /// `idle_release` of idleness, never below `min_gpus`.
    #[must_use]
    pub fn elastic(mut self, min_gpus: usize, idle_release: SimDuration) -> Self {
        self.fleet_policy = FleetPolicy::Elastic {
            min_gpus,
            idle_release,
        };
        self
    }

    /// Use sampled fidelity with the given factor.
    #[must_use]
    pub fn sampled(mut self, scale: u64) -> Self {
        self.run.fidelity = Fidelity::Sampled { scale };
        self
    }

    /// Adopt `run` wholesale (fidelity, faults, recorder, seed). Any
    /// algorithm it names is ignored — each job picks its own.
    #[must_use]
    pub fn with_run(mut self, run: RunConfig) -> Self {
        self.run = run;
        self
    }

    /// Attach a recorder (pass an enabled one to capture a trace).
    #[must_use]
    pub fn with_recorder(mut self, recorder: Recorder) -> Self {
        self.run.recorder = recorder;
        self
    }

    /// Restrict the service to the given GPUs.
    #[must_use]
    pub fn with_fleet(mut self, fleet: Vec<usize>) -> Self {
        self.fleet = Some(fleet);
        self
    }

    /// Cap the pending queue (backpressure threshold).
    #[must_use]
    pub fn with_max_queue_depth(mut self, depth: usize) -> Self {
        self.max_queue_depth = depth;
        self
    }

    /// Give `tenant` fair-share weight `weight` (> 0).
    #[must_use]
    pub fn with_weight(mut self, tenant: TenantId, weight: f64) -> Self {
        assert!(weight > 0.0, "tenant weight must be positive");
        self.tenant_weights.push((tenant, weight));
        self
    }

    /// Give `tenant`'s jobs a default latency SLO (> 0): jobs without
    /// their own [`SortJob::with_slo`] inherit `submit + slo` as their
    /// deadline for EDF ordering, SLO-aware admission, and goodput.
    #[must_use]
    pub fn with_slo(mut self, tenant: TenantId, slo: SimDuration) -> Self {
        assert!(slo > SimDuration::ZERO, "tenant SLO must be positive");
        self.tenant_slos.push((tenant, slo));
        self
    }

    /// Inject the given fault schedule.
    #[deprecated(note = "configure faults on the shared RunConfig \
                         (`.with_run(RunConfig::new().with_faults(plan))`) instead")]
    #[must_use]
    pub fn with_faults(mut self, faults: FaultPlan) -> Self {
        self.run.faults = faults;
        self
    }
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self::new()
    }
}

/// A queued job's payload (policy-visible fields live in its
/// [`QueueView`] inside the [`IndexedQueue`]).
struct Pending {
    at: SimTime,
    job: SortJob,
}

/// A job holding a gang lease.
struct Running<K: SortKey> {
    seq: u64,
    tenant: TenantId,
    keys: u64,
    algorithm: &'static str,
    gang: Vec<usize>,
    submitted: SimTime,
    started: SimTime,
    deadline: Option<SimTime>,
    cost: SimDuration,
    input: Vec<K>,
    driver: Box<dyn SortDriver<K>>,
    /// Ops of the current phase still outstanding at registration time
    /// (kept for frontier collection; completed entries are skipped there).
    wait: Vec<OpId>,
    /// How many of `wait` have not yet completed. Maintained by
    /// op-completion wakeups; the job is steppable at zero.
    outstanding: usize,
    /// Per-job trace track (dummy when the recorder is disabled).
    track: TrackId,
}

/// Upper bound on pooled input-generation buffers. Two per concurrently
/// running job covers the steady state (every finish returns two); the cap
/// only matters for pathological burst shapes.
const SCRATCH_POOL_CAP: usize = 32;

struct TenantEntry {
    id: TenantId,
    weight: f64,
    /// Σ (estimated cost ÷ weight) over dispatched jobs — the normalized
    /// service the fair-share policy equalizes.
    credit: f64,
}

/// A multi-tenant sort service over one platform and one simulated clock.
pub struct SortService<'p, K: SortKey> {
    sys: GpuSystem<'p, K>,
    recorder: Recorder,
    policy: QueuePolicy,
    placement: PlacementPolicy,
    admission: AdmissionPolicy,
    fleet_policy: FleetPolicy,
    fidelity: Fidelity,
    max_queue_depth: usize,
    fleet: Vec<usize>,
    leased: Vec<bool>,
    /// Which fleet slots the service currently holds (always all-true
    /// under [`FleetPolicy::Fixed`]).
    active: Vec<bool>,
    /// When each slot last became idle (lease released or slot activated).
    idle_since: Vec<SimTime>,
    /// #(active ∧ ¬leased) — maintained so queued-heavy dispatch attempts
    /// bail in O(1) instead of re-collecting the free set.
    free_count: usize,
    /// #active, maintained alongside `active`.
    active_count: usize,
    /// #leased, maintained alongside `leased`.
    leased_count: usize,
    /// Reused buffer for the free-GPU list handed to placement.
    free_scratch: Vec<usize>,
    rr_cursor: usize,
    tenants: Vec<TenantEntry>,
    tenant_slos: Vec<(TenantId, SimDuration)>,
    /// The indexed pending queue: O(log n) pick under every policy.
    queue: IndexedQueue<Pending>,
    /// Σ gang size over pending jobs (the elastic fleet-target demand).
    queued_gpus: usize,
    /// Σ estimated cost × gang size over pending **and** running jobs, in
    /// gang-nanoseconds — the O(1) backlog feed for SLO admission.
    backlog_gang_ns: u128,
    /// Running jobs keyed by dispatch order, so iteration (frontier
    /// collection, ready stepping) follows the same order the linear
    /// running-list scan visited them in.
    running: BTreeMap<u64, Running<K>>,
    next_run_key: u64,
    /// In-flight wait op → the dispatch key of the job waiting on it.
    op_waiters: HashMap<OpId, u64>,
    /// Jobs whose wait set has fully drained, in dispatch order.
    ready: BTreeSet<u64>,
    /// Drain scratch for the op-completion log.
    completions: Vec<OpId>,
    /// Pooled input-generation buffers (see [`SCRATCH_POOL_CAP`]).
    scratch: Vec<Vec<K>>,
    next_seq: u64,
    outcomes: Vec<JobOutcome>,
    rejected: Vec<RejectedJob>,
    queue_depth: Vec<(SimTime, usize)>,
    fleet_log: Vec<(SimTime, usize)>,
    admission_track: TrackId,
    fleet_track: TrackId,
}

impl<'p, K: SortKey> SortService<'p, K> {
    /// Create a service over `platform`.
    ///
    /// # Panics
    /// Panics if the configured fleet names a GPU the platform lacks,
    /// contains duplicates, or is smaller than an elastic `min_gpus`.
    #[must_use]
    pub fn new(platform: &'p Platform, config: ServeConfig) -> Self {
        let mut sys = config.run.build_system(platform);
        // The serve loop never reads per-op history, so completed ops are
        // reclaimed as the clock drains them (memory stays at the live
        // window over a million-job run), and op completions are logged so
        // job wakeups are O(completions) instead of a wait-list rescan.
        sys.set_op_reclaim(true);
        sys.set_completion_log(true);
        let mut fleet = config
            .fleet
            .unwrap_or_else(|| (0..platform.topology.gpu_count()).collect());
        fleet.sort_unstable();
        let before = fleet.len();
        fleet.dedup();
        assert_eq!(before, fleet.len(), "fleet must not repeat GPUs");
        for &g in &fleet {
            assert!(
                g < platform.topology.gpu_count(),
                "fleet GPU {g} does not exist on {}",
                platform.id.name()
            );
        }
        let mut tenants: Vec<TenantEntry> = config
            .tenant_weights
            .iter()
            .map(|&(id, weight)| TenantEntry {
                id,
                weight,
                credit: 0.0,
            })
            .collect();
        tenants.sort_by_key(|t| t.id);
        let mut tenant_slos = config.tenant_slos;
        tenant_slos.sort_by_key(|&(t, _)| t);
        let active = match config.fleet_policy {
            FleetPolicy::Fixed => vec![true; fleet.len()],
            FleetPolicy::Elastic { min_gpus, .. } => {
                assert!(
                    min_gpus <= fleet.len(),
                    "elastic min_gpus {min_gpus} exceeds the {}-GPU fleet",
                    fleet.len()
                );
                (0..fleet.len()).map(|i| i < min_gpus).collect()
            }
        };
        let leased = vec![false; fleet.len()];
        let recorder = config.run.recorder;
        let (admission_track, fleet_track) = if recorder.is_enabled() {
            (
                recorder.track(groups::SERVICE, "admission"),
                recorder.track(groups::SERVICE, "fleet"),
            )
        } else {
            (TrackId(u32::MAX), TrackId(u32::MAX))
        };
        let initial = active.iter().filter(|&&a| a).count();
        Self {
            sys,
            recorder,
            policy: config.policy,
            placement: config.placement,
            admission: config.admission,
            fleet_policy: config.fleet_policy,
            fidelity: config.run.fidelity,
            max_queue_depth: config.max_queue_depth,
            idle_since: vec![SimTime::ZERO; fleet.len()],
            fleet,
            leased,
            active,
            free_count: initial,
            active_count: initial,
            leased_count: 0,
            free_scratch: Vec::new(),
            rr_cursor: 0,
            tenants,
            tenant_slos,
            queue: IndexedQueue::new(config.policy),
            queued_gpus: 0,
            backlog_gang_ns: 0,
            running: BTreeMap::new(),
            next_run_key: 0,
            op_waiters: HashMap::new(),
            ready: BTreeSet::new(),
            completions: Vec::new(),
            scratch: Vec::new(),
            next_seq: 0,
            outcomes: Vec::new(),
            rejected: Vec::new(),
            queue_depth: Vec::new(),
            fleet_log: vec![(SimTime::ZERO, initial)],
            admission_track,
            fleet_track,
        }
    }

    /// Drive `workload` to exhaustion and report. Arrivals are pulled
    /// lazily — the source may be generated on the fly — and each job's
    /// input is materialized from its seed only at submission, so an
    /// open-loop run never holds the whole stream in memory. Each output
    /// is validated as a sorted permutation of its generated input.
    ///
    /// Unbounded generators must be bounded (a job budget or
    /// [`crate::OpenLoop::until`] horizon) or the run never terminates.
    #[must_use]
    pub fn serve<W: Workload>(mut self, mut workload: W) -> ServiceReport {
        let mut next = workload.next_arrival();
        loop {
            let now = self.sys.now();
            while next.as_ref().is_some_and(|&(t, _)| t <= now) {
                let (at, job) = next.take().expect("checked is_some above");
                self.submit(at, job);
                next = workload.next_arrival();
            }
            // Resize, dispatch, and step to a fixpoint: a finished job
            // frees its gang (and may let the fleet shrink), a resized
            // fleet may let the next head-of-line job dispatch, all within
            // the same instant.
            loop {
                let resized = self.elastic_adjust();
                let dispatched = self.try_dispatch();
                let stepped = self.step_ready();
                if !resized && !dispatched && !stepped {
                    break;
                }
            }
            if self.running.is_empty() && self.queue.is_empty() && next.is_none() {
                break;
            }
            // The running set is bounded by the fleet (gang leases are
            // exclusive), so collecting the undone frontier is O(fleet),
            // not O(offered jobs). Completed waits must be filtered here:
            // `run_until` returns immediately on an already-done op.
            let frontier: Vec<OpId> = self
                .running
                .values()
                .flat_map(|r| r.wait.iter().copied())
                .filter(|&o| !self.sys.op_done(o))
                .collect();
            let mut deadline = next.as_ref().map(|&(t, _)| t);
            if let Some(release) = self.next_release_time() {
                deadline = Some(deadline.map_or(release, |d| d.min(release)));
            }
            assert!(
                !frontier.is_empty() || deadline.is_some(),
                "sort service stalled: {} queued jobs but nothing runnable",
                self.queue.len()
            );
            self.sys.run_until(&frontier, deadline);
            self.absorb_completions();
        }
        self.into_report()
    }

    /// Route every op completion recorded since the last clock advance to
    /// the job waiting on it; jobs whose wait set drained become ready.
    fn absorb_completions(&mut self) {
        self.sys.drain_completions(&mut self.completions);
        for op in self.completions.drain(..) {
            if let Some(key) = self.op_waiters.remove(&op) {
                let r = self.running.get_mut(&key).expect("waiter is running");
                r.outstanding -= 1;
                if r.outstanding == 0 {
                    self.ready.insert(key);
                }
            }
        }
    }

    /// Execute an explicit arrival list to completion and report.
    #[deprecated(note = "wrap the list in `TraceWorkload` and call `serve` — \
                         the open-loop Workload API")]
    #[must_use]
    pub fn run(self, arrivals: Vec<(SimTime, SortJob)>) -> ServiceReport {
        self.serve(TraceWorkload::new(arrivals))
    }

    fn tenant_index(&mut self, id: TenantId) -> usize {
        match self.tenants.binary_search_by_key(&id, |t| t.id) {
            Ok(i) => i,
            Err(i) => {
                self.tenants.insert(
                    i,
                    TenantEntry {
                        id,
                        weight: 1.0,
                        credit: 0.0,
                    },
                );
                i
            }
        }
    }

    /// The job's effective latency budget: its own SLO, else its tenant's.
    fn effective_slo(&self, job: &SortJob) -> Option<SimDuration> {
        job.slo.or_else(|| {
            self.tenant_slos
                .binary_search_by_key(&job.tenant, |&(t, _)| t)
                .ok()
                .map(|i| self.tenant_slos[i].1)
        })
    }

    /// Why `job` can never run on this service, if it can't.
    fn infeasible(&self, job: &SortJob) -> Option<String> {
        let g = job.gpus;
        let scale = self.fidelity.scale();
        if job.keys == 0 {
            return Some("zero keys".into());
        }
        if g == 0 {
            return Some("zero GPUs".into());
        }
        if g > self.fleet.len() {
            return Some(format!(
                "gang of {g} exceeds the {}-GPU fleet",
                self.fleet.len()
            ));
        }
        if job.algo == JobAlgo::P2p && !g.is_power_of_two() {
            return Some(format!("P2P sort needs a power-of-two gang, got {g}"));
        }
        if !job.keys.is_multiple_of(g as u64 * scale) {
            return Some(format!(
                "{} keys do not divide into {g} chunks of whole samples (scale {scale})",
                job.keys
            ));
        }
        let need = device_footprint_keys(job, scale) * K::DATA_TYPE.key_bytes();
        let min_mem = self
            .fleet
            .iter()
            .map(|&i| self.sys.platform().topology.gpu_memory_bytes(i))
            .min()
            .expect("fleet is non-empty");
        if need > min_mem {
            return Some(format!(
                "footprint of {need} B/GPU exceeds device memory of {min_mem} B"
            ));
        }
        None
    }

    fn reject(&mut self, seq: u64, tenant: TenantId, at: SimTime, reason: RejectReason) {
        if self.recorder.is_enabled() {
            let name = match &reason {
                RejectReason::QueueFull => "reject-queue-full",
                RejectReason::Infeasible(_) => "reject-infeasible",
                RejectReason::SloUnattainable(_) => "reject-slo-unattainable",
                RejectReason::Shed(_) => "shed",
            };
            self.recorder.instant_args(
                self.admission_track,
                name,
                "admission",
                at.0,
                vec![
                    ("tenant".to_string(), ArgValue::Str(tenant.to_string())),
                    ("seq".to_string(), ArgValue::U64(seq)),
                ],
            );
        }
        self.rejected.push(RejectedJob {
            seq,
            tenant,
            at,
            reason,
        });
    }

    fn submit(&mut self, at: SimTime, job: SortJob) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.tenant_index(job.tenant);
        if let Some(why) = self.infeasible(&job) {
            self.reject(seq, job.tenant, at, RejectReason::Infeasible(why));
            return;
        }
        if self.queue.len() >= self.max_queue_depth {
            self.reject(seq, job.tenant, at, RejectReason::QueueFull);
            return;
        }
        let cost = estimate_job_cost(self.sys.platform(), &job, K::DATA_TYPE);
        let slo = self.effective_slo(&job);
        let deadline = slo.map(|s| at + s);
        if self.admission == AdmissionPolicy::SloAware {
            if let (Some(slo), Some(deadline)) = (slo, deadline) {
                if cost > slo {
                    self.reject(
                        seq,
                        job.tenant,
                        at,
                        RejectReason::SloUnattainable(format!(
                            "solo service time {cost} exceeds the {slo} SLO"
                        )),
                    );
                    return;
                }
                // Predicted completion = now + optimistic queue wait +
                // solo cost, with the wait bounded by work conservation
                // over the *maximum* fleet (an elastic fleet scales up
                // before the backlog drains, so admission assumes it
                // will). Optimism sheds conservatively: a shed job truly
                // had no chance. The backlog total is the incrementally
                // maintained gang-ns counter — O(1), bit-identical to a
                // fresh sum (exact integer arithmetic).
                let wait = estimate_queue_wait_ns(self.backlog_gang_ns, self.fleet.len());
                if self.sys.now() + wait + cost > deadline {
                    self.reject(
                        seq,
                        job.tenant,
                        at,
                        RejectReason::Shed(format!(
                            "predicted wait {wait} + service {cost} blows the {slo} SLO"
                        )),
                    );
                    return;
                }
            }
        }
        self.backlog_gang_ns += u128::from(cost.0) * job.gpus as u128;
        self.queued_gpus += job.gpus;
        let view = QueueView {
            seq,
            tenant: job.tenant,
            cost,
            interactive: job.deadline == DeadlineClass::Interactive,
            deadline,
        };
        self.queue.push(view, Pending { at, job });
        push_step(&mut self.queue_depth, self.sys.now(), self.queue.len());
    }

    /// Demand-driven active-set target for an elastic fleet: enough GPUs
    /// for every leased gang plus every queued gang, clamped to
    /// `[min_gpus, fleet]`. Both terms are maintained counters.
    fn fleet_target(&self, min_gpus: usize) -> usize {
        (self.leased_count + self.queued_gpus).clamp(min_gpus, self.fleet.len())
    }

    /// One elastic resize pass. Returns `true` if the active set changed.
    fn elastic_adjust(&mut self) -> bool {
        let FleetPolicy::Elastic {
            min_gpus,
            idle_release,
        } = self.fleet_policy
        else {
            return false;
        };
        let now = self.sys.now();
        let target = self.fleet_target(min_gpus);
        let before = self.active_count;
        // Scale up immediately — a burst must not queue behind a timer.
        // Lowest slot first, mirrored by highest-first release below, so
        // the fleet grows and shrinks from opposite ends deterministically.
        for i in 0..self.active.len() {
            if self.active_count >= target {
                break;
            }
            if !self.active[i] {
                self.active[i] = true;
                self.idle_since[i] = now;
                self.active_count += 1;
                // An inactive slot is never leased, so it goes straight to
                // the free pool.
                self.free_count += 1;
            }
        }
        for i in (0..self.active.len()).rev() {
            if self.active_count <= target {
                break;
            }
            if self.active[i] && !self.leased[i] && now.since(self.idle_since[i]) >= idle_release {
                self.active[i] = false;
                self.active_count -= 1;
                self.free_count -= 1;
            }
        }
        if self.active_count == before {
            return false;
        }
        push_step(&mut self.fleet_log, now, self.active_count);
        true
    }

    /// The earliest instant an idle GPU becomes releasable, if the fleet
    /// is elastic and above target — a clock deadline, so releases happen
    /// at their exact hysteresis expiry rather than the next op edge.
    fn next_release_time(&self) -> Option<SimTime> {
        let FleetPolicy::Elastic {
            min_gpus,
            idle_release,
        } = self.fleet_policy
        else {
            return None;
        };
        if self.active_count <= self.fleet_target(min_gpus) {
            return None;
        }
        (0..self.fleet.len())
            .filter(|&i| self.active[i] && !self.leased[i])
            .map(|i| self.idle_since[i] + idle_release)
            .min()
    }

    fn set_leased(&mut self, gang: &[usize], leased: bool) {
        let now = self.sys.now();
        for &g in gang {
            let i = self
                .fleet
                .binary_search(&g)
                .expect("gang GPUs come from the fleet");
            debug_assert_ne!(self.leased[i], leased, "lease transitions are exact");
            self.leased[i] = leased;
            // Leased slots are always active, so every lease transition
            // moves the slot in or out of the free pool.
            if leased {
                self.leased_count += 1;
                self.free_count -= 1;
            } else {
                self.leased_count -= 1;
                self.free_count += 1;
                self.idle_since[i] = now;
            }
        }
    }

    /// Dispatch head-of-line jobs while the policy's next pick is
    /// placeable. Returns `true` if anything was dispatched.
    ///
    /// The pick is one indexed lookup; when the maintained free count
    /// can't cover the gang (the overload steady state) the attempt costs
    /// O(log n) total, with no queue rebuild and no free-set re-collect.
    fn try_dispatch(&mut self) -> bool {
        let mut any = false;
        while let Some(seq) = self.queue.pick() {
            let (_, pending) = self.queue.get(seq).expect("picked entry is live");
            let g = pending.job.gpus;
            if self.free_count < g {
                break;
            }
            let mut free = std::mem::take(&mut self.free_scratch);
            free.clear();
            free.extend(
                self.fleet
                    .iter()
                    .enumerate()
                    .filter(|&(i, _)| self.active[i] && !self.leased[i])
                    .map(|(_, &gpu)| gpu),
            );
            let mut cursor = self.rr_cursor;
            let placed = self.placement.place(
                self.sys.platform(),
                self.sys.constraint_table(),
                &free,
                g,
                &mut cursor,
            );
            self.free_scratch = free;
            let Some(gang) = placed else {
                break;
            };
            let need = device_footprint_keys(&pending.job, self.fidelity.scale())
                * K::DATA_TYPE.key_bytes();
            if gang
                .iter()
                .any(|&d| self.sys.world().gpu_free_bytes(d) < need)
            {
                break;
            }
            self.rr_cursor = cursor;
            let (view, pending) = self.queue.remove(seq).expect("picked entry is live");
            self.queued_gpus -= g;
            push_step(&mut self.queue_depth, self.sys.now(), self.queue.len());
            let ti = self.tenant_index(view.tenant);
            self.tenants[ti].credit += view.cost.as_secs_f64() / self.tenants[ti].weight;
            // Mirror the charge into the queue's ordered credit index —
            // the tenant table stays authoritative, the index follows it.
            let credit = self.tenants[ti].credit;
            self.queue.set_credit(view.tenant, credit);
            self.dispatch(seq, pending.at, pending.job, view.cost, view.deadline, gang);
            any = true;
        }
        any
    }

    /// Lease `gang` to `job`, build its driver, and enqueue its first
    /// phase.
    fn dispatch(
        &mut self,
        seq: u64,
        at: SimTime,
        job: SortJob,
        cost: SimDuration,
        deadline: Option<SimTime>,
        gang: Vec<usize>,
    ) {
        let scale = self.fidelity.scale();
        let phys = (job.keys / scale) as usize;
        // Inputs are generated into pooled buffers: the driver consumes
        // `data` and `input` rides along for end-of-job validation, and
        // both come back to the pool in `finish`, so a million-job run
        // reuses a handful of allocations instead of making two per job.
        let mut data = self.scratch.pop().unwrap_or_default();
        generate_into(job.dist, phys, job.seed, &mut data);
        let mut input = self.scratch.pop().unwrap_or_default();
        input.clear();
        input.extend_from_slice(&data);
        self.set_leased(&gang, true);
        let driver: Box<dyn SortDriver<K>> = match job.algo {
            JobAlgo::P2p => {
                let mut c = P2pConfig::new(job.gpus);
                c.gpu_order = Some(gang.clone());
                c.fidelity = self.fidelity;
                Box::new(P2pDriver::new(&mut self.sys, &c, data, job.keys))
            }
            JobAlgo::Rp => {
                let mut c = RpConfig::new(job.gpus);
                c.gpu_set = Some(gang.clone());
                c.fidelity = self.fidelity;
                Box::new(RpDriver::new(&mut self.sys, &c, data, job.keys))
            }
            JobAlgo::Het => {
                let mut c = HetConfig::new(job.gpus);
                c.gpu_set = Some(gang.clone());
                c.fidelity = self.fidelity;
                Box::new(HetDriver::new(&mut self.sys, &c, data, job.keys))
            }
            JobAlgo::SampleSort => {
                let mut c = SampleSortConfig::new(job.gpus);
                c.gpu_set = Some(gang.clone());
                c.fidelity = self.fidelity;
                Box::new(SampleSortDriver::new(&mut self.sys, &c, data, job.keys))
            }
            JobAlgo::MultiwayMerge => {
                let mut c = MwmsConfig::new(job.gpus);
                c.gpu_set = Some(gang.clone());
                c.fidelity = self.fidelity;
                Box::new(MwmsDriver::new(&mut self.sys, &c, data, job.keys))
            }
        };
        let started = self.sys.now();
        let track = if self.recorder.is_enabled() {
            let track = self.recorder.track(
                &groups::tenant(job.tenant.0),
                &format!("job {seq} ({})", job.algo.name()),
            );
            self.recorder.span(track, "queued", "job", at.0, started.0);
            self.recorder.instant_args(
                track,
                "placed",
                "job",
                started.0,
                vec![("gang".to_string(), ArgValue::Str(format!("{gang:?}")))],
            );
            track
        } else {
            TrackId(u32::MAX)
        };
        let running = Running {
            seq,
            tenant: job.tenant,
            keys: job.keys,
            algorithm: job.algo.name(),
            gang,
            submitted: at,
            started,
            deadline,
            cost,
            input,
            driver,
            wait: Vec::new(),
            outstanding: 0,
            track,
        };
        let key = self.next_run_key;
        self.next_run_key += 1;
        self.running.insert(key, running);
        self.step_one(key);
    }

    /// Step one running job and route the result: register its next wait
    /// set, or finish it.
    fn step_one(&mut self, key: u64) {
        let step = self
            .running
            .get_mut(&key)
            .expect("stepping a live job")
            .driver
            .step(&mut self.sys);
        match step {
            DriverStep::Wait(ops) => self.register_waits(key, ops),
            DriverStep::Done => {
                let r = self.running.remove(&key).expect("finishing a live job");
                self.finish(r);
            }
        }
    }

    /// Record a job's next wait set. Ops already complete don't count; a
    /// job whose whole set is already complete goes straight back on the
    /// ready list (it is stepped again on the *next* pass, exactly when
    /// the linear scan's next `retain` sweep would have caught it).
    fn register_waits(&mut self, key: u64, ops: Vec<OpId>) {
        let mut wait = std::mem::take(&mut self.running.get_mut(&key).expect("live job").wait);
        wait.clear();
        for op in ops {
            if self.sys.op_done(op) {
                continue;
            }
            self.op_waiters.insert(op, key);
            wait.push(op);
        }
        let outstanding = wait.len();
        let r = self.running.get_mut(&key).expect("live job");
        r.wait = wait;
        r.outstanding = outstanding;
        if outstanding == 0 {
            self.ready.insert(key);
        }
    }

    /// Step every job whose wait set has drained, in dispatch order —
    /// driven by op-completion wakeups, not a wait-list rescan. Returns
    /// `true` if any job advanced (or finished).
    fn step_ready(&mut self) -> bool {
        if self.ready.is_empty() {
            return false;
        }
        // One batch per pass: a job that re-arms into an already-complete
        // wait set lands back in `ready` for the next pass, mirroring the
        // reference's one-sweep-per-call semantics.
        let batch = std::mem::take(&mut self.ready);
        for key in batch {
            self.step_one(key);
        }
        true
    }

    /// Validate, release, and record a completed job.
    fn finish(&mut self, mut r: Running<K>) {
        let output = r.driver.take_output();
        let validated =
            r.driver.validated() && is_sorted(&output) && same_multiset(&r.input, &output);
        r.driver.release(&mut self.sys);
        self.set_leased(&r.gang, false);
        // The job's gang-seconds leave the backlog the moment it retires —
        // the same exact-integer quantum `submit` added.
        self.backlog_gang_ns -= u128::from(r.cost.0) * r.gang.len() as u128;
        if self.recorder.is_enabled() {
            let end = self.sys.now();
            // "job" (submitted → finished) encloses "queued" and
            // "executing" on the same track, so the span tree nests.
            self.recorder
                .span(r.track, "job", "job", r.submitted.0, end.0);
            self.recorder
                .span(r.track, "executing", "job", r.started.0, end.0);
            if validated {
                self.recorder.instant(r.track, "validated", "job", end.0);
            }
        }
        self.outcomes.push(JobOutcome {
            seq: r.seq,
            tenant: r.tenant,
            keys: r.keys,
            algorithm: r.algorithm,
            gpus: r.gang,
            submitted: r.submitted,
            started: r.started,
            finished: self.sys.now(),
            deadline: r.deadline,
            validated,
        });
        self.recycle(output);
        self.recycle(r.input);
    }

    /// Return a key buffer to the input-generation scratch pool. The pool
    /// is capped so an idle service doesn't pin gang-sized allocations.
    fn recycle(&mut self, buf: Vec<K>) {
        if self.scratch.len() < SCRATCH_POOL_CAP && buf.capacity() > 0 {
            self.scratch.push(buf);
        }
    }

    fn into_report(self) -> ServiceReport {
        // Counter samples are emitted from the deduplicated fleet log (one
        // per recorded change), so the trace mirrors the report exactly.
        if self.recorder.is_enabled() {
            for &(at, n) in &self.fleet_log {
                self.recorder
                    .counter(self.fleet_track, "active_gpus", at.0, n as f64);
            }
        }
        let makespan = self
            .outcomes
            .iter()
            .map(|o| o.finished)
            .max()
            .unwrap_or(SimTime::ZERO);
        ServiceReport {
            platform: self.sys.platform().id.name().to_string(),
            policy: self.policy,
            placement: self.placement,
            outcomes: self.outcomes,
            rejected: self.rejected,
            queue_depth: self.queue_depth,
            fleet_size: self.fleet_log,
            makespan,
            weights: self.tenants.iter().map(|t| (t.id, t.weight)).collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use msort_data::Distribution;

    fn job(tenant: u32, keys: u64) -> SortJob {
        SortJob::new(TenantId(tenant), keys)
    }

    fn trace(arrivals: Vec<(SimTime, SortJob)>) -> TraceWorkload {
        TraceWorkload::new(arrivals)
    }

    #[test]
    fn single_job_completes_and_validates() {
        let p = Platform::ibm_ac922();
        let svc = SortService::<u32>::new(&p, ServeConfig::new());
        let report = svc.serve(trace(vec![(SimTime::ZERO, job(0, 1 << 12))]));
        assert_eq!(report.outcomes.len(), 1);
        assert!(report.all_validated());
        assert!(report.makespan > SimTime::ZERO);
        assert_eq!(report.outcomes[0].gpus, vec![0, 1]);
        assert!(report.outcomes[0].latency() >= report.outcomes[0].service_time());
        assert_eq!(
            report.fleet_size,
            vec![(SimTime::ZERO, p.topology.gpu_count())]
        );
    }

    #[test]
    fn every_algorithm_runs_under_the_service() {
        let p = Platform::dgx_a100();
        for algo in JobAlgo::all() {
            let svc = SortService::<u64>::new(&p, ServeConfig::new());
            let report = svc.serve(trace(vec![(
                SimTime::ZERO,
                job(0, 1 << 12)
                    .with_algo(algo)
                    .with_dist(Distribution::ReverseSorted),
            )]));
            assert_eq!(report.outcomes.len(), 1, "{algo:?}");
            assert!(report.all_validated(), "{algo:?}");
            assert_eq!(report.outcomes[0].algorithm, algo.name());
        }
    }

    #[test]
    fn infeasible_jobs_are_rejected_not_wedged() {
        let p = Platform::ibm_ac922();
        let svc = SortService::<u32>::new(&p, ServeConfig::new());
        let report = svc.serve(trace(vec![
            (SimTime::ZERO, job(0, 1 << 12).with_gpus(3)), // non-pow2 P2P
            (SimTime::ZERO, job(1, 1 << 12).with_gpus(8)), // bigger than fleet
            (SimTime::ZERO, job(2, 0)),                    // empty
            (SimTime::ZERO, job(3, 1 << 12)),              // fine
        ]));
        assert_eq!(report.outcomes.len(), 1);
        assert_eq!(report.rejected.len(), 3);
        assert!(report
            .rejected
            .iter()
            .all(|r| matches!(r.reason, RejectReason::Infeasible(_))));
    }

    #[test]
    fn full_queue_applies_backpressure() {
        let p = Platform::ibm_ac922();
        let svc = SortService::<u32>::new(
            &p,
            ServeConfig::new()
                .with_max_queue_depth(1)
                .with_fleet(vec![0, 1]),
        );
        // One job runs, the next waits in the depth-1 queue, and the third
        // arrival finds the queue full and bounces.
        let report = svc.serve(trace(vec![
            (SimTime::ZERO, job(0, 1 << 12)),
            (SimTime(1), job(1, 1 << 12)),
            (SimTime(2), job(2, 1 << 12)),
        ]));
        assert_eq!(report.outcomes.len(), 2);
        assert_eq!(report.rejected.len(), 1);
        assert_eq!(report.rejected[0].reason, RejectReason::QueueFull);
        assert_eq!(report.rejected[0].tenant, TenantId(2));
    }

    #[test]
    fn concurrent_jobs_share_the_clock_and_contend() {
        // Two 2-GPU jobs on a 4-GPU fleet run concurrently: both start at
        // t=0 and each finishes later than it would alone.
        let p = Platform::dgx_a100();
        let solo = SortService::<u32>::new(&p, ServeConfig::new().with_fleet(vec![0, 1, 2, 3]))
            .serve(trace(vec![(SimTime::ZERO, job(0, 1 << 14))]));
        let duo = SortService::<u32>::new(&p, ServeConfig::new().with_fleet(vec![0, 1, 2, 3]))
            .serve(trace(vec![
                (SimTime::ZERO, job(0, 1 << 14)),
                (SimTime::ZERO, job(1, 1 << 14).with_seed(7)),
            ]));
        assert_eq!(duo.outcomes.len(), 2);
        assert!(duo.all_validated());
        assert_eq!(duo.outcomes[0].started, SimTime::ZERO);
        assert_eq!(duo.outcomes[1].started, SimTime::ZERO, "both run at once");
        let gangs: Vec<_> = duo.outcomes.iter().map(|o| o.gpus.clone()).collect();
        assert_ne!(gangs[0], gangs[1], "gang leases are exclusive");
        let solo_latency = solo.outcomes[0].latency();
        assert!(
            duo.outcomes.iter().all(|o| o.latency() >= solo_latency),
            "contention must not make a job faster than solo"
        );
    }

    #[test]
    fn interactive_jobs_jump_the_batch_queue() {
        let p = Platform::ibm_ac922();
        let svc = SortService::<u32>::new(&p, ServeConfig::new().with_fleet(vec![0, 1]));
        // One running job, then two queued: the interactive one (submitted
        // last) must start before the batch one.
        let report = svc.serve(trace(vec![
            (SimTime::ZERO, job(0, 1 << 12)),
            (SimTime(1), job(1, 1 << 12)),
            (SimTime(2), job(2, 1 << 12).interactive()),
        ]));
        assert_eq!(report.outcomes.len(), 3);
        let started = |t: u32| {
            report
                .outcomes
                .iter()
                .find(|o| o.tenant == TenantId(t))
                .unwrap()
                .started
        };
        assert!(started(2) < started(1), "interactive dispatches first");
    }

    /// The deprecated shim's own coverage: `run(arrivals)` must stay
    /// bit-identical to `serve(TraceWorkload::new(arrivals))`.
    #[test]
    #[allow(deprecated)]
    fn deprecated_run_matches_serve_bit_for_bit() {
        let p = Platform::ibm_ac922();
        let arrivals = vec![
            (SimTime(5_000), job(0, 1 << 12)),
            (SimTime::ZERO, job(1, 1 << 12).with_seed(3)),
            (SimTime(5_000), job(2, 1 << 12).with_seed(9)),
        ];
        let old = SortService::<u32>::new(&p, ServeConfig::new()).run(arrivals.clone());
        let new =
            SortService::<u32>::new(&p, ServeConfig::new()).serve(TraceWorkload::new(arrivals));
        assert_eq!(old, new);
    }

    #[test]
    fn slo_admission_rejects_unattainable_and_sheds() {
        let p = Platform::ibm_ac922();
        let solo = estimate_job_cost(&p, &job(0, 1 << 12), msort_data::DataType::U32);
        let slo = SimDuration::from_secs_f64(solo.as_secs_f64() * 2.5);
        let cfg = ServeConfig::new()
            .with_fleet(vec![0, 1])
            .with_admission(AdmissionPolicy::SloAware);
        let report = SortService::<u32>::new(&p, cfg).serve(trace(vec![
            // Impossible even on an idle fleet.
            (SimTime::ZERO, job(0, 1 << 12).with_slo(SimDuration(1))),
            // Admitted: starts immediately.
            (SimTime::ZERO, job(1, 1 << 12).with_slo(slo)),
            // Admitted: predicted wait ≈ 1 solo cost keeps it in budget.
            (SimTime::ZERO, job(2, 1 << 12).with_slo(slo)),
            // Shed: two jobs of backlog blow the 2.5× budget.
            (SimTime::ZERO, job(3, 1 << 12).with_slo(slo)),
            // No SLO: SLO-aware admission leaves best-effort work alone.
            (SimTime::ZERO, job(4, 1 << 12)),
        ]));
        assert_eq!(report.outcomes.len(), 3);
        assert_eq!(report.rejected.len(), 2);
        assert!(matches!(
            report.rejected[0].reason,
            RejectReason::SloUnattainable(_)
        ));
        assert!(matches!(report.rejected[1].reason, RejectReason::Shed(_)));
        assert_eq!(report.shed_jobs(), 2);
        // Deadline plumbing: admitted SLO jobs carry submit + slo, the
        // best-effort job carries none (and so always counts as goodput).
        for o in &report.outcomes {
            match o.tenant {
                TenantId(4) => assert_eq!(o.deadline, None),
                _ => assert_eq!(o.deadline, Some(SimTime::ZERO + slo)),
            }
        }
        // (Whether the admitted jobs *actually* met the budget is a cost-
        // model calibration question — at tiny sizes the solo estimate
        // undershoots the simulated latency — so admission behavior, not
        // attainment, is what this test pins.)
    }

    #[test]
    fn tenant_slo_applies_when_the_job_has_none() {
        let p = Platform::ibm_ac922();
        let cfg = ServeConfig::new()
            .with_fleet(vec![0, 1])
            .with_slo(TenantId(7), SimDuration(1))
            .with_admission(AdmissionPolicy::SloAware);
        let report = SortService::<u32>::new(&p, cfg).serve(trace(vec![
            (SimTime::ZERO, job(7, 1 << 12)),
            (SimTime::ZERO, job(8, 1 << 12)),
        ]));
        // Tenant 7 inherits the impossible 1 ns SLO; tenant 8 has none.
        assert_eq!(report.outcomes.len(), 1);
        assert_eq!(report.outcomes[0].tenant, TenantId(8));
        assert_eq!(report.outcomes[0].deadline, None);
        assert!(matches!(
            report.rejected[0].reason,
            RejectReason::SloUnattainable(_)
        ));
    }

    #[test]
    fn elastic_fleet_scales_up_then_releases_idle_gpus() {
        let p = Platform::dgx_a100();
        let idle_release = SimDuration::from_millis(1);
        let cfg = ServeConfig::new().elastic(2, idle_release);
        // A t=0 burst of three 2-GPU jobs, then a lone straggler long
        // after the burst drains and the hysteresis window expires.
        let report = SortService::<u32>::new(&p, cfg).serve(trace(vec![
            (SimTime::ZERO, job(0, 1 << 12)),
            (SimTime::ZERO, job(1, 1 << 12).with_seed(2)),
            (SimTime::ZERO, job(2, 1 << 12).with_seed(3)),
            (
                SimTime::ZERO + SimDuration::from_secs_f64(1.0),
                job(3, 1 << 12).with_seed(4),
            ),
        ]));
        assert_eq!(report.outcomes.len(), 4);
        assert!(report.all_validated());
        let sizes: Vec<usize> = report.fleet_size.iter().map(|&(_, n)| n).collect();
        // The min_gpus floor entry and the burst's same-instant scale-up
        // collapse into one deduplicated sample: the fleet held 2 GPUs for
        // zero simulated time before the t=0 burst leased it up to 6.
        assert_eq!(sizes[0], 6, "burst demand leases the fleet up to 3 gangs");
        assert_eq!(
            *sizes.last().unwrap(),
            2,
            "idle GPUs are released back to min_gpus"
        );
        assert!(
            report.fleet_size.windows(2).all(|w| w[0].1 != w[1].1),
            "the deduplicated timeline never repeats a value"
        );
        // The burst ran concurrently (scale-up worked), and the release
        // happened at the hysteresis expiry, not a job edge.
        let burst_starts: Vec<SimTime> = report
            .outcomes
            .iter()
            .filter(|o| o.submitted == SimTime::ZERO)
            .map(|o| o.started)
            .collect();
        assert!(
            burst_starts.iter().all(|&s| s == SimTime::ZERO),
            "every burst job starts immediately on a scaled-up fleet"
        );
        let mean = report.mean_fleet_size();
        assert!(
            mean > 2.0 && mean < 6.0,
            "time-weighted mean fleet {mean} sits between floor and peak"
        );
    }

    #[test]
    fn elastic_never_releases_leased_gpus() {
        let p = Platform::ibm_ac922();
        // Zero-hysteresis elastic fleet: eligible GPUs release instantly,
        // so any correctness slip would release a leased one mid-job.
        let cfg = ServeConfig::new()
            .with_fleet(vec![0, 1, 2, 3])
            .elastic(0, SimDuration::ZERO);
        let report = SortService::<u32>::new(&p, cfg).serve(trace(vec![
            (SimTime::ZERO, job(0, 1 << 12)),
            (SimTime(1_000), job(1, 1 << 12).with_seed(5)),
        ]));
        assert_eq!(report.outcomes.len(), 2);
        assert!(report.all_validated());
        assert_eq!(
            report.fleet_size.last().map(|&(_, n)| n),
            Some(0),
            "scale-to-zero after the last job"
        );
    }
}
