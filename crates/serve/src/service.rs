//! The sort service: admission, queueing, gang placement, and concurrent
//! execution of many sort jobs on one shared simulated clock.
//!
//! [`SortService::run`] consumes a time-stamped arrival stream and drives
//! every admitted job's [`SortDriver`] over a single [`GpuSystem`], so
//! co-scheduled jobs genuinely contend for links in the fluid-flow engine
//! (and reroute around injected faults together). Gang leases are
//! exclusive: a GPU serves one job at a time, and a job's device buffers
//! are freed the moment it completes.
//!
//! Scheduling is deliberately simple and fully deterministic:
//!
//! 1. admit every arrival whose timestamp is due (backpressure: a full
//!    queue rejects, it never blocks the clock);
//! 2. dispatch head-of-line jobs chosen by the [`QueuePolicy`] onto gangs
//!    chosen by the [`PlacementPolicy`] while GPUs and device memory
//!    allow;
//! 3. step every running job whose wait-set has drained;
//! 4. advance the shared clock to the next job-op completion or arrival.

use crate::cost::{device_footprint_keys, estimate_job_cost};
use crate::job::{DeadlineClass, JobAlgo, SortJob, TenantId};
use crate::placement::PlacementPolicy;
use crate::queue::{QueuePolicy, QueueView};
use crate::report::{JobOutcome, RejectReason, RejectedJob, ServiceReport};
use msort_core::{
    DriverStep, HetConfig, HetDriver, MwmsConfig, MwmsDriver, P2pConfig, P2pDriver, RpConfig,
    RpDriver, RunConfig, SampleSortConfig, SampleSortDriver, SortDriver,
};
use msort_data::{generate, is_sorted, same_multiset, SortKey};
use msort_gpu::{Fidelity, GpuSystem, OpId};
use msort_sim::{FaultPlan, SimDuration, SimTime};
use msort_topology::Platform;
use msort_trace::{groups, ArgValue, Recorder, TrackId};

/// Service configuration.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Queue (dispatch-order) policy.
    pub policy: QueuePolicy,
    /// Gang placement policy.
    pub placement: PlacementPolicy,
    /// Run-level settings shared by every job: fidelity, the fault
    /// schedule for the shared fabric, and the observability recorder.
    /// The algorithm part is ignored — each job picks its own.
    pub run: RunConfig,
    /// GPUs the service may lease (default: the whole platform).
    pub fleet: Option<Vec<usize>>,
    /// Maximum pending jobs before submissions are rejected.
    pub max_queue_depth: usize,
    /// Fair-share weights (tenants default to weight 1).
    pub tenant_weights: Vec<(TenantId, f64)>,
}

impl ServeConfig {
    /// FIFO + topology-aware placement at full fidelity, whole fleet,
    /// queue depth 1024, equal weights, pristine fabric.
    #[must_use]
    pub fn new() -> Self {
        Self {
            policy: QueuePolicy::Fifo,
            placement: PlacementPolicy::TopologyAware,
            run: RunConfig::new(),
            fleet: None,
            max_queue_depth: 1024,
            tenant_weights: Vec::new(),
        }
    }

    /// Select the queue policy.
    #[must_use]
    pub fn with_policy(mut self, policy: QueuePolicy) -> Self {
        self.policy = policy;
        self
    }

    /// Select the placement policy.
    #[must_use]
    pub fn with_placement(mut self, placement: PlacementPolicy) -> Self {
        self.placement = placement;
        self
    }

    /// Use sampled fidelity with the given factor.
    #[must_use]
    pub fn sampled(mut self, scale: u64) -> Self {
        self.run.fidelity = Fidelity::Sampled { scale };
        self
    }

    /// Adopt `run` wholesale (fidelity, faults, recorder, seed). Any
    /// algorithm it names is ignored — each job picks its own.
    #[must_use]
    pub fn with_run(mut self, run: RunConfig) -> Self {
        self.run = run;
        self
    }

    /// Attach a recorder (pass an enabled one to capture a trace).
    #[must_use]
    pub fn with_recorder(mut self, recorder: Recorder) -> Self {
        self.run.recorder = recorder;
        self
    }

    /// Restrict the service to the given GPUs.
    #[must_use]
    pub fn with_fleet(mut self, fleet: Vec<usize>) -> Self {
        self.fleet = Some(fleet);
        self
    }

    /// Cap the pending queue (backpressure threshold).
    #[must_use]
    pub fn with_max_queue_depth(mut self, depth: usize) -> Self {
        self.max_queue_depth = depth;
        self
    }

    /// Give `tenant` fair-share weight `weight` (> 0).
    #[must_use]
    pub fn with_weight(mut self, tenant: TenantId, weight: f64) -> Self {
        assert!(weight > 0.0, "tenant weight must be positive");
        self.tenant_weights.push((tenant, weight));
        self
    }

    /// Inject the given fault schedule.
    #[deprecated(note = "configure faults on the shared RunConfig \
                         (`.with_run(RunConfig::new().with_faults(plan))`) instead")]
    #[must_use]
    pub fn with_faults(mut self, faults: FaultPlan) -> Self {
        self.run.faults = faults;
        self
    }
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self::new()
    }
}

/// A queued job.
struct Pending {
    seq: u64,
    at: SimTime,
    job: SortJob,
    cost: SimDuration,
}

/// A job holding a gang lease.
struct Running<K: SortKey> {
    seq: u64,
    tenant: TenantId,
    keys: u64,
    algorithm: &'static str,
    gang: Vec<usize>,
    submitted: SimTime,
    started: SimTime,
    input: Vec<K>,
    driver: Box<dyn SortDriver<K>>,
    wait: Vec<OpId>,
    /// Per-job trace track (dummy when the recorder is disabled).
    track: TrackId,
}

struct TenantEntry {
    id: TenantId,
    weight: f64,
    /// Σ (estimated cost ÷ weight) over dispatched jobs — the normalized
    /// service the fair-share policy equalizes.
    credit: f64,
}

/// A multi-tenant sort service over one platform and one simulated clock.
pub struct SortService<'p, K: SortKey> {
    sys: GpuSystem<'p, K>,
    recorder: Recorder,
    policy: QueuePolicy,
    placement: PlacementPolicy,
    fidelity: Fidelity,
    max_queue_depth: usize,
    fleet: Vec<usize>,
    leased: Vec<bool>,
    rr_cursor: usize,
    tenants: Vec<TenantEntry>,
    pending: Vec<Pending>,
    running: Vec<Running<K>>,
    next_seq: u64,
    outcomes: Vec<JobOutcome>,
    rejected: Vec<RejectedJob>,
    queue_depth: Vec<(SimTime, usize)>,
}

impl<'p, K: SortKey> SortService<'p, K> {
    /// Create a service over `platform`.
    ///
    /// # Panics
    /// Panics if the configured fleet names a GPU the platform lacks or
    /// contains duplicates.
    #[must_use]
    pub fn new(platform: &'p Platform, config: ServeConfig) -> Self {
        let sys = config.run.build_system(platform);
        let mut fleet = config
            .fleet
            .unwrap_or_else(|| (0..platform.topology.gpu_count()).collect());
        fleet.sort_unstable();
        let before = fleet.len();
        fleet.dedup();
        assert_eq!(before, fleet.len(), "fleet must not repeat GPUs");
        for &g in &fleet {
            assert!(
                g < platform.topology.gpu_count(),
                "fleet GPU {g} does not exist on {}",
                platform.id.name()
            );
        }
        let mut tenants: Vec<TenantEntry> = config
            .tenant_weights
            .iter()
            .map(|&(id, weight)| TenantEntry {
                id,
                weight,
                credit: 0.0,
            })
            .collect();
        tenants.sort_by_key(|t| t.id);
        let leased = vec![false; fleet.len()];
        Self {
            sys,
            recorder: config.run.recorder,
            policy: config.policy,
            placement: config.placement,
            fidelity: config.run.fidelity,
            max_queue_depth: config.max_queue_depth,
            fleet,
            leased,
            rr_cursor: 0,
            tenants,
            pending: Vec::new(),
            running: Vec::new(),
            next_seq: 0,
            outcomes: Vec::new(),
            rejected: Vec::new(),
            queue_depth: Vec::new(),
        }
    }

    /// Execute `arrivals` (stably sorted by timestamp) to completion and
    /// report. Each job's input is generated from its seed, and each
    /// output is validated as a sorted permutation of that input.
    #[must_use]
    pub fn run(mut self, mut arrivals: Vec<(SimTime, SortJob)>) -> ServiceReport {
        arrivals.sort_by_key(|&(t, _)| t);
        let mut next = 0usize;
        loop {
            let now = self.sys.now();
            while next < arrivals.len() && arrivals[next].0 <= now {
                let (at, job) = arrivals[next].clone();
                next += 1;
                self.submit(at, job);
            }
            // Dispatch and step to a fixpoint: a finished job frees its
            // gang, which may let the next head-of-line job dispatch
            // within the same instant.
            loop {
                let dispatched = self.try_dispatch();
                let stepped = self.step_ready();
                if !dispatched && !stepped {
                    break;
                }
            }
            if self.running.is_empty() && self.pending.is_empty() && next == arrivals.len() {
                break;
            }
            let frontier: Vec<OpId> = self
                .running
                .iter()
                .flat_map(|r| r.wait.iter().copied())
                .collect();
            let deadline = (next < arrivals.len()).then(|| arrivals[next].0);
            assert!(
                !frontier.is_empty() || deadline.is_some(),
                "sort service stalled: {} queued jobs but nothing runnable",
                self.pending.len()
            );
            self.sys.run_until(&frontier, deadline);
        }
        self.into_report()
    }

    fn tenant_index(&mut self, id: TenantId) -> usize {
        match self.tenants.binary_search_by_key(&id, |t| t.id) {
            Ok(i) => i,
            Err(i) => {
                self.tenants.insert(
                    i,
                    TenantEntry {
                        id,
                        weight: 1.0,
                        credit: 0.0,
                    },
                );
                i
            }
        }
    }

    /// Why `job` can never run on this service, if it can't.
    fn infeasible(&self, job: &SortJob) -> Option<String> {
        let g = job.gpus;
        let scale = self.fidelity.scale();
        if job.keys == 0 {
            return Some("zero keys".into());
        }
        if g == 0 {
            return Some("zero GPUs".into());
        }
        if g > self.fleet.len() {
            return Some(format!(
                "gang of {g} exceeds the {}-GPU fleet",
                self.fleet.len()
            ));
        }
        if job.algo == JobAlgo::P2p && !g.is_power_of_two() {
            return Some(format!("P2P sort needs a power-of-two gang, got {g}"));
        }
        if !job.keys.is_multiple_of(g as u64 * scale) {
            return Some(format!(
                "{} keys do not divide into {g} chunks of whole samples (scale {scale})",
                job.keys
            ));
        }
        let need = device_footprint_keys(job, scale) * K::DATA_TYPE.key_bytes();
        let min_mem = self
            .fleet
            .iter()
            .map(|&i| self.sys.platform().topology.gpu_memory_bytes(i))
            .min()
            .expect("fleet is non-empty");
        if need > min_mem {
            return Some(format!(
                "footprint of {need} B/GPU exceeds device memory of {min_mem} B"
            ));
        }
        None
    }

    fn submit(&mut self, at: SimTime, job: SortJob) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.tenant_index(job.tenant);
        if let Some(why) = self.infeasible(&job) {
            self.rejected.push(RejectedJob {
                seq,
                tenant: job.tenant,
                at,
                reason: RejectReason::Infeasible(why),
            });
            return;
        }
        if self.pending.len() >= self.max_queue_depth {
            self.rejected.push(RejectedJob {
                seq,
                tenant: job.tenant,
                at,
                reason: RejectReason::QueueFull,
            });
            return;
        }
        let cost = estimate_job_cost(self.sys.platform(), &job, K::DATA_TYPE);
        self.pending.push(Pending { seq, at, job, cost });
        self.queue_depth.push((self.sys.now(), self.pending.len()));
    }

    fn free_gpus(&self) -> Vec<usize> {
        self.fleet
            .iter()
            .zip(&self.leased)
            .filter(|&(_, &l)| !l)
            .map(|(&g, _)| g)
            .collect()
    }

    fn set_leased(&mut self, gang: &[usize], leased: bool) {
        for &g in gang {
            let i = self
                .fleet
                .iter()
                .position(|&f| f == g)
                .expect("gang GPUs come from the fleet");
            self.leased[i] = leased;
        }
    }

    /// Dispatch head-of-line jobs while the policy's next pick is
    /// placeable. Returns `true` if anything was dispatched.
    fn try_dispatch(&mut self) -> bool {
        let mut any = false;
        loop {
            let views: Vec<QueueView> = self
                .pending
                .iter()
                .map(|p| QueueView {
                    seq: p.seq,
                    tenant: p.job.tenant,
                    cost: p.cost,
                    interactive: p.job.deadline == DeadlineClass::Interactive,
                })
                .collect();
            let tenants = &self.tenants;
            let credit = |t: TenantId| -> f64 {
                tenants
                    .binary_search_by_key(&t, |e| e.id)
                    .map_or(0.0, |i| tenants[i].credit)
            };
            let Some(i) = self.policy.pick(&views, &credit) else {
                break;
            };
            let g = self.pending[i].job.gpus;
            let free = self.free_gpus();
            if free.len() < g {
                break;
            }
            let mut cursor = self.rr_cursor;
            let placed = self.placement.place(
                self.sys.platform(),
                self.sys.constraint_table(),
                &free,
                g,
                &mut cursor,
            );
            let Some(gang) = placed else {
                break;
            };
            let need = device_footprint_keys(&self.pending[i].job, self.fidelity.scale())
                * K::DATA_TYPE.key_bytes();
            if gang
                .iter()
                .any(|&d| self.sys.world().gpu_free_bytes(d) < need)
            {
                break;
            }
            self.rr_cursor = cursor;
            let Pending { seq, at, job, cost } = self.pending.remove(i);
            self.queue_depth.push((self.sys.now(), self.pending.len()));
            let ti = self.tenant_index(job.tenant);
            self.tenants[ti].credit += cost.as_secs_f64() / self.tenants[ti].weight;
            self.dispatch(seq, at, job, gang);
            any = true;
        }
        any
    }

    /// Lease `gang` to `job`, build its driver, and enqueue its first
    /// phase.
    fn dispatch(&mut self, seq: u64, at: SimTime, job: SortJob, gang: Vec<usize>) {
        let scale = self.fidelity.scale();
        let phys = (job.keys / scale) as usize;
        let data: Vec<K> = generate(job.dist, phys, job.seed);
        let input = data.clone();
        self.set_leased(&gang, true);
        let driver: Box<dyn SortDriver<K>> = match job.algo {
            JobAlgo::P2p => {
                let mut c = P2pConfig::new(job.gpus);
                c.gpu_order = Some(gang.clone());
                c.fidelity = self.fidelity;
                Box::new(P2pDriver::new(&mut self.sys, &c, data, job.keys))
            }
            JobAlgo::Rp => {
                let mut c = RpConfig::new(job.gpus);
                c.gpu_set = Some(gang.clone());
                c.fidelity = self.fidelity;
                Box::new(RpDriver::new(&mut self.sys, &c, data, job.keys))
            }
            JobAlgo::Het => {
                let mut c = HetConfig::new(job.gpus);
                c.gpu_set = Some(gang.clone());
                c.fidelity = self.fidelity;
                Box::new(HetDriver::new(&mut self.sys, &c, data, job.keys))
            }
            JobAlgo::SampleSort => {
                let mut c = SampleSortConfig::new(job.gpus);
                c.gpu_set = Some(gang.clone());
                c.fidelity = self.fidelity;
                Box::new(SampleSortDriver::new(&mut self.sys, &c, data, job.keys))
            }
            JobAlgo::MultiwayMerge => {
                let mut c = MwmsConfig::new(job.gpus);
                c.gpu_set = Some(gang.clone());
                c.fidelity = self.fidelity;
                Box::new(MwmsDriver::new(&mut self.sys, &c, data, job.keys))
            }
        };
        let started = self.sys.now();
        let track = if self.recorder.is_enabled() {
            let track = self.recorder.track(
                &groups::tenant(job.tenant.0),
                &format!("job {seq} ({})", job.algo.name()),
            );
            self.recorder.span(track, "queued", "job", at.0, started.0);
            self.recorder.instant_args(
                track,
                "placed",
                "job",
                started.0,
                vec![("gang".to_string(), ArgValue::Str(format!("{gang:?}")))],
            );
            track
        } else {
            TrackId(u32::MAX)
        };
        let running = Running {
            seq,
            tenant: job.tenant,
            keys: job.keys,
            algorithm: job.algo.name(),
            gang,
            submitted: at,
            started,
            input,
            driver,
            wait: Vec::new(),
            track,
        };
        self.running.push(running);
        let idx = self.running.len() - 1;
        match self.running[idx].driver.step(&mut self.sys) {
            DriverStep::Wait(ops) => self.running[idx].wait = ops,
            DriverStep::Done => {
                let r = self.running.remove(idx);
                self.finish(r);
            }
        }
    }

    /// Step every running job whose wait-set has fully drained. Returns
    /// `true` if any job advanced (or finished).
    fn step_ready(&mut self) -> bool {
        let mut progressed = false;
        let mut i = 0;
        while i < self.running.len() {
            let sys = &self.sys;
            self.running[i].wait.retain(|&o| !sys.op_done(o));
            if !self.running[i].wait.is_empty() {
                i += 1;
                continue;
            }
            progressed = true;
            match self.running[i].driver.step(&mut self.sys) {
                DriverStep::Wait(ops) => {
                    self.running[i].wait = ops;
                    i += 1;
                }
                DriverStep::Done => {
                    let r = self.running.remove(i);
                    self.finish(r);
                }
            }
        }
        progressed
    }

    /// Validate, release, and record a completed job.
    fn finish(&mut self, mut r: Running<K>) {
        let output = r.driver.take_output();
        let validated =
            r.driver.validated() && is_sorted(&output) && same_multiset(&r.input, &output);
        r.driver.release(&mut self.sys);
        self.set_leased(&r.gang, false);
        if self.recorder.is_enabled() {
            let end = self.sys.now();
            // "job" (submitted → finished) encloses "queued" and
            // "executing" on the same track, so the span tree nests.
            self.recorder
                .span(r.track, "job", "job", r.submitted.0, end.0);
            self.recorder
                .span(r.track, "executing", "job", r.started.0, end.0);
            if validated {
                self.recorder.instant(r.track, "validated", "job", end.0);
            }
        }
        self.outcomes.push(JobOutcome {
            seq: r.seq,
            tenant: r.tenant,
            keys: r.keys,
            algorithm: r.algorithm,
            gpus: r.gang,
            submitted: r.submitted,
            started: r.started,
            finished: self.sys.now(),
            validated,
        });
    }

    fn into_report(self) -> ServiceReport {
        let makespan = self
            .outcomes
            .iter()
            .map(|o| o.finished)
            .max()
            .unwrap_or(SimTime::ZERO);
        ServiceReport {
            platform: self.sys.platform().id.name().to_string(),
            policy: self.policy,
            placement: self.placement,
            outcomes: self.outcomes,
            rejected: self.rejected,
            queue_depth: self.queue_depth,
            makespan,
            weights: self.tenants.iter().map(|t| (t.id, t.weight)).collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use msort_data::Distribution;

    fn job(tenant: u32, keys: u64) -> SortJob {
        SortJob::new(TenantId(tenant), keys)
    }

    #[test]
    fn single_job_completes_and_validates() {
        let p = Platform::ibm_ac922();
        let svc = SortService::<u32>::new(&p, ServeConfig::new());
        let report = svc.run(vec![(SimTime::ZERO, job(0, 1 << 12))]);
        assert_eq!(report.outcomes.len(), 1);
        assert!(report.all_validated());
        assert!(report.makespan > SimTime::ZERO);
        assert_eq!(report.outcomes[0].gpus, vec![0, 1]);
        assert!(report.outcomes[0].latency() >= report.outcomes[0].service_time());
    }

    #[test]
    fn every_algorithm_runs_under_the_service() {
        let p = Platform::dgx_a100();
        for algo in JobAlgo::all() {
            let svc = SortService::<u64>::new(&p, ServeConfig::new());
            let report = svc.run(vec![(
                SimTime::ZERO,
                job(0, 1 << 12)
                    .with_algo(algo)
                    .with_dist(Distribution::ReverseSorted),
            )]);
            assert_eq!(report.outcomes.len(), 1, "{algo:?}");
            assert!(report.all_validated(), "{algo:?}");
            assert_eq!(report.outcomes[0].algorithm, algo.name());
        }
    }

    #[test]
    fn infeasible_jobs_are_rejected_not_wedged() {
        let p = Platform::ibm_ac922();
        let svc = SortService::<u32>::new(&p, ServeConfig::new());
        let report = svc.run(vec![
            (SimTime::ZERO, job(0, 1 << 12).with_gpus(3)), // non-pow2 P2P
            (SimTime::ZERO, job(1, 1 << 12).with_gpus(8)), // bigger than fleet
            (SimTime::ZERO, job(2, 0)),                    // empty
            (SimTime::ZERO, job(3, 1 << 12)),              // fine
        ]);
        assert_eq!(report.outcomes.len(), 1);
        assert_eq!(report.rejected.len(), 3);
        assert!(report
            .rejected
            .iter()
            .all(|r| matches!(r.reason, RejectReason::Infeasible(_))));
    }

    #[test]
    fn full_queue_applies_backpressure() {
        let p = Platform::ibm_ac922();
        let svc = SortService::<u32>::new(
            &p,
            ServeConfig::new()
                .with_max_queue_depth(1)
                .with_fleet(vec![0, 1]),
        );
        // One job runs, the next waits in the depth-1 queue, and the third
        // arrival finds the queue full and bounces.
        let report = svc.run(vec![
            (SimTime::ZERO, job(0, 1 << 12)),
            (SimTime(1), job(1, 1 << 12)),
            (SimTime(2), job(2, 1 << 12)),
        ]);
        assert_eq!(report.outcomes.len(), 2);
        assert_eq!(report.rejected.len(), 1);
        assert_eq!(report.rejected[0].reason, RejectReason::QueueFull);
        assert_eq!(report.rejected[0].tenant, TenantId(2));
    }

    #[test]
    fn concurrent_jobs_share_the_clock_and_contend() {
        // Two 2-GPU jobs on a 4-GPU fleet run concurrently: both start at
        // t=0 and each finishes later than it would alone.
        let p = Platform::dgx_a100();
        let solo = SortService::<u32>::new(&p, ServeConfig::new().with_fleet(vec![0, 1, 2, 3]))
            .run(vec![(SimTime::ZERO, job(0, 1 << 14))]);
        let duo =
            SortService::<u32>::new(&p, ServeConfig::new().with_fleet(vec![0, 1, 2, 3])).run(vec![
                (SimTime::ZERO, job(0, 1 << 14)),
                (SimTime::ZERO, job(1, 1 << 14).with_seed(7)),
            ]);
        assert_eq!(duo.outcomes.len(), 2);
        assert!(duo.all_validated());
        assert_eq!(duo.outcomes[0].started, SimTime::ZERO);
        assert_eq!(duo.outcomes[1].started, SimTime::ZERO, "both run at once");
        let gangs: Vec<_> = duo.outcomes.iter().map(|o| o.gpus.clone()).collect();
        assert_ne!(gangs[0], gangs[1], "gang leases are exclusive");
        let solo_latency = solo.outcomes[0].latency();
        assert!(
            duo.outcomes.iter().all(|o| o.latency() >= solo_latency),
            "contention must not make a job faster than solo"
        );
    }

    #[test]
    fn interactive_jobs_jump_the_batch_queue() {
        let p = Platform::ibm_ac922();
        let svc = SortService::<u32>::new(&p, ServeConfig::new().with_fleet(vec![0, 1]));
        // One running job, then two queued: the interactive one (submitted
        // last) must start before the batch one.
        let report = svc.run(vec![
            (SimTime::ZERO, job(0, 1 << 12)),
            (SimTime(1), job(1, 1 << 12)),
            (SimTime(2), job(2, 1 << 12).interactive()),
        ]);
        assert_eq!(report.outcomes.len(), 3);
        let started = |t: u32| {
            report
                .outcomes
                .iter()
                .find(|o| o.tenant == TenantId(t))
                .unwrap()
                .started
        };
        assert!(started(2) < started(1), "interactive dispatches first");
    }
}
