//! Gang placement policies: which free GPUs a dispatched job leases.

use msort_topology::{best_gpu_set, ConstraintTable, Platform};

/// How the service chooses a job's GPU gang from the free fleet.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PlacementPolicy {
    /// Topology-oblivious baseline: a rotating cursor walks the free list
    /// and takes the next `g` GPUs, whatever constraints they share.
    RoundRobin,
    /// Score every candidate subset with
    /// [`msort_topology::score_gpu_set`] against the *current*
    /// (health-adjusted) constraint table and take the argmin — gangs land
    /// on distinct PCIe switches / NVLink cliques when possible and route
    /// around downed links automatically.
    TopologyAware,
}

impl PlacementPolicy {
    /// Choose a `g`-GPU gang from `free` (sorted ascending), or `None`
    /// when no feasible gang exists. `cursor` is the round-robin rotation
    /// state; topology-aware placement ignores it.
    ///
    /// The returned gang is sorted ascending — for the P2P merge tree that
    /// is the index-order pairing, which is optimal on every paper
    /// platform's default fleet ordering.
    #[must_use]
    pub fn place(
        &self,
        platform: &Platform,
        table: &ConstraintTable,
        free: &[usize],
        g: usize,
        cursor: &mut usize,
    ) -> Option<Vec<usize>> {
        if g == 0 || free.len() < g {
            return None;
        }
        match self {
            PlacementPolicy::RoundRobin => {
                let start = *cursor % free.len();
                let mut gang: Vec<usize> = (0..g).map(|k| free[(start + k) % free.len()]).collect();
                *cursor += g;
                gang.sort_unstable();
                Some(gang)
            }
            // A finite-score gang always beats an infinite one in the
            // argmin, so downed links are avoided whenever any healthy
            // subset exists; when none does, the job still places and the
            // executor's fault rerouting carries its traffic — placement
            // degrades, it never deadlocks.
            PlacementPolicy::TopologyAware => best_gpu_set(platform, table, free, g),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_robin_rotates_through_the_fleet() {
        let p = Platform::dgx_a100();
        let t = p.constraint_table();
        let free = [0, 1, 2, 3];
        let mut cursor = 0;
        let rr = PlacementPolicy::RoundRobin;
        assert_eq!(rr.place(&p, t, &free, 2, &mut cursor), Some(vec![0, 1]));
        assert_eq!(rr.place(&p, t, &free, 2, &mut cursor), Some(vec![2, 3]));
        // Cursor 4 over a 3-GPU free list starts at index 1.
        assert_eq!(
            rr.place(&p, t, &[0, 1, 2], 2, &mut cursor),
            Some(vec![1, 2])
        );
        // Cursor 6 over the same list starts at index 0 again.
        assert_eq!(
            rr.place(&p, t, &[0, 1, 2], 2, &mut cursor),
            Some(vec![0, 1])
        );
        assert_eq!(rr.place(&p, t, &free, 5, &mut cursor), None);
    }

    #[test]
    fn topology_aware_picks_switch_disjoint_pairs_on_dgx() {
        let p = Platform::dgx_a100();
        let t = p.constraint_table();
        let mut cursor = 0;
        let topo = PlacementPolicy::TopologyAware;
        let gang = topo.place(&p, t, &[0, 1, 2, 3], 2, &mut cursor).unwrap();
        assert_eq!(gang, vec![0, 2], "distinct PCIe switches");
        // The remaining pair is forced but still placeable.
        assert_eq!(topo.place(&p, t, &[1, 3], 2, &mut cursor), Some(vec![1, 3]));
    }
}
