//! Job cost and footprint estimation for admission control and SJF.
//!
//! The estimates reuse the calibrated machinery the simulator itself runs
//! on: single-flow rates from the platform's constraint table (what one
//! uncontended copy stream sustains) and the [`CostModel`]'s kernel
//! timings. They are *solo* estimates — a scheduler cannot know the future
//! contention a job will see — but they are monotone in job size and
//! consistent across jobs, which is all shortest-job-first and fair-share
//! accounting need.

use crate::job::{JobAlgo, SortJob};
use msort_data::DataType;
use msort_sim::{CostModel, GpuSortAlgo, SimDuration};
use msort_topology::{allocate_rates, Endpoint, Platform};

/// Uncontended single-flow rate (bytes/s) between two endpoints on the
/// pristine fabric.
fn single_flow_rate(platform: &Platform, src: Endpoint, dst: Endpoint) -> f64 {
    let r = msort_topology::route::route(&platform.topology, src, dst)
        .expect("platform endpoints are connected");
    allocate_rates(platform.constraint_table(), &[platform.flow_request(&r)])[0]
}

/// Estimated solo service time of `job` on `platform` for keys of `dt`.
///
/// Models the canonical four phases: scatter and gather at the host↔GPU
/// single-flow rate, the local sort from the calibrated kernel model, and
/// an algorithm-specific merge term (P2P swap levels, the RP all-to-all
/// exchange, or the CPU multiway merge).
#[must_use]
pub fn estimate_job_cost(platform: &Platform, job: &SortJob, dt: DataType) -> SimDuration {
    let g = job.gpus.max(1) as u64;
    let chunk = job.keys.div_ceil(g);
    let kb = dt.key_bytes();
    let chunk_bytes = chunk * kb;
    let model = CostModel::for_platform(platform);
    let gm = platform.topology.gpu_model(0);

    let host_rate = single_flow_rate(platform, Endpoint::HOST0, Endpoint::gpu(0));
    let p2p_rate = if platform.topology.gpu_count() > 1 {
        single_flow_rate(platform, Endpoint::gpu(0), Endpoint::gpu(1))
    } else {
        host_rate
    };

    let copy = 2.0 * chunk_bytes as f64 / host_rate;
    let sort = model
        .gpu_sort(gm, GpuSortAlgo::ThrustLike, dt, chunk)
        .as_secs_f64();
    let merge = if g <= 1 {
        0.0
    } else {
        match job.algo {
            JobAlgo::P2p => {
                // log2(g) swap levels; each moves about half a chunk per
                // GPU and re-merges the chunk locally.
                let levels = (g as f64).log2().ceil();
                levels
                    * (chunk_bytes as f64 / 2.0 / p2p_rate
                        + model.gpu_merge_mgpu(gm, chunk_bytes).as_secs_f64())
            }
            JobAlgo::Rp => {
                // One all-to-all exchange: (g-1)/g of the chunk leaves the
                // GPU, then one g-way local merge.
                chunk_bytes as f64 * (g - 1) as f64 / g as f64 / p2p_rate
                    + model.gpu_merge_mgpu(gm, chunk_bytes).as_secs_f64()
            }
            JobAlgo::Het => model
                .cpu_multiway_merge(job.keys * kb, g as usize)
                .as_secs_f64(),
            JobAlgo::SampleSort => {
                // One local partition pass, then the all-to-all ships
                // (g-1)/g of the chunk (the second sort is the `sort`
                // term — sample sort's only sort runs post-exchange on a
                // chunk-sized partition).
                model.gpu_partition(gm, chunk_bytes).as_secs_f64()
                    + chunk_bytes as f64 * (g - 1) as f64 / g as f64 / p2p_rate
            }
            JobAlgo::MultiwayMerge => {
                // ceil(log2 g) pairwise levels: level l (1-based) ships a
                // 2^(l-1)-chunk loser run point-to-point and merges
                // 2^l chunks on the winner; plus the gather is one full-n
                // DtoH instead of per-GPU chunks.
                let levels = (g as f64).log2().ceil() as u32;
                let mut secs = 0.0;
                for l in 1..=levels {
                    let run_bytes = chunk_bytes as f64 * f64::from(1u32 << (l - 1));
                    secs += run_bytes / p2p_rate;
                    secs += model.gpu_merge(gm, (2.0 * run_bytes) as u64).as_secs_f64();
                }
                secs + (job.keys * kb - chunk_bytes) as f64 / host_rate
            }
        }
    };
    // Inter-node surcharge on cluster platforms: the input scatters from
    // node 0 over its NIC, each node ships (n-1)/n of its partition in the
    // bucket all-to-all (nodes send concurrently, so per-node bytes), and
    // the sorted partitions gather back through node 0's NIC. All three
    // legs pace at the fabric's effective per-direction rate.
    let inter_node = match platform.cluster {
        Some(c) if c.nodes > 1 => {
            let nodes = c.nodes as f64;
            let nic_rate = c.fabric.effective_per_dir();
            let bytes = (job.keys * kb) as f64;
            let crossing = bytes * (nodes - 1.0) / nodes;
            (2.0 * crossing + crossing / nodes) / nic_rate
        }
        _ => 0.0,
    };
    SimDuration::from_secs_f64(copy + sort + merge + inter_node)
}

/// Estimated time until a newly queued job could start, given the backlog
/// ahead of it: the gang-seconds of queued and in-flight work divided by
/// the active fleet's size (work conservation — gang scheduling can only
/// do worse, so this is an optimistic bound and sheds conservatively).
///
/// `backlog` is `(estimated solo cost, gang size)` for every pending job
/// plus every running job (charging a running job its full estimate keeps
/// the bound cheap and deterministic; the alternative — tracking per-job
/// progress — would couple admission to simulator internals).
#[must_use]
pub fn estimate_queue_wait(backlog: &[(SimDuration, usize)], active_gpus: usize) -> SimDuration {
    let gang_ns: u128 = backlog
        .iter()
        .map(|&(cost, gpus)| u128::from(cost.0) * gpus as u128)
        .sum();
    estimate_queue_wait_ns(gang_ns, active_gpus)
}

/// [`estimate_queue_wait`] from a pre-accumulated backlog total, in
/// **gang-nanoseconds** (Σ estimated cost × gang size). The total is an
/// exact integer, so a counter maintained incrementally (+= on submit and
/// dispatch, -= on completion) yields bit-identical waits to a fresh sum
/// over the backlog — u128 addition is associative and commutative, which
/// f64 accumulation is not. This is what lets the indexed service answer
/// admission in O(1) and still mirror the reference exactly.
#[must_use]
pub fn estimate_queue_wait_ns(gang_ns: u128, active_gpus: usize) -> SimDuration {
    if active_gpus == 0 {
        // An all-leased-out elastic fleet: the caller scales up before
        // admitting, so report an empty queue rather than infinity.
        return SimDuration::ZERO;
    }
    SimDuration((gang_ns / active_gpus as u128) as u64)
}

/// Device memory footprint of `job`, in **logical keys per GPU** (the unit
/// the buffer [`msort_gpu::World`] accounts in). Mirrors each driver's
/// actual pre-allocation so admission control matches what construction
/// will request.
#[must_use]
pub fn device_footprint_keys(job: &SortJob, scale: u64) -> u64 {
    let g = job.gpus.max(1) as u64;
    let chunk = job.keys.div_ceil(g);
    match job.algo {
        // Chunk + auxiliary buffer.
        JobAlgo::P2p => 2 * chunk,
        // Chunk + receive + merge-output, each of the latter two with the
        // partition-boundary slack.
        JobAlgo::Rp => 3 * chunk + 2 * g * scale,
        // The in-core 2n pipeline double-buffers the chunk.
        JobAlgo::Het => 2 * chunk,
        // Partition phase holds chunk + scatter target + the receive
        // partition; the final sort holds 2x the receive partition. The
        // receive partition is approximately a chunk but can reach ~2x on
        // skewed data (the splitter oversampling bound), so admission
        // budgets for the worst case.
        JobAlgo::SampleSort => 4 * chunk,
        // The final merge concatenates all n keys next to its n-key
        // output on one GPU: a transient 2n, the steepest footprint of
        // the five families.
        JobAlgo::MultiwayMerge => 2 * g * chunk,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::TenantId;

    #[test]
    fn cost_is_monotone_in_keys() {
        let p = Platform::ibm_ac922();
        let small = SortJob::new(TenantId(0), 1 << 12);
        let large = SortJob::new(TenantId(0), 1 << 20);
        let cs = estimate_job_cost(&p, &small, DataType::U32);
        let cl = estimate_job_cost(&p, &large, DataType::U32);
        assert!(cl > cs, "{cl:?} vs {cs:?}");
    }

    #[test]
    fn cost_is_positive_for_every_algorithm() {
        let p = Platform::dgx_a100();
        for algo in JobAlgo::all() {
            let j = SortJob::new(TenantId(0), 1 << 16).with_algo(algo);
            assert!(estimate_job_cost(&p, &j, DataType::U64) > SimDuration::ZERO);
        }
    }

    #[test]
    fn cluster_platforms_cost_more_and_slower_fabrics_cost_most() {
        let single = Platform::dgx_a100();
        let job = SortJob::new(TenantId(0), 1 << 22).with_gpus(8);
        let base = estimate_job_cost(&single, &job, DataType::U32);
        let mut by_fabric = Vec::new();
        for fabric in [msort_topology::Fabric::IbNdr, msort_topology::Fabric::IbHdr] {
            let cluster = msort_cluster::dgx_a100_cluster(4, fabric);
            let cost = estimate_job_cost(&cluster, &job, DataType::U32);
            assert!(cost > base, "{fabric:?} adds an inter-node term");
            by_fabric.push(cost);
        }
        assert!(
            by_fabric[1] > by_fabric[0],
            "HDR (24.1 GB/s) must cost more than NDR (48.2 GB/s)"
        );
    }

    #[test]
    fn queue_wait_is_work_conserving() {
        let c = SimDuration::from_millis(10);
        // 3 jobs × 2 GPUs × 10 ms = 60 gang-ms over 4 GPUs → 15 ms.
        let wait = estimate_queue_wait(&[(c, 2), (c, 2), (c, 2)], 4);
        assert_eq!(wait, SimDuration::from_millis(15));
        assert_eq!(estimate_queue_wait(&[], 4), SimDuration::ZERO);
        assert_eq!(estimate_queue_wait(&[(c, 2)], 0), SimDuration::ZERO);
    }

    #[test]
    fn footprints_rank_multiway_merge_heaviest() {
        // 4 GPUs: at g=2 the sample-sort and merge-tree footprints tie
        // (both 2n); the gap opens with the gang size.
        let j = |algo| {
            SortJob::new(TenantId(0), 1 << 16)
                .with_algo(algo)
                .with_gpus(4)
        };
        let p2p = device_footprint_keys(&j(JobAlgo::P2p), 1);
        let rp = device_footprint_keys(&j(JobAlgo::Rp), 1);
        let het = device_footprint_keys(&j(JobAlgo::Het), 1);
        let sample = device_footprint_keys(&j(JobAlgo::SampleSort), 1);
        let mwms = device_footprint_keys(&j(JobAlgo::MultiwayMerge), 1);
        assert!(rp > p2p, "RP's 3n footprint must exceed P2P's 2n");
        assert_eq!(p2p, het);
        assert!(sample > rp, "sample sort budgets for bucket imbalance");
        assert!(
            mwms > sample,
            "the merge tree's 2n-on-one-GPU peak tops the table"
        );
    }
}
