//! Job cost and footprint estimation for admission control and SJF.
//!
//! The estimates reuse the calibrated machinery the simulator itself runs
//! on: single-flow rates from the platform's constraint table (what one
//! uncontended copy stream sustains) and the [`CostModel`]'s kernel
//! timings. They are *solo* estimates — a scheduler cannot know the future
//! contention a job will see — but they are monotone in job size and
//! consistent across jobs, which is all shortest-job-first and fair-share
//! accounting need.

use crate::job::{JobAlgo, SortJob};
use msort_data::DataType;
use msort_sim::{CostModel, GpuSortAlgo, SimDuration};
use msort_topology::{allocate_rates, Endpoint, Platform};

/// Uncontended single-flow rate (bytes/s) between two endpoints on the
/// pristine fabric.
fn single_flow_rate(platform: &Platform, src: Endpoint, dst: Endpoint) -> f64 {
    let r = msort_topology::route::route(&platform.topology, src, dst)
        .expect("platform endpoints are connected");
    allocate_rates(platform.constraint_table(), &[platform.flow_request(&r)])[0]
}

/// Estimated solo service time of `job` on `platform` for keys of `dt`.
///
/// Models the canonical four phases: scatter and gather at the host↔GPU
/// single-flow rate, the local sort from the calibrated kernel model, and
/// an algorithm-specific merge term (P2P swap levels, the RP all-to-all
/// exchange, or the CPU multiway merge).
#[must_use]
pub fn estimate_job_cost(platform: &Platform, job: &SortJob, dt: DataType) -> SimDuration {
    let g = job.gpus.max(1) as u64;
    let chunk = job.keys.div_ceil(g);
    let kb = dt.key_bytes();
    let chunk_bytes = chunk * kb;
    let model = CostModel::for_platform(platform);
    let gm = platform.topology.gpu_model(0);

    let host_rate = single_flow_rate(platform, Endpoint::HOST0, Endpoint::gpu(0));
    let p2p_rate = if platform.topology.gpu_count() > 1 {
        single_flow_rate(platform, Endpoint::gpu(0), Endpoint::gpu(1))
    } else {
        host_rate
    };

    let copy = 2.0 * chunk_bytes as f64 / host_rate;
    let sort = model
        .gpu_sort(gm, GpuSortAlgo::ThrustLike, dt, chunk)
        .as_secs_f64();
    let merge = if g <= 1 {
        0.0
    } else {
        match job.algo {
            JobAlgo::P2p => {
                // log2(g) swap levels; each moves about half a chunk per
                // GPU and re-merges the chunk locally.
                let levels = (g as f64).log2().ceil();
                levels
                    * (chunk_bytes as f64 / 2.0 / p2p_rate
                        + model.gpu_merge_mgpu(gm, chunk_bytes).as_secs_f64())
            }
            JobAlgo::Rp => {
                // One all-to-all exchange: (g-1)/g of the chunk leaves the
                // GPU, then one g-way local merge.
                chunk_bytes as f64 * (g - 1) as f64 / g as f64 / p2p_rate
                    + model.gpu_merge_mgpu(gm, chunk_bytes).as_secs_f64()
            }
            JobAlgo::Het => model
                .cpu_multiway_merge(job.keys * kb, g as usize)
                .as_secs_f64(),
        }
    };
    SimDuration::from_secs_f64(copy + sort + merge)
}

/// Device memory footprint of `job`, in **logical keys per GPU** (the unit
/// the buffer [`msort_gpu::World`] accounts in). Mirrors each driver's
/// actual pre-allocation so admission control matches what construction
/// will request.
#[must_use]
pub fn device_footprint_keys(job: &SortJob, scale: u64) -> u64 {
    let g = job.gpus.max(1) as u64;
    let chunk = job.keys.div_ceil(g);
    match job.algo {
        // Chunk + auxiliary buffer.
        JobAlgo::P2p => 2 * chunk,
        // Chunk + receive + merge-output, each of the latter two with the
        // partition-boundary slack.
        JobAlgo::Rp => 3 * chunk + 2 * g * scale,
        // The in-core 2n pipeline double-buffers the chunk.
        JobAlgo::Het => 2 * chunk,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::TenantId;

    #[test]
    fn cost_is_monotone_in_keys() {
        let p = Platform::ibm_ac922();
        let small = SortJob::new(TenantId(0), 1 << 12);
        let large = SortJob::new(TenantId(0), 1 << 20);
        let cs = estimate_job_cost(&p, &small, DataType::U32);
        let cl = estimate_job_cost(&p, &large, DataType::U32);
        assert!(cl > cs, "{cl:?} vs {cs:?}");
    }

    #[test]
    fn cost_is_positive_for_every_algorithm() {
        let p = Platform::dgx_a100();
        for algo in [JobAlgo::P2p, JobAlgo::Rp, JobAlgo::Het] {
            let j = SortJob::new(TenantId(0), 1 << 16).with_algo(algo);
            assert!(estimate_job_cost(&p, &j, DataType::U64) > SimDuration::ZERO);
        }
    }

    #[test]
    fn footprints_rank_rp_heaviest() {
        let j = |algo| SortJob::new(TenantId(0), 1 << 16).with_algo(algo);
        let p2p = device_footprint_keys(&j(JobAlgo::P2p), 1);
        let rp = device_footprint_keys(&j(JobAlgo::Rp), 1);
        let het = device_footprint_keys(&j(JobAlgo::Het), 1);
        assert!(rp > p2p, "RP's 3n footprint must exceed P2P's 2n");
        assert_eq!(p2p, het);
    }
}
