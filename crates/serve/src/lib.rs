//! msort-serve: a multi-tenant sort-service scheduler with
//! contention-aware GPU placement.
//!
//! The paper measures one sort at a time on an otherwise idle machine. A
//! database serving many tenants never gets that luxury: sort requests
//! arrive as a stream, gangs of GPUs must be leased and returned, and
//! every placement decision changes which PCIe switches, NVLink cliques,
//! and host interconnects the concurrent jobs fight over. This crate
//! builds that service layer on top of the repo's virtual GPU runtime:
//!
//! * [`job`] — [`SortJob`]: tenant, size, distribution, algorithm
//!   ([`JobAlgo`]), gang size, and deadline class;
//! * [`queue`] — pluggable dispatch policies ([`QueuePolicy`]): FIFO,
//!   shortest-job-first over a calibrated cost model, and weighted
//!   per-tenant fair share;
//! * [`placement`] — gang placement ([`PlacementPolicy`]): a round-robin
//!   baseline and topology-aware placement via
//!   [`msort_topology::best_gpu_set`], which also routes around injected
//!   link faults;
//! * [`cost`] — solo cost and device-footprint estimates used for SJF
//!   ordering, fair-share charging, and admission control;
//! * [`workload`] — open-loop [`Workload`] sources: [`TraceWorkload`]
//!   replay of an explicit job list, and seeded [`OpenLoop`] generators
//!   (Poisson, diurnal, bursty MMPP) over a weighted [`JobMix`];
//! * [`service`] — [`SortService`]: admission with backpressure and
//!   SLO-aware shedding ([`AdmissionPolicy`]), an elastic GPU fleet
//!   ([`FleetPolicy`]), exclusive gang leases with device-memory
//!   accounting, and the event loop that interleaves every running job's
//!   [`msort_core::SortDriver`] on **one** shared simulated clock, so
//!   co-scheduled jobs genuinely contend in the fluid-flow engine;
//! * [`report`] — [`ServiceReport`]: per-job outcomes, per-tenant
//!   throughput and fair-share error, queue-depth and fleet-size
//!   timelines, goodput and SLO attainment, and p50/p95/p99 latency;
//! * [`reference`] — [`ReferenceService`]: the pre-indexing linear-scan
//!   serve loop kept verbatim as a golden differential baseline for the
//!   indexed [`SortService`] core.
//!
//! Everything is bit-reproducible: same workload seed, same
//! configuration (including a [`msort_sim::FaultPlan`]) → the identical
//! report.
//!
//! ```
//! use msort_serve::{JobMix, OpenLoop, ServeConfig, SortJob, SortService, TenantId};
//! use msort_topology::Platform;
//!
//! let dgx = Platform::dgx_a100();
//! let mix = JobMix::of(SortJob::new(TenantId(0), 1 << 12))
//!     .and(SortJob::new(TenantId(1), 1 << 12), 2.0);
//! let svc = SortService::<u32>::new(&dgx, ServeConfig::new());
//! let report = svc.serve(OpenLoop::poisson(200.0, mix, 8, 42));
//! assert_eq!(report.offered_jobs(), 8);
//! assert!(report.all_validated());
//! ```

pub mod cost;
pub mod job;
pub mod placement;
pub mod queue;
pub mod reference;
pub mod report;
pub mod service;
pub mod workload;

pub use cost::{device_footprint_keys, estimate_job_cost, estimate_queue_wait};
pub use job::{DeadlineClass, JobAlgo, SortJob, TenantId};
pub use placement::PlacementPolicy;
pub use queue::QueuePolicy;
pub use reference::ReferenceService;
pub use report::{JobOutcome, RejectReason, RejectedJob, ServiceReport, TenantStats};
pub use service::{AdmissionPolicy, FleetPolicy, ServeConfig, SortService};
pub use workload::{ArrivalProcess, JobMix, OpenLoop, TraceWorkload, Workload};
