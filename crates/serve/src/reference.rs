//! The golden reference scheduler: the pre-indexing serve loop, kept
//! verbatim as a differential baseline.
//!
//! [`ReferenceService`] is the linear-scan implementation
//! [`crate::SortService`] used before the indexed rebuild: every dispatch
//! rebuilds a [`QueueView`] vec and scans it with [`QueuePolicy::pick`],
//! every SLO admission re-collects the full backlog, the free set is
//! re-collected per placement attempt, and every `step_ready` rescans
//! every running job's wait list. It is O(n²) in offered jobs — which is
//! exactly why it stays: it is simple enough to audit by eye, and the
//! differential test (`tests/differential.rs`) proves the indexed service
//! produces the **bit-identical** [`ServiceReport`] on randomized
//! workloads across every queue policy × admission × fleet × fault plan.
//! Any future scheduler change that breaks equivalence is caught against
//! this module, the same way the flow engine's event-queue rebuild (PR 1)
//! kept its O(n²) rate solver as a differential oracle.
//!
//! Shared pieces are shared deliberately — [`QueuePolicy::pick`],
//! [`crate::cost::estimate_queue_wait`], and the report's `push_step`
//! timeline dedupe — so the two implementations can only diverge in the
//! scheduling *structures*, never in policy arithmetic.

use crate::cost::{device_footprint_keys, estimate_job_cost, estimate_queue_wait};
use crate::job::{DeadlineClass, JobAlgo, SortJob, TenantId};
use crate::placement::PlacementPolicy;
use crate::queue::{QueuePolicy, QueueView};
use crate::report::{push_step, JobOutcome, RejectReason, RejectedJob, ServiceReport};
use crate::service::{AdmissionPolicy, FleetPolicy, ServeConfig};
use crate::workload::Workload;
use msort_core::{
    DriverStep, HetConfig, HetDriver, MwmsConfig, MwmsDriver, P2pConfig, P2pDriver, RpConfig,
    RpDriver, SampleSortConfig, SampleSortDriver, SortDriver,
};
use msort_data::{generate, is_sorted, same_multiset, SortKey};
use msort_gpu::{Fidelity, GpuSystem, OpId};
use msort_sim::{SimDuration, SimTime};
use msort_topology::Platform;
use msort_trace::{groups, ArgValue, Recorder, TrackId};

/// A queued job.
struct Pending {
    seq: u64,
    at: SimTime,
    job: SortJob,
    cost: SimDuration,
    deadline: Option<SimTime>,
}

/// A job holding a gang lease.
struct Running<K: SortKey> {
    seq: u64,
    tenant: TenantId,
    keys: u64,
    algorithm: &'static str,
    gang: Vec<usize>,
    submitted: SimTime,
    started: SimTime,
    deadline: Option<SimTime>,
    cost: SimDuration,
    input: Vec<K>,
    driver: Box<dyn SortDriver<K>>,
    wait: Vec<OpId>,
    /// Per-job trace track (dummy when the recorder is disabled).
    track: TrackId,
}

struct TenantEntry {
    id: TenantId,
    weight: f64,
    /// Σ (estimated cost ÷ weight) over dispatched jobs.
    credit: f64,
}

/// The linear-scan service — see the module docs for why it exists.
pub struct ReferenceService<'p, K: SortKey> {
    sys: GpuSystem<'p, K>,
    recorder: Recorder,
    policy: QueuePolicy,
    placement: PlacementPolicy,
    admission: AdmissionPolicy,
    fleet_policy: FleetPolicy,
    fidelity: Fidelity,
    max_queue_depth: usize,
    fleet: Vec<usize>,
    leased: Vec<bool>,
    active: Vec<bool>,
    idle_since: Vec<SimTime>,
    rr_cursor: usize,
    tenants: Vec<TenantEntry>,
    tenant_slos: Vec<(TenantId, SimDuration)>,
    pending: Vec<Pending>,
    running: Vec<Running<K>>,
    next_seq: u64,
    outcomes: Vec<JobOutcome>,
    rejected: Vec<RejectedJob>,
    queue_depth: Vec<(SimTime, usize)>,
    fleet_log: Vec<(SimTime, usize)>,
    admission_track: TrackId,
    fleet_track: TrackId,
}

impl<'p, K: SortKey> ReferenceService<'p, K> {
    /// Create a reference service over `platform`. Accepts the same
    /// [`ServeConfig`] as [`crate::SortService::new`].
    ///
    /// # Panics
    /// Panics if the configured fleet names a GPU the platform lacks,
    /// contains duplicates, or is smaller than an elastic `min_gpus`.
    #[must_use]
    pub fn new(platform: &'p Platform, config: ServeConfig) -> Self {
        let mut sys = config.run.build_system(platform);
        // Reclamation is observationally free for the serve path (it never
        // reads per-op history), and the reference must survive the scale
        // bench's 100k-job runs.
        sys.set_op_reclaim(true);
        let mut fleet = config
            .fleet
            .unwrap_or_else(|| (0..platform.topology.gpu_count()).collect());
        fleet.sort_unstable();
        let before = fleet.len();
        fleet.dedup();
        assert_eq!(before, fleet.len(), "fleet must not repeat GPUs");
        for &g in &fleet {
            assert!(
                g < platform.topology.gpu_count(),
                "fleet GPU {g} does not exist on {}",
                platform.id.name()
            );
        }
        let mut tenants: Vec<TenantEntry> = config
            .tenant_weights
            .iter()
            .map(|&(id, weight)| TenantEntry {
                id,
                weight,
                credit: 0.0,
            })
            .collect();
        tenants.sort_by_key(|t| t.id);
        let mut tenant_slos = config.tenant_slos;
        tenant_slos.sort_by_key(|&(t, _)| t);
        let active = match config.fleet_policy {
            FleetPolicy::Fixed => vec![true; fleet.len()],
            FleetPolicy::Elastic { min_gpus, .. } => {
                assert!(
                    min_gpus <= fleet.len(),
                    "elastic min_gpus {min_gpus} exceeds the {}-GPU fleet",
                    fleet.len()
                );
                (0..fleet.len()).map(|i| i < min_gpus).collect()
            }
        };
        let leased = vec![false; fleet.len()];
        let recorder = config.run.recorder;
        let (admission_track, fleet_track) = if recorder.is_enabled() {
            (
                recorder.track(groups::SERVICE, "admission"),
                recorder.track(groups::SERVICE, "fleet"),
            )
        } else {
            (TrackId(u32::MAX), TrackId(u32::MAX))
        };
        let initial = active.iter().filter(|&&a| a).count();
        Self {
            sys,
            recorder,
            policy: config.policy,
            placement: config.placement,
            admission: config.admission,
            fleet_policy: config.fleet_policy,
            fidelity: config.run.fidelity,
            max_queue_depth: config.max_queue_depth,
            idle_since: vec![SimTime::ZERO; fleet.len()],
            fleet,
            leased,
            active,
            rr_cursor: 0,
            tenants,
            tenant_slos,
            pending: Vec::new(),
            running: Vec::new(),
            next_seq: 0,
            outcomes: Vec::new(),
            rejected: Vec::new(),
            queue_depth: Vec::new(),
            fleet_log: vec![(SimTime::ZERO, initial)],
            admission_track,
            fleet_track,
        }
    }

    /// Drive `workload` to exhaustion and report — the same contract as
    /// [`crate::SortService::serve`], via linear scans.
    #[must_use]
    pub fn serve<W: Workload>(mut self, mut workload: W) -> ServiceReport {
        let mut next = workload.next_arrival();
        loop {
            let now = self.sys.now();
            while next.as_ref().is_some_and(|&(t, _)| t <= now) {
                let (at, job) = next.take().expect("checked is_some above");
                self.submit(at, job);
                next = workload.next_arrival();
            }
            loop {
                let resized = self.elastic_adjust();
                let dispatched = self.try_dispatch();
                let stepped = self.step_ready();
                if !resized && !dispatched && !stepped {
                    break;
                }
            }
            if self.running.is_empty() && self.pending.is_empty() && next.is_none() {
                break;
            }
            let frontier: Vec<OpId> = self
                .running
                .iter()
                .flat_map(|r| r.wait.iter().copied())
                .collect();
            let mut deadline = next.as_ref().map(|&(t, _)| t);
            if let Some(release) = self.next_release_time() {
                deadline = Some(deadline.map_or(release, |d| d.min(release)));
            }
            assert!(
                !frontier.is_empty() || deadline.is_some(),
                "sort service stalled: {} queued jobs but nothing runnable",
                self.pending.len()
            );
            self.sys.run_until(&frontier, deadline);
        }
        self.into_report()
    }

    fn tenant_index(&mut self, id: TenantId) -> usize {
        match self.tenants.binary_search_by_key(&id, |t| t.id) {
            Ok(i) => i,
            Err(i) => {
                self.tenants.insert(
                    i,
                    TenantEntry {
                        id,
                        weight: 1.0,
                        credit: 0.0,
                    },
                );
                i
            }
        }
    }

    fn effective_slo(&self, job: &SortJob) -> Option<SimDuration> {
        job.slo.or_else(|| {
            self.tenant_slos
                .binary_search_by_key(&job.tenant, |&(t, _)| t)
                .ok()
                .map(|i| self.tenant_slos[i].1)
        })
    }

    fn infeasible(&self, job: &SortJob) -> Option<String> {
        let g = job.gpus;
        let scale = self.fidelity.scale();
        if job.keys == 0 {
            return Some("zero keys".into());
        }
        if g == 0 {
            return Some("zero GPUs".into());
        }
        if g > self.fleet.len() {
            return Some(format!(
                "gang of {g} exceeds the {}-GPU fleet",
                self.fleet.len()
            ));
        }
        if job.algo == JobAlgo::P2p && !g.is_power_of_two() {
            return Some(format!("P2P sort needs a power-of-two gang, got {g}"));
        }
        if !job.keys.is_multiple_of(g as u64 * scale) {
            return Some(format!(
                "{} keys do not divide into {g} chunks of whole samples (scale {scale})",
                job.keys
            ));
        }
        let need = device_footprint_keys(job, scale) * K::DATA_TYPE.key_bytes();
        let min_mem = self
            .fleet
            .iter()
            .map(|&i| self.sys.platform().topology.gpu_memory_bytes(i))
            .min()
            .expect("fleet is non-empty");
        if need > min_mem {
            return Some(format!(
                "footprint of {need} B/GPU exceeds device memory of {min_mem} B"
            ));
        }
        None
    }

    fn reject(&mut self, seq: u64, tenant: TenantId, at: SimTime, reason: RejectReason) {
        if self.recorder.is_enabled() {
            let name = match &reason {
                RejectReason::QueueFull => "reject-queue-full",
                RejectReason::Infeasible(_) => "reject-infeasible",
                RejectReason::SloUnattainable(_) => "reject-slo-unattainable",
                RejectReason::Shed(_) => "shed",
            };
            self.recorder.instant_args(
                self.admission_track,
                name,
                "admission",
                at.0,
                vec![
                    ("tenant".to_string(), ArgValue::Str(tenant.to_string())),
                    ("seq".to_string(), ArgValue::U64(seq)),
                ],
            );
        }
        self.rejected.push(RejectedJob {
            seq,
            tenant,
            at,
            reason,
        });
    }

    fn submit(&mut self, at: SimTime, job: SortJob) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.tenant_index(job.tenant);
        if let Some(why) = self.infeasible(&job) {
            self.reject(seq, job.tenant, at, RejectReason::Infeasible(why));
            return;
        }
        if self.pending.len() >= self.max_queue_depth {
            self.reject(seq, job.tenant, at, RejectReason::QueueFull);
            return;
        }
        let cost = estimate_job_cost(self.sys.platform(), &job, K::DATA_TYPE);
        let slo = self.effective_slo(&job);
        let deadline = slo.map(|s| at + s);
        if self.admission == AdmissionPolicy::SloAware {
            if let (Some(slo), Some(deadline)) = (slo, deadline) {
                if cost > slo {
                    self.reject(
                        seq,
                        job.tenant,
                        at,
                        RejectReason::SloUnattainable(format!(
                            "solo service time {cost} exceeds the {slo} SLO"
                        )),
                    );
                    return;
                }
                // The full-backlog re-collect the indexed service replaces
                // with its incremental gang-ns counter.
                let backlog: Vec<(SimDuration, usize)> = self
                    .pending
                    .iter()
                    .map(|p| (p.cost, p.job.gpus))
                    .chain(self.running.iter().map(|r| (r.cost, r.gang.len())))
                    .collect();
                let wait = estimate_queue_wait(&backlog, self.fleet.len());
                if self.sys.now() + wait + cost > deadline {
                    self.reject(
                        seq,
                        job.tenant,
                        at,
                        RejectReason::Shed(format!(
                            "predicted wait {wait} + service {cost} blows the {slo} SLO"
                        )),
                    );
                    return;
                }
            }
        }
        self.pending.push(Pending {
            seq,
            at,
            job,
            cost,
            deadline,
        });
        push_step(&mut self.queue_depth, self.sys.now(), self.pending.len());
    }

    fn active_gpu_count(&self) -> usize {
        self.active.iter().filter(|&&a| a).count()
    }

    fn fleet_target(&self, min_gpus: usize) -> usize {
        let leased = self.leased.iter().filter(|&&l| l).count();
        let queued: usize = self.pending.iter().map(|p| p.job.gpus).sum();
        (leased + queued).clamp(min_gpus, self.fleet.len())
    }

    fn elastic_adjust(&mut self) -> bool {
        let FleetPolicy::Elastic {
            min_gpus,
            idle_release,
        } = self.fleet_policy
        else {
            return false;
        };
        let now = self.sys.now();
        let target = self.fleet_target(min_gpus);
        let before = self.active_gpu_count();
        let mut count = before;
        for i in 0..self.active.len() {
            if count >= target {
                break;
            }
            if !self.active[i] {
                self.active[i] = true;
                self.idle_since[i] = now;
                count += 1;
            }
        }
        for i in (0..self.active.len()).rev() {
            if count <= target {
                break;
            }
            if self.active[i] && !self.leased[i] && now.since(self.idle_since[i]) >= idle_release {
                self.active[i] = false;
                count -= 1;
            }
        }
        if count == before {
            return false;
        }
        push_step(&mut self.fleet_log, now, count);
        true
    }

    fn next_release_time(&self) -> Option<SimTime> {
        let FleetPolicy::Elastic {
            min_gpus,
            idle_release,
        } = self.fleet_policy
        else {
            return None;
        };
        if self.active_gpu_count() <= self.fleet_target(min_gpus) {
            return None;
        }
        (0..self.fleet.len())
            .filter(|&i| self.active[i] && !self.leased[i])
            .map(|i| self.idle_since[i] + idle_release)
            .min()
    }

    fn free_gpus(&self) -> Vec<usize> {
        self.fleet
            .iter()
            .enumerate()
            .filter(|&(i, _)| self.active[i] && !self.leased[i])
            .map(|(_, &g)| g)
            .collect()
    }

    fn set_leased(&mut self, gang: &[usize], leased: bool) {
        let now = self.sys.now();
        for &g in gang {
            let i = self
                .fleet
                .iter()
                .position(|&f| f == g)
                .expect("gang GPUs come from the fleet");
            self.leased[i] = leased;
            if !leased {
                self.idle_since[i] = now;
            }
        }
    }

    fn try_dispatch(&mut self) -> bool {
        let mut any = false;
        loop {
            // The per-pick rebuild the indexed service replaces with its
            // persistent IndexedQueue.
            let views: Vec<QueueView> = self
                .pending
                .iter()
                .map(|p| QueueView {
                    seq: p.seq,
                    tenant: p.job.tenant,
                    cost: p.cost,
                    interactive: p.job.deadline == DeadlineClass::Interactive,
                    deadline: p.deadline,
                })
                .collect();
            let tenants = &self.tenants;
            let credit = |t: TenantId| -> f64 {
                tenants
                    .binary_search_by_key(&t, |e| e.id)
                    .map_or(0.0, |i| tenants[i].credit)
            };
            let Some(i) = self.policy.pick(&views, &credit) else {
                break;
            };
            let g = self.pending[i].job.gpus;
            let free = self.free_gpus();
            if free.len() < g {
                break;
            }
            let mut cursor = self.rr_cursor;
            let placed = self.placement.place(
                self.sys.platform(),
                self.sys.constraint_table(),
                &free,
                g,
                &mut cursor,
            );
            let Some(gang) = placed else {
                break;
            };
            let need = device_footprint_keys(&self.pending[i].job, self.fidelity.scale())
                * K::DATA_TYPE.key_bytes();
            if gang
                .iter()
                .any(|&d| self.sys.world().gpu_free_bytes(d) < need)
            {
                break;
            }
            self.rr_cursor = cursor;
            let Pending {
                seq,
                at,
                job,
                cost,
                deadline,
            } = self.pending.remove(i);
            push_step(&mut self.queue_depth, self.sys.now(), self.pending.len());
            let ti = self.tenant_index(job.tenant);
            self.tenants[ti].credit += cost.as_secs_f64() / self.tenants[ti].weight;
            self.dispatch(seq, at, job, cost, deadline, gang);
            any = true;
        }
        any
    }

    fn dispatch(
        &mut self,
        seq: u64,
        at: SimTime,
        job: SortJob,
        cost: SimDuration,
        deadline: Option<SimTime>,
        gang: Vec<usize>,
    ) {
        let scale = self.fidelity.scale();
        let phys = (job.keys / scale) as usize;
        let data: Vec<K> = generate(job.dist, phys, job.seed);
        let input = data.clone();
        self.set_leased(&gang, true);
        let driver: Box<dyn SortDriver<K>> = match job.algo {
            JobAlgo::P2p => {
                let mut c = P2pConfig::new(job.gpus);
                c.gpu_order = Some(gang.clone());
                c.fidelity = self.fidelity;
                Box::new(P2pDriver::new(&mut self.sys, &c, data, job.keys))
            }
            JobAlgo::Rp => {
                let mut c = RpConfig::new(job.gpus);
                c.gpu_set = Some(gang.clone());
                c.fidelity = self.fidelity;
                Box::new(RpDriver::new(&mut self.sys, &c, data, job.keys))
            }
            JobAlgo::Het => {
                let mut c = HetConfig::new(job.gpus);
                c.gpu_set = Some(gang.clone());
                c.fidelity = self.fidelity;
                Box::new(HetDriver::new(&mut self.sys, &c, data, job.keys))
            }
            JobAlgo::SampleSort => {
                let mut c = SampleSortConfig::new(job.gpus);
                c.gpu_set = Some(gang.clone());
                c.fidelity = self.fidelity;
                Box::new(SampleSortDriver::new(&mut self.sys, &c, data, job.keys))
            }
            JobAlgo::MultiwayMerge => {
                let mut c = MwmsConfig::new(job.gpus);
                c.gpu_set = Some(gang.clone());
                c.fidelity = self.fidelity;
                Box::new(MwmsDriver::new(&mut self.sys, &c, data, job.keys))
            }
        };
        let started = self.sys.now();
        let track = if self.recorder.is_enabled() {
            let track = self.recorder.track(
                &groups::tenant(job.tenant.0),
                &format!("job {seq} ({})", job.algo.name()),
            );
            self.recorder.span(track, "queued", "job", at.0, started.0);
            self.recorder.instant_args(
                track,
                "placed",
                "job",
                started.0,
                vec![("gang".to_string(), ArgValue::Str(format!("{gang:?}")))],
            );
            track
        } else {
            TrackId(u32::MAX)
        };
        let running = Running {
            seq,
            tenant: job.tenant,
            keys: job.keys,
            algorithm: job.algo.name(),
            gang,
            submitted: at,
            started,
            deadline,
            cost,
            input,
            driver,
            wait: Vec::new(),
            track,
        };
        self.running.push(running);
        let idx = self.running.len() - 1;
        match self.running[idx].driver.step(&mut self.sys) {
            DriverStep::Wait(ops) => self.running[idx].wait = ops,
            DriverStep::Done => {
                let r = self.running.remove(idx);
                self.finish(r);
            }
        }
    }

    /// The per-step wait-list rescan the indexed service replaces with
    /// op-completion wakeups.
    fn step_ready(&mut self) -> bool {
        let mut progressed = false;
        let mut i = 0;
        while i < self.running.len() {
            let sys = &self.sys;
            self.running[i].wait.retain(|&o| !sys.op_done(o));
            if !self.running[i].wait.is_empty() {
                i += 1;
                continue;
            }
            progressed = true;
            match self.running[i].driver.step(&mut self.sys) {
                DriverStep::Wait(ops) => {
                    self.running[i].wait = ops;
                    i += 1;
                }
                DriverStep::Done => {
                    let r = self.running.remove(i);
                    self.finish(r);
                }
            }
        }
        progressed
    }

    fn finish(&mut self, mut r: Running<K>) {
        let output = r.driver.take_output();
        let validated =
            r.driver.validated() && is_sorted(&output) && same_multiset(&r.input, &output);
        r.driver.release(&mut self.sys);
        self.set_leased(&r.gang, false);
        if self.recorder.is_enabled() {
            let end = self.sys.now();
            self.recorder
                .span(r.track, "job", "job", r.submitted.0, end.0);
            self.recorder
                .span(r.track, "executing", "job", r.started.0, end.0);
            if validated {
                self.recorder.instant(r.track, "validated", "job", end.0);
            }
        }
        self.outcomes.push(JobOutcome {
            seq: r.seq,
            tenant: r.tenant,
            keys: r.keys,
            algorithm: r.algorithm,
            gpus: r.gang,
            submitted: r.submitted,
            started: r.started,
            finished: self.sys.now(),
            deadline: r.deadline,
            validated,
        });
    }

    fn into_report(self) -> ServiceReport {
        // Counter samples are emitted from the deduplicated fleet log (one
        // per recorded change), so the trace mirrors the report exactly.
        if self.recorder.is_enabled() {
            for &(at, n) in &self.fleet_log {
                self.recorder
                    .counter(self.fleet_track, "active_gpus", at.0, n as f64);
            }
        }
        let makespan = self
            .outcomes
            .iter()
            .map(|o| o.finished)
            .max()
            .unwrap_or(SimTime::ZERO);
        ServiceReport {
            platform: self.sys.platform().id.name().to_string(),
            policy: self.policy,
            placement: self.placement,
            outcomes: self.outcomes,
            rejected: self.rejected,
            queue_depth: self.queue_depth,
            fleet_size: self.fleet_log,
            makespan,
            weights: self.tenants.iter().map(|t| (t.id, t.weight)).collect(),
        }
    }
}
