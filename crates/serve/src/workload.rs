//! Open-loop workload sources: where a service's jobs come from.
//!
//! The paper (and PR 3's `SortService::run`) measured the makespan of a
//! *closed* job list — every arrival known up front. A service facing
//! millions of users sees an **open loop** instead: arrivals keep coming
//! at some offered rate whether or not the fleet keeps up, and the
//! interesting numbers are sustained throughput and latency *under* that
//! load. The [`Workload`] trait is the event-source API the redesigned
//! [`SortService::serve`](crate::SortService::serve) consumes:
//!
//! * [`TraceWorkload`] — replay an explicit `Vec<(SimTime, SortJob)>`
//!   (the old closed-list path, bit-identical to PR 3's `run`);
//! * [`OpenLoop`] — seeded arrival-process generators over a weighted
//!   [`JobMix`]:
//!   * [`ArrivalProcess::Poisson`] — memoryless arrivals at a fixed rate;
//!   * [`ArrivalProcess::Diurnal`] — a sinusoidally modulated Poisson
//!     process (peak/trough traffic), sampled by Lewis–Shedler thinning;
//!   * [`ArrivalProcess::Bursty`] — a two-state Markov-modulated Poisson
//!     process (MMPP): calm base load with exponentially-dwelling bursts.
//!
//! Everything is deterministic: a generator is seeded through
//! [`msort_data::Rng`] (xoshiro256++), so the same seed yields the same
//! timed arrivals — and therefore the same service run — on every
//! platform, replay after replay.

use crate::job::SortJob;
use msort_data::Rng;
use msort_sim::{SimDuration, SimTime};

/// An open-loop source of timed job arrivals.
///
/// Implementations yield arrivals with **non-decreasing** timestamps;
/// `None` means the source is exhausted (all generators are finite — a
/// job budget and/or a time horizon bounds them — so a service run
/// terminates). The trait is object-safe: `Box<dyn Workload>` works.
pub trait Workload {
    /// The next timed arrival, or `None` when the source is exhausted.
    fn next_arrival(&mut self) -> Option<(SimTime, SortJob)>;

    /// Drain the source into a vector (for inspection and tests).
    fn collect_arrivals(&mut self) -> Vec<(SimTime, SortJob)>
    where
        Self: Sized,
    {
        let mut out = Vec::new();
        while let Some(a) = self.next_arrival() {
            out.push(a);
        }
        out
    }
}

/// Replay an explicit job list — the closed-loop adapter.
///
/// This is exactly the old `SortService::run(Vec<(SimTime, SortJob)>)`
/// path: the list is stably sorted by timestamp (ties keep submission
/// order) and replayed verbatim, so a service run over a `TraceWorkload`
/// is bit-identical to what the deprecated `run` produced.
#[derive(Debug, Clone)]
pub struct TraceWorkload {
    arrivals: Vec<(SimTime, SortJob)>,
    next: usize,
}

impl TraceWorkload {
    /// Wrap `arrivals` (any order; stably sorted by timestamp here).
    #[must_use]
    pub fn new(mut arrivals: Vec<(SimTime, SortJob)>) -> Self {
        arrivals.sort_by_key(|&(t, _)| t);
        Self { arrivals, next: 0 }
    }

    /// Arrivals left to replay.
    #[must_use]
    pub fn remaining(&self) -> usize {
        self.arrivals.len() - self.next
    }
}

impl Workload for TraceWorkload {
    fn next_arrival(&mut self) -> Option<(SimTime, SortJob)> {
        let a = self.arrivals.get(self.next).cloned()?;
        self.next += 1;
        Some(a)
    }
}

/// A weighted mix of job shapes an [`OpenLoop`] generator draws from.
///
/// Each arrival picks one template with probability proportional to its
/// weight, then replaces the template's input seed with a fresh draw from
/// the generator's stream — so every arrival sorts distinct data while
/// the whole sequence stays a pure function of the workload seed.
#[derive(Debug, Clone)]
pub struct JobMix {
    templates: Vec<(SortJob, f64)>,
    total_weight: f64,
}

impl JobMix {
    /// A mix containing just `job` (weight 1).
    #[must_use]
    pub fn of(job: SortJob) -> Self {
        Self {
            templates: vec![(job, 1.0)],
            total_weight: 1.0,
        }
    }

    /// Add `job` with relative `weight` (> 0).
    ///
    /// # Panics
    /// Panics if `weight` is not strictly positive.
    #[must_use]
    pub fn and(mut self, job: SortJob, weight: f64) -> Self {
        assert!(weight > 0.0, "job-mix weight must be positive");
        self.templates.push((job, weight));
        self.total_weight += weight;
        self
    }

    /// The templates and their weights.
    #[must_use]
    pub fn templates(&self) -> &[(SortJob, f64)] {
        &self.templates
    }

    /// Draw one job: weighted template choice + a fresh input seed.
    fn sample(&self, rng: &mut Rng) -> SortJob {
        let mut x = rng.f64() * self.total_weight;
        let mut job = &self.templates[self.templates.len() - 1].0;
        for (j, w) in &self.templates {
            if x < *w {
                job = j;
                break;
            }
            x -= w;
        }
        job.clone().with_seed(rng.u64())
    }
}

/// The arrival process an [`OpenLoop`] generator follows. Rates are jobs
/// per second of **simulated** time.
#[derive(Debug, Clone, Copy)]
pub enum ArrivalProcess {
    /// Memoryless arrivals at a constant rate — exponential
    /// inter-arrival times.
    Poisson {
        /// Offered load, jobs per simulated second.
        rate: f64,
    },
    /// Sinusoidally modulated Poisson process:
    /// `λ(t) = rate · (1 + amplitude · sin(2πt / period))`, sampled by
    /// thinning against the peak rate. Models daily peak/trough traffic
    /// (compressed to simulation scale).
    Diurnal {
        /// Mean offered load, jobs per simulated second.
        rate: f64,
        /// Relative swing in `[0, 1]`: 1 means the trough is silent and
        /// the peak is double the mean.
        amplitude: f64,
        /// One full peak-trough cycle.
        period: SimDuration,
    },
    /// Two-state Markov-modulated Poisson process: calm arrivals at
    /// `base_rate` with bursts at `burst_rate`, each state dwelling an
    /// exponentially distributed time.
    Bursty {
        /// Calm-state offered load, jobs per simulated second.
        base_rate: f64,
        /// Burst-state offered load (≥ `base_rate` to mean anything).
        burst_rate: f64,
        /// Mean dwell time in the calm state.
        mean_calm: SimDuration,
        /// Mean dwell time in the burst state.
        mean_burst: SimDuration,
    },
}

impl ArrivalProcess {
    /// Long-run mean offered load in jobs per simulated second.
    #[must_use]
    pub fn mean_rate(&self) -> f64 {
        match *self {
            ArrivalProcess::Poisson { rate } | ArrivalProcess::Diurnal { rate, .. } => rate,
            ArrivalProcess::Bursty {
                base_rate,
                burst_rate,
                mean_calm,
                mean_burst,
            } => {
                let calm = mean_calm.as_secs_f64();
                let burst = mean_burst.as_secs_f64();
                (base_rate * calm + burst_rate * burst) / (calm + burst)
            }
        }
    }
}

/// A seeded open-loop arrival generator: an [`ArrivalProcess`] paced
/// stream of jobs drawn from a [`JobMix`], bounded by a job budget and
/// optionally a time horizon.
#[derive(Debug, Clone)]
pub struct OpenLoop {
    process: ArrivalProcess,
    mix: JobMix,
    rng: Rng,
    /// Candidate cursor: the time the process has been sampled up to.
    clock: SimTime,
    /// Jobs still to emit.
    remaining: u64,
    /// Hard stop: no arrival at or beyond this time.
    horizon: Option<SimTime>,
    /// MMPP state: `true` while bursting, and when the dwell ends.
    bursting: bool,
    state_until: SimTime,
}

impl OpenLoop {
    /// A generator emitting `jobs` arrivals of `mix` under `process`,
    /// seeded by `seed`.
    ///
    /// # Panics
    /// Panics if any configured rate, amplitude, or dwell is out of range.
    #[must_use]
    pub fn new(process: ArrivalProcess, mix: JobMix, jobs: u64, seed: u64) -> Self {
        match process {
            ArrivalProcess::Poisson { rate } => assert!(rate > 0.0, "rate must be positive"),
            ArrivalProcess::Diurnal {
                rate,
                amplitude,
                period,
            } => {
                assert!(rate > 0.0, "rate must be positive");
                assert!(
                    (0.0..=1.0).contains(&amplitude),
                    "amplitude must be in [0, 1]"
                );
                assert!(period > SimDuration::ZERO, "period must be positive");
            }
            ArrivalProcess::Bursty {
                base_rate,
                burst_rate,
                mean_calm,
                mean_burst,
            } => {
                assert!(
                    base_rate > 0.0 && burst_rate > 0.0,
                    "rates must be positive"
                );
                assert!(
                    mean_calm > SimDuration::ZERO && mean_burst > SimDuration::ZERO,
                    "dwell times must be positive"
                );
            }
        }
        let mut rng = Rng::seed_from_u64(seed);
        // MMPP runs start calm; the first dwell is sampled up front so the
        // state machine never sees an empty interval.
        let state_until = match process {
            ArrivalProcess::Bursty { mean_calm, .. } => {
                SimTime::ZERO + SimDuration::from_secs_f64(rng.exp(1.0 / mean_calm.as_secs_f64()))
            }
            _ => SimTime::ZERO,
        };
        Self {
            process,
            mix,
            rng,
            clock: SimTime::ZERO,
            remaining: jobs,
            horizon: None,
            bursting: false,
            state_until,
        }
    }

    /// Convenience: a Poisson generator at `rate` jobs/s.
    #[must_use]
    pub fn poisson(rate: f64, mix: JobMix, jobs: u64, seed: u64) -> Self {
        Self::new(ArrivalProcess::Poisson { rate }, mix, jobs, seed)
    }

    /// Stop emitting at `horizon` even if the job budget is not spent.
    #[must_use]
    pub fn until(mut self, horizon: SimTime) -> Self {
        self.horizon = Some(horizon);
        self
    }

    /// The configured arrival process.
    #[must_use]
    pub fn process(&self) -> ArrivalProcess {
        self.process
    }

    /// Advance the cursor to the next arrival instant.
    fn next_time(&mut self) -> SimTime {
        match self.process {
            ArrivalProcess::Poisson { rate } => {
                self.clock += SimDuration::from_secs_f64(self.rng.exp(rate));
                self.clock
            }
            ArrivalProcess::Diurnal {
                rate,
                amplitude,
                period,
            } => {
                // Lewis–Shedler thinning: candidates at the peak rate,
                // accepted with probability λ(t)/λ_max.
                let peak = rate * (1.0 + amplitude);
                loop {
                    self.clock += SimDuration::from_secs_f64(self.rng.exp(peak));
                    let phase = self.clock.0 as f64 / period.0 as f64;
                    let lambda =
                        rate * (1.0 + amplitude * (2.0 * std::f64::consts::PI * phase).sin());
                    if self.rng.f64() * peak < lambda {
                        return self.clock;
                    }
                }
            }
            ArrivalProcess::Bursty {
                base_rate,
                burst_rate,
                mean_calm,
                mean_burst,
            } => loop {
                let rate = if self.bursting { burst_rate } else { base_rate };
                let candidate = self.clock + SimDuration::from_secs_f64(self.rng.exp(rate));
                if candidate <= self.state_until {
                    self.clock = candidate;
                    return self.clock;
                }
                // The dwell ended first: restart sampling from the state
                // boundary in the other state (the exponential's
                // memorylessness makes the discard exact, not approximate).
                self.clock = self.state_until;
                self.bursting = !self.bursting;
                let dwell = if self.bursting { mean_burst } else { mean_calm };
                self.state_until = self.clock
                    + SimDuration::from_secs_f64(self.rng.exp(1.0 / dwell.as_secs_f64()));
            },
        }
    }
}

impl Workload for OpenLoop {
    fn next_arrival(&mut self) -> Option<(SimTime, SortJob)> {
        if self.remaining == 0 {
            return None;
        }
        let at = self.next_time();
        if let Some(h) = self.horizon {
            if at >= h {
                self.remaining = 0;
                return None;
            }
        }
        self.remaining -= 1;
        let job = self.mix.sample(&mut self.rng);
        Some((at, job))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::TenantId;

    fn mix() -> JobMix {
        JobMix::of(SortJob::new(TenantId(0), 1 << 12))
    }

    #[test]
    fn trace_workload_replays_sorted_and_stable() {
        let a = SortJob::new(TenantId(0), 1 << 12);
        let b = SortJob::new(TenantId(1), 1 << 12);
        let c = SortJob::new(TenantId(2), 1 << 12);
        let mut w = TraceWorkload::new(vec![
            (SimTime(5), a.clone()),
            (SimTime(1), b.clone()),
            (SimTime(5), c.clone()),
        ]);
        assert_eq!(w.remaining(), 3);
        assert_eq!(w.next_arrival(), Some((SimTime(1), b)));
        // Stable sort: the two t=5 arrivals keep submission order.
        assert_eq!(w.next_arrival(), Some((SimTime(5), a)));
        assert_eq!(w.next_arrival(), Some((SimTime(5), c)));
        assert_eq!(w.next_arrival(), None);
    }

    #[test]
    fn arrivals_are_non_decreasing_for_every_process() {
        let processes = [
            ArrivalProcess::Poisson { rate: 500.0 },
            ArrivalProcess::Diurnal {
                rate: 500.0,
                amplitude: 0.8,
                period: SimDuration::from_millis(20),
            },
            ArrivalProcess::Bursty {
                base_rate: 200.0,
                burst_rate: 2_000.0,
                mean_calm: SimDuration::from_millis(10),
                mean_burst: SimDuration::from_millis(2),
            },
        ];
        for p in processes {
            let arrivals = OpenLoop::new(p, mix(), 300, 9).collect_arrivals();
            assert_eq!(arrivals.len(), 300);
            for w in arrivals.windows(2) {
                assert!(w[0].0 <= w[1].0, "arrivals must be time-ordered");
            }
        }
    }

    #[test]
    fn horizon_truncates_the_stream() {
        let horizon = SimTime(2_000_000);
        let arrivals = OpenLoop::poisson(1_000.0, mix(), 10_000, 3)
            .until(horizon)
            .collect_arrivals();
        assert!(!arrivals.is_empty());
        assert!(arrivals.len() < 10_000);
        assert!(arrivals.iter().all(|&(t, _)| t < horizon));
    }

    #[test]
    fn job_mix_respects_weights_and_freshens_seeds() {
        let m = JobMix::of(SortJob::new(TenantId(0), 1 << 12))
            .and(SortJob::new(TenantId(1), 1 << 14), 3.0);
        let arrivals = OpenLoop::poisson(100.0, m, 4_000, 11).collect_arrivals();
        let heavy = arrivals
            .iter()
            .filter(|(_, j)| j.tenant == TenantId(1))
            .count();
        // Weight 3 of 4 → 75% of draws, ±5 points at n = 4000.
        let share = heavy as f64 / arrivals.len() as f64;
        assert!((0.70..0.80).contains(&share), "weighted share {share}");
        let mut seeds: Vec<u64> = arrivals.iter().map(|(_, j)| j.seed).collect();
        seeds.sort_unstable();
        seeds.dedup();
        assert_eq!(
            seeds.len(),
            arrivals.len(),
            "every arrival gets a fresh seed"
        );
    }

    #[test]
    fn mean_rate_blends_mmpp_states_by_dwell() {
        let p = ArrivalProcess::Bursty {
            base_rate: 100.0,
            burst_rate: 1_100.0,
            mean_calm: SimDuration::from_millis(9),
            mean_burst: SimDuration::from_millis(1),
        };
        // 0.9·100 + 0.1·1100 = 200.
        assert!((p.mean_rate() - 200.0).abs() < 1e-9);
        assert!((ArrivalProcess::Poisson { rate: 7.0 }.mean_rate() - 7.0).abs() < 1e-12);
    }
}
