//! Sort jobs: what a tenant asks the service to do.

use msort_data::Distribution;
use msort_sim::SimDuration;

/// Opaque tenant identity. Tenants own jobs, weights, and per-tenant
/// statistics in the [`crate::ServiceReport`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TenantId(pub u32);

impl std::fmt::Display for TenantId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "tenant{}", self.0)
    }
}

/// Latency expectation of a job. Interactive jobs jump ahead of batch jobs
/// at every queue decision (within the active policy's ordering).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum DeadlineClass {
    /// Latency-sensitive: dispatched before any batch job the policy would
    /// otherwise pick.
    Interactive,
    /// Throughput-oriented (the default).
    Batch,
}

/// Which multi-GPU sort algorithm executes the job.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum JobAlgo {
    /// P2P merge-tree sort ([`msort_core::p2p`]); gang size must be a
    /// power of two.
    P2p,
    /// Radix-partitioned sort ([`msort_core::rp`]); any gang size.
    Rp,
    /// Heterogeneous sort with the CPU multiway merge
    /// ([`msort_core::het`]), in-core.
    Het,
    /// GPU sample sort ([`msort_core::sample`]): splitter partition plus
    /// one all-to-all bucket exchange; any gang size.
    SampleSort,
    /// Multiway mergesort ([`msort_core::mwms`]): pairwise merge tree;
    /// any gang size (odd runs get byes). The final merge transiently
    /// needs `2n` keys on one GPU — the steepest footprint.
    MultiwayMerge,
}

impl JobAlgo {
    /// Human-readable algorithm label (matches the per-sort reports).
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            JobAlgo::P2p => "P2P sort",
            JobAlgo::Rp => "RP sort",
            JobAlgo::Het => "HET sort",
            JobAlgo::SampleSort => "Sample sort",
            JobAlgo::MultiwayMerge => "Multiway mergesort",
        }
    }

    /// All five algorithm families, in report order.
    #[must_use]
    pub fn all() -> [JobAlgo; 5] {
        [
            JobAlgo::P2p,
            JobAlgo::Rp,
            JobAlgo::Het,
            JobAlgo::SampleSort,
            JobAlgo::MultiwayMerge,
        ]
    }
}

/// One sort request: `keys` logical keys of `dist` data, sorted by `algo`
/// on a gang of `gpus` devices. The service generates the input from
/// `seed` (deterministically) and validates the output against it.
#[derive(Debug, Clone, PartialEq)]
pub struct SortJob {
    /// Owning tenant.
    pub tenant: TenantId,
    /// Logical keys to sort. Must be a multiple of `gpus × scale` for the
    /// chosen fidelity.
    pub keys: u64,
    /// Input data distribution.
    pub dist: Distribution,
    /// Sort algorithm.
    pub algo: JobAlgo,
    /// Gang size (GPUs leased exclusively for the job's lifetime).
    pub gpus: usize,
    /// Latency class.
    pub deadline: DeadlineClass,
    /// Latency SLO: the submit-to-finish budget this job must meet to
    /// count as goodput. `None` falls back to the owning tenant's
    /// configured target (`ServeConfig::with_slo`), or best-effort if the
    /// tenant has none. The deadline instant is `submit time + slo`; the
    /// EDF queue policy and SLO-aware admission both key off it.
    pub slo: Option<SimDuration>,
    /// Seed for the generated input.
    pub seed: u64,
}

impl SortJob {
    /// A batch uniform-distribution P2P job on two GPUs.
    #[must_use]
    pub fn new(tenant: TenantId, keys: u64) -> Self {
        Self {
            tenant,
            keys,
            dist: Distribution::Uniform,
            algo: JobAlgo::P2p,
            gpus: 2,
            deadline: DeadlineClass::Batch,
            slo: None,
            seed: 1,
        }
    }

    /// Select the input distribution.
    #[must_use]
    pub fn with_dist(mut self, dist: Distribution) -> Self {
        self.dist = dist;
        self
    }

    /// Select the sort algorithm.
    #[must_use]
    pub fn with_algo(mut self, algo: JobAlgo) -> Self {
        self.algo = algo;
        self
    }

    /// Select the gang size.
    #[must_use]
    pub fn with_gpus(mut self, gpus: usize) -> Self {
        self.gpus = gpus;
        self
    }

    /// Mark the job latency-sensitive.
    #[must_use]
    pub fn interactive(mut self) -> Self {
        self.deadline = DeadlineClass::Interactive;
        self
    }

    /// Give the job its own latency SLO (submit-to-finish budget),
    /// overriding the tenant-level target.
    #[must_use]
    pub fn with_slo(mut self, slo: SimDuration) -> Self {
        self.slo = Some(slo);
        self
    }

    /// Select the input seed.
    #[must_use]
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_round_trips() {
        let j = SortJob::new(TenantId(3), 1 << 20)
            .with_algo(JobAlgo::Het)
            .with_gpus(4)
            .with_dist(Distribution::ReverseSorted)
            .interactive()
            .with_slo(SimDuration::from_millis(5))
            .with_seed(99);
        assert_eq!(j.tenant, TenantId(3));
        assert_eq!(j.keys, 1 << 20);
        assert_eq!(j.algo, JobAlgo::Het);
        assert_eq!(j.gpus, 4);
        assert_eq!(j.dist, Distribution::ReverseSorted);
        assert_eq!(j.deadline, DeadlineClass::Interactive);
        assert_eq!(j.slo, Some(SimDuration::from_millis(5)));
        assert_eq!(j.seed, 99);
        assert_eq!(JobAlgo::Rp.name(), "RP sort");
    }

    #[test]
    fn deadline_classes_order_interactive_first() {
        assert!(DeadlineClass::Interactive < DeadlineClass::Batch);
    }
}
