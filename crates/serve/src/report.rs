//! Service-level reporting: per-job outcomes, per-tenant statistics,
//! queue-depth timeline, and latency percentiles.

use crate::job::TenantId;
use crate::placement::PlacementPolicy;
use crate::queue::QueuePolicy;
use msort_sim::{SimDuration, SimTime};

/// One completed job.
#[derive(Debug, Clone, PartialEq)]
pub struct JobOutcome {
    /// Global submission sequence number.
    pub seq: u64,
    /// Owning tenant.
    pub tenant: TenantId,
    /// Logical keys sorted.
    pub keys: u64,
    /// Algorithm label.
    pub algorithm: &'static str,
    /// The gang the job ran on, sorted ascending.
    pub gpus: Vec<usize>,
    /// When the job entered the queue.
    pub submitted: SimTime,
    /// When its gang lease began (first phase enqueued).
    pub started: SimTime,
    /// When the sorted output was read back and validated.
    pub finished: SimTime,
    /// Output verified sorted *and* a permutation of the generated input.
    pub validated: bool,
}

impl JobOutcome {
    /// Queueing + service time.
    #[must_use]
    pub fn latency(&self) -> SimDuration {
        self.finished.since(self.submitted)
    }

    /// Time spent executing (excludes queueing).
    #[must_use]
    pub fn service_time(&self) -> SimDuration {
        self.finished.since(self.started)
    }
}

/// Why a submission was refused.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RejectReason {
    /// Backpressure: the pending queue was at its configured depth.
    QueueFull,
    /// The job could never run on this service (gang larger than the
    /// fleet, footprint beyond device memory, invalid shape...).
    Infeasible(String),
}

/// One refused submission.
#[derive(Debug, Clone, PartialEq)]
pub struct RejectedJob {
    /// Global submission sequence number.
    pub seq: u64,
    /// Owning tenant.
    pub tenant: TenantId,
    /// When it was refused.
    pub at: SimTime,
    /// Why.
    pub reason: RejectReason,
}

/// Aggregate view of one tenant's service.
#[derive(Debug, Clone, PartialEq)]
pub struct TenantStats {
    /// The tenant.
    pub tenant: TenantId,
    /// Configured fair-share weight.
    pub weight: f64,
    /// Completed jobs.
    pub jobs: u64,
    /// Completed logical keys.
    pub keys: u64,
    /// Mean completed-job latency.
    pub mean_latency: SimDuration,
}

/// Everything one [`crate::SortService::run`] produced.
#[derive(Debug, Clone, PartialEq)]
pub struct ServiceReport {
    /// Platform name.
    pub platform: String,
    /// Queue policy the run used.
    pub policy: QueuePolicy,
    /// Placement policy the run used.
    pub placement: PlacementPolicy,
    /// Completed jobs in completion order.
    pub outcomes: Vec<JobOutcome>,
    /// Refused submissions in refusal order.
    pub rejected: Vec<RejectedJob>,
    /// `(time, pending jobs)` sampled at every enqueue and dispatch.
    pub queue_depth: Vec<(SimTime, usize)>,
    /// Clock value when the last job completed.
    pub makespan: SimTime,
    /// Tenant weights in effect (ascending tenant id).
    pub weights: Vec<(TenantId, f64)>,
}

impl ServiceReport {
    /// Total logical keys across completed jobs.
    #[must_use]
    pub fn total_keys(&self) -> u64 {
        self.outcomes.iter().map(|o| o.keys).sum()
    }

    /// Service throughput in million keys per second of simulated time
    /// (0 for an empty or zero-duration run).
    #[must_use]
    pub fn throughput_mkeys(&self) -> f64 {
        let secs = self.makespan.as_secs_f64();
        if secs <= 0.0 {
            return 0.0;
        }
        self.total_keys() as f64 / secs / 1e6
    }

    /// `true` when every completed job validated.
    #[must_use]
    pub fn all_validated(&self) -> bool {
        self.outcomes.iter().all(|o| o.validated)
    }

    /// Nearest-rank latency percentile over completed jobs (`p` in
    /// `0.0..=100.0`); zero when nothing completed.
    #[must_use]
    pub fn latency_percentile(&self, p: f64) -> SimDuration {
        if self.outcomes.is_empty() {
            return SimDuration::ZERO;
        }
        let mut lat: Vec<SimDuration> = self.outcomes.iter().map(JobOutcome::latency).collect();
        lat.sort_unstable();
        let rank = ((p / 100.0) * lat.len() as f64).ceil() as usize;
        lat[rank.clamp(1, lat.len()) - 1]
    }

    /// Median latency.
    #[must_use]
    pub fn p50_latency(&self) -> SimDuration {
        self.latency_percentile(50.0)
    }

    /// 95th-percentile latency.
    #[must_use]
    pub fn p95_latency(&self) -> SimDuration {
        self.latency_percentile(95.0)
    }

    /// 99th-percentile latency.
    #[must_use]
    pub fn p99_latency(&self) -> SimDuration {
        self.latency_percentile(99.0)
    }

    /// Mean latency over completed jobs.
    #[must_use]
    pub fn mean_latency(&self) -> SimDuration {
        if self.outcomes.is_empty() {
            return SimDuration::ZERO;
        }
        let total: u64 = self.outcomes.iter().map(|o| o.latency().0).sum();
        SimDuration(total / self.outcomes.len() as u64)
    }

    /// Per-tenant aggregates over completed jobs, ascending tenant id.
    /// Tenants with a configured weight appear even with zero completions.
    #[must_use]
    pub fn tenant_stats(&self) -> Vec<TenantStats> {
        let mut tenants: Vec<TenantId> = self.weights.iter().map(|&(t, _)| t).collect();
        for o in &self.outcomes {
            if !tenants.contains(&o.tenant) {
                tenants.push(o.tenant);
            }
        }
        tenants.sort_unstable();
        tenants
            .into_iter()
            .map(|t| {
                let weight = self
                    .weights
                    .iter()
                    .find(|&&(w, _)| w == t)
                    .map_or(1.0, |&(_, w)| w);
                let mine: Vec<&JobOutcome> =
                    self.outcomes.iter().filter(|o| o.tenant == t).collect();
                let jobs = mine.len() as u64;
                let keys = mine.iter().map(|o| o.keys).sum();
                let mean_latency = mine
                    .iter()
                    .map(|o| o.latency().0)
                    .sum::<u64>()
                    .checked_div(jobs)
                    .map_or(SimDuration::ZERO, SimDuration);
                TenantStats {
                    tenant: t,
                    weight,
                    jobs,
                    keys,
                    mean_latency,
                }
            })
            .collect()
    }

    /// Worst absolute deviation between a tenant's share of completed keys
    /// and its weight's share of the total weight. 0 is perfectly fair;
    /// only meaningful when the run kept every tenant backlogged.
    #[must_use]
    pub fn fair_share_error(&self) -> f64 {
        let stats = self.tenant_stats();
        let total_keys: u64 = stats.iter().map(|s| s.keys).sum();
        let total_weight: f64 = stats.iter().map(|s| s.weight).sum();
        if total_keys == 0 || total_weight <= 0.0 {
            return 0.0;
        }
        stats
            .iter()
            .map(|s| {
                let share = s.keys as f64 / total_keys as f64;
                let target = s.weight / total_weight;
                (share - target).abs()
            })
            .fold(0.0, f64::max)
    }

    /// One-line human-readable summary.
    #[must_use]
    pub fn summary(&self) -> String {
        format!(
            "{:?}/{:?} on {}: {} jobs ({} rejected) in {} at {:.0} Mkeys/s, p50 {} p95 {} p99 {}, fair-share err {:.3}",
            self.policy,
            self.placement,
            self.platform,
            self.outcomes.len(),
            self.rejected.len(),
            self.makespan,
            self.throughput_mkeys(),
            self.p50_latency(),
            self.p95_latency(),
            self.p99_latency(),
            self.fair_share_error(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn outcome(seq: u64, tenant: u32, keys: u64, lat_ms: u64) -> JobOutcome {
        JobOutcome {
            seq,
            tenant: TenantId(tenant),
            keys,
            algorithm: "P2P sort",
            gpus: vec![0, 1],
            submitted: SimTime::ZERO,
            started: SimTime::ZERO,
            finished: SimTime::ZERO + SimDuration::from_millis(lat_ms),
            validated: true,
        }
    }

    fn report(outcomes: Vec<JobOutcome>) -> ServiceReport {
        ServiceReport {
            platform: "test".into(),
            policy: QueuePolicy::Fifo,
            placement: PlacementPolicy::RoundRobin,
            makespan: outcomes
                .iter()
                .map(|o| o.finished)
                .max()
                .unwrap_or(SimTime::ZERO),
            outcomes,
            rejected: Vec::new(),
            queue_depth: Vec::new(),
            weights: vec![(TenantId(0), 1.0), (TenantId(1), 1.0)],
        }
    }

    #[test]
    fn percentiles_use_nearest_rank() {
        let r = report((0..100).map(|i| outcome(i, 0, 1000, i + 1)).collect());
        assert_eq!(r.p50_latency(), SimDuration::from_millis(50));
        assert_eq!(r.p95_latency(), SimDuration::from_millis(95));
        assert_eq!(r.p99_latency(), SimDuration::from_millis(99));
        assert_eq!(r.latency_percentile(100.0), SimDuration::from_millis(100));
        assert_eq!(report(vec![]).p99_latency(), SimDuration::ZERO);
    }

    #[test]
    fn fair_share_error_measures_key_share_deviation() {
        // Tenant 0 got 3×, tenant 1 got 1× with equal weights: shares are
        // 0.75/0.25 against targets 0.5/0.5 → error 0.25.
        let r = report(vec![outcome(0, 0, 3000, 1), outcome(1, 1, 1000, 1)]);
        assert!((r.fair_share_error() - 0.25).abs() < 1e-12);
        let fair = report(vec![outcome(0, 0, 1000, 1), outcome(1, 1, 1000, 1)]);
        assert_eq!(fair.fair_share_error(), 0.0);
        assert_eq!(report(vec![]).fair_share_error(), 0.0);
    }

    #[test]
    fn tenant_stats_cover_weighted_but_idle_tenants() {
        let r = report(vec![outcome(0, 0, 1000, 4)]);
        let stats = r.tenant_stats();
        assert_eq!(stats.len(), 2);
        assert_eq!(stats[0].jobs, 1);
        assert_eq!(stats[0].mean_latency, SimDuration::from_millis(4));
        assert_eq!(stats[1].jobs, 0, "tenant 1 has a weight but no jobs");
        assert_eq!(r.total_keys(), 1000);
        assert!(r.all_validated());
        assert!(r.summary().contains("1 jobs"));
    }

    #[test]
    fn zero_duration_run_reports_finite_throughput() {
        let r = report(vec![]);
        assert_eq!(r.throughput_mkeys(), 0.0);
        assert!(r.throughput_mkeys().is_finite());
    }
}
