//! Service-level reporting: per-job outcomes, per-tenant statistics,
//! queue-depth timeline, and latency percentiles.

use crate::job::TenantId;
use crate::placement::PlacementPolicy;
use crate::queue::QueuePolicy;
use msort_sim::{SimDuration, SimTime};

/// One completed job.
#[derive(Debug, Clone, PartialEq)]
pub struct JobOutcome {
    /// Global submission sequence number.
    pub seq: u64,
    /// Owning tenant.
    pub tenant: TenantId,
    /// Logical keys sorted.
    pub keys: u64,
    /// Algorithm label.
    pub algorithm: &'static str,
    /// The gang the job ran on, sorted ascending.
    pub gpus: Vec<usize>,
    /// When the job entered the queue.
    pub submitted: SimTime,
    /// When its gang lease began (first phase enqueued).
    pub started: SimTime,
    /// When the sorted output was read back and validated.
    pub finished: SimTime,
    /// Absolute deadline (submit + effective SLO), if the job had one.
    pub deadline: Option<SimTime>,
    /// Output verified sorted *and* a permutation of the generated input.
    pub validated: bool,
}

impl JobOutcome {
    /// Queueing + service time.
    #[must_use]
    pub fn latency(&self) -> SimDuration {
        self.finished.since(self.submitted)
    }

    /// Time spent executing (excludes queueing).
    #[must_use]
    pub fn service_time(&self) -> SimDuration {
        self.finished.since(self.started)
    }

    /// `true` when the job finished within its SLO — or had none
    /// (best-effort work always counts as goodput once it completes).
    #[must_use]
    pub fn met_slo(&self) -> bool {
        self.deadline.is_none_or(|d| self.finished <= d)
    }
}

/// Why a submission was refused.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RejectReason {
    /// Backpressure: the pending queue was at its configured depth.
    QueueFull,
    /// The job could never run on this service (gang larger than the
    /// fleet, footprint beyond device memory, invalid shape...).
    Infeasible(String),
    /// SLO-aware admission: even an idle fleet could not finish the job
    /// inside its latency budget — the deadline is unattainable, not
    /// merely at risk, so admitting it would only burn capacity.
    SloUnattainable(String),
    /// Load shedding: the backlog's estimated queue wait already blows
    /// the job's deadline, so it is turned away at the door instead of
    /// timing out in the queue (goodput over throughput under overload).
    Shed(String),
}

/// One refused submission.
#[derive(Debug, Clone, PartialEq)]
pub struct RejectedJob {
    /// Global submission sequence number.
    pub seq: u64,
    /// Owning tenant.
    pub tenant: TenantId,
    /// When it was refused.
    pub at: SimTime,
    /// Why.
    pub reason: RejectReason,
}

/// Aggregate view of one tenant's service.
#[derive(Debug, Clone, PartialEq)]
pub struct TenantStats {
    /// The tenant.
    pub tenant: TenantId,
    /// Configured fair-share weight.
    pub weight: f64,
    /// Completed jobs.
    pub jobs: u64,
    /// Completed logical keys.
    pub keys: u64,
    /// Mean completed-job latency.
    pub mean_latency: SimDuration,
}

/// Append `(at, value)` to a step-function timeline, deduplicating:
/// a sample equal to the current level is dropped, and several
/// transitions at one instant collapse to the final value (the
/// intermediate levels never existed for any observer of the step
/// function). Shared by the indexed service and the golden reference so
/// both emit bit-identical timelines.
pub(crate) fn push_step(log: &mut Vec<(SimTime, usize)>, at: SimTime, value: usize) {
    if let Some(&(last_at, last_v)) = log.last() {
        if last_v == value {
            return;
        }
        if last_at == at {
            log.pop();
            // The pop may expose an equal predecessor (A → B → A within
            // one instant): dropping the sample keeps the level at A.
            if log.last().is_some_and(|&(_, v)| v == value) {
                return;
            }
            log.push((at, value));
            return;
        }
    }
    log.push((at, value));
}

/// Everything one [`crate::SortService::run`] produced.
#[derive(Debug, Clone, PartialEq)]
pub struct ServiceReport {
    /// Platform name.
    pub platform: String,
    /// Queue policy the run used.
    pub policy: QueuePolicy,
    /// Placement policy the run used.
    pub placement: PlacementPolicy,
    /// Completed jobs in completion order.
    pub outcomes: Vec<JobOutcome>,
    /// Refused submissions in refusal order.
    pub rejected: Vec<RejectedJob>,
    /// `(time, pending jobs)` step function, recorded only when the value
    /// changes (several same-instant transitions coalesce into the final
    /// value), so million-job runs stay bounded by the number of *distinct*
    /// depths visited, not the number of events.
    pub queue_depth: Vec<(SimTime, usize)>,
    /// `(time, active GPUs)` step function, deduplicated the same way as
    /// [`queue_depth`](Self::queue_depth); a fixed fleet logs one sample
    /// at t=0. Each sample holds until the next.
    pub fleet_size: Vec<(SimTime, usize)>,
    /// Clock value when the last job completed.
    pub makespan: SimTime,
    /// Tenant weights in effect (ascending tenant id).
    pub weights: Vec<(TenantId, f64)>,
}

impl ServiceReport {
    /// Total logical keys across completed jobs.
    #[must_use]
    pub fn total_keys(&self) -> u64 {
        self.outcomes.iter().map(|o| o.keys).sum()
    }

    /// Service throughput in million keys per second of simulated time
    /// (0 for an empty or zero-duration run).
    #[must_use]
    pub fn throughput_mkeys(&self) -> f64 {
        let secs = self.makespan.as_secs_f64();
        if secs <= 0.0 {
            return 0.0;
        }
        self.total_keys() as f64 / secs / 1e6
    }

    /// `true` when every completed job validated.
    #[must_use]
    pub fn all_validated(&self) -> bool {
        self.outcomes.iter().all(|o| o.validated)
    }

    /// Offered load: every submission the service saw, completed or
    /// refused.
    #[must_use]
    pub fn offered_jobs(&self) -> u64 {
        (self.outcomes.len() + self.rejected.len()) as u64
    }

    /// Completed jobs per second of simulated time (0 for an empty or
    /// zero-duration run, mirroring `SortReport::mkeys_per_sec`).
    #[must_use]
    pub fn jobs_per_sec(&self) -> f64 {
        let secs = self.makespan.as_secs_f64();
        if secs <= 0.0 {
            return 0.0;
        }
        self.outcomes.len() as f64 / secs
    }

    /// Goodput: completed jobs that met their SLO (best-effort jobs count
    /// once they complete).
    #[must_use]
    pub fn goodput_jobs(&self) -> u64 {
        self.outcomes.iter().filter(|o| o.met_slo()).count() as u64
    }

    /// Goodput in jobs per second of simulated time (0 for an empty or
    /// zero-duration run).
    #[must_use]
    pub fn goodput_per_sec(&self) -> f64 {
        let secs = self.makespan.as_secs_f64();
        if secs <= 0.0 {
            return 0.0;
        }
        self.goodput_jobs() as f64 / secs
    }

    /// Fraction of *offered* jobs that completed within SLO — the number
    /// an operator watches under overload, where shed and timed-out work
    /// both count against the service. 1.0 for an idle run (no offers,
    /// nothing violated).
    #[must_use]
    pub fn slo_attainment(&self) -> f64 {
        let offered = self.offered_jobs();
        if offered == 0 {
            return 1.0;
        }
        self.goodput_jobs() as f64 / offered as f64
    }

    /// Submissions refused by SLO-aware admission (shed or unattainable),
    /// as opposed to backpressure/infeasibility rejects.
    #[must_use]
    pub fn shed_jobs(&self) -> u64 {
        self.rejected
            .iter()
            .filter(|r| {
                matches!(
                    r.reason,
                    RejectReason::Shed(_) | RejectReason::SloUnattainable(_)
                )
            })
            .count() as u64
    }

    /// Time-weighted mean of the [`fleet_size`](Self::fleet_size) step
    /// function over `[0, makespan]`; 0 when the run never logged a
    /// sample or had zero duration.
    #[must_use]
    pub fn mean_fleet_size(&self) -> f64 {
        let end = self.makespan;
        if self.fleet_size.is_empty() || end == SimTime::ZERO {
            return self.fleet_size.last().map_or(0.0, |&(_, n)| n as f64);
        }
        let mut weighted = 0.0;
        for (i, &(at, n)) in self.fleet_size.iter().enumerate() {
            if at >= end {
                break;
            }
            let until = self.fleet_size.get(i + 1).map_or(end, |&(t, _)| t.min(end));
            weighted += n as f64 * until.since(at).as_secs_f64();
        }
        weighted / end.as_secs_f64()
    }

    /// Nearest-rank latency percentile over completed jobs (`p` in
    /// `0.0..=100.0`); zero when nothing completed.
    ///
    /// Nearest-rank is used *consistently*, small samples included: the
    /// reported value is the ⌈p/100 · n⌉-th smallest latency — an actual
    /// observation, never an interpolation. So p99 over 5 jobs is the
    /// maximum (rank 5), and p95 over exactly 20 jobs is the 19th value,
    /// not the 20th: the rank is computed in integer arithmetic, because
    /// `0.95 × 20` in floating point lands a hair above 19.0 and a naive
    /// `ceil` would skip to the max.
    #[must_use]
    pub fn latency_percentile(&self, p: f64) -> SimDuration {
        if self.outcomes.is_empty() {
            return SimDuration::ZERO;
        }
        let mut lat: Vec<SimDuration> = self.outcomes.iter().map(JobOutcome::latency).collect();
        lat.sort_unstable();
        lat[Self::nearest_rank(p, lat.len()) - 1]
    }

    /// ⌈p/100 · n⌉ clamped to `1..=n`, computed exactly. `p` is taken at
    /// millipercent resolution (p99.999 still resolves; beyond that the
    /// difference cannot matter for any feasible sample count).
    fn nearest_rank(p: f64, n: usize) -> usize {
        let millipercent = (p * 1_000.0).round() as u128;
        let rank = (millipercent * n as u128).div_ceil(100_000) as usize;
        rank.clamp(1, n)
    }

    /// Median latency.
    #[must_use]
    pub fn p50_latency(&self) -> SimDuration {
        self.latency_percentile(50.0)
    }

    /// 95th-percentile latency.
    #[must_use]
    pub fn p95_latency(&self) -> SimDuration {
        self.latency_percentile(95.0)
    }

    /// 99th-percentile latency.
    #[must_use]
    pub fn p99_latency(&self) -> SimDuration {
        self.latency_percentile(99.0)
    }

    /// Mean latency over completed jobs.
    #[must_use]
    pub fn mean_latency(&self) -> SimDuration {
        if self.outcomes.is_empty() {
            return SimDuration::ZERO;
        }
        let total: u64 = self.outcomes.iter().map(|o| o.latency().0).sum();
        SimDuration(total / self.outcomes.len() as u64)
    }

    /// Per-tenant aggregates over completed jobs, ascending tenant id.
    /// Tenants with a configured weight appear even with zero completions.
    #[must_use]
    pub fn tenant_stats(&self) -> Vec<TenantStats> {
        let mut tenants: Vec<TenantId> = self.weights.iter().map(|&(t, _)| t).collect();
        for o in &self.outcomes {
            if !tenants.contains(&o.tenant) {
                tenants.push(o.tenant);
            }
        }
        tenants.sort_unstable();
        tenants
            .into_iter()
            .map(|t| {
                let weight = self
                    .weights
                    .iter()
                    .find(|&&(w, _)| w == t)
                    .map_or(1.0, |&(_, w)| w);
                let mine: Vec<&JobOutcome> =
                    self.outcomes.iter().filter(|o| o.tenant == t).collect();
                let jobs = mine.len() as u64;
                let keys = mine.iter().map(|o| o.keys).sum();
                let mean_latency = mine
                    .iter()
                    .map(|o| o.latency().0)
                    .sum::<u64>()
                    .checked_div(jobs)
                    .map_or(SimDuration::ZERO, SimDuration);
                TenantStats {
                    tenant: t,
                    weight,
                    jobs,
                    keys,
                    mean_latency,
                }
            })
            .collect()
    }

    /// Worst absolute deviation between a tenant's share of completed keys
    /// and its weight's share of the total weight. 0 is perfectly fair;
    /// only meaningful when the run kept every tenant backlogged.
    #[must_use]
    pub fn fair_share_error(&self) -> f64 {
        let stats = self.tenant_stats();
        let total_keys: u64 = stats.iter().map(|s| s.keys).sum();
        let total_weight: f64 = stats.iter().map(|s| s.weight).sum();
        if total_keys == 0 || total_weight <= 0.0 {
            return 0.0;
        }
        stats
            .iter()
            .map(|s| {
                let share = s.keys as f64 / total_keys as f64;
                let target = s.weight / total_weight;
                (share - target).abs()
            })
            .fold(0.0, f64::max)
    }

    /// One-line human-readable summary.
    #[must_use]
    pub fn summary(&self) -> String {
        format!(
            "{:?}/{:?} on {}: {} jobs ({} rejected, {} shed) in {} at {:.0} Mkeys/s, \
             {:.0} jobs/s ({:.0} good), p50 {} p95 {} p99 {}, fair-share err {:.3}",
            self.policy,
            self.placement,
            self.platform,
            self.outcomes.len(),
            self.rejected.len(),
            self.shed_jobs(),
            self.makespan,
            self.throughput_mkeys(),
            self.jobs_per_sec(),
            self.goodput_per_sec(),
            self.p50_latency(),
            self.p95_latency(),
            self.p99_latency(),
            self.fair_share_error(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn outcome(seq: u64, tenant: u32, keys: u64, lat_ms: u64) -> JobOutcome {
        JobOutcome {
            seq,
            tenant: TenantId(tenant),
            keys,
            algorithm: "P2P sort",
            gpus: vec![0, 1],
            submitted: SimTime::ZERO,
            started: SimTime::ZERO,
            finished: SimTime::ZERO + SimDuration::from_millis(lat_ms),
            deadline: None,
            validated: true,
        }
    }

    fn report(outcomes: Vec<JobOutcome>) -> ServiceReport {
        ServiceReport {
            platform: "test".into(),
            policy: QueuePolicy::Fifo,
            placement: PlacementPolicy::RoundRobin,
            makespan: outcomes
                .iter()
                .map(|o| o.finished)
                .max()
                .unwrap_or(SimTime::ZERO),
            outcomes,
            rejected: Vec::new(),
            queue_depth: Vec::new(),
            fleet_size: Vec::new(),
            weights: vec![(TenantId(0), 1.0), (TenantId(1), 1.0)],
        }
    }

    #[test]
    fn percentiles_use_nearest_rank() {
        let r = report((0..100).map(|i| outcome(i, 0, 1000, i + 1)).collect());
        assert_eq!(r.p50_latency(), SimDuration::from_millis(50));
        assert_eq!(r.p95_latency(), SimDuration::from_millis(95));
        assert_eq!(r.p99_latency(), SimDuration::from_millis(99));
        assert_eq!(r.latency_percentile(100.0), SimDuration::from_millis(100));
        assert_eq!(report(vec![]).p99_latency(), SimDuration::ZERO);
    }

    #[test]
    fn percentiles_stay_nearest_rank_on_small_samples() {
        // n = 20, p95: ⌈0.95·20⌉ = 19 — the 19th value, not the max. A
        // float ceil would round 19.000000000000004 up to 20 and silently
        // report p95 == p100 on every 20-job run.
        let r = report((0..20).map(|i| outcome(i, 0, 1000, i + 1)).collect());
        assert_eq!(r.p95_latency(), SimDuration::from_millis(19));
        assert_eq!(r.p99_latency(), SimDuration::from_millis(20));
        // n = 5: p50 is the 3rd value, p95 and p99 are the max.
        let r5 = report((0..5).map(|i| outcome(i, 0, 1000, i + 1)).collect());
        assert_eq!(r5.p50_latency(), SimDuration::from_millis(3));
        assert_eq!(r5.p95_latency(), SimDuration::from_millis(5));
        assert_eq!(r5.p99_latency(), SimDuration::from_millis(5));
        // n = 1: everything is that single observation, p=0 included.
        let r1 = report(vec![outcome(0, 0, 1000, 7)]);
        assert_eq!(r1.latency_percentile(0.0), SimDuration::from_millis(7));
        assert_eq!(r1.p99_latency(), SimDuration::from_millis(7));
        // Fractional percentiles resolve exactly: p99.9 over 1000 jobs is
        // the 999th value.
        let big = report((0..1000).map(|i| outcome(i, 0, 1, i + 1)).collect());
        assert_eq!(big.latency_percentile(99.9), SimDuration::from_millis(999));
    }

    #[test]
    fn goodput_counts_slo_met_jobs_only() {
        let mut met = outcome(0, 0, 1000, 5);
        met.deadline = Some(SimTime::ZERO + SimDuration::from_millis(10));
        let mut missed = outcome(1, 0, 1000, 50);
        missed.deadline = Some(SimTime::ZERO + SimDuration::from_millis(10));
        let best_effort = outcome(2, 1, 1000, 80);
        assert!(met.met_slo());
        assert!(!missed.met_slo());
        assert!(best_effort.met_slo(), "no deadline means always goodput");
        let mut r = report(vec![met, missed, best_effort]);
        assert_eq!(r.goodput_jobs(), 2);
        assert_eq!(r.offered_jobs(), 3);
        r.rejected.push(RejectedJob {
            seq: 3,
            tenant: TenantId(0),
            at: SimTime::ZERO,
            reason: RejectReason::Shed("backlog".into()),
        });
        r.rejected.push(RejectedJob {
            seq: 4,
            tenant: TenantId(0),
            at: SimTime::ZERO,
            reason: RejectReason::QueueFull,
        });
        assert_eq!(r.offered_jobs(), 5);
        assert_eq!(r.shed_jobs(), 1, "QueueFull is backpressure, not shedding");
        assert!((r.slo_attainment() - 0.4).abs() < 1e-12);
        assert!(r.jobs_per_sec() > 0.0);
        assert!(r.goodput_per_sec() < r.jobs_per_sec());
        assert_eq!(report(vec![]).jobs_per_sec(), 0.0, "zero-jobs guard");
        assert_eq!(report(vec![]).goodput_per_sec(), 0.0);
        assert_eq!(report(vec![]).slo_attainment(), 1.0);
    }

    #[test]
    fn mean_fleet_size_is_time_weighted() {
        let mut r = report(vec![outcome(0, 0, 1000, 100)]);
        // 4 GPUs for the first quarter, 8 for the rest: mean 7.
        r.fleet_size = vec![
            (SimTime::ZERO, 4),
            (SimTime::ZERO + SimDuration::from_millis(25), 8),
        ];
        assert!((r.mean_fleet_size() - 7.0).abs() < 1e-9);
        // No samples → 0; zero-duration run falls back to the last sample.
        assert_eq!(report(vec![]).mean_fleet_size(), 0.0);
        let mut z = report(vec![]);
        z.fleet_size = vec![(SimTime::ZERO, 4)];
        assert_eq!(z.mean_fleet_size(), 4.0);
    }

    #[test]
    fn fair_share_error_measures_key_share_deviation() {
        // Tenant 0 got 3×, tenant 1 got 1× with equal weights: shares are
        // 0.75/0.25 against targets 0.5/0.5 → error 0.25.
        let r = report(vec![outcome(0, 0, 3000, 1), outcome(1, 1, 1000, 1)]);
        assert!((r.fair_share_error() - 0.25).abs() < 1e-12);
        let fair = report(vec![outcome(0, 0, 1000, 1), outcome(1, 1, 1000, 1)]);
        assert_eq!(fair.fair_share_error(), 0.0);
        assert_eq!(report(vec![]).fair_share_error(), 0.0);
    }

    #[test]
    fn tenant_stats_cover_weighted_but_idle_tenants() {
        let r = report(vec![outcome(0, 0, 1000, 4)]);
        let stats = r.tenant_stats();
        assert_eq!(stats.len(), 2);
        assert_eq!(stats[0].jobs, 1);
        assert_eq!(stats[0].mean_latency, SimDuration::from_millis(4));
        assert_eq!(stats[1].jobs, 0, "tenant 1 has a weight but no jobs");
        assert_eq!(r.total_keys(), 1000);
        assert!(r.all_validated());
        assert!(r.summary().contains("1 jobs"));
    }

    #[test]
    fn zero_duration_run_reports_finite_throughput() {
        let r = report(vec![]);
        assert_eq!(r.throughput_mkeys(), 0.0);
        assert!(r.throughput_mkeys().is_finite());
    }

    #[test]
    fn push_step_dedupes_levels_and_instants() {
        let t = |ms| SimTime::ZERO + SimDuration::from_millis(ms);
        let mut log = Vec::new();
        push_step(&mut log, t(0), 2);
        push_step(&mut log, t(1), 2); // no change → dropped
        push_step(&mut log, t(2), 5);
        push_step(&mut log, t(2), 7); // same instant → overwritten
        push_step(&mut log, t(3), 7); // no change → dropped
        assert_eq!(log, vec![(t(0), 2), (t(2), 7)]);
        // A → B → A within one instant leaves the level at A with no
        // sample: the step function never changed.
        let mut bounce = vec![(t(0), 2)];
        push_step(&mut bounce, t(4), 9);
        push_step(&mut bounce, t(4), 2);
        assert_eq!(bounce, vec![(t(0), 2)]);
        // A fresh log records its first sample whatever it is.
        let mut fresh = Vec::new();
        push_step(&mut fresh, t(0), 0);
        assert_eq!(fresh, vec![(t(0), 0)]);
    }
}
