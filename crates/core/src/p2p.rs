//! P2P sort: the GPU-only multi-GPU sorting algorithm (Sections 5.2, 5.4).
//!
//! Phase 1 distributes one chunk per GPU and sorts it locally with the
//! fastest single-GPU primitive. Phase 2 merges the chunks *on the GPUs*
//! through a series of merge stages (paper Algorithm 2, generalized to any
//! `g = 2^k`): each stage selects a leftmost pivot over the two sorted
//! half-concatenations, swaps the pivot-determined blocks between GPU
//! pairs over the P2P interconnects (out-of-place, overlapped with the
//! device-local copies of the kept regions), and re-merges the affected
//! chunks locally. Finally all chunks copy back to the host.
//!
//! The recursion is executed level by level: all merge groups at the same
//! recursion depth run concurrently (they occupy disjoint GPU subsets),
//! with a host synchronization between levels — which is where the real
//! implementation also reads device memory to select the next pivots.
//!
//! The sort itself lives in [`P2pDriver`], a resumable
//! [`SortDriver`](crate::exec::SortDriver) whose states are exactly the
//! host-synchronization points above; [`p2p_sort`] is the classic
//! single-job entry point that drives it to completion on a private
//! system. A scheduler can instead interleave many drivers on one shared
//! [`GpuSystem`] so their transfers contend on the same links.

use crate::exec::{DriverStep, SortDriver};
use crate::gpuset::default_gpu_set;
use crate::pivot::{select_pivot, swap_plan, ConcatView, SwapPlan};
use crate::report::{PhaseBreakdown, SortReport};
use msort_data::{is_sorted, SortKey};
use msort_gpu::{BufId, Fidelity, GpuSystem, OpId, Phase, StreamId};
use msort_sim::{FaultPlan, GpuSortAlgo, SimDuration, SimTime};
use msort_topology::{Endpoint, Platform, Route};

/// Configuration for [`p2p_sort`].
#[derive(Debug, Clone)]
pub struct P2pConfig {
    /// Number of GPUs (`2^k`); the set/order comes from
    /// [`default_gpu_set`] unless [`P2pConfig::gpu_order`] is set.
    pub gpus: usize,
    /// Explicit ordered GPU set (overrides the default; used by the
    /// set-order ablation).
    pub gpu_order: Option<Vec<usize>>,
    /// Single-GPU sorting primitive for the local sort phase.
    pub algo: GpuSortAlgo,
    /// Simulation fidelity.
    pub fidelity: Fidelity,
    /// Multi-hop P2P routing (paper Section 7, future work): when a swap's
    /// direct route would traverse the host side, relay it through an
    /// intermediate GPU instead if some relay offers a higher single-flow
    /// rate (e.g. over the DELTA D22x's NVLink ring).
    pub multi_hop: bool,
    /// Scheduled link faults to inject (empty: pristine fabric, and the
    /// simulation is bit-identical to a build without fault support).
    pub faults: FaultPlan,
    /// NUMA socket whose host memory stages the input and output (0 on
    /// single-node platforms; the cross-node driver points each inner sort
    /// at its node's home socket).
    pub home_socket: usize,
}

impl P2pConfig {
    /// Default configuration for `gpus` GPUs: Thrust-like local sort at
    /// full fidelity.
    #[must_use]
    pub fn new(gpus: usize) -> Self {
        Self {
            gpus,
            gpu_order: None,
            algo: GpuSortAlgo::ThrustLike,
            fidelity: Fidelity::Full,
            multi_hop: false,
            faults: FaultPlan::new(),
            home_socket: 0,
        }
    }

    /// Use sampled fidelity with the given factor.
    #[must_use]
    pub fn sampled(mut self, scale: u64) -> Self {
        self.fidelity = Fidelity::Sampled { scale };
        self
    }

    /// Use an explicit ordered GPU set.
    #[must_use]
    pub fn with_order(mut self, order: Vec<usize>) -> Self {
        self.gpu_order = Some(order);
        self
    }

    /// Enable multi-hop P2P routing.
    #[must_use]
    pub fn with_multi_hop(mut self) -> Self {
        self.multi_hop = true;
        self
    }

    /// Inject the given fault schedule.
    #[deprecated(note = "configure faults on the shared RunConfig \
                         (msort_core::RunConfig::p2p(config).with_faults(plan)) instead")]
    #[must_use]
    pub fn with_faults(mut self, faults: FaultPlan) -> Self {
        self.faults = faults;
        self
    }
    /// Stage host buffers on `socket` instead of socket 0.
    #[must_use]
    pub fn with_home_socket(mut self, socket: usize) -> Self {
        self.home_socket = socket;
        self
    }
}

/// The best P2P route from GPU `a` to GPU `b`: the direct route, or — with
/// `multi_hop` — the single-relay route with the highest single-flow rate
/// when that beats the direct path. Returns the route and its estimated
/// single-flow rate in bytes/s.
#[must_use]
pub fn best_p2p_route(platform: &Platform, a: usize, b: usize, multi_hop: bool) -> (Route, f64) {
    let rate_of = |route: &Route| -> f64 {
        msort_topology::allocate_rates(platform.constraint_table(), &[platform.flow_request(route)])
            [0]
    };
    let direct =
        msort_topology::route::route(&platform.topology, Endpoint::gpu(a), Endpoint::gpu(b))
            .expect("platforms are connected");
    let mut best_rate = rate_of(&direct);
    let mut best = direct;
    if multi_hop {
        for via in 0..platform.topology.gpu_count() {
            if let Some(relay) = msort_topology::route::route_via(
                &platform.topology,
                Endpoint::gpu(a),
                Endpoint::gpu(b),
                via,
            ) {
                let rate = rate_of(&relay);
                if rate > best_rate {
                    best_rate = rate;
                    best = relay;
                }
            }
        }
    }
    (best, best_rate)
}

/// Per-GPU buffer state: which buffer currently holds the chunk and which
/// is the auxiliary (they swap roles after a full-chunk exchange, like the
/// pointer swap in the real implementation).
struct ChunkBufs {
    primary: BufId,
    aux: BufId,
}

/// Where the driver is in the P2P sort's phase sequence.
enum P2pState {
    /// Nothing enqueued yet.
    Start,
    /// Phase 1 drained; merge levels `0..idx` drained, level `idx` next
    /// (when `idx == levels.len()`, the gather is next).
    Merging(usize),
    /// Gather enqueued; next step reads the output.
    Gathering,
    /// Output taken from the host buffer; nothing left to do.
    Finished,
}

/// P2P sort as a resumable [`SortDriver`]: each [`P2pDriver::step`]
/// enqueues one phase (scatter+sort, one merge level, or the gather) onto
/// the caller's [`GpuSystem`] and returns the ops to await.
///
/// Construction allocates every buffer the sort needs (the paper excludes
/// allocation from the timed region); timing starts at the first `step`.
pub struct P2pDriver<K: SortKey> {
    order: Vec<usize>,
    algo: GpuSortAlgo,
    multi_hop: bool,
    logical_len: u64,
    chunk: u64,
    scale: u64,
    host_in: BufId,
    host_out: BufId,
    bufs: Vec<ChunkBufs>,
    copy_in: Vec<StreamId>,
    copy_out: Vec<StreamId>,
    compute: Vec<StreamId>,
    host_stream: StreamId,
    levels: Vec<Vec<(usize, usize)>>,
    state: P2pState,
    t0: SimTime,
    t_sorted: SimTime,
    t_merged: SimTime,
    t_end: SimTime,
    htod_ops: Vec<OpId>,
    sort_ops: Vec<OpId>,
    swapped_keys: u64,
    reroutes_at_start: u64,
    output: Option<Vec<K>>,
    validated: bool,
    released: bool,
}

impl<K: SortKey> P2pDriver<K> {
    /// Prepare a P2P sort of `data` (a physical payload representing
    /// `logical_len` keys) on `sys`: import the input, pre-allocate the
    /// per-GPU chunk + auxiliary buffers, and create the streams.
    ///
    /// # Panics
    /// Panics if `logical_len` is not divisible by `gpus × scale`, if the
    /// per-GPU chunk (plus its auxiliary buffer) exceeds device memory, or
    /// if `config.fidelity` disagrees with the system's fidelity.
    pub fn new(
        sys: &mut GpuSystem<'_, K>,
        config: &P2pConfig,
        data: Vec<K>,
        logical_len: u64,
    ) -> Self {
        let g = config.gpus;
        let order = config
            .gpu_order
            .clone()
            .unwrap_or_else(|| default_gpu_set(sys.platform(), g));
        assert_eq!(order.len(), g, "gpu_order must list exactly `gpus` GPUs");
        let scale = config.fidelity.scale();
        assert_eq!(
            scale,
            sys.world().scale(),
            "driver fidelity must match the system's"
        );
        assert!(
            logical_len.is_multiple_of(g as u64 * scale),
            "input length must divide evenly into {g} chunks of whole samples"
        );
        let chunk = logical_len / g as u64;

        let home = config.home_socket;
        let host_in = sys.world_mut().import_host(home, data, logical_len);
        let host_out = sys.world_mut().alloc_host(home, logical_len);

        // Pre-allocate chunk + auxiliary buffers (the paper excludes
        // allocation from the timed region, and so do we).
        let bufs: Vec<ChunkBufs> = order
            .iter()
            .map(|&gpu| ChunkBufs {
                primary: sys.world_mut().alloc_gpu(gpu, chunk),
                aux: sys.world_mut().alloc_gpu(gpu, chunk),
            })
            .collect();
        // One copy stream per direction and one compute stream per GPU,
        // plus a host stream for pivot-selection latency.
        let copy_in: Vec<_> = (0..g).map(|_| sys.stream()).collect();
        let copy_out: Vec<_> = (0..g).map(|_| sys.stream()).collect();
        let compute: Vec<_> = (0..g).map(|_| sys.stream()).collect();
        let host_stream = sys.stream();

        Self {
            order,
            algo: config.algo,
            multi_hop: config.multi_hop,
            logical_len,
            chunk,
            scale,
            host_in,
            host_out,
            bufs,
            copy_in,
            copy_out,
            compute,
            host_stream,
            levels: merge_levels(g),
            state: P2pState::Start,
            t0: SimTime::ZERO,
            t_sorted: SimTime::ZERO,
            t_merged: SimTime::ZERO,
            t_end: SimTime::ZERO,
            htod_ops: Vec::with_capacity(g),
            sort_ops: Vec::with_capacity(g),
            swapped_keys: 0,
            reroutes_at_start: sys.rerouted_transfers(),
            output: None,
            validated: false,
            released: false,
        }
    }

    /// Total device memory (in physical keys) this sort occupies per GPU.
    #[must_use]
    pub fn device_keys_per_gpu(&self) -> u64 {
        2 * self.chunk / self.scale
    }
}

impl<K: SortKey> SortDriver<K> for P2pDriver<K> {
    fn step(&mut self, sys: &mut GpuSystem<'_, K>) -> DriverStep {
        let g = self.order.len();
        match self.state {
            P2pState::Start => {
                // ---- Phase 1: scatter + local sort. ----
                self.t0 = sys.now();
                let mut wait = Vec::with_capacity(g);
                for i in 0..g {
                    let up = sys.memcpy(
                        self.copy_in[i],
                        self.host_in,
                        i as u64 * self.chunk,
                        self.bufs[i].primary,
                        0,
                        self.chunk,
                        &[],
                        Phase::HtoD,
                    );
                    let so = sys.gpu_sort(
                        self.compute[i],
                        self.algo,
                        self.bufs[i].primary,
                        (0, self.chunk),
                        self.bufs[i].aux,
                        &[up],
                    );
                    self.htod_ops.push(up);
                    self.sort_ops.push(so);
                    wait.push(so);
                }
                self.state = P2pState::Merging(0);
                DriverStep::Wait(wait)
            }
            P2pState::Merging(idx) => {
                if idx == 0 {
                    self.t_sorted = sys.now();
                }
                if idx == self.levels.len() {
                    // ---- Phase 3: gather. ----
                    self.t_merged = sys.now();
                    let mut wait = Vec::with_capacity(g);
                    for i in 0..g {
                        wait.push(sys.memcpy(
                            self.copy_out[i],
                            self.bufs[i].primary,
                            0,
                            self.host_out,
                            i as u64 * self.chunk,
                            self.chunk,
                            &[],
                            Phase::DtoH,
                        ));
                    }
                    self.state = P2pState::Gathering;
                    return DriverStep::Wait(wait);
                }
                // ---- Phase 2: one merge level. All groups in a level
                // touch disjoint GPU subsets; pivots are selected from
                // current device data (the previous level fully drained).
                let mut wait = Vec::new();
                let mut planned: Vec<(usize, SwapPlan)> = Vec::new();
                for &(start, len) in &self.levels[idx] {
                    let plan = plan_group(sys, &self.bufs, start, len, self.chunk);
                    self.swapped_keys += plan.transferred_keys() as u64 * self.scale;
                    planned.push((start, plan));
                }
                for (start, plan) in planned {
                    enqueue_group(
                        sys,
                        &self.order,
                        &mut self.bufs,
                        start,
                        &plan,
                        self.host_stream,
                        &self.compute,
                        self.multi_hop,
                        &mut wait,
                    );
                }
                self.state = P2pState::Merging(idx + 1);
                DriverStep::Wait(wait)
            }
            P2pState::Gathering => {
                self.t_end = sys.now();
                let output = sys.world().buffer(self.host_out).data.clone();
                self.validated = is_sorted(&output);
                self.output = Some(output);
                self.state = P2pState::Finished;
                DriverStep::Done
            }
            P2pState::Finished => DriverStep::Done,
        }
    }

    fn take_output(&mut self) -> Vec<K> {
        self.output.take().expect("P2P sort has not finished")
    }

    fn validated(&self) -> bool {
        self.validated
    }

    fn release(&mut self, sys: &mut GpuSystem<'_, K>) {
        if self.released {
            return;
        }
        self.released = true;
        sys.world_mut().free(self.host_in);
        sys.world_mut().free(self.host_out);
        for b in &self.bufs {
            sys.world_mut().free(b.primary);
            sys.world_mut().free(b.aux);
        }
    }

    fn report(&self, sys: &GpuSystem<'_, K>) -> SortReport {
        // In-core P2P sort has strictly sequential phases; within phase 1
        // the HtoD copies and sorts overlap per GPU, so attribute by busy
        // time (this job's own ops — the system may be shared).
        let htod_busy = sys.ops_busy(&self.htod_ops);
        let sort_busy = sys.ops_busy(&self.sort_ops);
        let (htod, sort) = split_overlapped(self.t_sorted.since(self.t0), htod_busy, sort_busy);
        SortReport {
            algorithm: "P2P sort".into(),
            platform: sys.platform().id.name().into(),
            gpus: self.order.clone(),
            keys: self.logical_len,
            bytes: self.logical_len * K::DATA_TYPE.key_bytes(),
            total: self.t_end.since(self.t0),
            phases: PhaseBreakdown {
                htod,
                sort,
                merge: self.t_merged.since(self.t_sorted),
                dtoh: self.t_end.since(self.t_merged),
            },
            validated: self.validated,
            p2p_swapped_keys: self.swapped_keys,
            rerouted_transfers: sys.rerouted_transfers() - self.reroutes_at_start,
            max_partition_keys: 0,
            inter_node: SimDuration::ZERO,
        }
    }
}

/// Sort `data` (a physical payload representing `logical_len` keys) on
/// `platform` with P2P sort and return the report. The sorted output is
/// written back into `data`.
///
/// # Panics
/// Panics if `logical_len` is not divisible by `gpus × scale`, if the
/// per-GPU chunk (plus its auxiliary buffer) exceeds device memory, or if
/// the GPU count is not a power of two.
pub fn p2p_sort<K: SortKey>(
    platform: &Platform,
    config: &P2pConfig,
    data: &mut Vec<K>,
    logical_len: u64,
) -> SortReport {
    // The shared RunConfig path builds the system (fidelity + faults +
    // recorder) and drives the P2pDriver to completion.
    crate::run::run_sort(
        platform,
        &crate::run::RunConfig::p2p(config.clone()),
        data,
        logical_len,
    )
}

/// Split an overlapped window between two phases proportionally to their
/// busy times (the first phase gets the leftover rounding).
pub(crate) fn split_overlapped(
    total: msort_sim::SimDuration,
    busy_a: msort_sim::SimDuration,
    busy_b: msort_sim::SimDuration,
) -> (msort_sim::SimDuration, msort_sim::SimDuration) {
    let denom = busy_a.0 + busy_b.0;
    if denom == 0 {
        return (total, msort_sim::SimDuration::ZERO);
    }
    let a = msort_sim::SimDuration(
        (u128::from(total.0) * u128::from(busy_a.0) / u128::from(denom)) as u64,
    );
    (a, msort_sim::SimDuration(total.0 - a.0))
}

/// The merge levels for `g = 2^k` chunks: each level is a list of
/// `(start, len)` groups over the ordered GPU set, executed concurrently.
/// Levels follow Algorithm 2 unrolled breadth-first: `g - 1` levels total.
fn merge_levels(g: usize) -> Vec<Vec<(usize, usize)>> {
    fn levels_for(start: usize, g: usize) -> Vec<Vec<(usize, usize)>> {
        if g < 2 {
            return Vec::new();
        }
        if g == 2 {
            return vec![vec![(start, 2)]];
        }
        let half = levels_for(start, g / 2)
            .into_iter()
            .zip(levels_for(start + g / 2, g / 2))
            .map(|(mut l, r)| {
                l.extend(r);
                l
            })
            .collect::<Vec<_>>();
        let mut out = half.clone();
        out.push(vec![(start, g)]);
        out.extend(half);
        out
    }
    levels_for(0, g)
}

/// Select the pivot for the group of chunks `start..start+len` and derive
/// its swap plan. Physical data; returns a plan in physical key units.
fn plan_group<K: SortKey>(
    sys: &GpuSystem<'_, K>,
    bufs: &[ChunkBufs],
    start: usize,
    len: usize,
    chunk: u64,
) -> SwapPlan {
    let half = len / 2;
    let a_view = ConcatView::new(
        (start..start + half)
            .map(|i| sys.world().slice(bufs[i].primary, 0, chunk))
            .collect(),
    );
    let b_view = ConcatView::new(
        (start + half..start + len)
            .map(|i| sys.world().slice(bufs[i].primary, 0, chunk))
            .collect(),
    );
    debug_assert!(a_view.is_sorted(), "A half must be sorted before a stage");
    debug_assert!(b_view.is_sorted(), "B half must be sorted before a stage");
    let pivot = select_pivot(&a_view, &b_view);
    let chunk_phys = a_view.len() / half;
    swap_plan(half, chunk_phys, pivot)
}

/// Enqueue one merge group's swap + local merges, pushing every enqueued
/// op into `out_ops`. `plan` is in physical units; all runtime calls use
/// logical units (scaled back up).
#[allow(clippy::too_many_arguments)] // one call site; splitting obscures the stage structure
fn enqueue_group<K: SortKey>(
    sys: &mut GpuSystem<'_, K>,
    order: &[usize],
    bufs: &mut [ChunkBufs],
    start: usize,
    plan: &SwapPlan,
    host_stream: msort_gpu::StreamId,
    compute: &[msort_gpu::StreamId],
    multi_hop: bool,
    out_ops: &mut Vec<OpId>,
) {
    let scale = sys.world().scale();
    if plan.swaps.is_empty() {
        // Leftmost-pivot optimization: nothing to exchange; we still pay
        // the (tiny) pivot-selection latency.
        let d = sys
            .cost_model()
            .pivot_selection(plan.chunk_len as u64 * scale);
        out_ops.push(sys.delay(host_stream, d, &[], Phase::Merge));
        return;
    }
    let chunk = plan.chunk_len as u64 * scale;
    let group_len = 2 * plan.half;

    // Pivot-selection latency gates the whole group.
    let pd = sys.cost_model().pivot_selection(chunk);
    let pivot_op = sys.delay(host_stream, pd, &[], Phase::Merge);
    out_ops.push(pivot_op);

    // Transfer streams are created per group per stage — cheap, and it
    // mirrors how the real implementation launches one cudaMemcpyPeerAsync
    // per block on its own stream.
    // Received blocks land in each chunk's aux buffer after its kept
    // region; full-chunk receivers get the whole aux buffer.
    let mut recv_deps: Vec<Vec<OpId>> = vec![Vec::new(); group_len];
    let mut recv_cursor: Vec<u64> = (0..group_len)
        .map(|c| {
            let (kept, _) = plan.chunk_exchange(c);
            kept as u64 * scale
        })
        .collect();

    // Kept-region device-local copies (run concurrently with P2P).
    #[allow(clippy::needless_range_loop)] // c indexes the plan, deps, and bufs together
    for c in 0..group_len {
        let (kept, recv) = plan.chunk_exchange(c);
        if recv == 0 {
            continue; // untouched chunk
        }
        let kept = kept as u64 * scale;
        if kept > 0 {
            let gi = start + c;
            // The kept region of an A-side chunk is its prefix; of a
            // B-side chunk its suffix. Both land at the front of aux so
            // aux always holds [kept | received].
            let src_off = if c < plan.half { 0 } else { chunk - kept };
            let s = sys.stream();
            let op = sys.memcpy(
                s,
                bufs[gi].primary,
                src_off,
                bufs[gi].aux,
                0,
                kept,
                &[pivot_op],
                Phase::Merge,
            );
            recv_deps[c].push(op);
            out_ops.push(op);
        }
    }

    // P2P block exchanges (both directions of each pair, concurrently).
    // With multi-hop routing enabled, each direction takes the best relay
    // route when it beats the direct path (paper Section 7).
    for swap in &plan.swaps {
        let (ac, bc) = (swap.a_chunk, swap.b_chunk);
        let (a_gi, b_gi) = (start + ac, start + bc);
        let (a_gpu, b_gpu) = (order[a_gi], order[b_gi]);
        let len = swap.len as u64 * scale;
        let a_off = swap.a_off as u64 * scale;
        let b_off = swap.b_off as u64 * scale;
        // A's block -> B's aux.
        let sa = sys.stream();
        let (route_ab, _) = best_p2p_route(sys.platform(), a_gpu, b_gpu, multi_hop);
        let to_b = sys.memcpy_route(
            sa,
            route_ab,
            bufs[a_gi].primary,
            a_off,
            bufs[b_gi].aux,
            recv_cursor[bc],
            len,
            &[pivot_op],
            Phase::Merge,
        );
        recv_cursor[bc] += len;
        recv_deps[bc].push(to_b);
        out_ops.push(to_b);
        // B's block -> A's aux.
        let sb = sys.stream();
        let (route_ba, _) = best_p2p_route(sys.platform(), b_gpu, a_gpu, multi_hop);
        let to_a = sys.memcpy_route(
            sb,
            route_ba,
            bufs[b_gi].primary,
            b_off,
            bufs[a_gi].aux,
            recv_cursor[ac],
            len,
            &[pivot_op],
            Phase::Merge,
        );
        recv_cursor[ac] += len;
        recv_deps[ac].push(to_a);
        out_ops.push(to_a);
    }

    // Local merges (two sorted runs in aux -> primary), or a buffer-role
    // swap when the chunk was exchanged whole (single run, already sorted).
    #[allow(clippy::needless_range_loop)] // c indexes the plan, deps, and bufs together
    for c in 0..group_len {
        let (kept, recv) = plan.chunk_exchange(c);
        if recv == 0 {
            continue;
        }
        let gi = start + c;
        if kept == 0 {
            // Whole chunk replaced: aux holds one sorted run. Swap roles —
            // the zero-cost pointer swap of the real implementation. The
            // enqueued ops already reference the right BufIds, and the
            // role swap only affects *future* stages, which are enqueued
            // after the level fully drains.
            std::mem::swap(&mut bufs[gi].primary, &mut bufs[gi].aux);
            continue;
        }
        let mid = kept as u64 * scale;
        let mo = sys.gpu_merge_into(
            compute[gi],
            bufs[gi].aux,
            mid,
            chunk,
            bufs[gi].primary,
            &recv_deps[c],
        );
        out_ops.push(mo);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use msort_data::{generate, same_multiset, validate_sort, Distribution};
    use msort_topology::PlatformId;

    fn run(
        platform: &Platform,
        gpus: usize,
        dist: Distribution,
        n: u64,
        seed: u64,
    ) -> (SortReport, Vec<u32>, Vec<u32>) {
        let input: Vec<u32> = generate(dist, n as usize, seed);
        let mut data = input.clone();
        let report = p2p_sort(platform, &P2pConfig::new(gpus), &mut data, n);
        (report, input, data)
    }

    #[test]
    fn sorts_on_two_gpus_all_distributions() {
        let p = Platform::ibm_ac922();
        for dist in Distribution::paper_set() {
            let (report, input, output) = run(&p, 2, dist, 1 << 14, 42);
            assert!(report.validated, "{dist:?}");
            assert!(same_multiset(&input, &output), "{dist:?}");
        }
    }

    #[test]
    fn sorts_on_four_gpus_all_platforms() {
        for id in PlatformId::paper_set() {
            let p = Platform::paper(id);
            let (report, input, output) = run(&p, 4, Distribution::Uniform, 1 << 14, 7);
            assert!(report.validated, "{id:?}");
            assert!(validate_sort(&input, &output).is_valid(), "{id:?}");
            assert_eq!(report.gpus.len(), 4);
        }
    }

    #[test]
    fn sorts_on_eight_gpus_dgx() {
        let p = Platform::dgx_a100();
        let (report, input, output) = run(&p, 8, Distribution::Uniform, 1 << 15, 3);
        assert!(report.validated);
        assert!(same_multiset(&input, &output));
        assert!(report.total > msort_sim::SimDuration::ZERO + SimTime::ZERO.since(SimTime::ZERO));
    }

    #[test]
    fn single_gpu_degenerates_to_local_sort() {
        let p = Platform::dgx_a100();
        let (report, input, output) = run(&p, 1, Distribution::Normal, 1 << 12, 9);
        assert!(report.validated);
        assert!(same_multiset(&input, &output));
        assert_eq!(report.p2p_swapped_keys, 0);
        assert_eq!(report.phases.merge, msort_sim::SimDuration::ZERO);
    }

    #[test]
    fn sorted_input_skips_all_swaps() {
        let p = Platform::ibm_ac922();
        let (report, _, _) = run(&p, 4, Distribution::Sorted, 1 << 14, 5);
        assert_eq!(report.p2p_swapped_keys, 0, "leftmost pivot must skip swaps");
    }

    #[test]
    fn reverse_sorted_maximizes_swaps() {
        let p = Platform::ibm_ac922();
        let n = 1u64 << 14;
        let (rev, _, _) = run(&p, 2, Distribution::ReverseSorted, n, 5);
        let (uni, _, _) = run(&p, 2, Distribution::Uniform, n, 5);
        // Reverse-sorted: the leaf merge swaps the full half (n/2 keys each
        // way). Uniform swaps about half that.
        assert_eq!(rev.p2p_swapped_keys, n);
        assert!(uni.p2p_swapped_keys < rev.p2p_swapped_keys);
        assert!(rev.total > uni.total, "more swaps must cost more time");
    }

    #[test]
    fn merge_levels_structure() {
        assert_eq!(merge_levels(2), vec![vec![(0, 2)]]);
        assert_eq!(
            merge_levels(4),
            vec![vec![(0, 2), (2, 2)], vec![(0, 4)], vec![(0, 2), (2, 2)],]
        );
        let l8 = merge_levels(8);
        assert_eq!(l8.len(), 7);
        assert_eq!(l8[3], vec![(0, 8)]);
        assert_eq!(l8[0].len(), 4);
    }

    #[test]
    fn sampled_fidelity_matches_full_timing() {
        let p = Platform::dgx_a100();
        let n = 1u64 << 16;
        // Same logical workload, sorted input so pivots are identical (0)
        // regardless of sampling.
        let full_in: Vec<u32> = generate(Distribution::Sorted, n as usize, 4);
        let mut full = full_in.clone();
        let r_full = p2p_sort(&p, &P2pConfig::new(4), &mut full, n);
        let sample: Vec<u32> = generate(Distribution::Sorted, (n / 16) as usize, 4);
        let mut s = sample;
        let r_sampled = p2p_sort(&p, &P2pConfig::new(4).sampled(16), &mut s, n);
        assert_eq!(r_full.total, r_sampled.total);
        assert!(r_sampled.validated);
    }

    #[test]
    fn sixty_four_bit_keys_sort() {
        let p = Platform::ibm_ac922();
        let input: Vec<u64> = generate(Distribution::Uniform, 1 << 13, 8);
        let mut data = input.clone();
        let report = p2p_sort(&p, &P2pConfig::new(2), &mut data, 1 << 13);
        assert!(report.validated);
        assert!(same_multiset(&input, &data));
    }

    #[test]
    fn explicit_gpu_order_is_respected() {
        let p = Platform::ibm_ac922();
        let input: Vec<u32> = generate(Distribution::Uniform, 1 << 14, 2);
        let mut data = input.clone();
        let cfg = P2pConfig::new(4).with_order(vec![0, 2, 1, 3]);
        let report = p2p_sort(&p, &cfg, &mut data, 1 << 14);
        assert!(report.validated);
        assert_eq!(report.gpus, vec![0, 2, 1, 3]);
    }

    #[test]
    fn multi_hop_helps_on_the_delta_ring() {
        // Section 7: on the DELTA, the global merge stage's 0<->3 and
        // 1<->2 swaps can relay over the NVLink ring instead of crossing
        // PCIe 3.0 twice through the host.
        let p = Platform::delta_d22x();
        let (direct, rate_direct) = best_p2p_route(&p, 0, 3, false);
        let (relayed, rate_relay) = best_p2p_route(&p, 0, 3, true);
        assert!(direct.traverses_host(&p.topology));
        assert!(!relayed.traverses_host(&p.topology));
        assert!(
            rate_relay > rate_direct * 2.0,
            "{rate_relay} vs {rate_direct}"
        );

        let scale = 1u64 << 14;
        let n = 1_000_000_000u64 / (scale * 16) * (scale * 16);
        let input: Vec<u32> = generate(Distribution::Uniform, (n / scale) as usize, 21);
        let mut a = input.clone();
        let base = p2p_sort(
            &p,
            &P2pConfig {
                fidelity: Fidelity::Sampled { scale },
                ..P2pConfig::new(4)
            },
            &mut a,
            n,
        );
        let mut b = input.clone();
        let hopped = p2p_sort(
            &p,
            &P2pConfig {
                fidelity: Fidelity::Sampled { scale },
                ..P2pConfig::new(4)
            }
            .with_multi_hop(),
            &mut b,
            n,
        );
        assert_eq!(a, b);
        assert!(
            hopped.total < base.total,
            "multi-hop {} should beat host-traversing {}",
            hopped.total,
            base.total
        );
        assert!(hopped.validated);
    }

    #[test]
    fn multi_hop_is_noop_on_nvswitch() {
        // Every DGX pair is directly connected at full rate: relays never
        // win, so results and timings are identical.
        let p = Platform::dgx_a100();
        let (direct, r1) = best_p2p_route(&p, 0, 7, false);
        let (best, r2) = best_p2p_route(&p, 0, 7, true);
        assert_eq!(direct, best);
        assert_eq!(r1, r2);
    }

    #[test]
    fn bad_order_is_slower_on_ac922() {
        // The Section 5.4 claim end-to-end: (0,1,2,3) beats (0,2,1,3).
        let p = Platform::ibm_ac922();
        let n = 1u64 << 16;
        let input: Vec<u32> = generate(Distribution::Uniform, n as usize, 2);
        let mut a = input.clone();
        let good = p2p_sort(&p, &P2pConfig::new(4), &mut a, n);
        let mut b = input.clone();
        let bad = p2p_sort(
            &p,
            &P2pConfig::new(4).with_order(vec![0, 2, 1, 3]),
            &mut b,
            n,
        );
        assert!(good.total < bad.total, "{} !< {}", good.total, bad.total);
        assert_eq!(a, b);
    }

    #[test]
    fn driver_release_returns_all_device_memory() {
        let p = Platform::ibm_ac922();
        let mut sys: GpuSystem<'_, u32> = GpuSystem::new(&p, Fidelity::Full);
        let free_before: Vec<u64> = (0..4).map(|g| sys.world().gpu_free_bytes(g)).collect();
        let input: Vec<u32> = generate(Distribution::Uniform, 1 << 12, 11);
        let mut d = P2pDriver::new(&mut sys, &P2pConfig::new(4), input, 1 << 12);
        assert!((0..4).any(|g| sys.world().gpu_free_bytes(g) < free_before[g]));
        crate::exec::drive(&mut sys, &mut d);
        assert!(d.validated());
        d.release(&mut sys);
        let after: Vec<u64> = (0..4).map(|g| sys.world().gpu_free_bytes(g)).collect();
        assert_eq!(free_before, after, "release must free all device memory");
    }
}
