//! GPU set selection and ordering (paper Section 5.4).
//!
//! Choosing *which* GPUs to use, and in *which order* they pair across
//! merge stages, changes the sort duration: on the AC922 the pair-wise
//! merges should happen between NVLink-connected GPUs (set order
//! (0,1,2,3)), while on the DGX A100 the CPU-GPU transfers prefer GPUs on
//! distinct PCIe switches (GPU pair (0,2) over (0,1)).
//!
//! The ordering convention matches the paper: for an ordered set
//! `(i, j, k, l)`, pairs `(i,j)` and `(k,l)` merge in the pair-wise stages
//! and the global stage swaps between `(i,l)` and `(j,k)`.
//!
//! Besides the hard-coded per-platform defaults, [`score_gpu_set`]
//! evaluates a candidate ordering by simulating its transfer pattern,
//! which the set-order ablation uses and which makes the selection work
//! for custom platforms too.

use msort_sim::flows::measure_concurrent;
use msort_topology::{Endpoint, Platform, PlatformId};

/// The paper's GPU set choice for `g` GPUs on `platform`, in merge-pairing
/// order.
///
/// # Panics
/// Panics if the platform has fewer than `g` GPUs or `g` is not a power of
/// two.
#[must_use]
pub fn default_gpu_set(platform: &Platform, g: usize) -> Vec<usize> {
    assert!(g.is_power_of_two(), "P2P sort needs g = 2^k GPUs, got {g}");
    assert!(
        g <= platform.gpu_count(),
        "{} has only {} GPUs",
        platform.id.name(),
        platform.gpu_count()
    );
    match (platform.id, g) {
        // DGX A100: spread across PCIe switches (pairs share an uplink).
        (PlatformId::DgxA100, 2) => vec![0, 2],
        (PlatformId::DgxA100, 4) => vec![0, 2, 4, 6],
        // AC922/DELTA: identity order puts the pair-wise merges on the
        // NVLink-connected pairs (0,1) and (2,3).
        _ => (0..g).collect(),
    }
}

/// Simulation-based score (estimated seconds, lower is better) of an
/// ordered GPU set for P2P sort: the makespan of the parallel HtoD copies
/// plus the makespan of the merge-pattern P2P swaps (pair-wise stage and
/// global stage) for `bytes_per_gpu` each.
#[must_use]
pub fn score_gpu_set(platform: &Platform, order: &[usize], bytes_per_gpu: u64) -> f64 {
    let topo = &platform.topology;
    // HtoD makespan for one chunk per GPU.
    let htod: Vec<_> = order
        .iter()
        .map(|&gpu| {
            msort_topology::route::route(topo, Endpoint::HOST0, Endpoint::gpu(gpu))
                .expect("platforms are connected")
        })
        .collect();
    let mut secs = measure_concurrent(platform, &htod, bytes_per_gpu)
        .makespan
        .as_secs_f64();

    // Pair-wise merge stage swaps: (o[2i] <-> o[2i+1]), both directions,
    // half a chunk each way (the uniform-data expectation).
    let mut pairwise = Vec::new();
    for pair in order.chunks(2) {
        if let [a, b] = pair {
            pairwise.push(p2p_route(platform, *a, *b));
            pairwise.push(p2p_route(platform, *b, *a));
        }
    }
    if !pairwise.is_empty() {
        secs += measure_concurrent(platform, &pairwise, bytes_per_gpu / 2)
            .makespan
            .as_secs_f64();
    }

    // Global merge stage swaps for g = 4: (o[0] <-> o[3]) and (o[1] <-> o[2]).
    if order.len() >= 4 {
        let mut global = Vec::new();
        for i in 0..order.len() / 2 {
            let a = order[i];
            let b = order[order.len() - 1 - i];
            global.push(p2p_route(platform, a, b));
            global.push(p2p_route(platform, b, a));
        }
        secs += measure_concurrent(platform, &global, bytes_per_gpu / 2)
            .makespan
            .as_secs_f64();
    }
    secs
}

fn p2p_route(platform: &Platform, a: usize, b: usize) -> msort_topology::Route {
    msort_topology::route::route(&platform.topology, Endpoint::gpu(a), Endpoint::gpu(b))
        .expect("platforms are connected")
}

/// Exhaustively search for the best ordered GPU set for P2P sort on `g`
/// GPUs: every combination of `g` out of the platform's GPUs, and for
/// `g = 4` every distinct merge pairing of the chosen set, scored with
/// [`score_gpu_set`]. This is Section 5.4 turned into a procedure — on
/// the paper platforms it recovers the hand-picked defaults, and on custom
/// topologies it answers the question automatically.
///
/// # Panics
/// Panics if `g` is not a power of two or exceeds the GPU count.
#[must_use]
pub fn search_gpu_set(platform: &Platform, g: usize, bytes_per_gpu: u64) -> Vec<usize> {
    assert!(g.is_power_of_two(), "P2P sort needs g = 2^k GPUs");
    let total = platform.gpu_count();
    assert!(g <= total);
    let mut best: Option<(f64, Vec<usize>)> = None;
    for combo in combinations(total, g) {
        for order in merge_orderings(&combo) {
            let score = score_gpu_set(platform, &order, bytes_per_gpu);
            if best.as_ref().is_none_or(|(s, _)| score < *s) {
                best = Some((score, order));
            }
        }
    }
    best.expect("at least one candidate").1
}

/// All `C(n, k)` combinations of GPU indices, lexicographic.
fn combinations(n: usize, k: usize) -> Vec<Vec<usize>> {
    let mut out = Vec::new();
    let mut current = Vec::with_capacity(k);
    fn rec(start: usize, n: usize, k: usize, current: &mut Vec<usize>, out: &mut Vec<Vec<usize>>) {
        if current.len() == k {
            out.push(current.clone());
            return;
        }
        for i in start..n {
            current.push(i);
            rec(i + 1, n, k, current, out);
            current.pop();
        }
    }
    rec(0, n, k, &mut current, &mut out);
    out
}

/// The distinct merge orderings of one combination. The pairing structure
/// `(a,b,c,d)` is symmetric under swapping within pairs, swapping the pair
/// blocks, and reversing — for 4 GPUs only three materially different
/// pairings exist: (ab|cd), (ac|bd), (ad|bc). For 2 GPUs the order is
/// irrelevant; for 8 GPUs we score the canonical nested orderings obtained
/// by applying the three 4-pairings at the top level (a pragmatic subset
/// of the 105 perfect matchings — exhaustive search over all of them costs
/// more than it buys, since pair-stage locality dominates).
fn merge_orderings(combo: &[usize]) -> Vec<Vec<usize>> {
    match combo.len() {
        0..=2 => vec![combo.to_vec()],
        4 => {
            let (a, b, c, d) = (combo[0], combo[1], combo[2], combo[3]);
            vec![vec![a, b, c, d], vec![a, c, b, d], vec![a, d, b, c]]
        }
        8 => {
            // Three block-level arrangements of the identity order.
            let v = combo.to_vec();
            let mut swapped_mid = v.clone();
            swapped_mid.swap(2, 4);
            swapped_mid.swap(3, 5);
            let mut interleaved = Vec::with_capacity(8);
            for i in 0..4 {
                interleaved.push(combo[i]);
                interleaved.push(combo[i + 4]);
            }
            vec![v, swapped_mid, interleaved]
        }
        _ => vec![combo.to_vec()],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper() {
        assert_eq!(default_gpu_set(&Platform::ibm_ac922(), 4), vec![0, 1, 2, 3]);
        assert_eq!(default_gpu_set(&Platform::dgx_a100(), 2), vec![0, 2]);
        assert_eq!(default_gpu_set(&Platform::dgx_a100(), 4), vec![0, 2, 4, 6]);
        assert_eq!(
            default_gpu_set(&Platform::dgx_a100(), 8),
            (0..8).collect::<Vec<_>>()
        );
    }

    #[test]
    #[should_panic(expected = "2^k")]
    fn non_power_of_two_panics() {
        let _ = default_gpu_set(&Platform::ibm_ac922(), 3);
    }

    #[test]
    fn ac922_identity_beats_interleaved_order() {
        // Section 5.4: (0,1,2,3) outperforms (0,2,1,3) on the AC922
        // because the pair-wise merges stay on NVLink.
        let p = Platform::ibm_ac922();
        let bytes = 1 << 30;
        let good = score_gpu_set(&p, &[0, 1, 2, 3], bytes);
        let bad = score_gpu_set(&p, &[0, 2, 1, 3], bytes);
        assert!(
            good < bad,
            "identity order should win: {good:.4} vs {bad:.4}"
        );
    }

    #[test]
    fn dgx_prefers_switch_spread_pairs() {
        let p = Platform::dgx_a100();
        let bytes = 1 << 30;
        let spread = score_gpu_set(&p, &[0, 2], bytes);
        let shared = score_gpu_set(&p, &[0, 1], bytes);
        assert!(spread < shared, "{spread:.4} vs {shared:.4}");
    }

    #[test]
    fn search_recovers_paper_choices() {
        let bytes = 1u64 << 30;
        // AC922, 4 GPUs: the pair-wise merges must land on the NVLink
        // pairs (0,1) and (2,3) — any ordering with that pairing is
        // equivalent; check the pairing, not the literal order.
        let found = search_gpu_set(&Platform::ibm_ac922(), 4, bytes);
        let pairs: Vec<[usize; 2]> = found
            .chunks(2)
            .map(|c| {
                let mut p = [c[0], c[1]];
                p.sort_unstable();
                p
            })
            .collect();
        assert!(
            pairs.contains(&[0, 1]) && pairs.contains(&[2, 3]),
            "search picked {found:?}"
        );
        // DGX, 2 GPUs: any pair on distinct PCIe switches.
        let found = search_gpu_set(&Platform::dgx_a100(), 2, bytes);
        assert_ne!(found[0] / 2, found[1] / 2, "search picked {found:?}");
    }

    #[test]
    fn combinations_count() {
        assert_eq!(combinations(8, 2).len(), 28);
        assert_eq!(combinations(4, 4).len(), 1);
        assert_eq!(merge_orderings(&[0, 1, 2, 3]).len(), 3);
        assert_eq!(merge_orderings(&[0, 1]).len(), 1);
        assert_eq!(merge_orderings(&[0, 1, 2, 3, 4, 5, 6, 7]).len(), 3);
    }

    #[test]
    fn search_on_custom_platform() {
        // A platform where GPU 0+3 and 1+2 share NVLink: the search must
        // pair them accordingly even though the identity order would not.
        use msort_topology::{gbps, GpuModel, LinkKind, MemSpec, TopologyBuilder};
        let mut b = TopologyBuilder::new();
        let cpu = b.cpu(
            0,
            MemSpec {
                capacity_bytes: 1 << 38,
                read_cap: gbps(100.0),
                write_cap: gbps(100.0),
                combined_cap: None,
            },
        );
        let gpus: Vec<_> = (0..4).map(|i| b.gpu(i, GpuModel::V100)).collect();
        for &g in &gpus {
            b.link(cpu, g, LinkKind::Pcie3, gbps(12.0));
        }
        let nv = LinkKind::NvLink2 { bricks: 3 };
        b.link(gpus[0], gpus[3], nv, gbps(72.0));
        b.link(gpus[1], gpus[2], nv, gbps(72.0));
        let p = Platform::custom(b.build(), msort_topology::platforms::CpuModel::Custom);
        let found = search_gpu_set(&p, 4, 1 << 30);
        let pairs: Vec<[usize; 2]> = found
            .chunks(2)
            .map(|c| {
                let mut q = [c[0], c[1]];
                q.sort_unstable();
                q
            })
            .collect();
        assert!(
            pairs.contains(&[0, 3]) && pairs.contains(&[1, 2]),
            "search picked {found:?}"
        );
    }
}
