//! Per-run reports: end-to-end duration, phase breakdowns, validation.

use msort_sim::SimDuration;

/// The four-phase breakdown of the paper's Figures 12–14.
///
/// For in-core runs the phases are cleanly sequential (a phase ends when
/// the last GPU completes it), so the four durations sum to the end-to-end
/// time. For pipelined large-data runs the phases overlap; the values are
/// then busy-time unions and can sum to more than the total.
#[derive(Debug, Clone, Copy, Default)]
pub struct PhaseBreakdown {
    /// Host-to-device copy time.
    pub htod: SimDuration,
    /// On-GPU sorting time.
    pub sort: SimDuration,
    /// Merge time (P2P swaps + local merges, or CPU multiway merge).
    pub merge: SimDuration,
    /// Device-to-host copy time.
    pub dtoh: SimDuration,
}

impl PhaseBreakdown {
    /// Sum of the four phases.
    #[must_use]
    pub fn sum(&self) -> SimDuration {
        self.htod + self.sort + self.merge + self.dtoh
    }
}

/// Outcome of one simulated sort run.
#[derive(Debug, Clone)]
pub struct SortReport {
    /// Algorithm label ("P2P sort", "HET sort", "PARADIS", ...).
    pub algorithm: String,
    /// Platform name.
    pub platform: String,
    /// GPUs used, in merge-pairing order (empty for CPU-only).
    pub gpus: Vec<usize>,
    /// Logical keys sorted.
    pub keys: u64,
    /// Logical bytes sorted.
    pub bytes: u64,
    /// End-to-end simulated sort duration (includes CPU-GPU transfers,
    /// excludes pre-allocation — the paper's methodology).
    pub total: SimDuration,
    /// Phase attribution.
    pub phases: PhaseBreakdown,
    /// Whether the output was verified sorted (on the physical payload).
    pub validated: bool,
    /// Total keys that crossed P2P interconnects during merge (P2P sort
    /// only; drives the Section 6.3 distribution analysis).
    pub p2p_swapped_keys: u64,
    /// Transfers routed around unhealthy links (host fallback or relay
    /// after an injected link fault), counting planned detours and
    /// mid-flight re-routes; 0 on a healthy fabric.
    pub rerouted_transfers: u64,
    /// Largest all-to-all receive partition, in logical keys (sample
    /// sort's bucket-imbalance measure: with perfectly balanced splitters
    /// this is `keys / gpus`). 0 for algorithms whose partitioning is
    /// exact by construction (or that do not partition at all).
    pub max_partition_keys: u64,
    /// Busy time of operations that crossed the inter-node fabric (the
    /// cross-node sort's NIC traffic). [`SimDuration::ZERO`] for
    /// single-node runs.
    pub inter_node: SimDuration,
}

impl SortReport {
    /// Throughput in (logical) million keys per second. A zero-duration
    /// run (e.g. zero keys, or a degenerate sampled run) reports 0 rather
    /// than `inf`/NaN so downstream aggregation stays finite.
    #[must_use]
    pub fn mkeys_per_sec(&self) -> f64 {
        let secs = self.total.as_secs_f64();
        if secs <= 0.0 {
            return 0.0;
        }
        self.keys as f64 / secs / 1e6
    }

    /// One-line human-readable summary.
    #[must_use]
    pub fn summary(&self) -> String {
        format!(
            "{} on {} ({} GPUs): {:.0}M keys in {} at {:.0} Mkeys/s (HtoD {}, sort {}, merge {}, DtoH {}){}",
            self.algorithm,
            self.platform,
            self.gpus.len(),
            self.keys as f64 / 1e6,
            self.total,
            self.mkeys_per_sec(),
            self.phases.htod,
            self.phases.sort,
            self.phases.merge,
            self.phases.dtoh,
            if self.validated {
                ""
            } else {
                " [NOT VALIDATED]"
            },
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn breakdown_sums() {
        let b = PhaseBreakdown {
            htod: SimDuration::from_millis(10),
            sort: SimDuration::from_millis(20),
            merge: SimDuration::from_millis(30),
            dtoh: SimDuration::from_millis(40),
        };
        assert_eq!(b.sum(), SimDuration::from_millis(100));
    }

    #[test]
    fn report_is_cloneable_and_printable() {
        // Experiment tooling clones and debug-prints reports; pin the
        // derived impls (serialization is hand-rolled in msort-bench).
        fn assert_impls<T: Clone + std::fmt::Debug>() {}
        assert_impls::<SortReport>();
        assert_impls::<PhaseBreakdown>();
    }

    #[test]
    fn report_summary_formats() {
        let r = SortReport {
            algorithm: "P2P sort".into(),
            platform: "test".into(),
            gpus: vec![0, 1],
            keys: 1_000_000,
            bytes: 4_000_000,
            total: SimDuration::from_millis(50),
            phases: PhaseBreakdown::default(),
            validated: true,
            p2p_swapped_keys: 123,
            rerouted_transfers: 0,
            max_partition_keys: 0,
            inter_node: SimDuration::ZERO,
        };
        assert!((r.mkeys_per_sec() - 20.0).abs() < 1e-9);
        assert!(r.summary().contains("P2P sort"));
        assert!(r.summary().contains("20 Mkeys/s"));
        assert!(!r.summary().contains("NOT VALIDATED"));
    }

    #[test]
    fn zero_duration_run_reports_finite_throughput() {
        let r = SortReport {
            algorithm: "P2P sort".into(),
            platform: "test".into(),
            gpus: vec![0],
            keys: 1_000_000,
            bytes: 4_000_000,
            total: SimDuration::ZERO,
            phases: PhaseBreakdown::default(),
            validated: true,
            p2p_swapped_keys: 0,
            rerouted_transfers: 0,
            max_partition_keys: 0,
            inter_node: SimDuration::ZERO,
        };
        assert_eq!(r.mkeys_per_sec(), 0.0);
        assert!(r.mkeys_per_sec().is_finite());
        // The summary must not print inf/NaN either.
        let s = r.summary();
        assert!(!s.contains("inf") && !s.contains("NaN"), "{s}");
    }
}
