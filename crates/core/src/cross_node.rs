//! Cross-node sort: node-level sample sort composed with per-node sorts.
//!
//! The cluster platforms (`msort-cluster`) are single [`Platform`]s whose
//! topology spans several nodes joined by NIC links, so one simulation
//! carries both traffic classes: this driver's inter-node exchange flows
//! over the NICs *and* the inner sorts' NVLink/PCIe traffic contend in the
//! same max-min rate allocation.
//!
//! The algorithm is the classic two-level sample sort, lifted one level up
//! (the node level) with the existing single-node sorts as the inner
//! primitive:
//!
//! 1. **Scatter**: the input splits into `n_nodes` equal chunks; chunk `k`
//!    ships from the global input (socket 0) to node `k`'s staging buffer
//!    (its home socket). For `k > 0` these are NIC flows.
//! 2. **Exchange**: the host draws deterministic stride samples from every
//!    staged chunk and keeps `n_nodes − 1` global splitters (reusing
//!    [`msort_cpu::sample::select_splitters`] with nodes as buckets); each
//!    node partitions its chunk into node-buckets on the CPU
//!    ([`msort_gpu::GpuSystem::host_partition`]), then an all-to-all bucket
//!    exchange ships bucket `i` of every chunk to node `i` over the NICs.
//!    Same-node buckets stay put as local copies.
//! 3. **Inner sorts**: every node sorts its received partition with a
//!    full single-node sort ([`Algorithm`]-selectable: P2P, RP, HET,
//!    sample, or multiway mergesort), staged on the node's home socket and
//!    running on the node's own GPUs. The inner drivers advance in
//!    lockstep on the shared system, so their intra-node traffic overlaps
//!    in simulated time.
//! 4. **Gather**: the sorted partitions concatenate back to the global
//!    output in node order — globally sorted by the splitter property.
//!
//! Bucket sizes are data-dependent, but the inner sorts require lengths
//! divisible by `gpus × scale`; each partition is padded to the next
//! multiple with copies of its maximum key, and the pad is truncated from
//! the sorted tail before the gather (the multiset is exact).
//!
//! The NIC-crossing transfers are tracked and reported as
//! [`SortReport::inter_node`]; with a [`Recorder`] attached, every node
//! gets its own track group (`node 0`, `node 1`, ...) with the four
//! phase spans, alongside the per-NIC link-utilization counters the flow
//! simulator already emits.
//!
//! [`Recorder`]: msort_trace::Recorder

use crate::exec::{drive, DriverStep, SortDriver};
use crate::het::{HetConfig, HetDriver};
use crate::mwms::{MwmsConfig, MwmsDriver};
use crate::p2p::{P2pConfig, P2pDriver};
use crate::report::{PhaseBreakdown, SortReport};
use crate::rp::{RpConfig, RpDriver};
use crate::sample::{SampleSortConfig, SampleSortDriver};
use msort_cpu::sample::{bucket_counts, select_splitters, Splitter};
use msort_data::{is_sorted, SortKey};
use msort_gpu::{BufId, Fidelity, GpuSystem, OpId, Phase, StreamId};
use msort_sim::{FaultPlan, GpuSortAlgo, SimDuration, SimTime};
use msort_topology::{ClusterLayout, Fabric, Platform};

/// Which single-node sort runs inside each node.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum InnerAlgo {
    /// P2P sort (needs a power-of-two GPU count per node).
    P2p,
    /// RP sort.
    Rp,
    /// HET sort (in-core pipeline).
    Het,
    /// GPU sample sort.
    SampleSort,
    /// Multiway mergesort.
    MultiwayMerge,
}

impl InnerAlgo {
    /// Report label of the inner sort.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            InnerAlgo::P2p => "P2P",
            InnerAlgo::Rp => "RP",
            InnerAlgo::Het => "HET",
            InnerAlgo::SampleSort => "sample",
            InnerAlgo::MultiwayMerge => "mwms",
        }
    }

    /// All inner algorithms, for sweeps.
    #[must_use]
    pub const fn all() -> [InnerAlgo; 5] {
        [
            InnerAlgo::P2p,
            InnerAlgo::Rp,
            InnerAlgo::Het,
            InnerAlgo::SampleSort,
            InnerAlgo::MultiwayMerge,
        ]
    }
}

/// Configuration for [`cross_node_sort`].
#[derive(Debug, Clone)]
pub struct CrossNodeConfig {
    /// The single-node sort each node runs on its partition.
    pub inner: InnerAlgo,
    /// GPUs used per node (`None`: all of the node's GPUs).
    pub gpus_per_node: Option<usize>,
    /// Single-GPU sorting primitive for the inner sorts.
    pub algo: GpuSortAlgo,
    /// Simulation fidelity.
    pub fidelity: Fidelity,
    /// Scheduled link faults to inject (empty: pristine fabric). NIC-link
    /// faults reroute mid-exchange like NVLink faults.
    pub faults: FaultPlan,
    /// Samples drawn per node per bucket for the global splitter
    /// selection.
    pub oversample: usize,
}

impl CrossNodeConfig {
    /// Default configuration: sample sort inside every node, all GPUs.
    #[must_use]
    pub fn new(inner: InnerAlgo) -> Self {
        Self {
            inner,
            gpus_per_node: None,
            algo: GpuSortAlgo::ThrustLike,
            fidelity: Fidelity::Full,
            faults: FaultPlan::new(),
            oversample: 32,
        }
    }

    /// Use sampled fidelity with the given factor.
    #[must_use]
    pub fn sampled(mut self, scale: u64) -> Self {
        self.fidelity = Fidelity::Sampled { scale };
        self
    }

    /// Restrict each node to its first `g` GPUs.
    #[must_use]
    pub fn with_gpus_per_node(mut self, g: usize) -> Self {
        self.gpus_per_node = Some(g);
        self
    }
}

/// Where the driver is in the cross-node phase sequence.
enum CrossState {
    /// Nothing enqueued yet.
    Start,
    /// Scatter drained; splitter selection + partition + exchange next.
    Exchange,
    /// Exchange drained; inner sorts run in lockstep until all finish.
    InnerSorts,
    /// Inner sorts done; gather to the global output next.
    Gather,
    /// Gather enqueued; next step reads the output.
    Finishing,
    /// Output taken; nothing left to do.
    Finished,
}

/// Cross-node sort as a resumable [`SortDriver`]. On a single-node
/// platform (no [`ClusterLayout`]) it degenerates to one inner sort with
/// an idle node level.
pub struct CrossNodeDriver<K: SortKey> {
    layout: ClusterLayout,
    config: CrossNodeConfig,
    logical_len: u64,
    chunk: u64,
    scale: u64,
    host_in: BufId,
    host_out: BufId,
    /// Per node: staging buffer and partition scratch on its home socket.
    stage: Vec<(BufId, BufId)>,
    /// Per node: receive buffer for the bucket exchange.
    recv: Vec<BufId>,
    /// Per node: logical keys received in the exchange.
    recv_len: Vec<u64>,
    /// Per node: logical pad appended so the inner length divides evenly.
    pad_len: Vec<u64>,
    /// Per node: the inner sort, once constructed (`None`: empty bucket).
    inner: Vec<Option<Box<dyn SortDriver<K>>>>,
    inner_done: Vec<bool>,
    /// Buffers importing the truncated inner outputs for the gather.
    gather_bufs: Vec<BufId>,
    scatter_streams: Vec<StreamId>,
    gather_streams: Vec<StreamId>,
    host_stream: StreamId,
    /// Ops that crossed the inter-node fabric, for `inter_node`.
    nic_ops: Vec<OpId>,
    state: CrossState,
    t0: SimTime,
    t_scattered: SimTime,
    t_exchanged: SimTime,
    t_sorted: SimTime,
    t_end: SimTime,
    exchanged_keys: u64,
    max_partition_keys: u64,
    reroutes_at_start: u64,
    output: Option<Vec<K>>,
    validated: bool,
    released: bool,
}

/// The effective node layout of `platform`: its [`ClusterLayout`], or a
/// synthetic one-node layout for single-box platforms.
fn effective_layout(platform: &Platform) -> ClusterLayout {
    platform.cluster.unwrap_or(ClusterLayout {
        nodes: 1,
        gpus_per_node: platform.gpu_count(),
        sockets_per_node: platform.topology.cpu_count(),
        nics_per_node: 0,
        fabric: Fabric::IbHdr,
    })
}

impl<K: SortKey> CrossNodeDriver<K> {
    /// Prepare a cross-node sort of `data` (physical payload for
    /// `logical_len` keys) on `sys`: import the input on socket 0 and
    /// pre-allocate the per-node staging buffers. Receive buffers are
    /// data-dependent and allocated after splitter selection; the inner
    /// sorts allocate their own device buffers when they start.
    ///
    /// # Panics
    /// Panics if `logical_len` is not divisible by `nodes × scale` (every
    /// node must stage whole samples) or if `config.fidelity` disagrees
    /// with the system's fidelity.
    pub fn new(
        sys: &mut GpuSystem<'_, K>,
        config: &CrossNodeConfig,
        data: Vec<K>,
        logical_len: u64,
    ) -> Self {
        let layout = effective_layout(sys.platform());
        let nodes = layout.nodes;
        let scale = config.fidelity.scale();
        assert_eq!(
            scale,
            sys.world().scale(),
            "driver fidelity must match the system's"
        );
        assert!(
            logical_len.is_multiple_of(nodes as u64 * scale),
            "input length must divide evenly into {nodes} node chunks of whole samples"
        );
        if let Some(g) = config.gpus_per_node {
            assert!(
                g >= 1 && g <= layout.gpus_per_node,
                "gpus_per_node {g} exceeds the node's {} GPUs",
                layout.gpus_per_node
            );
        }
        let chunk = logical_len / nodes as u64;

        let host_in = sys.world_mut().import_host(0, data, logical_len);
        let host_out = sys.world_mut().alloc_host(0, logical_len);
        let stage: Vec<(BufId, BufId)> = (0..nodes)
            .map(|k| {
                let socket = layout.node_socket(k);
                (
                    sys.world_mut().alloc_host(socket, chunk),
                    sys.world_mut().alloc_host(socket, chunk),
                )
            })
            .collect();
        let scatter_streams: Vec<_> = (0..nodes).map(|_| sys.stream()).collect();
        let gather_streams: Vec<_> = (0..nodes).map(|_| sys.stream()).collect();
        let host_stream = sys.stream();

        Self {
            layout,
            config: config.clone(),
            logical_len,
            chunk,
            scale,
            host_in,
            host_out,
            stage,
            recv: Vec::with_capacity(nodes),
            recv_len: vec![0; nodes],
            pad_len: vec![0; nodes],
            inner: Vec::new(),
            inner_done: vec![false; nodes],
            gather_bufs: Vec::new(),
            scatter_streams,
            gather_streams,
            host_stream,
            nic_ops: Vec::new(),
            state: CrossState::Start,
            t0: SimTime::ZERO,
            t_scattered: SimTime::ZERO,
            t_exchanged: SimTime::ZERO,
            t_sorted: SimTime::ZERO,
            t_end: SimTime::ZERO,
            exchanged_keys: 0,
            max_partition_keys: 0,
            reroutes_at_start: sys.rerouted_transfers(),
            output: None,
            validated: false,
            released: false,
        }
    }

    /// GPUs used on each node.
    fn node_gpus(&self, node: usize) -> Vec<usize> {
        let g = self
            .config
            .gpus_per_node
            .unwrap_or(self.layout.gpus_per_node);
        self.layout.node_gpus(node).take(g).collect()
    }

    /// Build node `k`'s inner driver over its padded partition.
    fn build_inner(
        &self,
        sys: &mut GpuSystem<'_, K>,
        node: usize,
        data: Vec<K>,
        padded_len: u64,
    ) -> Box<dyn SortDriver<K>> {
        let set = self.node_gpus(node);
        let g = set.len();
        let socket = self.layout.node_socket(node);
        let fidelity = self.config.fidelity;
        let algo = self.config.algo;
        match self.config.inner {
            InnerAlgo::P2p => {
                let mut c = P2pConfig::new(g);
                c.gpu_order = Some(set);
                c.algo = algo;
                c.fidelity = fidelity;
                c.home_socket = socket;
                Box::new(P2pDriver::new(sys, &c, data, padded_len))
            }
            InnerAlgo::Rp => {
                let mut c = RpConfig::new(g);
                c.gpu_set = Some(set);
                c.algo = algo;
                c.fidelity = fidelity;
                c.home_socket = socket;
                Box::new(RpDriver::new(sys, &c, data, padded_len))
            }
            InnerAlgo::Het => {
                let mut c = HetConfig::new(g);
                c.gpu_set = Some(set);
                c.algo = algo;
                c.fidelity = fidelity;
                c.home_socket = socket;
                Box::new(HetDriver::new(sys, &c, data, padded_len))
            }
            InnerAlgo::SampleSort => {
                let mut c = SampleSortConfig::new(g);
                c.gpu_set = Some(set);
                c.algo = algo;
                c.fidelity = fidelity;
                c.home_socket = socket;
                Box::new(SampleSortDriver::new(sys, &c, data, padded_len))
            }
            InnerAlgo::MultiwayMerge => {
                let mut c = MwmsConfig::new(g);
                c.gpu_set = Some(set);
                c.algo = algo;
                c.fidelity = fidelity;
                c.home_socket = socket;
                Box::new(MwmsDriver::new(sys, &c, data, padded_len))
            }
        }
    }

    /// Emit the per-node track groups once the run's phase times are known.
    fn record_node_tracks(&self, sys: &GpuSystem<'_, K>) {
        let rec = sys.recorder();
        if !rec.is_enabled() {
            return;
        }
        for k in 0..self.layout.nodes {
            let track = rec.track(&format!("node {k}"), "phases");
            for (name, from, to) in [
                ("scatter", self.t0, self.t_scattered),
                ("exchange", self.t_scattered, self.t_exchanged),
                ("inner sort", self.t_exchanged, self.t_sorted),
                ("gather", self.t_sorted, self.t_end),
            ] {
                if to > from {
                    rec.span(track, name, "cross-node", from.0, to.0);
                }
            }
        }
    }
}

impl<K: SortKey> SortDriver<K> for CrossNodeDriver<K> {
    fn step(&mut self, sys: &mut GpuSystem<'_, K>) -> DriverStep {
        let nodes = self.layout.nodes;
        match self.state {
            CrossState::Start => {
                // ---- Phase 1: scatter one chunk per node. ----
                self.t0 = sys.now();
                let mut wait = Vec::with_capacity(nodes);
                for k in 0..nodes {
                    let op = sys.memcpy(
                        self.scatter_streams[k],
                        self.host_in,
                        k as u64 * self.chunk,
                        self.stage[k].0,
                        0,
                        self.chunk,
                        &[],
                        Phase::HtoD,
                    );
                    if k != 0 {
                        self.nic_ops.push(op);
                    }
                    wait.push(op);
                }
                self.state = CrossState::Exchange;
                DriverStep::Wait(wait)
            }
            CrossState::Exchange => {
                self.t_scattered = sys.now();
                let mut wait = Vec::new();

                // ---- Phase 2a: global splitter selection over the staged
                // chunks (deterministic stride sampling — bit-reproducible
                // from the data alone). ----
                let views: Vec<&[K]> = (0..nodes)
                    .map(|k| sys.world().slice(self.stage[k].0, 0, self.chunk))
                    .collect();
                let splitters: Vec<Splitter<K>> =
                    select_splitters(&views, nodes, self.config.oversample);
                let counts: Vec<Vec<u64>> = views
                    .iter()
                    .map(|v| {
                        let mut c = bucket_counts(v, &splitters);
                        c.resize(nodes, 0);
                        c
                    })
                    .collect();
                drop(views);
                let split_cost = sys.cost_model().pivot_selection(self.chunk);
                let split_op = sys.delay(
                    self.host_stream,
                    SimDuration(split_cost.0 * nodes as u64),
                    &[],
                    Phase::Partition,
                );
                wait.push(split_op);

                let recv_phys: Vec<u64> = (0..nodes)
                    .map(|i| counts.iter().map(|c| c[i]).sum::<u64>())
                    .collect();
                self.max_partition_keys = recv_phys.iter().copied().max().unwrap_or(0) * self.scale;
                for (i, &phys) in recv_phys.iter().enumerate() {
                    self.recv_len[i] = phys * self.scale;
                    let buf = sys
                        .world_mut()
                        .alloc_host(self.layout.node_socket(i), self.recv_len[i]);
                    self.recv.push(buf);
                }

                // ---- Phase 2b: host-side partition pass on every node. ----
                let part_ops: Vec<OpId> = (0..nodes)
                    .map(|k| {
                        sys.host_partition(
                            self.scatter_streams[k],
                            self.stage[k].0,
                            (0, self.chunk),
                            self.stage[k].1,
                            splitters.clone(),
                            &[split_op],
                        )
                    })
                    .collect();

                // ---- Phase 2c: all-to-all bucket exchange over the NICs.
                // Same-node buckets (i == j) are local host copies. ----
                let mut recv_off = vec![0u64; nodes];
                #[allow(clippy::needless_range_loop)] // j and i index counts together
                for j in 0..nodes {
                    let mut send_off = 0u64;
                    for i in 0..nodes {
                        let len = counts[j][i] * self.scale;
                        if len == 0 {
                            continue;
                        }
                        let s = sys.stream();
                        let op = sys.memcpy(
                            s,
                            self.stage[j].0,
                            send_off,
                            self.recv[i],
                            recv_off[i],
                            len,
                            &[part_ops[j]],
                            Phase::Merge,
                        );
                        if i != j {
                            self.exchanged_keys += len;
                            self.nic_ops.push(op);
                        }
                        send_off += len;
                        recv_off[i] += len;
                        wait.push(op);
                    }
                }
                wait.extend(part_ops);
                self.state = CrossState::InnerSorts;
                DriverStep::Wait(wait)
            }
            CrossState::InnerSorts => {
                // First entry: hand each node its partition, padded to a
                // multiple of `gpus × scale` with copies of its maximum
                // key (truncated from the sorted tail before the gather).
                if self.inner.is_empty() {
                    self.t_exchanged = sys.now();
                    for k in 0..nodes {
                        let len = self.recv_len[k];
                        if len == 0 {
                            self.inner.push(None);
                            self.inner_done[k] = true;
                            continue;
                        }
                        let g = self.node_gpus(k).len() as u64;
                        let unit = g * self.scale;
                        let padded = len.div_ceil(unit) * unit;
                        self.pad_len[k] = padded - len;
                        let mut part: Vec<K> = sys.world().slice(self.recv[k], 0, len).to_vec();
                        if self.pad_len[k] > 0 {
                            let pad_key = *part
                                .iter()
                                .max_by_key(|key| key.to_radix())
                                .expect("non-empty partition");
                            part.resize((padded / self.scale) as usize, pad_key);
                        }
                        let driver = self.build_inner(sys, k, part, padded);
                        self.inner.push(Some(driver));
                    }
                    // The exchange buffers are dead: the partitions now
                    // live in the inner sorts' own staging buffers.
                    for &(a, b) in &self.stage {
                        sys.world_mut().free(a);
                        sys.world_mut().free(b);
                    }
                    for &r in &self.recv {
                        sys.world_mut().free(r);
                    }
                }
                // ---- Phase 3: advance every unfinished inner sort one
                // step (lockstep: the returned waits of all nodes drain
                // before the next step, so the per-node pipelines overlap
                // in simulated time). ----
                let mut wait = Vec::new();
                for k in 0..nodes {
                    if self.inner_done[k] {
                        continue;
                    }
                    let driver = self.inner[k].as_mut().expect("unfinished inner driver");
                    match driver.step(sys) {
                        DriverStep::Wait(ops) => wait.extend(ops),
                        DriverStep::Done => self.inner_done[k] = true,
                    }
                }
                if wait.is_empty() && self.inner_done.iter().all(|&d| d) {
                    self.state = CrossState::Gather;
                    return self.step(sys);
                }
                DriverStep::Wait(wait)
            }
            CrossState::Gather => {
                // ---- Phase 4: concatenate the sorted partitions in node
                // order. Cross-node copies (k > 0) flow over the NICs. ----
                self.t_sorted = sys.now();
                let mut wait = Vec::new();
                let mut out_off = 0u64;
                for k in 0..nodes {
                    let len = self.recv_len[k];
                    let Some(driver) = self.inner[k].as_mut() else {
                        continue;
                    };
                    let mut sorted = driver.take_output();
                    debug_assert!(driver.validated(), "inner sort {k} failed validation");
                    sorted.truncate((len / self.scale) as usize);
                    driver.release(sys);
                    let buf = sys
                        .world_mut()
                        .import_host(self.layout.node_socket(k), sorted, len);
                    self.gather_bufs.push(buf);
                    let op = sys.memcpy(
                        self.gather_streams[k],
                        buf,
                        0,
                        self.host_out,
                        out_off,
                        len,
                        &[],
                        Phase::DtoH,
                    );
                    if k != 0 {
                        self.nic_ops.push(op);
                    }
                    out_off += len;
                    wait.push(op);
                }
                debug_assert_eq!(out_off, self.logical_len, "buckets partition the input");
                self.state = CrossState::Finishing;
                DriverStep::Wait(wait)
            }
            CrossState::Finishing => {
                self.t_end = sys.now();
                let output = sys.world().buffer(self.host_out).data.clone();
                self.validated = is_sorted(&output);
                self.output = Some(output);
                self.record_node_tracks(sys);
                self.state = CrossState::Finished;
                DriverStep::Done
            }
            CrossState::Finished => DriverStep::Done,
        }
    }

    fn take_output(&mut self) -> Vec<K> {
        self.output
            .take()
            .expect("cross-node sort has not finished")
    }

    fn validated(&self) -> bool {
        self.validated
    }

    fn release(&mut self, sys: &mut GpuSystem<'_, K>) {
        if self.released {
            return;
        }
        self.released = true;
        sys.world_mut().free(self.host_in);
        sys.world_mut().free(self.host_out);
        for &(a, b) in &self.stage {
            sys.world_mut().free(a);
            sys.world_mut().free(b);
        }
        for &r in self.recv.iter().chain(&self.gather_bufs) {
            sys.world_mut().free(r);
        }
        for driver in self.inner.iter_mut().flatten() {
            driver.release(sys);
        }
    }

    fn report(&self, sys: &GpuSystem<'_, K>) -> SortReport {
        let gpus: Vec<usize> = (0..self.layout.nodes)
            .flat_map(|k| self.node_gpus(k))
            .collect();
        SortReport {
            algorithm: format!("Cross-node sort ({} inner)", self.config.inner.name()),
            platform: sys.platform().name(),
            gpus,
            keys: self.logical_len,
            bytes: self.logical_len * K::DATA_TYPE.key_bytes(),
            total: self.t_end.since(self.t0),
            phases: PhaseBreakdown {
                htod: self.t_scattered.since(self.t0),
                // Splitter selection + host partition + node all-to-all.
                merge: self.t_exchanged.since(self.t_scattered),
                sort: self.t_sorted.since(self.t_exchanged),
                dtoh: self.t_end.since(self.t_sorted),
            },
            validated: self.validated,
            p2p_swapped_keys: self.exchanged_keys,
            rerouted_transfers: sys.rerouted_transfers() - self.reroutes_at_start,
            max_partition_keys: self.max_partition_keys,
            inter_node: sys.ops_busy(&self.nic_ops),
        }
    }
}

/// Sort `data` (physical payload for `logical_len` keys) with the
/// cross-node sort.
///
/// # Panics
/// Panics if `logical_len` is not divisible by `nodes × scale`, or on the
/// shape constraints of the inner algorithm (e.g. P2P's power-of-two GPU
/// count).
pub fn cross_node_sort<K: SortKey>(
    platform: &Platform,
    config: &CrossNodeConfig,
    data: &mut Vec<K>,
    logical_len: u64,
) -> SortReport {
    crate::run::run_sort(
        platform,
        &crate::run::RunConfig::cross_node(config.clone()),
        data,
        logical_len,
    )
}

/// Run a prepared cross-node driver to completion on `sys` (the
/// `run_sort` dispatch body, shared with the bench harness).
pub(crate) fn drive_cross_node<K: SortKey>(
    sys: &mut GpuSystem<'_, K>,
    config: &CrossNodeConfig,
    data: &mut Vec<K>,
    logical_len: u64,
) -> SortReport {
    let input = std::mem::take(data);
    let mut driver = CrossNodeDriver::new(sys, config, input, logical_len);
    drive(sys, &mut driver);
    let report = driver.report(sys);
    *data = driver.take_output();
    driver.release(sys);
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use msort_cluster::{dgx_a100_cluster, ibm_ac922_cluster};
    use msort_data::{generate, same_multiset, Distribution};
    use msort_trace::groups;

    #[test]
    fn sorts_on_two_node_dgx_matching_single_node_reference() {
        let cluster = dgx_a100_cluster(2, Fabric::IbHdr);
        let n: u64 = 1 << 14;
        let input: Vec<u32> = generate(Distribution::Uniform, n as usize, 42);

        let mut data = input.clone();
        let config = CrossNodeConfig::new(InnerAlgo::SampleSort);
        let report = cross_node_sort(&cluster, &config, &mut data, n);
        assert!(report.validated);
        assert!(same_multiset(&input, &data));
        assert!(report.inter_node > SimDuration::ZERO);
        assert_eq!(report.gpus.len(), 16);

        // Bit-identical to the single-node reference sort of the same keys.
        let single = Platform::dgx_a100();
        let mut reference = input.clone();
        let ref_report = crate::sample::sample_sort(
            &single,
            &crate::sample::SampleSortConfig::new(8),
            &mut reference,
            n,
        );
        assert!(ref_report.validated);
        assert_eq!(data, reference);
    }

    #[test]
    fn all_inner_algorithms_sort() {
        let cluster = ibm_ac922_cluster(2, Fabric::Slingshot);
        let n: u64 = 1 << 13;
        for inner in InnerAlgo::all() {
            let input: Vec<u32> = generate(
                Distribution::ZipfDuplicates { skew_permille: 800 },
                n as usize,
                7,
            );
            let mut data = input.clone();
            let report = cross_node_sort(&cluster, &CrossNodeConfig::new(inner), &mut data, n);
            assert!(report.validated, "{inner:?}");
            assert!(same_multiset(&input, &data), "{inner:?}");
        }
    }

    #[test]
    fn four_node_cluster_exchanges_more_than_two_node() {
        let n: u64 = 1 << 14;
        let mut shares = Vec::new();
        for nodes in [2, 4] {
            let cluster = dgx_a100_cluster(nodes, Fabric::IbNdr);
            let mut data: Vec<u32> = generate(Distribution::Uniform, n as usize, 3);
            let report = cross_node_sort(
                &cluster,
                &CrossNodeConfig::new(InnerAlgo::SampleSort),
                &mut data,
                n,
            );
            assert!(report.validated, "{nodes} nodes");
            shares.push(report.inter_node.as_secs_f64() / report.total.as_secs_f64());
        }
        assert!(
            shares[1] > shares[0],
            "inter-node share should grow with node count: {shares:?}"
        );
    }

    #[test]
    fn single_node_platform_degenerates_cleanly() {
        let p = Platform::dgx_a100();
        let n: u64 = 1 << 13;
        let input: Vec<u32> = generate(Distribution::Uniform, n as usize, 9);
        let mut data = input.clone();
        let report = cross_node_sort(&p, &CrossNodeConfig::new(InnerAlgo::Rp), &mut data, n);
        assert!(report.validated);
        assert!(same_multiset(&input, &data));
        assert_eq!(report.inter_node, SimDuration::ZERO);
    }

    #[test]
    fn sampled_fidelity_reaches_billions_of_keys() {
        // The scale-sampled path: 2^32 logical keys over a 2-node DGX
        // cluster with a 2^20 sampling factor — 4096 physical keys stand
        // in for ~4.3 billion logical ones.
        let cluster = dgx_a100_cluster(2, Fabric::IbNdr);
        let scale = 1u64 << 20;
        let n = 1u64 << 32;
        let mut data: Vec<u32> = generate(Distribution::Uniform, (n / scale) as usize, 13);
        let config = CrossNodeConfig::new(InnerAlgo::SampleSort).sampled(scale);
        let report = cross_node_sort(&cluster, &config, &mut data, n);
        assert!(report.validated);
        assert!(report.keys >= 4_000_000_000);
        assert!(report.inter_node > SimDuration::ZERO);
        assert!(report.mkeys_per_sec() > 0.0);
    }

    #[test]
    fn trace_shows_nic_and_nvlink_counters_and_node_groups() {
        use crate::run::RunConfig;
        let cluster = dgx_a100_cluster(2, Fabric::IbHdr);
        let recorder = msort_trace::Recorder::new();
        let config = RunConfig::cross_node(CrossNodeConfig::new(InnerAlgo::SampleSort))
            .with_recorder(recorder.clone());
        let n: u64 = 1 << 13;
        let mut data: Vec<u32> = generate(Distribution::Uniform, n as usize, 5);
        let report = crate::run::run_sort(&cluster, &config, &mut data, n);
        assert!(report.validated);

        let data = recorder.snapshot().unwrap();
        // Per-NIC utilization counters alongside NVLink counters, in one
        // recording: counter series on the links track are named after the
        // link ("CPU 0 ⇄ Node 0 NIC 0", "GPU 3 ⇄ NVSwitch", ...).
        let link_series: Vec<&str> = data
            .events
            .iter()
            .filter(|e| data.track(e.track).group == groups::LINKS)
            .map(|e| e.name.as_str())
            .collect();
        assert!(
            link_series.iter().any(|n| n.contains("NIC")),
            "no NIC counters among {} link series",
            link_series.len()
        );
        assert!(
            link_series.iter().any(|n| n.contains("NVSwitch")),
            "no NVLink counters among {} link series",
            link_series.len()
        );
        // Per-node track groups with the cross-node phase spans.
        for k in 0..2 {
            let group = format!("node {k}");
            assert!(
                data.tracks.iter().any(|t| t.group == group),
                "missing track group {group}"
            );
        }
    }
}
