//! HET sort: the heterogeneous CPU/GPU sorting algorithm (Section 5.3).
//!
//! Chunks sort on the GPUs and return to host memory; the CPU merges the
//! sorted sublists with a parallel multiway merge. For data that fits the
//! combined GPU memory this is one chunk group and one final merge. For
//! larger data, chunk groups stream through the GPUs with bidirectional
//! transfer overlap, in one of two pipelines:
//!
//! * **2n-approach** (this paper's contribution): two buffers per GPU;
//!   sorting blocks copies, but chunks are 1.5× larger, so the final merge
//!   sees fewer sublists;
//! * **3n-approach** (Stehle et al.): three buffers per GPU; copies overlap
//!   the sort (the classic copy/compute overlap the paper shows to no
//!   longer matter).
//!
//! Optional **eager merging** (Gowanlock et al.) merges each completed
//! chunk group on the CPU while the GPUs work on the next one; the paper
//! shows it *hurts* on modern systems because the merge queue grows faster
//! than it drains and the merge steals host memory bandwidth from the
//! transfers — both effects are reproduced by modeling CPU merges as
//! host-memory flows.

use crate::exec::{DriverStep, SortDriver};
use crate::gpuset::default_gpu_set;
use crate::report::{PhaseBreakdown, SortReport};
use msort_data::{is_sorted, SortKey};
use msort_gpu::{BufId, Fidelity, GpuSystem, OpId, Phase, StreamId};
use msort_sim::{FaultPlan, GpuSortAlgo, SimDuration, SimTime};
use msort_topology::Platform;

/// Which large-data pipeline to use.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LargeDataApproach {
    /// Two buffers per GPU; sort blocks copies (Figure 11).
    TwoN,
    /// Three buffers per GPU; copies overlap the sort (Figure 10).
    ThreeN,
}

impl LargeDataApproach {
    /// Device buffers per GPU.
    #[must_use]
    pub fn buffers(self) -> u64 {
        match self {
            LargeDataApproach::TwoN => 2,
            LargeDataApproach::ThreeN => 3,
        }
    }

    /// Display label ("2n" / "3n").
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            LargeDataApproach::TwoN => "2n",
            LargeDataApproach::ThreeN => "3n",
        }
    }
}

/// Configuration for [`het_sort`].
#[derive(Debug, Clone)]
pub struct HetConfig {
    /// Number of GPUs.
    pub gpus: usize,
    /// Explicit GPU set (overrides the default [`default_gpu_set`]).
    pub gpu_set: Option<Vec<usize>>,
    /// Single-GPU sorting primitive.
    pub algo: GpuSortAlgo,
    /// Simulation fidelity.
    pub fidelity: Fidelity,
    /// Large-data pipeline (irrelevant when one chunk group suffices —
    /// the two approaches then behave identically, as the paper notes).
    pub approach: LargeDataApproach,
    /// Eager merging (Section 5.3); the paper's recommendation is `false`.
    pub eager_merge: bool,
    /// Usable device memory per GPU in bytes (defaults to the full GPU
    /// memory). The paper's 2n-vs-3n comparison fixes this to 33 GB so
    /// both pipelines get the same budget (Section 6.2).
    pub gpu_mem_budget: Option<u64>,
    /// Scheduled link faults to inject (empty: pristine fabric).
    pub faults: FaultPlan,
    /// NUMA socket whose host memory stages the input and output (0 on
    /// single-node platforms; the cross-node driver points each inner sort
    /// at its node's home socket).
    pub home_socket: usize,
}

impl HetConfig {
    /// Default configuration: 2n pipeline, no eager merging.
    #[must_use]
    pub fn new(gpus: usize) -> Self {
        Self {
            gpus,
            gpu_set: None,
            algo: GpuSortAlgo::ThrustLike,
            fidelity: Fidelity::Full,
            approach: LargeDataApproach::TwoN,
            eager_merge: false,
            gpu_mem_budget: None,
            faults: FaultPlan::new(),
            home_socket: 0,
        }
    }

    /// Use sampled fidelity with the given factor.
    #[must_use]
    pub fn sampled(mut self, scale: u64) -> Self {
        self.fidelity = Fidelity::Sampled { scale };
        self
    }

    /// Use an explicit GPU set.
    #[must_use]
    pub fn with_set(mut self, set: Vec<usize>) -> Self {
        self.gpu_set = Some(set);
        self
    }

    /// Select the large-data pipeline.
    #[must_use]
    pub fn with_approach(mut self, approach: LargeDataApproach) -> Self {
        self.approach = approach;
        self
    }

    /// Enable eager merging.
    #[must_use]
    pub fn with_eager_merge(mut self) -> Self {
        self.eager_merge = true;
        self
    }

    /// Restrict the usable device memory per GPU.
    #[must_use]
    pub fn with_mem_budget(mut self, bytes: u64) -> Self {
        self.gpu_mem_budget = Some(bytes);
        self
    }

    /// Inject the given fault schedule.
    #[deprecated(note = "configure faults on the shared RunConfig \
                         (msort_core::RunConfig::het(config).with_faults(plan)) instead")]
    #[must_use]
    pub fn with_faults(mut self, faults: FaultPlan) -> Self {
        self.faults = faults;
        self
    }
    /// Stage host buffers on `socket` instead of socket 0.
    #[must_use]
    pub fn with_home_socket(mut self, socket: usize) -> Self {
        self.home_socket = socket;
        self
    }
}

/// How the input divides into chunks: `pieces[group * g + gpu]` is the
/// `(offset, len)` of that chunk in the input, in logical keys. Pieces are
/// nearly equal (they differ by at most one sample) and scale-aligned.
#[derive(Debug, Clone)]
pub struct ChunkPlan {
    /// Chunk `(offset, len)` pairs in input order.
    pub pieces: Vec<(u64, u64)>,
    /// Number of chunk groups.
    pub groups: u64,
    /// GPUs per group.
    pub g: usize,
}

impl ChunkPlan {
    /// Compute the plan for `logical_len` keys over `g` GPUs with at most
    /// `max_chunk_keys` keys per chunk.
    ///
    /// # Panics
    /// Panics if `logical_len` is not a multiple of `scale`, or if
    /// `max_chunk_keys < scale` (a chunk must hold at least one sample).
    #[must_use]
    pub fn compute(logical_len: u64, g: usize, max_chunk_keys: u64, scale: u64) -> Self {
        assert_eq!(logical_len % scale, 0, "input must be whole samples");
        assert!(
            max_chunk_keys >= scale,
            "GPU memory budget too small for even one sample per chunk"
        );
        let samples = logical_len / scale;
        let max_samples = max_chunk_keys / scale;
        let mut groups = samples.div_ceil(max_samples * g as u64).max(1);
        // Nearly-equal split can push the larger pieces one sample over
        // the budget; bump the group count when that happens.
        loop {
            let total = groups * g as u64;
            let base = samples / total;
            let rem = samples % total;
            if base + u64::from(rem > 0) <= max_samples {
                let mut pieces = Vec::with_capacity(total as usize);
                let mut off = 0u64;
                for i in 0..total {
                    let len = (base + u64::from(i < rem)) * scale;
                    pieces.push((off, len));
                    off += len;
                }
                debug_assert_eq!(off, logical_len);
                return Self { pieces, groups, g };
            }
            groups += 1;
        }
    }

    /// Chunk `(offset, len)` for `(group, gpu)`.
    #[must_use]
    pub fn piece(&self, group: u64, gpu: usize) -> (u64, u64) {
        self.pieces[(group * self.g as u64) as usize + gpu]
    }

    /// The largest chunk length in the plan.
    #[must_use]
    pub fn max_len(&self) -> u64 {
        self.pieces.iter().map(|&(_, l)| l).max().unwrap_or(0)
    }
}

/// Sort `data` (physical payload for `logical_len` keys) with HET sort.
/// Returns the report; the sorted output replaces `data`.
///
/// # Panics
/// Panics if `logical_len` is not a multiple of the sampling factor or if
/// even a single-sample chunk exceeds the GPU memory budget.
pub fn het_sort<K: SortKey>(
    platform: &Platform,
    config: &HetConfig,
    data: &mut Vec<K>,
    logical_len: u64,
) -> SortReport {
    // The shared RunConfig path builds the system (fidelity + faults +
    // recorder) and dispatches back into `het_sort_on`.
    crate::run::run_sort(
        platform,
        &crate::run::RunConfig::het(config.clone()),
        data,
        logical_len,
    )
}

/// The HET sort body over a caller-provided system (built by
/// [`crate::RunConfig::build_system`], which installed fidelity, faults,
/// and recorder).
pub(crate) fn het_sort_on<K: SortKey>(
    platform: &Platform,
    config: &HetConfig,
    sys: &mut GpuSystem<'_, K>,
    data: &mut Vec<K>,
    logical_len: u64,
) -> SortReport {
    let g = config.gpus;
    let order = config
        .gpu_set
        .clone()
        .unwrap_or_else(|| default_gpu_set(platform, g));
    let scale = config.fidelity.scale();
    let key_bytes = K::DATA_TYPE.key_bytes();

    let gpu_mem = order
        .iter()
        .map(|&i| platform.topology.gpu_memory_bytes(i))
        .min()
        .expect("at least one GPU");
    let budget = config.gpu_mem_budget.unwrap_or(gpu_mem).min(gpu_mem);
    let max_chunk_keys = budget / config.approach.buffers() / key_bytes;
    let plan = ChunkPlan::compute(logical_len, g, max_chunk_keys, scale);

    let input = std::mem::take(data);
    let home = config.home_socket;
    let host_in = sys.world_mut().import_host(home, input, logical_len);
    // Sorted sublists land here; the final merge writes to `host_out`.
    let host_runs = sys.world_mut().alloc_host(home, logical_len);
    let host_out = sys.world_mut().alloc_host(home, logical_len);

    let report = run_pipeline(
        platform,
        config,
        &order,
        sys,
        &plan,
        host_in,
        host_runs,
        host_out,
        logical_len,
    );

    let output = sys.world().buffer(host_out).data.clone();
    debug_assert!(is_sorted(&output), "HET sort produced unsorted output");
    *data = output;
    report
}

/// The HET pipeline; a single chunk group degenerates to the in-core case
/// (scatter, sort, gather, one merge) automatically.
#[allow(clippy::too_many_arguments)]
fn run_pipeline<K: SortKey>(
    platform: &Platform,
    config: &HetConfig,
    order: &[usize],
    sys: &mut GpuSystem<'_, K>,
    plan: &ChunkPlan,
    host_in: BufId,
    host_runs: BufId,
    host_out: BufId,
    logical_len: u64,
) -> SortReport {
    let g = order.len();
    let groups = plan.groups;
    let buf_len = plan.max_len();

    let nbuf = config.approach.buffers() as usize;
    let bufs: Vec<Vec<BufId>> = order
        .iter()
        .map(|&gpu| {
            (0..nbuf)
                .map(|_| sys.world_mut().alloc_gpu(gpu, buf_len))
                .collect()
        })
        .collect();
    let copy_in: Vec<StreamId> = (0..g).map(|_| sys.stream()).collect();
    let copy_out: Vec<StreamId> = (0..g).map(|_| sys.stream()).collect();
    let compute: Vec<StreamId> = (0..g).map(|_| sys.stream()).collect();
    let cpu_stream = sys.stream();

    // A single chunk over a single GPU needs no CPU merge at all: the
    // sorted chunk copies straight into the output (the paper's plain
    // single-GPU baseline of Figures 12–14).
    let single_chunk = plan.pieces.len() == 1;
    let runs_target = if single_chunk { host_out } else { host_runs };

    let mut last_sort: Vec<Option<OpId>> = vec![None; g];
    let mut last_dtoh: Vec<Option<OpId>> = vec![None; g];
    let mut group_dtoh: Vec<Vec<OpId>> = vec![Vec::new(); groups as usize];
    // Eager outputs need their own staging area (the final merge writes
    // `host_out` while reading them).
    let eager_buf = if config.eager_merge && groups > 1 {
        Some(sys.world_mut().alloc_host(config.home_socket, logical_len))
    } else {
        None
    };

    let t0 = sys.now();
    for group in 0..groups {
        let j = group as usize;
        for i in 0..g {
            let (off, len) = plan.piece(group, i);
            let data_buf = bufs[i][j % nbuf];
            let aux_buf = match config.approach {
                LargeDataApproach::TwoN => bufs[i][(j + 1) % nbuf],
                LargeDataApproach::ThreeN => bufs[i][(j + 2) % nbuf],
            };

            // HtoD. 2n: the target buffer was the previous sort's aux, so
            // wait for that sort (the paper's explicit synchronization
            // step). 3n: the buffer cycles roles; the in-place
            // data-transfer swap lets this copy overlap the DtoH that is
            // still draining the same buffer.
            let htod_waits: Vec<OpId> = match config.approach {
                LargeDataApproach::TwoN => last_sort[i].into_iter().collect(),
                LargeDataApproach::ThreeN => Vec::new(),
            };
            let up = sys.memcpy(
                copy_in[i],
                host_in,
                off,
                data_buf,
                0,
                len,
                &htod_waits,
                Phase::HtoD,
            );

            // Sort. 2n additionally waits for the previous DtoH: its aux
            // buffer is the buffer that chunk was leaving from.
            let mut sort_waits = vec![up];
            if config.approach == LargeDataApproach::TwoN {
                sort_waits.extend(last_dtoh[i]);
            }
            let so = sys.gpu_sort(
                compute[i],
                config.algo,
                data_buf,
                (0, len),
                aux_buf,
                &sort_waits,
            );
            last_sort[i] = Some(so);

            // DtoH of the sorted chunk into its slot of the runs buffer.
            let down = sys.memcpy(
                copy_out[i],
                data_buf,
                0,
                runs_target,
                off,
                len,
                &[so],
                Phase::DtoH,
            );
            last_dtoh[i] = Some(down);
            group_dtoh[j].push(down);
        }

        // Eager merge of this group (skipped for the last group — no GPU
        // work would remain to overlap with, Section 5.3).
        if let Some(eager_buf) = eager_buf {
            if group + 1 < groups {
                let inputs: Vec<(BufId, u64, u64)> = (0..g)
                    .map(|i| {
                        let (off, len) = plan.piece(group, i);
                        (host_runs, off, len)
                    })
                    .collect();
                let out_off = plan.piece(group, 0).0;
                sys.cpu_multiway_merge(cpu_stream, inputs, eager_buf, out_off, &group_dtoh[j]);
            }
        }
    }
    sys.synchronize();
    let t_gpu_done = sys.now();

    // Final multiway merge (skipped entirely when the single sorted chunk
    // already landed in the output).
    if single_chunk {
        let t_end = sys.now();
        let window = t_gpu_done.since(t0);
        let (htod, (sort, dtoh)) = split3(
            window,
            sys.phase_busy(Phase::HtoD),
            sys.phase_busy(Phase::Sort),
            sys.phase_busy(Phase::DtoH),
        );
        return SortReport {
            algorithm: "HET sort".into(),
            platform: platform.id.name().into(),
            gpus: order.to_vec(),
            keys: logical_len,
            bytes: logical_len * K::DATA_TYPE.key_bytes(),
            total: t_end.since(SimTime::ZERO),
            phases: PhaseBreakdown {
                htod,
                sort,
                merge: SimDuration::ZERO,
                dtoh,
            },
            validated: true,
            p2p_swapped_keys: 0,
            rerouted_transfers: sys.rerouted_transfers(),
            max_partition_keys: 0,
            inter_node: SimDuration::ZERO,
        };
    }
    let inputs: Vec<(BufId, u64, u64)> = if let Some(eager_buf) = eager_buf {
        // groups-1 eager outputs + the last group's g chunks.
        let mut v: Vec<(BufId, u64, u64)> = (0..groups - 1)
            .map(|grp| {
                let start = plan.piece(grp, 0).0;
                let end = plan.piece(grp, g - 1);
                (eager_buf, start, end.0 + end.1 - start)
            })
            .collect();
        v.extend((0..g).map(|i| {
            let (off, len) = plan.piece(groups - 1, i);
            (host_runs, off, len)
        }));
        v
    } else {
        plan.pieces
            .iter()
            .map(|&(off, len)| (host_runs, off, len))
            .collect()
    };
    sys.cpu_multiway_merge(cpu_stream, inputs, host_out, 0, &[]);
    sys.synchronize();
    let t_end = sys.now();

    let window = t_gpu_done.since(t0);
    let (htod, (sort, dtoh)) = split3(
        window,
        sys.phase_busy(Phase::HtoD),
        sys.phase_busy(Phase::Sort),
        sys.phase_busy(Phase::DtoH),
    );
    // The final merge window; eager merges (if any) overlapped the GPU
    // window and are folded into it.
    let final_merge = t_end.since(t_gpu_done);
    SortReport {
        algorithm: if groups > 1 {
            format!(
                "HET sort ({}{})",
                config.approach.label(),
                if config.eager_merge { " + EM" } else { "" }
            )
        } else {
            "HET sort".into()
        },
        platform: platform.id.name().into(),
        gpus: order.to_vec(),
        keys: logical_len,
        bytes: logical_len * K::DATA_TYPE.key_bytes(),
        total: t_end.since(SimTime::ZERO),
        phases: PhaseBreakdown {
            htod,
            sort,
            merge: final_merge,
            dtoh,
        },
        validated: true,
        p2p_swapped_keys: 0,
        rerouted_transfers: sys.rerouted_transfers(),
        max_partition_keys: 0,
        inter_node: SimDuration::ZERO,
    }
}

/// Split an overlapped window across three phases proportionally to their
/// busy times (remainder goes to the last).
fn split3(
    total: SimDuration,
    a: SimDuration,
    b: SimDuration,
    c: SimDuration,
) -> (SimDuration, (SimDuration, SimDuration)) {
    let denom = a.0 + b.0 + c.0;
    if denom == 0 {
        return (total, (SimDuration::ZERO, SimDuration::ZERO));
    }
    let part =
        |x: u64| SimDuration((u128::from(total.0) * u128::from(x) / u128::from(denom)) as u64);
    let pa = part(a.0);
    let pb = part(b.0);
    let pc = SimDuration(total.0 - pa.0 - pb.0);
    (pa, (pb, pc))
}

/// Where the in-core HET driver is in its phase sequence.
enum HetState {
    /// Nothing enqueued yet.
    Start,
    /// GPU phase drained; CPU merge next (or nothing, single-chunk case).
    GpuDone,
    /// CPU merge enqueued; next step reads the output.
    Merging,
    /// Output taken; nothing left to do.
    Finished,
}

/// In-core HET sort as a resumable [`SortDriver`]: one chunk group across
/// the GPUs (scatter, sort, gather) followed by a single CPU multiway
/// merge. The out-of-core streaming pipelines remain exclusive to
/// [`het_sort`] — a scheduler admits jobs small enough to fit device
/// memory, which is exactly the in-core case.
pub struct HetDriver<K: SortKey> {
    order: Vec<usize>,
    algo: GpuSortAlgo,
    approach: LargeDataApproach,
    logical_len: u64,
    scale: u64,
    plan: ChunkPlan,
    buf_len: u64,
    host_in: BufId,
    host_runs: BufId,
    host_out: BufId,
    bufs: Vec<Vec<BufId>>,
    copy_in: Vec<StreamId>,
    copy_out: Vec<StreamId>,
    compute: Vec<StreamId>,
    cpu_stream: StreamId,
    state: HetState,
    t0: SimTime,
    t_gpu_done: SimTime,
    t_end: SimTime,
    htod_ops: Vec<OpId>,
    sort_ops: Vec<OpId>,
    dtoh_ops: Vec<OpId>,
    reroutes_at_start: u64,
    output: Option<Vec<K>>,
    validated: bool,
    released: bool,
}

impl<K: SortKey> HetDriver<K> {
    /// Prepare an in-core HET sort of `data` on `sys`.
    ///
    /// # Panics
    /// Panics if the input does not fit device memory in one chunk group
    /// (use [`het_sort`] for out-of-core streaming), if `logical_len` is
    /// not a multiple of the sampling factor, or if `config.fidelity`
    /// disagrees with the system's fidelity.
    pub fn new(
        sys: &mut GpuSystem<'_, K>,
        config: &HetConfig,
        data: Vec<K>,
        logical_len: u64,
    ) -> Self {
        let g = config.gpus;
        let order = config
            .gpu_set
            .clone()
            .unwrap_or_else(|| default_gpu_set(sys.platform(), g));
        assert_eq!(order.len(), g, "gpu_set must list exactly `gpus` GPUs");
        let scale = config.fidelity.scale();
        assert_eq!(
            scale,
            sys.world().scale(),
            "driver fidelity must match the system's"
        );
        let key_bytes = K::DATA_TYPE.key_bytes();

        let gpu_mem = order
            .iter()
            .map(|&i| sys.platform().topology.gpu_memory_bytes(i))
            .min()
            .expect("at least one GPU");
        let budget = config.gpu_mem_budget.unwrap_or(gpu_mem).min(gpu_mem);
        let max_chunk_keys = budget / config.approach.buffers() / key_bytes;
        let plan = ChunkPlan::compute(logical_len, g, max_chunk_keys, scale);
        assert_eq!(
            plan.groups, 1,
            "HetDriver is in-core only: {logical_len} keys need {} chunk groups",
            plan.groups
        );
        let buf_len = plan.max_len();

        let home = config.home_socket;
        let host_in = sys.world_mut().import_host(home, data, logical_len);
        let host_runs = sys.world_mut().alloc_host(home, logical_len);
        let host_out = sys.world_mut().alloc_host(home, logical_len);

        let nbuf = config.approach.buffers() as usize;
        let bufs: Vec<Vec<BufId>> = order
            .iter()
            .map(|&gpu| {
                (0..nbuf)
                    .map(|_| sys.world_mut().alloc_gpu(gpu, buf_len))
                    .collect()
            })
            .collect();
        let copy_in: Vec<StreamId> = (0..g).map(|_| sys.stream()).collect();
        let copy_out: Vec<StreamId> = (0..g).map(|_| sys.stream()).collect();
        let compute: Vec<StreamId> = (0..g).map(|_| sys.stream()).collect();
        let cpu_stream = sys.stream();

        Self {
            order,
            algo: config.algo,
            approach: config.approach,
            logical_len,
            scale,
            plan,
            buf_len,
            host_in,
            host_runs,
            host_out,
            bufs,
            copy_in,
            copy_out,
            compute,
            cpu_stream,
            state: HetState::Start,
            t0: SimTime::ZERO,
            t_gpu_done: SimTime::ZERO,
            t_end: SimTime::ZERO,
            htod_ops: Vec::with_capacity(g),
            sort_ops: Vec::with_capacity(g),
            dtoh_ops: Vec::with_capacity(g),
            reroutes_at_start: sys.rerouted_transfers(),
            output: None,
            validated: false,
            released: false,
        }
    }

    /// Total device memory (in physical keys) this sort occupies per GPU.
    #[must_use]
    pub fn device_keys_per_gpu(&self) -> u64 {
        self.approach.buffers() * self.buf_len / self.scale
    }

    fn read_output(&mut self, sys: &GpuSystem<'_, K>) {
        let output = sys.world().buffer(self.host_out).data.clone();
        self.validated = is_sorted(&output);
        self.output = Some(output);
        self.state = HetState::Finished;
    }
}

impl<K: SortKey> SortDriver<K> for HetDriver<K> {
    fn step(&mut self, sys: &mut GpuSystem<'_, K>) -> DriverStep {
        let g = self.order.len();
        match self.state {
            HetState::Start => {
                // Scatter + sort + gather of the single chunk group. A
                // single chunk over a single GPU copies straight into the
                // output (no CPU merge at all).
                self.t0 = sys.now();
                let single_chunk = self.plan.pieces.len() == 1;
                let runs_target = if single_chunk {
                    self.host_out
                } else {
                    self.host_runs
                };
                let mut wait = Vec::with_capacity(g);
                for i in 0..g {
                    let (off, len) = self.plan.piece(0, i);
                    let data_buf = self.bufs[i][0];
                    let aux_buf = match self.approach {
                        LargeDataApproach::TwoN => self.bufs[i][1],
                        LargeDataApproach::ThreeN => self.bufs[i][2],
                    };
                    let up = sys.memcpy(
                        self.copy_in[i],
                        self.host_in,
                        off,
                        data_buf,
                        0,
                        len,
                        &[],
                        Phase::HtoD,
                    );
                    let so = sys.gpu_sort(
                        self.compute[i],
                        self.algo,
                        data_buf,
                        (0, len),
                        aux_buf,
                        &[up],
                    );
                    let down = sys.memcpy(
                        self.copy_out[i],
                        data_buf,
                        0,
                        runs_target,
                        off,
                        len,
                        &[so],
                        Phase::DtoH,
                    );
                    self.htod_ops.push(up);
                    self.sort_ops.push(so);
                    self.dtoh_ops.push(down);
                    wait.push(down);
                }
                self.state = HetState::GpuDone;
                DriverStep::Wait(wait)
            }
            HetState::GpuDone => {
                self.t_gpu_done = sys.now();
                if self.plan.pieces.len() == 1 {
                    self.t_end = sys.now();
                    self.read_output(sys);
                    return DriverStep::Done;
                }
                let inputs: Vec<(BufId, u64, u64)> = self
                    .plan
                    .pieces
                    .iter()
                    .map(|&(off, len)| (self.host_runs, off, len))
                    .collect();
                let mo = sys.cpu_multiway_merge(self.cpu_stream, inputs, self.host_out, 0, &[]);
                self.state = HetState::Merging;
                DriverStep::Wait(vec![mo])
            }
            HetState::Merging => {
                self.t_end = sys.now();
                self.read_output(sys);
                DriverStep::Done
            }
            HetState::Finished => DriverStep::Done,
        }
    }

    fn take_output(&mut self) -> Vec<K> {
        self.output.take().expect("HET sort has not finished")
    }

    fn validated(&self) -> bool {
        self.validated
    }

    fn release(&mut self, sys: &mut GpuSystem<'_, K>) {
        if self.released {
            return;
        }
        self.released = true;
        sys.world_mut().free(self.host_in);
        sys.world_mut().free(self.host_runs);
        sys.world_mut().free(self.host_out);
        for gpu_bufs in &self.bufs {
            for &b in gpu_bufs {
                sys.world_mut().free(b);
            }
        }
    }

    fn report(&self, sys: &GpuSystem<'_, K>) -> SortReport {
        let window = self.t_gpu_done.since(self.t0);
        let (htod, (sort, dtoh)) = split3(
            window,
            sys.ops_busy(&self.htod_ops),
            sys.ops_busy(&self.sort_ops),
            sys.ops_busy(&self.dtoh_ops),
        );
        SortReport {
            algorithm: "HET sort".into(),
            platform: sys.platform().id.name().into(),
            gpus: self.order.clone(),
            keys: self.logical_len,
            bytes: self.logical_len * K::DATA_TYPE.key_bytes(),
            total: self.t_end.since(self.t0),
            phases: PhaseBreakdown {
                htod,
                sort,
                merge: self.t_end.since(self.t_gpu_done),
                dtoh,
            },
            validated: self.validated,
            p2p_swapped_keys: 0,
            rerouted_transfers: sys.rerouted_transfers() - self.reroutes_at_start,
            max_partition_keys: 0,
            inter_node: SimDuration::ZERO,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use msort_data::{generate, same_multiset, Distribution};
    use msort_topology::PlatformId;

    fn run_cfg(
        platform: &Platform,
        cfg: &HetConfig,
        dist: Distribution,
        n: u64,
        seed: u64,
    ) -> (SortReport, Vec<u32>, Vec<u32>) {
        let input: Vec<u32> = generate(dist, n as usize, seed);
        let mut data = input.clone();
        let report = het_sort(platform, cfg, &mut data, n);
        (report, input, data)
    }

    #[test]
    fn in_core_sorts_all_platforms() {
        for id in PlatformId::paper_set() {
            let p = Platform::paper(id);
            let (report, input, output) =
                run_cfg(&p, &HetConfig::new(4), Distribution::Uniform, 1 << 14, 11);
            assert!(report.validated, "{id:?}");
            assert!(same_multiset(&input, &output), "{id:?}");
            assert!(report.phases.merge > SimDuration::ZERO);
            assert_eq!(report.algorithm, "HET sort");
        }
    }

    #[test]
    fn in_core_all_distributions() {
        let p = Platform::ibm_ac922();
        for dist in Distribution::paper_set() {
            let (report, input, output) = run_cfg(&p, &HetConfig::new(2), dist, 1 << 13, 5);
            assert!(report.validated, "{dist:?}");
            assert!(same_multiset(&input, &output), "{dist:?}");
        }
    }

    #[test]
    fn chunk_plan_respects_budget_and_covers_input() {
        let plan = ChunkPlan::compute(1000, 2, 130, 1);
        assert!(plan.groups >= 4);
        let total: u64 = plan.pieces.iter().map(|&(_, l)| l).sum();
        assert_eq!(total, 1000);
        assert!(plan.pieces.iter().all(|&(_, l)| l <= 130 && l > 0));
        // Pieces are contiguous.
        let mut expect = 0;
        for &(off, len) in &plan.pieces {
            assert_eq!(off, expect);
            expect += len;
        }
    }

    #[test]
    fn chunk_plan_scale_alignment() {
        let plan = ChunkPlan::compute(64 * 10, 2, 64 * 3, 64);
        for &(off, len) in &plan.pieces {
            assert_eq!(off % 64, 0);
            assert_eq!(len % 64, 0);
        }
    }

    #[test]
    fn out_of_core_pipelines_sort_correctly() {
        let p = Platform::test_pcie(2);
        for approach in [LargeDataApproach::TwoN, LargeDataApproach::ThreeN] {
            // Budget of 96 KiB per GPU forces several chunk groups for a
            // 64K-key input (2 or 3 buffers of 96/2 or 96/3 KiB).
            let cfg = HetConfig::new(2)
                .with_approach(approach)
                .with_mem_budget(96 * 1024);
            let n = 1u64 << 16;
            let input: Vec<u32> = generate(Distribution::Uniform, n as usize, 3);
            let mut data = input.clone();
            let report = het_sort(&p, &cfg, &mut data, n);
            assert!(report.validated, "{approach:?}");
            assert!(same_multiset(&input, &data), "{approach:?}");
            assert!(report.algorithm.contains(approach.label()));
        }
    }

    #[test]
    fn eager_merge_is_slower_but_correct() {
        // Section 6.2: eager merging decreases performance.
        let p = Platform::dgx_a100();
        let base = HetConfig::new(4).with_mem_budget(1 << 20);
        let n = 1u64 << 20; // forces ~4+ chunk groups at a 1 MiB budget
        let input: Vec<u32> = generate(Distribution::Uniform, n as usize, 9);

        let mut a = input.clone();
        let plain = het_sort(&p, &base, &mut a, n);
        let mut b = input.clone();
        let eager = het_sort(&p, &base.clone().with_eager_merge(), &mut b, n);
        assert!(plain.validated && eager.validated);
        assert_eq!(a, b);
        assert!(
            eager.total >= plain.total,
            "eager merging should not win: {} vs {}",
            eager.total,
            plain.total
        );
    }

    #[test]
    fn two_n_and_three_n_equal_in_core() {
        // With a single chunk group the approaches are identical (§6.1).
        let p = Platform::ibm_ac922();
        let n = 1u64 << 14;
        let (r2, _, out2) = run_cfg(
            &p,
            &HetConfig::new(2).with_approach(LargeDataApproach::TwoN),
            Distribution::Uniform,
            n,
            4,
        );
        let (r3, _, out3) = run_cfg(
            &p,
            &HetConfig::new(2).with_approach(LargeDataApproach::ThreeN),
            Distribution::Uniform,
            n,
            4,
        );
        assert_eq!(out2, out3);
        assert_eq!(r2.total, r3.total);
    }

    #[test]
    fn sampled_out_of_core_run() {
        let p = Platform::dgx_a100();
        let scale = 1u64 << 10;
        let n = (1u64 << 16) * scale;
        let cfg = HetConfig::new(2).sampled(scale).with_mem_budget(64 << 20);
        let phys = (n / scale) as usize;
        let input: Vec<u32> = generate(Distribution::Uniform, phys, 8);
        let mut data = input.clone();
        let report = het_sort(&p, &cfg, &mut data, n);
        assert!(report.validated);
        assert!(same_multiset(&input, &data));
        assert_eq!(report.keys, n);
    }

    #[test]
    fn driver_matches_het_sort_in_core() {
        // The resumable driver must reproduce het_sort's in-core timing
        // and output exactly when driven alone on a fresh system.
        for id in PlatformId::paper_set() {
            let p = Platform::paper(id);
            let n = 1u64 << 14;
            let cfg = HetConfig::new(2);
            let input: Vec<u32> = generate(Distribution::Uniform, n as usize, 23);

            let mut classic = input.clone();
            let r_classic = het_sort(&p, &cfg, &mut classic, n);

            let mut sys: GpuSystem<'_, u32> = GpuSystem::new(&p, Fidelity::Full);
            let mut d = HetDriver::new(&mut sys, &cfg, input, n);
            crate::exec::drive(&mut sys, &mut d);
            let r_driver = d.report(&sys);
            assert!(d.validated(), "{id:?}");
            assert_eq!(d.take_output(), classic, "{id:?}");
            assert_eq!(r_driver.total, r_classic.total, "{id:?}");
            assert_eq!(r_driver.phases.merge, r_classic.phases.merge, "{id:?}");
        }
    }

    #[test]
    fn driver_rejects_out_of_core_inputs() {
        let p = Platform::test_pcie(2);
        let n = 1u64 << 16;
        let cfg = HetConfig::new(2).with_mem_budget(96 * 1024);
        let input: Vec<u32> = generate(Distribution::Uniform, n as usize, 3);
        let mut sys: GpuSystem<'_, u32> = GpuSystem::new(&p, Fidelity::Full);
        let got = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            HetDriver::new(&mut sys, &cfg, input, n)
        }));
        assert!(got.is_err(), "multi-group input must be rejected");
    }

    #[test]
    fn wide_keys_sort() {
        let p = Platform::dgx_a100();
        let input: Vec<f64> = generate(Distribution::Normal, 1 << 13, 6);
        let mut data = input.clone();
        let report = het_sort(&p, &HetConfig::new(2), &mut data, 1 << 13);
        assert!(report.validated);
        assert!(same_multiset(&input, &data));
    }
}
