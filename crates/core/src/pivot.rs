//! Pivot selection (paper Algorithm 1) and block-swap planning.
//!
//! To merge two equally sized sorted sequences `A` and `B` by swapping
//! blocks, we pick a pivot `p`: the first `p` keys of `B` exchange with the
//! last `p` keys of `A`, after which every key in `A` is `<=` every key in
//! `B` and both sides consist of two sorted runs. Unlike Tanasic et al.'s
//! original selection, we return the *leftmost* valid pivot, which
//! minimizes (and for sorted inputs eliminates) the P2P transfer volume —
//! the optimization of Section 5.2.
//!
//! For merge stages over more than two chunks, `A` and `B` are the
//! *concatenations* of each half's chunks. [`swap_plan`] converts the pivot
//! into the chunk-aligned block exchanges the paper describes (Figure 9):
//! whole donor chunks pair with whole receiver chunks, plus at most one
//! partial pair, so every chunk ends up with at most two sorted runs.

use msort_data::SortKey;

/// A read-only view over the concatenation of several sorted chunks.
///
/// Indexing is over the concatenated sequence; chunks must be equally
/// sized (the invariant P2P sort maintains for perfect load balance).
pub struct ConcatView<'a, K> {
    chunks: Vec<&'a [K]>,
    chunk_len: usize,
}

impl<'a, K: SortKey> ConcatView<'a, K> {
    /// Build a view over `chunks`.
    ///
    /// # Panics
    /// Panics if chunks are not equally sized or the view is empty.
    #[must_use]
    pub fn new(chunks: Vec<&'a [K]>) -> Self {
        assert!(!chunks.is_empty(), "need at least one chunk");
        let chunk_len = chunks[0].len();
        assert!(
            chunks.iter().all(|c| c.len() == chunk_len),
            "chunks must be equally sized"
        );
        Self { chunks, chunk_len }
    }

    /// Total number of keys.
    #[must_use]
    pub fn len(&self) -> usize {
        self.chunk_len * self.chunks.len()
    }

    /// `true` when the view holds no keys.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Key at concatenated index `i`.
    #[must_use]
    pub fn get(&self, i: usize) -> K {
        self.chunks[i / self.chunk_len][i % self.chunk_len]
    }

    /// `true` iff the concatenation is sorted (debug validation).
    #[must_use]
    pub fn is_sorted(&self) -> bool {
        (1..self.len()).all(|i| self.get(i - 1).to_radix() <= self.get(i).to_radix())
    }
}

/// Select the leftmost pivot for two equally sized sorted sequences.
///
/// Returns the smallest `p` such that swapping `B[..p]` with
/// `A[n-p..]` leaves `max(A') <= min(B')`; `p == 0` means the sequences are
/// already in merge order and no P2P transfer is needed at all.
///
/// # Panics
/// Panics if the sequences differ in length.
#[must_use]
pub fn select_pivot<K: SortKey>(a: &ConcatView<'_, K>, b: &ConcatView<'_, K>) -> usize {
    assert_eq!(a.len(), b.len(), "pivot selection needs equal sizes");
    let n = a.len();
    // Leftmost valid pivot: the smallest p with (p == n) or
    // A[n-p-1] <= B[p]. The predicate is monotone in p: growing p moves
    // the A index left (smaller key) and the B index right (larger key).
    let mut lo = 0usize;
    let mut hi = n;
    while lo < hi {
        let p = lo + (hi - lo) / 2;
        let enough = p == n || a.get(n - p - 1).to_radix() <= b.get(p).to_radix();
        if enough {
            hi = p;
        } else {
            lo = p + 1;
        }
    }
    lo
}

/// Convenience wrapper for two plain slices.
#[must_use]
pub fn select_pivot_slices<K: SortKey>(a: &[K], b: &[K]) -> usize {
    select_pivot(&ConcatView::new(vec![a]), &ConcatView::new(vec![b]))
}

/// One block exchange between a donor range in an A-side chunk and the
/// equally sized receiver range in a B-side chunk (and vice versa — swaps
/// are symmetric).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BlockSwap {
    /// Index *within the group* of the A-side chunk.
    pub a_chunk: usize,
    /// Start offset of the swapped range within the A-side chunk.
    pub a_off: usize,
    /// Index within the group of the B-side chunk.
    pub b_chunk: usize,
    /// Start offset of the swapped range within the B-side chunk.
    pub b_off: usize,
    /// Keys exchanged.
    pub len: usize,
}

/// The full exchange plan for one merge stage.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SwapPlan {
    /// The pivot this plan realizes.
    pub pivot: usize,
    /// Chunk size of the group.
    pub chunk_len: usize,
    /// Number of chunks per half.
    pub half: usize,
    /// The block exchanges (empty when `pivot == 0`).
    pub swaps: Vec<BlockSwap>,
}

impl SwapPlan {
    /// Keys each chunk keeps and receives: `(kept_len, received_len)` for
    /// every chunk in the group (A half first). Chunks with
    /// `received == 0` are untouched; chunks with `kept == 0` are fully
    /// replaced (one sorted run — no local merge needed).
    #[must_use]
    pub fn chunk_exchange(&self, group_chunk: usize) -> (usize, usize) {
        let received: usize = self
            .swaps
            .iter()
            .filter(|s| {
                s.a_chunk == group_chunk && group_chunk < self.half
                    || s.b_chunk == group_chunk && group_chunk >= self.half
            })
            .map(|s| s.len)
            .sum();
        (self.chunk_len - received, received)
    }

    /// Total keys crossing the P2P interconnects (both directions).
    #[must_use]
    pub fn transferred_keys(&self) -> usize {
        2 * self.pivot
    }
}

/// Derive the chunk-aligned exchange plan for a group of `2 * half` chunks
/// of `chunk_len` keys each with the given `pivot` (Figure 9's pattern:
/// whole chunks pair with whole chunks, plus at most one partial pair).
///
/// A-side chunks are group indices `0..half`; B-side `half..2*half`.
///
/// # Panics
/// Panics if `pivot > half * chunk_len`.
#[must_use]
pub fn swap_plan(half: usize, chunk_len: usize, pivot: usize) -> SwapPlan {
    assert!(
        pivot <= half * chunk_len,
        "pivot {pivot} exceeds half size {}",
        half * chunk_len
    );
    let q = pivot / chunk_len; // whole chunks swapped per side
    let r = pivot % chunk_len; // partial tail/head
    let mut swaps = Vec::with_capacity(q + 1);
    // Whole-chunk pairs: the last q chunks of A with the first q of B.
    for i in 0..q {
        swaps.push(BlockSwap {
            a_chunk: half - q + i,
            a_off: 0,
            b_chunk: half + i,
            b_off: 0,
            len: chunk_len,
        });
    }
    // Partial pair: tail of the next A chunk with head of the next B chunk.
    if r > 0 {
        swaps.push(BlockSwap {
            a_chunk: half - q - 1,
            a_off: chunk_len - r,
            b_chunk: half + q,
            b_off: 0,
            len: r,
        });
    }
    SwapPlan {
        pivot,
        chunk_len,
        half,
        swaps,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use msort_data::{generate, Distribution};

    /// Reference property: after swapping per the pivot, max(A') <= min(B').
    fn assert_pivot_valid(a: &[u32], b: &[u32], p: usize) {
        let n = a.len();
        let max_a = a[..n - p].iter().chain(b[..p].iter()).copied().max();
        let min_b = a[n - p..].iter().chain(b[p..].iter()).copied().min();
        if let (Some(ma), Some(mb)) = (max_a, min_b) {
            assert!(ma <= mb, "p={p}: {ma} > {mb}");
        }
    }

    fn sorted(dist: Distribution, n: usize, seed: u64) -> Vec<u32> {
        let mut v: Vec<u32> = generate(dist, n, seed);
        v.sort_unstable();
        v
    }

    #[test]
    fn pivot_on_random_arrays_is_valid_and_leftmost() {
        for seed in 0..20 {
            let a = sorted(Distribution::Uniform, 257, seed);
            let b = sorted(Distribution::Uniform, 257, seed + 1000);
            let p = select_pivot_slices(&a, &b);
            assert_pivot_valid(&a, &b, p);
            if p > 0 {
                // Leftmost: p-1 must be invalid.
                let n = a.len();
                assert!(
                    a[n - p] > b[p - 1]
                        || a[..n - (p - 1)]
                            .iter()
                            .chain(b[..p - 1].iter())
                            .copied()
                            .max()
                            > a[n - (p - 1)..]
                                .iter()
                                .chain(b[p - 1..].iter())
                                .copied()
                                .min()
                );
            }
        }
    }

    #[test]
    fn already_ordered_gives_zero_pivot() {
        let a: Vec<u32> = (0..100).collect();
        let b: Vec<u32> = (100..200).collect();
        assert_eq!(select_pivot_slices(&a, &b), 0);
    }

    #[test]
    fn reversed_halves_give_full_pivot() {
        let a: Vec<u32> = (100..200).collect();
        let b: Vec<u32> = (0..100).collect();
        assert_eq!(select_pivot_slices(&a, &b), 100);
    }

    #[test]
    fn all_equal_keys_give_zero_pivot() {
        // Leftmost-pivot with duplicates: nothing needs to move.
        let a = vec![7u32; 64];
        let b = vec![7u32; 64];
        assert_eq!(select_pivot_slices(&a, &b), 0);
    }

    #[test]
    fn interleaved_gives_middle_pivot() {
        let a: Vec<u32> = (0..100).map(|x| x * 2).collect();
        let b: Vec<u32> = (0..100).map(|x| x * 2 + 1).collect();
        let p = select_pivot_slices(&a, &b);
        assert_pivot_valid(&a, &b, p);
        assert!((45..=55).contains(&p), "p={p}");
    }

    #[test]
    fn concat_view_indexes_across_chunks() {
        let c0 = [1u32, 2];
        let c1 = [3u32, 4];
        let v = ConcatView::new(vec![&c0[..], &c1[..]]);
        assert_eq!(v.len(), 4);
        assert_eq!(v.get(0), 1);
        assert_eq!(v.get(2), 3);
        assert!(v.is_sorted());
        let unsorted = ConcatView::new(vec![&c1[..], &c0[..]]);
        assert!(!unsorted.is_sorted());
    }

    #[test]
    fn pivot_over_concatenated_chunks() {
        let a0 = sorted(Distribution::Uniform, 128, 1);
        // Build a globally sorted A = a0 split into two chunks.
        let a_lo = &a0[..64];
        let a_hi = &a0[64..];
        let b = sorted(Distribution::Uniform, 128, 2);
        let a_view = ConcatView::new(vec![a_lo, a_hi]);
        let b_view = ConcatView::new(vec![&b[..64], &b[64..]]);
        let p = select_pivot(&a_view, &b_view);
        assert_pivot_valid(&a0, &b, p);
    }

    #[test]
    fn swap_plan_exact_pairs() {
        // half=2, chunk=100, pivot=150: one whole pair + one partial pair.
        let plan = swap_plan(2, 100, 150);
        assert_eq!(plan.swaps.len(), 2);
        assert_eq!(
            plan.swaps[0],
            BlockSwap {
                a_chunk: 1,
                a_off: 0,
                b_chunk: 2,
                b_off: 0,
                len: 100
            }
        );
        assert_eq!(
            plan.swaps[1],
            BlockSwap {
                a_chunk: 0,
                a_off: 50,
                b_chunk: 3,
                b_off: 0,
                len: 50
            }
        );
        assert_eq!(plan.transferred_keys(), 300);
    }

    #[test]
    fn swap_plan_conserves_sizes() {
        for pivot in [0, 1, 99, 100, 101, 199, 200] {
            let plan = swap_plan(2, 100, pivot);
            let total: usize = plan.swaps.iter().map(|s| s.len).sum();
            assert_eq!(total, pivot, "pivot {pivot}");
            for c in 0..4 {
                let (kept, recv) = plan.chunk_exchange(c);
                assert_eq!(kept + recv, 100);
            }
        }
    }

    #[test]
    fn swap_plan_zero_pivot_is_empty() {
        let plan = swap_plan(4, 64, 0);
        assert!(plan.swaps.is_empty());
        assert_eq!(plan.transferred_keys(), 0);
    }

    #[test]
    fn swap_plan_full_pivot_swaps_all_chunks() {
        let plan = swap_plan(2, 100, 200);
        assert_eq!(plan.swaps.len(), 2);
        for c in 0..4 {
            let (kept, recv) = plan.chunk_exchange(c);
            assert_eq!(kept, 0, "chunk {c}");
            assert_eq!(recv, 100);
        }
    }

    #[test]
    fn paper_example_pivot_in_c3() {
        // Figure 9: pivot falls into C3 -> C1 entirely swaps with C2 plus
        // partial blocks in C0 and C3.
        let plan = swap_plan(2, 4, 5); // pivot 5 of half-size 8
        assert_eq!(plan.swaps.len(), 2);
        assert_eq!(plan.swaps[0].a_chunk, 1);
        assert_eq!(plan.swaps[0].b_chunk, 2);
        assert_eq!(plan.swaps[0].len, 4);
        assert_eq!(plan.swaps[1].a_chunk, 0);
        assert_eq!(plan.swaps[1].b_chunk, 3);
        assert_eq!(plan.swaps[1].len, 1);
    }

    #[test]
    #[should_panic(expected = "equal sizes")]
    fn unequal_sizes_panic() {
        let a = [1u32, 2];
        let b = [1u32];
        let _ = select_pivot_slices(&a[..], &b[..]);
    }
}
