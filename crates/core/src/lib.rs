//! Multi-GPU sorting: the paper's contribution.
//!
//! Two complete multi-GPU sorting algorithms over the virtual GPU runtime:
//!
//! * [`p2p`] — **P2P sort** (after Tanasic et al., extended to any
//!   `g = 2^k` GPUs): chunks sort locally, then a recursive merge phase
//!   swaps pivot-determined blocks between GPUs over the P2P interconnects
//!   and re-merges locally, producing the globally sorted array entirely on
//!   the GPUs.
//! * [`het`] — **HET sort** (after Gowanlock et al. / Stehle et al.):
//!   chunks sort on the GPUs and return to host memory, where a parallel
//!   multiway merge produces the output. Includes the large-data chunk-group
//!   pipelines (2n and 3n approaches, Section 5.3) and optional eager
//!   merging.
//! * [`sample`] — **GPU sample sort** (after Leischner et al.):
//!   oversampled splitters partition the raw chunks locally, one all-to-all
//!   bucket exchange, then per-GPU final sorts — the scatter-heavy
//!   interconnect profile.
//! * [`mwms`] — **multiway mergesort** (after Karsin et al.): local chunk
//!   sorts feed a pairwise merge tree across the GPUs — the merge-bound,
//!   point-to-point interconnect profile.
//! * [`cross_node`] — **cross-node sort**: a node-level sample sort over
//!   the cluster platforms' NIC fabric, with any of the above running
//!   inside every node; inter-node NIC flows and intra-node NVLink flows
//!   contend in the same rate allocation.
//! * [`pivot`] — Algorithm 1: leftmost-pivot selection over two sorted
//!   sequences (and concatenated chunk views), plus the block-swap plan
//!   derivation (which chunk pairs exchange which ranges).
//! * [`gpuset`] — GPU set selection and ordering (Section 5.4): which `g`
//!   GPUs to use and how to pair them across merge stages.
//! * [`exec`] — resumable sort drivers: every sort doubles as a
//!   [`SortDriver`] state machine over a caller-provided `GpuSystem`, so a
//!   scheduler (the `msort-serve` crate) can interleave many concurrent
//!   sorts on one shared simulated clock.
//! * [`run`] — the shared [`RunConfig`]: one builder for algorithm,
//!   fidelity, fault schedule, observability recorder, and seed, consumed
//!   by every entry point (single-shot sorts, drivers, the serve layer,
//!   the bench harness).
//! * [`baseline`] — the CPU-only (PARADIS) and single-GPU baselines every
//!   figure compares against.
//! * [`report`] — per-run reports: end-to-end duration, the four-phase
//!   breakdown of Figures 12–14, and validation of the output.
//!
//! All algorithms work on any [`msort_data::SortKey`] and validate their
//! output on the physical payload after every simulated run.
//!
//! ```
//! use msort_core::{p2p_sort, P2pConfig};
//! use msort_data::{generate, is_sorted, Distribution};
//! use msort_topology::Platform;
//!
//! let dgx = Platform::dgx_a100();
//! let mut keys: Vec<u32> = generate(Distribution::Uniform, 1 << 14, 1);
//! let report = p2p_sort(&dgx, &P2pConfig::new(4), &mut keys, 1 << 14);
//! assert!(report.validated && is_sorted(&keys));
//! ```

pub mod baseline;
pub mod cross_node;
pub mod exec;
pub mod gpuset;
pub mod het;
pub mod mwms;
pub mod p2p;
pub mod pivot;
pub mod report;
pub mod rp;
pub mod run;
pub mod sample;

pub use baseline::{cpu_only_sort, single_gpu_sort};
pub use cross_node::{cross_node_sort, CrossNodeConfig, CrossNodeDriver, InnerAlgo};
pub use exec::{drive, DriverStep, SortDriver};
pub use gpuset::{default_gpu_set, search_gpu_set};
pub use het::{het_sort, HetConfig, HetDriver, LargeDataApproach};
pub use mwms::{mwms_sort, MwmsConfig, MwmsDriver};
pub use p2p::{best_p2p_route, p2p_sort, P2pConfig, P2pDriver};
pub use report::{PhaseBreakdown, SortReport};
pub use rp::{rp_sort, RpConfig, RpDriver};
pub use run::{run_sort, Algorithm, RunConfig};
pub use sample::{sample_sort, SampleSortConfig, SampleSortDriver};
