//! The unified run configuration: one builder for everything that used to
//! be scattered per-algorithm ctor arguments.
//!
//! Every entry point — the single-shot sorts ([`crate::p2p_sort`],
//! [`crate::rp_sort`], [`crate::het_sort`]), hand-driven
//! [`SortDriver`](crate::SortDriver)s, the serve-layer `SortService`, and
//! the bench harness — consumes the same [`RunConfig`]: which
//! [`Algorithm`] to run, at what [`Fidelity`], under which
//! [`FaultPlan`], observed by which [`Recorder`], with which seed. The
//! per-algorithm `.with_faults(...)` builders are deprecated shims that
//! route here.
//!
//! ```
//! use msort_core::{run_sort, P2pConfig, RunConfig};
//! use msort_data::{generate, Distribution};
//! use msort_topology::Platform;
//! use msort_trace::Recorder;
//!
//! let dgx = Platform::dgx_a100();
//! let recorder = Recorder::new();
//! let config = RunConfig::p2p(P2pConfig::new(4)).with_recorder(recorder.clone());
//! let mut keys: Vec<u32> = generate(Distribution::Uniform, 1 << 14, 7);
//! let report = run_sort(&dgx, &config, &mut keys, 1 << 14);
//! assert!(report.validated);
//! // The recording covers op spans AND link/flow events of the same run.
//! assert!(!recorder.snapshot().unwrap().events.is_empty());
//! ```

use crate::cross_node::{drive_cross_node, CrossNodeConfig};
use crate::exec::drive;
use crate::het::{het_sort_on, HetConfig};
use crate::mwms::{MwmsConfig, MwmsDriver};
use crate::p2p::{P2pConfig, P2pDriver};
use crate::report::SortReport;
use crate::rp::{RpConfig, RpDriver};
use crate::sample::{SampleSortConfig, SampleSortDriver};
use crate::SortDriver;
use msort_data::SortKey;
use msort_gpu::{Fidelity, GpuSystem};
use msort_sim::FaultPlan;
use msort_topology::Platform;
use msort_trace::Recorder;

/// Which multi-GPU sort to run, with its algorithm-specific knobs.
#[derive(Debug, Clone)]
pub enum Algorithm {
    /// P2P sort (GPU-only merge over the P2P interconnects).
    P2p(P2pConfig),
    /// RP sort (radix-partitioned all-to-all exchange).
    Rp(RpConfig),
    /// HET sort (GPU chunk sorts + host multiway merge).
    Het(HetConfig),
    /// GPU sample sort (splitter partition + one all-to-all + local sorts).
    SampleSort(SampleSortConfig),
    /// Multiway mergesort (pairwise merge tree over the interconnect).
    MultiwayMerge(MwmsConfig),
    /// Cross-node sort (node-level sample sort over the NIC fabric, one of
    /// the above running inside every node).
    CrossNode(CrossNodeConfig),
}

impl Algorithm {
    /// The algorithm's report label.
    #[must_use]
    pub fn name(&self) -> &'static str {
        match self {
            Algorithm::P2p(_) => "P2P sort",
            Algorithm::Rp(_) => "RP sort",
            Algorithm::Het(_) => "HET sort",
            Algorithm::SampleSort(_) => "Sample sort",
            Algorithm::MultiwayMerge(_) => "Multiway mergesort",
            Algorithm::CrossNode(_) => "Cross-node sort",
        }
    }
}

/// The shared run configuration. See the [module docs](self).
///
/// Run-level settings (fidelity, faults, recorder, seed) live here, not on
/// the algorithm config: [`RunConfig::p2p`]/[`rp`](RunConfig::rp)/
/// [`het`](RunConfig::het) lift `fidelity` and `faults` out of the
/// algorithm config they are given, so a config built through the
/// deprecated per-algorithm `.with_faults(...)` still injects its plan —
/// from exactly one place.
#[derive(Debug, Clone)]
pub struct RunConfig {
    /// The sort to run (`None` for configs that only carry run-level
    /// settings, e.g. for a serve fleet whose algorithm is per-job).
    pub algorithm: Option<Algorithm>,
    /// Simulation fidelity, applied to whatever algorithm runs.
    pub fidelity: Fidelity,
    /// Scheduled link faults (empty: pristine fabric, bit-identical to a
    /// build without fault support).
    pub faults: FaultPlan,
    /// Observability sink; disabled by default. Recording is purely
    /// observational: clocks and outputs are bit-identical either way.
    pub recorder: Recorder,
    /// Seed for harnesses that generate data or randomize schedules from
    /// the run configuration (the sorts themselves take explicit data).
    pub seed: u64,
    /// Worker budget for the wall-clock effect executor (`Some(1)` forces
    /// the seed's serial in-line execution; `None` uses the shared pool
    /// width). Purely a wall-clock knob: outputs, reports, and simulated
    /// clocks are bit-identical across settings.
    pub effect_threads: Option<usize>,
}

impl Default for RunConfig {
    fn default() -> Self {
        Self::new()
    }
}

impl RunConfig {
    /// An algorithm-less configuration: full fidelity, no faults, recorder
    /// disabled.
    #[must_use]
    pub fn new() -> Self {
        Self {
            algorithm: None,
            fidelity: Fidelity::Full,
            faults: FaultPlan::new(),
            recorder: Recorder::disabled(),
            seed: 0,
            effect_threads: None,
        }
    }

    fn with_algorithm(algorithm: Algorithm, fidelity: Fidelity, faults: FaultPlan) -> Self {
        Self {
            algorithm: Some(algorithm),
            fidelity,
            faults,
            ..Self::new()
        }
    }

    /// Run P2P sort. Lifts `fidelity` and `faults` out of `config`.
    #[must_use]
    pub fn p2p(mut config: P2pConfig) -> Self {
        let faults = std::mem::replace(&mut config.faults, FaultPlan::new());
        let fidelity = config.fidelity;
        Self::with_algorithm(Algorithm::P2p(config), fidelity, faults)
    }

    /// Run RP sort. Lifts `fidelity` and `faults` out of `config`.
    #[must_use]
    pub fn rp(mut config: RpConfig) -> Self {
        let faults = std::mem::replace(&mut config.faults, FaultPlan::new());
        let fidelity = config.fidelity;
        Self::with_algorithm(Algorithm::Rp(config), fidelity, faults)
    }

    /// Run HET sort. Lifts `fidelity` and `faults` out of `config`.
    #[must_use]
    pub fn het(mut config: HetConfig) -> Self {
        let faults = std::mem::replace(&mut config.faults, FaultPlan::new());
        let fidelity = config.fidelity;
        Self::with_algorithm(Algorithm::Het(config), fidelity, faults)
    }

    /// Run GPU sample sort. Lifts `fidelity` and `faults` out of `config`.
    #[must_use]
    pub fn sample(mut config: SampleSortConfig) -> Self {
        let faults = std::mem::replace(&mut config.faults, FaultPlan::new());
        let fidelity = config.fidelity;
        Self::with_algorithm(Algorithm::SampleSort(config), fidelity, faults)
    }

    /// Run multiway mergesort. Lifts `fidelity` and `faults` out of
    /// `config`.
    #[must_use]
    pub fn mwms(mut config: MwmsConfig) -> Self {
        let faults = std::mem::replace(&mut config.faults, FaultPlan::new());
        let fidelity = config.fidelity;
        Self::with_algorithm(Algorithm::MultiwayMerge(config), fidelity, faults)
    }

    /// Run the cross-node sort. Lifts `fidelity` and `faults` out of
    /// `config`.
    #[must_use]
    pub fn cross_node(mut config: CrossNodeConfig) -> Self {
        let faults = std::mem::replace(&mut config.faults, FaultPlan::new());
        let fidelity = config.fidelity;
        Self::with_algorithm(Algorithm::CrossNode(config), fidelity, faults)
    }

    /// Set the simulation fidelity.
    #[must_use]
    pub fn with_fidelity(mut self, fidelity: Fidelity) -> Self {
        self.fidelity = fidelity;
        self
    }

    /// Use sampled fidelity with the given factor.
    #[must_use]
    pub fn sampled(mut self, scale: u64) -> Self {
        self.fidelity = Fidelity::Sampled { scale };
        self
    }

    /// Inject the given fault schedule.
    #[must_use]
    pub fn with_faults(mut self, faults: FaultPlan) -> Self {
        self.faults = faults;
        self
    }

    /// Attach a recorder (pass an enabled one to capture a trace).
    #[must_use]
    pub fn with_recorder(mut self, recorder: Recorder) -> Self {
        self.recorder = recorder;
        self
    }

    /// Set the harness seed.
    #[must_use]
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Cap the wall-clock effect executor's worker budget (`1` = serial).
    #[must_use]
    pub fn with_effect_threads(mut self, threads: usize) -> Self {
        self.effect_threads = Some(threads);
        self
    }

    /// Build a [`GpuSystem`] with this configuration's fidelity, fault
    /// schedule, and recorder installed — the one place every entry point
    /// gets its executor from.
    #[must_use]
    pub fn build_system<'p, K: SortKey>(&self, platform: &'p Platform) -> GpuSystem<'p, K> {
        let mut sys = GpuSystem::new(platform, self.fidelity);
        sys.schedule_faults(&self.faults);
        sys.set_recorder(self.recorder.clone());
        if let Some(n) = self.effect_threads {
            sys.set_effect_threads(n);
        }
        sys
    }
}

/// Sort `data` (physical payload for `logical_len` keys) on `platform`
/// under `config`. The sorted output replaces `data`.
///
/// This is the single-shot entry point behind [`crate::p2p_sort`],
/// [`crate::rp_sort`], and [`crate::het_sort`]; unlike those it also
/// selects the algorithm from the configuration and attaches the
/// recorder.
///
/// # Panics
/// Panics if `config.algorithm` is `None` (construct it with
/// `RunConfig::p2p/rp/het/sample/mwms`), or on the shape constraints of
/// the selected algorithm (see its classic entry point's docs).
pub fn run_sort<K: SortKey>(
    platform: &Platform,
    config: &RunConfig,
    data: &mut Vec<K>,
    logical_len: u64,
) -> SortReport {
    let algorithm = config
        .algorithm
        .as_ref()
        .expect("RunConfig has no algorithm; construct it with RunConfig::p2p/rp/het/sample/mwms");
    let mut sys: GpuSystem<'_, K> = config.build_system(platform);
    let report = match algorithm {
        Algorithm::P2p(c) => {
            let mut c = c.clone();
            c.fidelity = config.fidelity;
            let input = std::mem::take(data);
            let mut driver = P2pDriver::new(&mut sys, &c, input, logical_len);
            drive(&mut sys, &mut driver);
            let report = driver.report(&sys);
            *data = driver.take_output();
            report
        }
        Algorithm::Rp(c) => {
            let mut c = c.clone();
            c.fidelity = config.fidelity;
            let input = std::mem::take(data);
            let mut driver = RpDriver::new(&mut sys, &c, input, logical_len);
            drive(&mut sys, &mut driver);
            let report = driver.report(&sys);
            *data = driver.take_output();
            report
        }
        Algorithm::Het(c) => {
            let mut c = c.clone();
            c.fidelity = config.fidelity;
            het_sort_on(platform, &c, &mut sys, data, logical_len)
        }
        Algorithm::SampleSort(c) => {
            let mut c = c.clone();
            c.fidelity = config.fidelity;
            let input = std::mem::take(data);
            let mut driver = SampleSortDriver::new(&mut sys, &c, input, logical_len);
            drive(&mut sys, &mut driver);
            let report = driver.report(&sys);
            *data = driver.take_output();
            report
        }
        Algorithm::MultiwayMerge(c) => {
            let mut c = c.clone();
            c.fidelity = config.fidelity;
            let input = std::mem::take(data);
            let mut driver = MwmsDriver::new(&mut sys, &c, input, logical_len);
            drive(&mut sys, &mut driver);
            let report = driver.report(&sys);
            *data = driver.take_output();
            report
        }
        Algorithm::CrossNode(c) => {
            let mut c = c.clone();
            c.fidelity = config.fidelity;
            drive_cross_node(&mut sys, &c, data, logical_len)
        }
    };
    debug_assert!(
        report.validated,
        "{} produced unsorted output",
        algorithm.name()
    );
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use msort_data::{generate, is_sorted, same_multiset, Distribution};

    #[test]
    fn run_sort_matches_the_classic_entry_points() {
        let dgx = Platform::dgx_a100();
        let n: u64 = 1 << 14;
        for (config, classic) in [
            (
                RunConfig::p2p(P2pConfig::new(4)),
                Box::new(|d: &mut Vec<u32>| crate::p2p_sort(&dgx, &P2pConfig::new(4), d, n))
                    as Box<dyn Fn(&mut Vec<u32>) -> SortReport>,
            ),
            (
                RunConfig::rp(RpConfig::new(4)),
                Box::new(|d: &mut Vec<u32>| crate::rp_sort(&dgx, &RpConfig::new(4), d, n)),
            ),
            (
                RunConfig::het(HetConfig::new(4)),
                Box::new(|d: &mut Vec<u32>| crate::het_sort(&dgx, &HetConfig::new(4), d, n)),
            ),
        ] {
            let input: Vec<u32> = generate(Distribution::Uniform, n as usize, 11);
            let mut a = input.clone();
            let mut b = input.clone();
            let ra = run_sort(&dgx, &config, &mut a, n);
            let rb = classic(&mut b);
            assert_eq!(a, b, "{} outputs diverge", config.algorithm.unwrap().name());
            assert_eq!(ra.total, rb.total, "clocks diverge");
            assert!(is_sorted(&a) && same_multiset(&a, &input));
        }
    }

    #[test]
    fn config_constructors_lift_fidelity_and_faults() {
        let plan = FaultPlan::new();
        #[allow(deprecated)]
        let config = RunConfig::p2p(P2pConfig::new(2).sampled(8).with_faults(plan));
        assert!(matches!(config.fidelity, Fidelity::Sampled { scale: 8 }));
        match config.algorithm {
            Some(Algorithm::P2p(c)) => assert!(c.faults.is_empty()),
            _ => panic!("wrong algorithm"),
        }
        assert!(!config.recorder.is_enabled());
    }

    /// The deprecated per-config `.with_faults` shim, end to end: a plan
    /// injected through the shim must produce the bit-identical run —
    /// same clock, same reroutes, same output bytes — as the same plan on
    /// the shared RunConfig.
    #[test]
    #[allow(deprecated)]
    fn deprecated_with_faults_shim_injects_like_run_config() {
        let dgx = Platform::dgx_a100();
        let n: u64 = 1 << 13;
        let plan = FaultPlan::randomized(&dgx, 0xFA17, msort_sim::SimDuration::from_micros(400));
        let input: Vec<u32> = generate(Distribution::Uniform, n as usize, 23);
        let mut a = input.clone();
        let shim = crate::p2p_sort(
            &dgx,
            &P2pConfig::new(4).with_faults(plan.clone()),
            &mut a,
            n,
        );
        let mut b = input.clone();
        let canonical = run_sort(
            &dgx,
            &RunConfig::p2p(P2pConfig::new(4)).with_faults(plan),
            &mut b,
            n,
        );
        assert_eq!(a, b, "shim and RunConfig paths must sort identically");
        assert_eq!(shim.total, canonical.total, "clocks diverge");
        assert_eq!(shim.rerouted_transfers, canonical.rerouted_transfers);
    }

    #[test]
    #[should_panic(expected = "RunConfig has no algorithm")]
    fn run_sort_without_algorithm_panics() {
        let p = Platform::dgx_a100();
        let mut data: Vec<u32> = vec![1, 2];
        let _ = run_sort(&p, &RunConfig::new(), &mut data, 2);
    }
}
