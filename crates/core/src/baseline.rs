//! Baselines: CPU-only PARADIS and the single-GPU Thrust sort.
//!
//! Every evaluation figure compares the multi-GPU algorithms against these
//! two. The CPU baseline sorts in host memory (no transfers at all); the
//! single-GPU baseline is HET sort with one GPU, which for data within
//! half the device memory is the plain HtoD → sort → DtoH pipeline and
//! chunks + merges beyond it.

use crate::het::{het_sort, HetConfig};
use crate::report::{PhaseBreakdown, SortReport};
use msort_data::{is_sorted, SortKey};
use msort_gpu::{Fidelity, GpuSystem};
use msort_sim::{GpuSortAlgo, SimDuration, SimTime};
use msort_topology::Platform;

/// Sort with the CPU-only baseline (PARADIS) and report.
pub fn cpu_only_sort<K: SortKey>(
    platform: &Platform,
    fidelity: Fidelity,
    data: &mut Vec<K>,
    logical_len: u64,
) -> SortReport {
    let mut sys: GpuSystem<'_, K> = GpuSystem::new(platform, fidelity);
    let input = std::mem::take(data);
    let host = sys.world_mut().import_host(0, input, logical_len);
    let s = sys.stream();
    sys.cpu_sort(s, host, &[]);
    let end = sys.synchronize();

    let output = sys.world().buffer(host).data.clone();
    debug_assert!(is_sorted(&output));
    *data = output;
    SortReport {
        algorithm: "PARADIS (CPU)".into(),
        platform: platform.id.name().into(),
        gpus: Vec::new(),
        keys: logical_len,
        bytes: logical_len * K::DATA_TYPE.key_bytes(),
        total: end.since(SimTime::ZERO),
        phases: PhaseBreakdown {
            sort: end.since(SimTime::ZERO),
            ..PhaseBreakdown::default()
        },
        validated: true,
        p2p_swapped_keys: 0,
        rerouted_transfers: 0,
        max_partition_keys: 0,
        inter_node: SimDuration::ZERO,
    }
}

/// Sort with the single-GPU baseline ("Thrust (1 GPU)" in Figure 1).
pub fn single_gpu_sort<K: SortKey>(
    platform: &Platform,
    fidelity: Fidelity,
    algo: GpuSortAlgo,
    data: &mut Vec<K>,
    logical_len: u64,
) -> SortReport {
    let mut cfg = HetConfig::new(1);
    cfg.fidelity = fidelity;
    cfg.algo = algo;
    let mut report = het_sort(platform, &cfg, data, logical_len);
    report.algorithm = "Thrust (1 GPU)".into();
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use msort_data::{generate, same_multiset, Distribution};

    #[test]
    fn cpu_baseline_sorts() {
        let p = Platform::dgx_a100();
        let input: Vec<u32> = generate(Distribution::Uniform, 1 << 14, 3);
        let mut data = input.clone();
        let report = cpu_only_sort(&p, Fidelity::Full, &mut data, 1 << 14);
        assert!(report.validated);
        assert!(same_multiset(&input, &data));
        assert!(report.gpus.is_empty());
    }

    #[test]
    fn cpu_baseline_anchor_matches_fig1() {
        // 4 B keys on the DGX take ~2.25 s (Figure 1). Sampled fidelity
        // keeps the physical payload tiny.
        let p = Platform::dgx_a100();
        let scale = 1u64 << 20;
        let n = 4_000_000_000u64 / scale * scale; // scale-aligned ~4 B keys
        let phys = (n / scale) as usize;
        let input: Vec<u32> = generate(Distribution::Uniform, phys, 3);
        let mut data = input;
        let report = cpu_only_sort(&p, Fidelity::Sampled { scale }, &mut data, n);
        let secs = report.total.as_secs_f64();
        assert!((secs - 2.25).abs() < 0.05, "{secs}");
    }

    #[test]
    fn single_gpu_baseline_sorts() {
        let p = Platform::ibm_ac922();
        let input: Vec<u32> = generate(Distribution::Normal, 1 << 14, 5);
        let mut data = input.clone();
        let report = single_gpu_sort(
            &p,
            Fidelity::Full,
            GpuSortAlgo::ThrustLike,
            &mut data,
            1 << 14,
        );
        assert!(report.validated);
        assert!(same_multiset(&input, &data));
        assert_eq!(report.gpus, vec![0]);
        assert_eq!(report.algorithm, "Thrust (1 GPU)");
    }

    #[test]
    fn single_gpu_anchor_matches_fig12() {
        // 2 B keys on one AC922 V100: ~0.35 s (Figure 12 breakdown).
        let p = Platform::ibm_ac922();
        let scale = 1u64 << 18;
        let n = 2_000_000_000u64 / scale * scale;
        let phys = (n / scale) as usize;
        let input: Vec<u32> = generate(Distribution::Uniform, phys, 4);
        let mut data = input;
        let report = single_gpu_sort(
            &p,
            Fidelity::Sampled { scale },
            GpuSortAlgo::ThrustLike,
            &mut data,
            n,
        );
        let secs = report.total.as_secs_f64();
        assert!((secs - 0.355).abs() < 0.03, "{secs}");
    }
}
