//! RP sort — the partitioning-based multi-GPU sort the paper proposes as
//! future work (Section 7).
//!
//! P2P sort's merge phase needs `g − 1` merge stages, each re-swapping
//! keys; the paper suggests instead a *partitioning-based* design that
//! exchanges keys between GPUs exactly once (all-to-all), "which would
//! highly benefit systems with many NVSwitch-interconnected GPUs such as
//! the DGX A100". This module implements that design:
//!
//! 1. chunks sort locally (same phase 1 as P2P sort);
//! 2. the host selects `g − 1` *splitters* by multisequence selection over
//!    the sorted chunks at global ranks `i·n/g` — an exact partitioning,
//!    so every GPU ends up with exactly `n/g` keys (perfect balance even
//!    for skewed data, unlike a sampled radix histogram);
//! 3. one all-to-all exchange: GPU `j` sends its `i`-th partition (a
//!    sorted run) to GPU `i`'s receive buffer; its own partition moves by
//!    a device-local copy;
//! 4. each GPU k-way-merges the `g` received runs;
//! 5. chunks copy back to the host in GPU order — the concatenation is
//!    globally sorted by the splitter property.
//!
//! On NVSwitch every flow of the all-to-all runs at full rate, so the
//! merge phase costs ~one chunk transfer regardless of `g`; on systems
//! whose P2P crosses the host (AC922, DELTA), the all-to-all hammers the
//! CPU interconnect with `O(g²)` streams and loses to P2P sort's staged
//! merges — exactly the trade-off the paper predicts.

use crate::gpuset::default_gpu_set;
use crate::report::{PhaseBreakdown, SortReport};
use msort_cpu::multiway::multisequence_select;
use msort_data::{is_sorted, SortKey};
use msort_gpu::{BufId, Fidelity, GpuSystem, OpId, Phase};
use msort_sim::{FaultPlan, GpuSortAlgo, SimTime};
use msort_topology::Platform;

/// Configuration for [`rp_sort`].
#[derive(Debug, Clone)]
pub struct RpConfig {
    /// Number of GPUs (any `g >= 1`; RP sort does not need a power of two,
    /// another advantage over the merge-tree design).
    pub gpus: usize,
    /// Single-GPU sorting primitive for the local sort phase.
    pub algo: GpuSortAlgo,
    /// Simulation fidelity.
    pub fidelity: Fidelity,
    /// Scheduled link faults to inject (empty: pristine fabric).
    pub faults: FaultPlan,
}

impl RpConfig {
    /// Default configuration.
    #[must_use]
    pub fn new(gpus: usize) -> Self {
        Self {
            gpus,
            algo: GpuSortAlgo::ThrustLike,
            fidelity: Fidelity::Full,
            faults: FaultPlan::new(),
        }
    }

    /// Use sampled fidelity with the given factor.
    #[must_use]
    pub fn sampled(mut self, scale: u64) -> Self {
        self.fidelity = Fidelity::Sampled { scale };
        self
    }

    /// Inject the given fault schedule.
    #[must_use]
    pub fn with_faults(mut self, faults: FaultPlan) -> Self {
        self.faults = faults;
        self
    }
}

/// Sort `data` (physical payload for `logical_len` keys) with RP sort.
///
/// # Panics
/// Panics if `logical_len` is not divisible by `gpus² × scale` (each
/// partition boundary must land on a whole sample for the exchange
/// offsets to be scale-aligned) or the buffers exceed GPU memory.
pub fn rp_sort<K: SortKey>(
    platform: &Platform,
    config: &RpConfig,
    data: &mut Vec<K>,
    logical_len: u64,
) -> SortReport {
    let g = config.gpus;
    // RP sort is order-insensitive (no staged pairings), so take the g
    // GPUs with the best transfer properties but ignore ordering. A
    // non-power-of-two g falls back to the first g GPUs.
    let order: Vec<usize> = if g.is_power_of_two() {
        default_gpu_set(platform, g)
    } else {
        (0..g).collect()
    };
    let scale = config.fidelity.scale();
    assert!(
        logical_len.is_multiple_of(g as u64 * scale),
        "input length must divide evenly into {g} chunks of whole samples"
    );
    let chunk = logical_len / g as u64;

    let mut sys: GpuSystem<'_, K> = GpuSystem::new(platform, config.fidelity);
    sys.schedule_faults(&config.faults);
    let input = std::mem::take(data);
    let host_in = sys.world_mut().import_host(0, input, logical_len);
    let host_out = sys.world_mut().alloc_host(0, logical_len);

    // Buffers: primary chunk, aux (sort scratch + receive target), and a
    // merge output buffer per GPU — RP sort's 3n footprint is the price of
    // the single exchange. The slack absorbs partition-boundary rounding.
    let slack = g as u64 * scale;
    let bufs: Vec<(BufId, BufId, BufId)> = order
        .iter()
        .map(|&gpu| {
            (
                sys.world_mut().alloc_gpu(gpu, chunk),
                sys.world_mut().alloc_gpu(gpu, chunk + slack),
                sys.world_mut().alloc_gpu(gpu, chunk + slack),
            )
        })
        .collect();
    let copy_in: Vec<_> = (0..g).map(|_| sys.stream()).collect();
    let copy_out: Vec<_> = (0..g).map(|_| sys.stream()).collect();
    let compute: Vec<_> = (0..g).map(|_| sys.stream()).collect();
    let host_stream = sys.stream();

    // ---- Phase 1: scatter + local sort. ----
    let t0 = sys.now();
    for i in 0..g {
        let up = sys.memcpy(
            copy_in[i],
            host_in,
            i as u64 * chunk,
            bufs[i].0,
            0,
            chunk,
            &[],
            Phase::HtoD,
        );
        sys.gpu_sort(
            compute[i],
            config.algo,
            bufs[i].0,
            (0, chunk),
            bufs[i].1,
            &[up],
        );
    }
    sys.synchronize();
    let t_sorted = sys.now();
    let htod_busy = sys.phase_busy(Phase::HtoD);
    let sort_busy = sys.phase_busy(Phase::Sort);

    // ---- Phase 2: splitter selection (host side, O(g log n) reads). ----
    let views: Vec<&[K]> = (0..g)
        .map(|i| sys.world().slice(bufs[i].0, 0, chunk))
        .collect();
    let total_phys: usize = views.iter().map(|v| v.len()).sum();
    // splits[r][j]: how many keys of chunk j have global rank < r*n/g.
    let splits: Vec<Vec<usize>> = (0..=g)
        .map(|r| multisequence_select(&views, r * total_phys / g))
        .collect();
    drop(views);
    let split_cost = sys.cost_model().pivot_selection(chunk);
    let split_op = sys.delay(
        host_stream,
        msort_sim::SimDuration(split_cost.0 * g as u64),
        &[],
        Phase::Merge,
    );

    // ---- Phase 3: the all-to-all exchange. ----
    // Receive offsets: GPU i receives partition (j -> i) from every j.
    let mut recv_off = vec![0u64; g];
    let mut recv_deps: Vec<Vec<OpId>> = vec![Vec::new(); g];
    let mut recv_runs: Vec<Vec<(u64, u64)>> = vec![Vec::new(); g];
    let mut exchanged_keys = 0u64;
    for j in 0..g {
        for i in 0..g {
            let from = splits[i][j] as u64 * scale;
            let to = splits[i + 1][j] as u64 * scale;
            let len = to - from;
            if len == 0 {
                continue;
            }
            let s = sys.stream();
            let op = sys.memcpy(
                s,
                bufs[j].0,
                from,
                bufs[i].1,
                recv_off[i],
                len,
                &[split_op],
                Phase::Merge,
            );
            if i != j {
                exchanged_keys += len;
            }
            recv_runs[i].push((recv_off[i], len));
            recv_off[i] += len;
            recv_deps[i].push(op);
        }
    }

    // ---- Phase 4: per-GPU k-way merge of the received runs. ----
    for i in 0..g {
        let inputs: Vec<(BufId, u64, u64)> = recv_runs[i]
            .iter()
            .map(|&(off, len)| (bufs[i].1, off, len))
            .collect();
        sys.gpu_multiway_merge(compute[i], inputs, bufs[i].2, &recv_deps[i]);
    }
    sys.synchronize();
    let t_merged = sys.now();

    // ---- Phase 5: gather (partition sizes are exact n/g by selection). ----
    for i in 0..g {
        sys.memcpy(
            copy_out[i],
            bufs[i].2,
            0,
            host_out,
            i as u64 * chunk,
            recv_off[i],
            &[],
            Phase::DtoH,
        );
        debug_assert_eq!(recv_off[i], chunk, "exact selection balances partitions");
    }
    sys.synchronize();
    let t_end = sys.now();

    let output = sys.world().buffer(host_out).data.clone();
    let validated = is_sorted(&output);
    *data = output;

    let window = t_sorted.since(t0);
    let (htod, sort) = crate::p2p::split_overlapped(window, htod_busy, sort_busy);
    let report = SortReport {
        algorithm: "RP sort".into(),
        platform: platform.id.name().into(),
        gpus: order,
        keys: logical_len,
        bytes: logical_len * K::DATA_TYPE.key_bytes(),
        total: t_end.since(SimTime::ZERO),
        phases: PhaseBreakdown {
            htod,
            sort,
            merge: t_merged.since(t_sorted),
            dtoh: t_end.since(t_merged),
        },
        validated,
        p2p_swapped_keys: exchanged_keys,
        rerouted_transfers: sys.rerouted_transfers(),
    };
    debug_assert!(report.validated, "RP sort produced unsorted output");
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{p2p_sort, P2pConfig};
    use msort_data::{generate, same_multiset, Distribution};
    use msort_topology::PlatformId;

    fn run(
        platform: &Platform,
        gpus: usize,
        dist: Distribution,
        n: u64,
        seed: u64,
    ) -> (SortReport, Vec<u32>, Vec<u32>) {
        let input: Vec<u32> = generate(dist, n as usize, seed);
        let mut data = input.clone();
        let report = rp_sort(platform, &RpConfig::new(gpus), &mut data, n);
        (report, input, data)
    }

    #[test]
    fn sorts_on_all_platforms() {
        for id in PlatformId::paper_set() {
            let p = Platform::paper(id);
            let (report, input, output) = run(&p, 4, Distribution::Uniform, 1 << 14, 3);
            assert!(report.validated, "{id:?}");
            assert!(same_multiset(&input, &output), "{id:?}");
        }
    }

    #[test]
    fn sorts_all_distributions() {
        let p = Platform::dgx_a100();
        for dist in Distribution::paper_set() {
            let (report, input, output) = run(&p, 4, dist, 1 << 14, 5);
            assert!(report.validated, "{dist:?}");
            assert!(same_multiset(&input, &output), "{dist:?}");
        }
    }

    #[test]
    fn skewed_data_stays_balanced() {
        // Exact splitter selection keeps partitions equal even for
        // duplicate-heavy input (the debug_assert in phase 5 checks it).
        let p = Platform::dgx_a100();
        let (report, input, output) = run(
            &p,
            8,
            Distribution::ZipfDuplicates {
                skew_permille: 1500,
            },
            1 << 15,
            7,
        );
        assert!(report.validated);
        assert!(same_multiset(&input, &output));
    }

    #[test]
    fn non_power_of_two_gpu_count() {
        let p = Platform::dgx_a100();
        let n = 3 * (1 << 12);
        let (report, input, output) = run(&p, 3, Distribution::Uniform, n, 9);
        assert!(report.validated);
        assert!(same_multiset(&input, &output));
        assert_eq!(report.gpus.len(), 3);
    }

    #[test]
    fn beats_p2p_sort_on_nvswitch_at_scale() {
        // The paper's Section 7 hypothesis: one all-to-all beats g-1 merge
        // stages on the DGX A100 (at paper scale, 8 GPUs).
        let p = Platform::dgx_a100();
        let scale = 1u64 << 16;
        let n = 8_000_000_000u64 / (scale * 64) * (scale * 64);
        let input: Vec<u32> = generate(Distribution::Uniform, (n / scale) as usize, 13);
        let mut a = input.clone();
        let rp = rp_sort(&p, &RpConfig::new(8).sampled(scale), &mut a, n);
        let mut b = input.clone();
        let p2p = p2p_sort(
            &p,
            &P2pConfig {
                fidelity: Fidelity::Sampled { scale },
                ..P2pConfig::new(8)
            },
            &mut b,
            n,
        );
        assert_eq!(a, b);
        assert!(
            rp.phases.merge < p2p.phases.merge,
            "RP merge {} should beat P2P merge {}",
            rp.phases.merge,
            p2p.phases.merge
        );
    }

    #[test]
    fn advantage_is_small_on_host_traversing_systems() {
        // On the AC922 the all-to-all still crosses the X-Bus for half the
        // data — the same unavoidable cross-socket volume as P2P sort's
        // global stage — so RP's gain shrinks to skipping the pair-wise
        // stages. The NVSwitch advantage (previous test) is the big one.
        let p = Platform::ibm_ac922();
        let scale = 1u64 << 16;
        let n = 2_000_000_000u64 / (scale * 16) * (scale * 16);
        let input: Vec<u32> = generate(Distribution::Uniform, (n / scale) as usize, 17);
        let mut a = input.clone();
        let rp = rp_sort(&p, &RpConfig::new(4).sampled(scale), &mut a, n);
        let mut b = input.clone();
        let p2p = p2p_sort(
            &p,
            &P2pConfig {
                fidelity: Fidelity::Sampled { scale },
                ..P2pConfig::new(4)
            },
            &mut b,
            n,
        );
        let ratio = p2p.total.as_secs_f64() / rp.total.as_secs_f64();
        assert!(
            (0.95..=1.25).contains(&ratio),
            "RP {} vs P2P {} (ratio {ratio:.2}) left the expected band",
            rp.total,
            p2p.total
        );
    }
}
