//! RP sort — the partitioning-based multi-GPU sort the paper proposes as
//! future work (Section 7).
//!
//! P2P sort's merge phase needs `g − 1` merge stages, each re-swapping
//! keys; the paper suggests instead a *partitioning-based* design that
//! exchanges keys between GPUs exactly once (all-to-all), "which would
//! highly benefit systems with many NVSwitch-interconnected GPUs such as
//! the DGX A100". This module implements that design:
//!
//! 1. chunks sort locally (same phase 1 as P2P sort);
//! 2. the host selects `g − 1` *splitters* by multisequence selection over
//!    the sorted chunks at global ranks `i·n/g` — an exact partitioning,
//!    so every GPU ends up with exactly `n/g` keys (perfect balance even
//!    for skewed data, unlike a sampled radix histogram);
//! 3. one all-to-all exchange: GPU `j` sends its `i`-th partition (a
//!    sorted run) to GPU `i`'s receive buffer; its own partition moves by
//!    a device-local copy;
//! 4. each GPU k-way-merges the `g` received runs;
//! 5. chunks copy back to the host in GPU order — the concatenation is
//!    globally sorted by the splitter property.
//!
//! On NVSwitch every flow of the all-to-all runs at full rate, so the
//! merge phase costs ~one chunk transfer regardless of `g`; on systems
//! whose P2P crosses the host (AC922, DELTA), the all-to-all hammers the
//! CPU interconnect with `O(g²)` streams and loses to P2P sort's staged
//! merges — exactly the trade-off the paper predicts.
//!
//! Like the other sorts, the phases live in a resumable driver
//! ([`RpDriver`]) so a scheduler can interleave RP jobs with other work on
//! one shared [`GpuSystem`]; [`rp_sort`] drives it alone.

use crate::exec::{DriverStep, SortDriver};
use crate::gpuset::default_gpu_set;
use crate::report::{PhaseBreakdown, SortReport};
use msort_cpu::multiway::multisequence_select;
use msort_data::{is_sorted, SortKey};
use msort_gpu::{BufId, Fidelity, GpuSystem, OpId, Phase, StreamId};
use msort_sim::{FaultPlan, GpuSortAlgo, SimDuration, SimTime};
use msort_topology::Platform;

/// Configuration for [`rp_sort`].
#[derive(Debug, Clone)]
pub struct RpConfig {
    /// Number of GPUs (any `g >= 1`; RP sort does not need a power of two,
    /// another advantage over the merge-tree design).
    pub gpus: usize,
    /// Explicit GPU set (overrides the default; RP sort is
    /// order-insensitive, so only membership matters).
    pub gpu_set: Option<Vec<usize>>,
    /// Single-GPU sorting primitive for the local sort phase.
    pub algo: GpuSortAlgo,
    /// Simulation fidelity.
    pub fidelity: Fidelity,
    /// Scheduled link faults to inject (empty: pristine fabric).
    pub faults: FaultPlan,
    /// NUMA socket whose host memory stages the input and output (0 on
    /// single-node platforms; the cross-node driver points each inner sort
    /// at its node's home socket).
    pub home_socket: usize,
}

impl RpConfig {
    /// Default configuration.
    #[must_use]
    pub fn new(gpus: usize) -> Self {
        Self {
            gpus,
            gpu_set: None,
            algo: GpuSortAlgo::ThrustLike,
            fidelity: Fidelity::Full,
            faults: FaultPlan::new(),
            home_socket: 0,
        }
    }

    /// Use sampled fidelity with the given factor.
    #[must_use]
    pub fn sampled(mut self, scale: u64) -> Self {
        self.fidelity = Fidelity::Sampled { scale };
        self
    }

    /// Use an explicit GPU set.
    #[must_use]
    pub fn with_set(mut self, set: Vec<usize>) -> Self {
        self.gpu_set = Some(set);
        self
    }

    /// Inject the given fault schedule.
    #[deprecated(note = "configure faults on the shared RunConfig \
                         (msort_core::RunConfig::rp(config).with_faults(plan)) instead")]
    #[must_use]
    pub fn with_faults(mut self, faults: FaultPlan) -> Self {
        self.faults = faults;
        self
    }
    /// Stage host buffers on `socket` instead of socket 0.
    #[must_use]
    pub fn with_home_socket(mut self, socket: usize) -> Self {
        self.home_socket = socket;
        self
    }
}

/// Where the driver is in the RP sort's phase sequence.
enum RpState {
    /// Nothing enqueued yet.
    Start,
    /// Phase 1 drained; splitter selection + all-to-all + merges next.
    Partition,
    /// Exchange and merges drained; gather next.
    Gather,
    /// Gather enqueued; next step reads the output.
    Gathering,
    /// Output taken from the host buffer; nothing left to do.
    Finished,
}

/// RP sort as a resumable [`SortDriver`] over a caller-provided
/// [`GpuSystem`]. Construction allocates the 3n-footprint buffers; timing
/// starts at the first [`RpDriver::step`].
pub struct RpDriver<K: SortKey> {
    order: Vec<usize>,
    algo: GpuSortAlgo,
    logical_len: u64,
    chunk: u64,
    scale: u64,
    host_in: BufId,
    host_out: BufId,
    bufs: Vec<(BufId, BufId, BufId)>,
    copy_in: Vec<StreamId>,
    copy_out: Vec<StreamId>,
    compute: Vec<StreamId>,
    host_stream: StreamId,
    state: RpState,
    t0: SimTime,
    t_sorted: SimTime,
    t_merged: SimTime,
    t_end: SimTime,
    htod_ops: Vec<OpId>,
    sort_ops: Vec<OpId>,
    recv_off: Vec<u64>,
    exchanged_keys: u64,
    reroutes_at_start: u64,
    output: Option<Vec<K>>,
    validated: bool,
    released: bool,
}

impl<K: SortKey> RpDriver<K> {
    /// Prepare an RP sort of `data` (physical payload for `logical_len`
    /// keys) on `sys`: import the input and pre-allocate the per-GPU
    /// primary / receive / merge-output buffers.
    ///
    /// # Panics
    /// Panics if `logical_len` is not divisible by `gpus² × scale` (each
    /// partition boundary must land on a whole sample for the exchange
    /// offsets to be scale-aligned), if the buffers exceed GPU memory, or
    /// if `config.fidelity` disagrees with the system's fidelity.
    pub fn new(
        sys: &mut GpuSystem<'_, K>,
        config: &RpConfig,
        data: Vec<K>,
        logical_len: u64,
    ) -> Self {
        let g = config.gpus;
        // RP sort is order-insensitive (no staged pairings), so take the g
        // GPUs with the best transfer properties but ignore ordering. A
        // non-power-of-two g falls back to the first g GPUs.
        let order: Vec<usize> = config.gpu_set.clone().unwrap_or_else(|| {
            if g.is_power_of_two() {
                default_gpu_set(sys.platform(), g)
            } else {
                (0..g).collect()
            }
        });
        assert_eq!(order.len(), g, "gpu_set must list exactly `gpus` GPUs");
        let scale = config.fidelity.scale();
        assert_eq!(
            scale,
            sys.world().scale(),
            "driver fidelity must match the system's"
        );
        assert!(
            logical_len.is_multiple_of(g as u64 * scale),
            "input length must divide evenly into {g} chunks of whole samples"
        );
        let chunk = logical_len / g as u64;

        let home = config.home_socket;
        let host_in = sys.world_mut().import_host(home, data, logical_len);
        let host_out = sys.world_mut().alloc_host(home, logical_len);

        // Buffers: primary chunk, aux (sort scratch + receive target), and
        // a merge output buffer per GPU — RP sort's 3n footprint is the
        // price of the single exchange. The slack absorbs
        // partition-boundary rounding.
        let slack = g as u64 * scale;
        let bufs: Vec<(BufId, BufId, BufId)> = order
            .iter()
            .map(|&gpu| {
                (
                    sys.world_mut().alloc_gpu(gpu, chunk),
                    sys.world_mut().alloc_gpu(gpu, chunk + slack),
                    sys.world_mut().alloc_gpu(gpu, chunk + slack),
                )
            })
            .collect();
        let copy_in: Vec<_> = (0..g).map(|_| sys.stream()).collect();
        let copy_out: Vec<_> = (0..g).map(|_| sys.stream()).collect();
        let compute: Vec<_> = (0..g).map(|_| sys.stream()).collect();
        let host_stream = sys.stream();

        Self {
            order,
            algo: config.algo,
            logical_len,
            chunk,
            scale,
            host_in,
            host_out,
            bufs,
            copy_in,
            copy_out,
            compute,
            host_stream,
            state: RpState::Start,
            t0: SimTime::ZERO,
            t_sorted: SimTime::ZERO,
            t_merged: SimTime::ZERO,
            t_end: SimTime::ZERO,
            htod_ops: Vec::with_capacity(g),
            sort_ops: Vec::with_capacity(g),
            recv_off: vec![0; g],
            exchanged_keys: 0,
            reroutes_at_start: sys.rerouted_transfers(),
            output: None,
            validated: false,
            released: false,
        }
    }

    /// Total device memory (in physical keys) this sort occupies per GPU.
    #[must_use]
    pub fn device_keys_per_gpu(&self) -> u64 {
        let slack = self.order.len() as u64 * self.scale;
        (self.chunk + 2 * (self.chunk + slack)) / self.scale
    }
}

impl<K: SortKey> SortDriver<K> for RpDriver<K> {
    fn step(&mut self, sys: &mut GpuSystem<'_, K>) -> DriverStep {
        let g = self.order.len();
        match self.state {
            RpState::Start => {
                // ---- Phase 1: scatter + local sort. ----
                self.t0 = sys.now();
                let mut wait = Vec::with_capacity(g);
                for i in 0..g {
                    let up = sys.memcpy(
                        self.copy_in[i],
                        self.host_in,
                        i as u64 * self.chunk,
                        self.bufs[i].0,
                        0,
                        self.chunk,
                        &[],
                        Phase::HtoD,
                    );
                    let so = sys.gpu_sort(
                        self.compute[i],
                        self.algo,
                        self.bufs[i].0,
                        (0, self.chunk),
                        self.bufs[i].1,
                        &[up],
                    );
                    self.htod_ops.push(up);
                    self.sort_ops.push(so);
                    wait.push(so);
                }
                self.state = RpState::Partition;
                DriverStep::Wait(wait)
            }
            RpState::Partition => {
                self.t_sorted = sys.now();
                let mut wait = Vec::new();

                // ---- Phase 2: splitter selection (host side, O(g log n)
                // reads of this job's own device buffers). ----
                let views: Vec<&[K]> = (0..g)
                    .map(|i| sys.world().slice(self.bufs[i].0, 0, self.chunk))
                    .collect();
                let total_phys: usize = views.iter().map(|v| v.len()).sum();
                // splits[r][j]: how many keys of chunk j have global rank
                // < r*n/g.
                let splits: Vec<Vec<usize>> = (0..=g)
                    .map(|r| multisequence_select(&views, r * total_phys / g))
                    .collect();
                drop(views);
                let split_cost = sys.cost_model().pivot_selection(self.chunk);
                let split_op = sys.delay(
                    self.host_stream,
                    msort_sim::SimDuration(split_cost.0 * g as u64),
                    &[],
                    Phase::Merge,
                );
                wait.push(split_op);

                // ---- Phase 3: the all-to-all exchange. ----
                // Receive offsets: GPU i receives partition (j -> i) from
                // every j.
                let mut recv_deps: Vec<Vec<OpId>> = vec![Vec::new(); g];
                let mut recv_runs: Vec<Vec<(u64, u64)>> = vec![Vec::new(); g];
                #[allow(clippy::needless_range_loop)] // i and j index splits and bufs together
                for j in 0..g {
                    for i in 0..g {
                        let from = splits[i][j] as u64 * self.scale;
                        let to = splits[i + 1][j] as u64 * self.scale;
                        let len = to - from;
                        if len == 0 {
                            continue;
                        }
                        let s = sys.stream();
                        let op = sys.memcpy(
                            s,
                            self.bufs[j].0,
                            from,
                            self.bufs[i].1,
                            self.recv_off[i],
                            len,
                            &[split_op],
                            Phase::Merge,
                        );
                        if i != j {
                            self.exchanged_keys += len;
                        }
                        recv_runs[i].push((self.recv_off[i], len));
                        self.recv_off[i] += len;
                        recv_deps[i].push(op);
                        wait.push(op);
                    }
                }

                // ---- Phase 4: per-GPU k-way merge of the received runs.
                for i in 0..g {
                    let inputs: Vec<(BufId, u64, u64)> = recv_runs[i]
                        .iter()
                        .map(|&(off, len)| (self.bufs[i].1, off, len))
                        .collect();
                    let mo = sys.gpu_multiway_merge(
                        self.compute[i],
                        inputs,
                        self.bufs[i].2,
                        &recv_deps[i],
                    );
                    wait.push(mo);
                }
                self.state = RpState::Gather;
                DriverStep::Wait(wait)
            }
            RpState::Gather => {
                // ---- Phase 5: gather (partition sizes are exact n/g by
                // selection). ----
                self.t_merged = sys.now();
                let mut wait = Vec::with_capacity(g);
                for i in 0..g {
                    wait.push(sys.memcpy(
                        self.copy_out[i],
                        self.bufs[i].2,
                        0,
                        self.host_out,
                        i as u64 * self.chunk,
                        self.recv_off[i],
                        &[],
                        Phase::DtoH,
                    ));
                    debug_assert_eq!(
                        self.recv_off[i], self.chunk,
                        "exact selection balances partitions"
                    );
                }
                self.state = RpState::Gathering;
                DriverStep::Wait(wait)
            }
            RpState::Gathering => {
                self.t_end = sys.now();
                let output = sys.world().buffer(self.host_out).data.clone();
                self.validated = is_sorted(&output);
                self.output = Some(output);
                self.state = RpState::Finished;
                DriverStep::Done
            }
            RpState::Finished => DriverStep::Done,
        }
    }

    fn take_output(&mut self) -> Vec<K> {
        self.output.take().expect("RP sort has not finished")
    }

    fn validated(&self) -> bool {
        self.validated
    }

    fn release(&mut self, sys: &mut GpuSystem<'_, K>) {
        if self.released {
            return;
        }
        self.released = true;
        sys.world_mut().free(self.host_in);
        sys.world_mut().free(self.host_out);
        for &(a, b, c) in &self.bufs {
            sys.world_mut().free(a);
            sys.world_mut().free(b);
            sys.world_mut().free(c);
        }
    }

    fn report(&self, sys: &GpuSystem<'_, K>) -> SortReport {
        let htod_busy = sys.ops_busy(&self.htod_ops);
        let sort_busy = sys.ops_busy(&self.sort_ops);
        let window = self.t_sorted.since(self.t0);
        let (htod, sort) = crate::p2p::split_overlapped(window, htod_busy, sort_busy);
        SortReport {
            algorithm: "RP sort".into(),
            platform: sys.platform().id.name().into(),
            gpus: self.order.clone(),
            keys: self.logical_len,
            bytes: self.logical_len * K::DATA_TYPE.key_bytes(),
            total: self.t_end.since(self.t0),
            phases: PhaseBreakdown {
                htod,
                sort,
                merge: self.t_merged.since(self.t_sorted),
                dtoh: self.t_end.since(self.t_merged),
            },
            validated: self.validated,
            p2p_swapped_keys: self.exchanged_keys,
            rerouted_transfers: sys.rerouted_transfers() - self.reroutes_at_start,
            max_partition_keys: 0,
            inter_node: SimDuration::ZERO,
        }
    }
}

/// Sort `data` (physical payload for `logical_len` keys) with RP sort.
///
/// # Panics
/// Panics if `logical_len` is not divisible by `gpus² × scale` (each
/// partition boundary must land on a whole sample for the exchange
/// offsets to be scale-aligned) or the buffers exceed GPU memory.
pub fn rp_sort<K: SortKey>(
    platform: &Platform,
    config: &RpConfig,
    data: &mut Vec<K>,
    logical_len: u64,
) -> SortReport {
    // The shared RunConfig path builds the system (fidelity + faults +
    // recorder) and drives the RpDriver to completion.
    crate::run::run_sort(
        platform,
        &crate::run::RunConfig::rp(config.clone()),
        data,
        logical_len,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{p2p_sort, P2pConfig};
    use msort_data::{generate, same_multiset, Distribution};
    use msort_topology::PlatformId;

    fn run(
        platform: &Platform,
        gpus: usize,
        dist: Distribution,
        n: u64,
        seed: u64,
    ) -> (SortReport, Vec<u32>, Vec<u32>) {
        let input: Vec<u32> = generate(dist, n as usize, seed);
        let mut data = input.clone();
        let report = rp_sort(platform, &RpConfig::new(gpus), &mut data, n);
        (report, input, data)
    }

    #[test]
    fn sorts_on_all_platforms() {
        for id in PlatformId::paper_set() {
            let p = Platform::paper(id);
            let (report, input, output) = run(&p, 4, Distribution::Uniform, 1 << 14, 3);
            assert!(report.validated, "{id:?}");
            assert!(same_multiset(&input, &output), "{id:?}");
        }
    }

    #[test]
    fn sorts_all_distributions() {
        let p = Platform::dgx_a100();
        for dist in Distribution::paper_set() {
            let (report, input, output) = run(&p, 4, dist, 1 << 14, 5);
            assert!(report.validated, "{dist:?}");
            assert!(same_multiset(&input, &output), "{dist:?}");
        }
    }

    #[test]
    fn skewed_data_stays_balanced() {
        // Exact splitter selection keeps partitions equal even for
        // duplicate-heavy input (the debug_assert in phase 5 checks it).
        let p = Platform::dgx_a100();
        let (report, input, output) = run(
            &p,
            8,
            Distribution::ZipfDuplicates {
                skew_permille: 1500,
            },
            1 << 15,
            7,
        );
        assert!(report.validated);
        assert!(same_multiset(&input, &output));
    }

    #[test]
    fn non_power_of_two_gpu_count() {
        let p = Platform::dgx_a100();
        let n = 3 * (1 << 12);
        let (report, input, output) = run(&p, 3, Distribution::Uniform, n, 9);
        assert!(report.validated);
        assert!(same_multiset(&input, &output));
        assert_eq!(report.gpus.len(), 3);
    }

    #[test]
    fn beats_p2p_sort_on_nvswitch_at_scale() {
        // The paper's Section 7 hypothesis: one all-to-all beats g-1 merge
        // stages on the DGX A100 (at paper scale, 8 GPUs).
        let p = Platform::dgx_a100();
        let scale = 1u64 << 16;
        let n = 8_000_000_000u64 / (scale * 64) * (scale * 64);
        let input: Vec<u32> = generate(Distribution::Uniform, (n / scale) as usize, 13);
        let mut a = input.clone();
        let rp = rp_sort(&p, &RpConfig::new(8).sampled(scale), &mut a, n);
        let mut b = input.clone();
        let p2p = p2p_sort(
            &p,
            &P2pConfig {
                fidelity: Fidelity::Sampled { scale },
                ..P2pConfig::new(8)
            },
            &mut b,
            n,
        );
        assert_eq!(a, b);
        assert!(
            rp.phases.merge < p2p.phases.merge,
            "RP merge {} should beat P2P merge {}",
            rp.phases.merge,
            p2p.phases.merge
        );
    }

    #[test]
    fn advantage_is_small_on_host_traversing_systems() {
        // On the AC922 the all-to-all still crosses the X-Bus for half the
        // data — the same unavoidable cross-socket volume as P2P sort's
        // global stage — so RP's gain shrinks to skipping the pair-wise
        // stages. The NVSwitch advantage (previous test) is the big one.
        let p = Platform::ibm_ac922();
        let scale = 1u64 << 16;
        let n = 2_000_000_000u64 / (scale * 16) * (scale * 16);
        let input: Vec<u32> = generate(Distribution::Uniform, (n / scale) as usize, 17);
        let mut a = input.clone();
        let rp = rp_sort(&p, &RpConfig::new(4).sampled(scale), &mut a, n);
        let mut b = input.clone();
        let p2p = p2p_sort(
            &p,
            &P2pConfig {
                fidelity: Fidelity::Sampled { scale },
                ..P2pConfig::new(4)
            },
            &mut b,
            n,
        );
        let ratio = p2p.total.as_secs_f64() / rp.total.as_secs_f64();
        assert!(
            (0.95..=1.25).contains(&ratio),
            "RP {} vs P2P {} (ratio {ratio:.2}) left the expected band",
            rp.total,
            p2p.total
        );
    }
}
