//! GPU sample sort — the splitter-based multi-GPU sort of Leischner,
//! Osipov & Sanders (arXiv 0909.5649), lifted to the multi-GPU setting.
//!
//! Where RP sort partitions *sorted* chunks exactly by multisequence
//! selection, sample sort partitions *unsorted* chunks approximately by an
//! oversampled splitter set, and only sorts after the exchange:
//!
//! 1. chunks copy to the GPUs (no local sort — the partition pass works on
//!    raw keys);
//! 2. the host draws `oversample × g` evenly spaced samples per chunk,
//!    sorts the combined sample, and keeps `g − 1` splitters (deterministic
//!    sampling: stride midpoints, no RNG, so runs are bit-reproducible from
//!    the data alone);
//! 3. every GPU histograms + stably scatters its chunk into `g` contiguous
//!    buckets in one partition pass ([`msort_gpu::primitives::device_partition`],
//!    backed by the OneSweep-style tiled counting scatter in
//!    `msort_cpu::sample`);
//! 4. one all-to-all exchange ships bucket `i` of every chunk to GPU `i`;
//! 5. each GPU sorts its received partition, and the chunks gather back in
//!    GPU order — globally sorted by the splitter property.
//!
//! Splitters compare `(radix image, sample position)` lexicographically, so
//! duplicate-heavy inputs still split into bounded buckets (a plain key
//! comparison would dump every duplicate of a hot key into one bucket).
//! The receive partitions are only *approximately* `n/g`; the realized
//! imbalance is reported as [`SortReport::max_partition_keys`] and the
//! receive buffers are sized from the exact histogram counts.
//!
//! The interconnect profile sits between P2P sort and RP sort: like RP it
//! exchanges keys exactly once (all-to-all), but it moves *unsorted* keys
//! and replaces RP's k-way merge with a full local sort — trading merge
//! bandwidth for sort throughput, which wins when the per-GPU sort is fast
//! relative to the fabric (NVSwitch) and loses when the partition pass and
//! the second sort cannot hide behind transfer time.
//!
//! Like the other sorts, the phases live in a resumable driver
//! ([`SampleSortDriver`]); [`sample_sort`] drives it alone.

use crate::exec::{DriverStep, SortDriver};
use crate::gpuset::default_gpu_set;
use crate::report::{PhaseBreakdown, SortReport};
use msort_cpu::sample::{bucket_counts, select_splitters, Splitter};
use msort_data::{is_sorted, SortKey};
use msort_gpu::{BufId, Fidelity, GpuSystem, OpId, Phase, StreamId};
use msort_sim::{FaultPlan, GpuSortAlgo, SimDuration, SimTime};
use msort_topology::Platform;

/// Configuration for [`sample_sort`].
#[derive(Debug, Clone)]
pub struct SampleSortConfig {
    /// Number of GPUs (any `g >= 1`; the bucket exchange does not need a
    /// power of two).
    pub gpus: usize,
    /// Explicit GPU set (overrides the default; the all-to-all is
    /// order-insensitive, so only membership matters).
    pub gpu_set: Option<Vec<usize>>,
    /// Single-GPU sorting primitive for the post-exchange final sorts.
    pub algo: GpuSortAlgo,
    /// Simulation fidelity.
    pub fidelity: Fidelity,
    /// Scheduled link faults to inject (empty: pristine fabric).
    pub faults: FaultPlan,
    /// NUMA socket whose host memory stages the input and output (0 on
    /// single-node platforms; the cross-node driver points each inner sort
    /// at its node's home socket).
    pub home_socket: usize,
    /// Samples drawn per chunk per bucket. Higher values tighten the
    /// bucket-imbalance bound at the cost of a longer (host-side) splitter
    /// selection; the classic sample-sort analysis suggests `O(log n)`.
    pub oversample: usize,
}

impl SampleSortConfig {
    /// Default configuration.
    #[must_use]
    pub fn new(gpus: usize) -> Self {
        Self {
            gpus,
            gpu_set: None,
            algo: GpuSortAlgo::ThrustLike,
            fidelity: Fidelity::Full,
            faults: FaultPlan::new(),
            home_socket: 0,
            oversample: 32,
        }
    }

    /// Stage host buffers on `socket` instead of socket 0.
    #[must_use]
    pub fn with_home_socket(mut self, socket: usize) -> Self {
        self.home_socket = socket;
        self
    }

    /// Use sampled fidelity with the given factor.
    #[must_use]
    pub fn sampled(mut self, scale: u64) -> Self {
        self.fidelity = Fidelity::Sampled { scale };
        self
    }

    /// Use an explicit GPU set.
    #[must_use]
    pub fn with_set(mut self, set: Vec<usize>) -> Self {
        self.gpu_set = Some(set);
        self
    }

    /// Use the given per-chunk-per-bucket oversampling factor.
    #[must_use]
    pub fn with_oversample(mut self, oversample: usize) -> Self {
        self.oversample = oversample;
        self
    }
}

/// Where the driver is in the sample sort's phase sequence.
enum SampleState {
    /// Nothing enqueued yet.
    Start,
    /// HtoD drained; splitter selection + partition + exchange next.
    Partition,
    /// Exchange drained; per-GPU final sorts next.
    FinalSort,
    /// Final sorts drained; gather next.
    Gather,
    /// Gather enqueued; next step reads the output.
    Gathering,
    /// Output taken from the host buffer; nothing left to do.
    Finished,
}

/// Sample sort as a resumable [`SortDriver`] over a caller-provided
/// [`GpuSystem`]. Construction allocates the partition-phase buffers; the
/// data-dependent receive buffers are sized from the splitter histogram
/// mid-run. Timing starts at the first [`SampleSortDriver::step`].
pub struct SampleSortDriver<K: SortKey> {
    order: Vec<usize>,
    algo: GpuSortAlgo,
    oversample: usize,
    logical_len: u64,
    chunk: u64,
    scale: u64,
    host_in: BufId,
    host_out: BufId,
    /// Per GPU: (primary chunk, partition scatter target).
    bufs: Vec<(BufId, BufId)>,
    /// Per GPU: receive buffer, allocated after splitter selection.
    recv: Vec<BufId>,
    /// Per GPU: final-sort scratch, allocated once the partition buffers
    /// are freed (keeps the footprint at `max(2 + r, 2r)` chunks).
    recv_aux: Vec<BufId>,
    /// Per GPU: logical keys received in the exchange.
    recv_len: Vec<u64>,
    copy_in: Vec<StreamId>,
    copy_out: Vec<StreamId>,
    compute: Vec<StreamId>,
    host_stream: StreamId,
    state: SampleState,
    t0: SimTime,
    t_in: SimTime,
    t_exchanged: SimTime,
    t_sorted: SimTime,
    t_end: SimTime,
    exchanged_keys: u64,
    max_partition_keys: u64,
    reroutes_at_start: u64,
    output: Option<Vec<K>>,
    validated: bool,
    released: bool,
}

impl<K: SortKey> SampleSortDriver<K> {
    /// Prepare a sample sort of `data` (physical payload for `logical_len`
    /// keys) on `sys`: import the input and pre-allocate the per-GPU
    /// primary and scatter buffers (the receive buffers are data-dependent
    /// and allocated after splitter selection).
    ///
    /// # Panics
    /// Panics if `logical_len` is not divisible by `gpus × scale` (chunks
    /// must hold whole samples), if the buffers exceed GPU memory, or if
    /// `config.fidelity` disagrees with the system's fidelity.
    pub fn new(
        sys: &mut GpuSystem<'_, K>,
        config: &SampleSortConfig,
        data: Vec<K>,
        logical_len: u64,
    ) -> Self {
        let g = config.gpus;
        // The bucket exchange is order-insensitive (one all-to-all, no
        // staged pairings), so membership matters but ordering does not —
        // same policy as RP sort.
        let order: Vec<usize> = config.gpu_set.clone().unwrap_or_else(|| {
            if g.is_power_of_two() {
                default_gpu_set(sys.platform(), g)
            } else {
                (0..g).collect()
            }
        });
        assert_eq!(order.len(), g, "gpu_set must list exactly `gpus` GPUs");
        let scale = config.fidelity.scale();
        assert_eq!(
            scale,
            sys.world().scale(),
            "driver fidelity must match the system's"
        );
        assert!(
            logical_len.is_multiple_of(g as u64 * scale),
            "input length must divide evenly into {g} chunks of whole samples"
        );
        let chunk = logical_len / g as u64;

        let home = config.home_socket;
        let host_in = sys.world_mut().import_host(home, data, logical_len);
        let host_out = sys.world_mut().alloc_host(home, logical_len);

        // Partition-phase buffers: the primary chunk and the scatter
        // target of the local partition pass. The receive buffers are
        // sized from the actual histogram when the splitters are known.
        let bufs: Vec<(BufId, BufId)> = order
            .iter()
            .map(|&gpu| {
                (
                    sys.world_mut().alloc_gpu(gpu, chunk),
                    sys.world_mut().alloc_gpu(gpu, chunk),
                )
            })
            .collect();
        let copy_in: Vec<_> = (0..g).map(|_| sys.stream()).collect();
        let copy_out: Vec<_> = (0..g).map(|_| sys.stream()).collect();
        let compute: Vec<_> = (0..g).map(|_| sys.stream()).collect();
        let host_stream = sys.stream();

        Self {
            order,
            algo: config.algo,
            oversample: config.oversample,
            logical_len,
            chunk,
            scale,
            host_in,
            host_out,
            bufs,
            recv: Vec::with_capacity(g),
            recv_aux: Vec::with_capacity(g),
            recv_len: vec![0; g],
            copy_in,
            copy_out,
            compute,
            host_stream,
            state: SampleState::Start,
            t0: SimTime::ZERO,
            t_in: SimTime::ZERO,
            t_exchanged: SimTime::ZERO,
            t_sorted: SimTime::ZERO,
            t_end: SimTime::ZERO,
            exchanged_keys: 0,
            max_partition_keys: 0,
            reroutes_at_start: sys.rerouted_transfers(),
            output: None,
            validated: false,
            released: false,
        }
    }
}

impl<K: SortKey> SortDriver<K> for SampleSortDriver<K> {
    fn step(&mut self, sys: &mut GpuSystem<'_, K>) -> DriverStep {
        let g = self.order.len();
        match self.state {
            SampleState::Start => {
                // ---- Phase 1: scatter the raw chunks (no local sort). ----
                self.t0 = sys.now();
                let mut wait = Vec::with_capacity(g);
                for i in 0..g {
                    wait.push(sys.memcpy(
                        self.copy_in[i],
                        self.host_in,
                        i as u64 * self.chunk,
                        self.bufs[i].0,
                        0,
                        self.chunk,
                        &[],
                        Phase::HtoD,
                    ));
                }
                self.state = SampleState::Partition;
                DriverStep::Wait(wait)
            }
            SampleState::Partition => {
                self.t_in = sys.now();
                let mut wait = Vec::new();

                // ---- Phase 2: splitter selection (host side, over the
                // raw device chunks). Deterministic stride sampling: the
                // splitter set depends only on the data, so runs are
                // bit-reproducible from the seed. ----
                let views: Vec<&[K]> = (0..g)
                    .map(|i| sys.world().slice(self.bufs[i].0, 0, self.chunk))
                    .collect();
                let splitters: Vec<Splitter<K>> = select_splitters(&views, g, self.oversample);
                // Physical per-(chunk, bucket) histogram; `resize` only
                // matters for the degenerate empty-input case (no samples,
                // one catch-all bucket).
                let counts: Vec<Vec<u64>> = views
                    .iter()
                    .map(|v| {
                        let mut c = bucket_counts(v, &splitters);
                        c.resize(g, 0);
                        c
                    })
                    .collect();
                drop(views);
                // Selection cost: each GPU contributes an O(oversample·g)
                // sample; model it like the pivot selections of the other
                // sorts, once per contributing chunk.
                let split_cost = sys.cost_model().pivot_selection(self.chunk);
                let split_op = sys.delay(
                    self.host_stream,
                    SimDuration(split_cost.0 * g as u64),
                    &[],
                    Phase::Partition,
                );
                wait.push(split_op);

                // Receive partition sizes (physical), and the realized
                // imbalance for the report.
                let recv_phys: Vec<u64> = (0..g)
                    .map(|i| counts.iter().map(|c| c[i]).sum::<u64>())
                    .collect();
                self.max_partition_keys = recv_phys.iter().copied().max().unwrap_or(0) * self.scale;
                for (i, &phys) in recv_phys.iter().enumerate() {
                    self.recv_len[i] = phys * self.scale;
                    let gpu = self.order[i];
                    let buf = sys.world_mut().alloc_gpu(gpu, self.recv_len[i]);
                    self.recv.push(buf);
                }

                // ---- Phase 3: local partition pass on every GPU. ----
                let part_ops: Vec<OpId> = (0..g)
                    .map(|j| {
                        sys.gpu_partition(
                            self.compute[j],
                            self.bufs[j].0,
                            (0, self.chunk),
                            self.bufs[j].1,
                            splitters.clone(),
                            &[split_op],
                        )
                    })
                    .collect();

                // ---- Phase 4: the all-to-all bucket exchange. Copies
                // stage their source when they *start* (after the
                // partition op completes), so they ship the scattered
                // buckets. ----
                let mut recv_off = vec![0u64; g];
                #[allow(clippy::needless_range_loop)] // i and j index counts and bufs together
                for j in 0..g {
                    let mut send_off = 0u64;
                    for i in 0..g {
                        let len = counts[j][i] * self.scale;
                        if len == 0 {
                            continue;
                        }
                        let s = sys.stream();
                        let op = sys.memcpy(
                            s,
                            self.bufs[j].0,
                            send_off,
                            self.recv[i],
                            recv_off[i],
                            len,
                            &[part_ops[j]],
                            Phase::Merge,
                        );
                        if i != j {
                            self.exchanged_keys += len;
                        }
                        send_off += len;
                        recv_off[i] += len;
                        wait.push(op);
                    }
                }
                wait.extend(part_ops);
                self.state = SampleState::FinalSort;
                DriverStep::Wait(wait)
            }
            SampleState::FinalSort => {
                // ---- Phase 5: per-GPU sort of the received partition.
                // The partition-phase buffers are dead now; freeing them
                // caps the per-GPU footprint at max(2 + r, 2r) chunks for
                // realized imbalance r. ----
                self.t_exchanged = sys.now();
                for &(a, b) in &self.bufs {
                    sys.world_mut().free(a);
                    sys.world_mut().free(b);
                }
                for i in 0..g {
                    let aux = sys.world_mut().alloc_gpu(self.order[i], self.recv_len[i]);
                    self.recv_aux.push(aux);
                }
                let wait: Vec<OpId> = (0..g)
                    .map(|i| {
                        sys.gpu_sort(
                            self.compute[i],
                            self.algo,
                            self.recv[i],
                            (0, self.recv_len[i]),
                            self.recv_aux[i],
                            &[],
                        )
                    })
                    .collect();
                self.state = SampleState::Gather;
                DriverStep::Wait(wait)
            }
            SampleState::Gather => {
                // ---- Phase 6: gather in GPU order (bucket i's keys all
                // precede bucket i+1's in splitter order). ----
                self.t_sorted = sys.now();
                let mut wait = Vec::with_capacity(g);
                let mut out_off = 0u64;
                for i in 0..g {
                    if self.recv_len[i] == 0 {
                        continue;
                    }
                    wait.push(sys.memcpy(
                        self.copy_out[i],
                        self.recv[i],
                        0,
                        self.host_out,
                        out_off,
                        self.recv_len[i],
                        &[],
                        Phase::DtoH,
                    ));
                    out_off += self.recv_len[i];
                }
                debug_assert_eq!(out_off, self.logical_len, "buckets partition the input");
                self.state = SampleState::Gathering;
                DriverStep::Wait(wait)
            }
            SampleState::Gathering => {
                self.t_end = sys.now();
                let output = sys.world().buffer(self.host_out).data.clone();
                self.validated = is_sorted(&output);
                self.output = Some(output);
                self.state = SampleState::Finished;
                DriverStep::Done
            }
            SampleState::Finished => DriverStep::Done,
        }
    }

    fn take_output(&mut self) -> Vec<K> {
        self.output.take().expect("sample sort has not finished")
    }

    fn validated(&self) -> bool {
        self.validated
    }

    fn release(&mut self, sys: &mut GpuSystem<'_, K>) {
        if self.released {
            return;
        }
        self.released = true;
        sys.world_mut().free(self.host_in);
        sys.world_mut().free(self.host_out);
        // `free` is idempotent, so the partition buffers (already freed
        // mid-run on the happy path) are safe to free again after an
        // abandoned run.
        for &(a, b) in &self.bufs {
            sys.world_mut().free(a);
            sys.world_mut().free(b);
        }
        for &b in self.recv.iter().chain(&self.recv_aux) {
            sys.world_mut().free(b);
        }
    }

    fn report(&self, sys: &GpuSystem<'_, K>) -> SortReport {
        SortReport {
            algorithm: "Sample sort".into(),
            platform: sys.platform().id.name().into(),
            gpus: self.order.clone(),
            keys: self.logical_len,
            bytes: self.logical_len * K::DATA_TYPE.key_bytes(),
            total: self.t_end.since(self.t0),
            phases: PhaseBreakdown {
                htod: self.t_in.since(self.t0),
                // Splitter selection + partition pass + all-to-all: the
                // inter-GPU phase, reported as the merge slot of the
                // paper's four-phase breakdown.
                merge: self.t_exchanged.since(self.t_in),
                sort: self.t_sorted.since(self.t_exchanged),
                dtoh: self.t_end.since(self.t_sorted),
            },
            validated: self.validated,
            p2p_swapped_keys: self.exchanged_keys,
            rerouted_transfers: sys.rerouted_transfers() - self.reroutes_at_start,
            max_partition_keys: self.max_partition_keys,
            inter_node: SimDuration::ZERO,
        }
    }
}

/// Sort `data` (physical payload for `logical_len` keys) with GPU sample
/// sort.
///
/// # Panics
/// Panics if `logical_len` is not divisible by `gpus × scale` (chunks must
/// hold whole samples) or the buffers exceed GPU memory.
pub fn sample_sort<K: SortKey>(
    platform: &Platform,
    config: &SampleSortConfig,
    data: &mut Vec<K>,
    logical_len: u64,
) -> SortReport {
    crate::run::run_sort(
        platform,
        &crate::run::RunConfig::sample(config.clone()),
        data,
        logical_len,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use msort_data::{generate, same_multiset, Distribution};
    use msort_topology::PlatformId;

    fn run(
        platform: &Platform,
        gpus: usize,
        dist: Distribution,
        n: u64,
        seed: u64,
    ) -> (SortReport, Vec<u32>, Vec<u32>) {
        let input: Vec<u32> = generate(dist, n as usize, seed);
        let mut data = input.clone();
        let report = sample_sort(platform, &SampleSortConfig::new(gpus), &mut data, n);
        (report, input, data)
    }

    #[test]
    fn sorts_on_all_platforms() {
        for id in PlatformId::paper_set() {
            let p = Platform::paper(id);
            let (report, input, output) = run(&p, 4, Distribution::Uniform, 1 << 14, 3);
            assert!(report.validated, "{id:?}");
            assert!(same_multiset(&input, &output), "{id:?}");
        }
    }

    #[test]
    fn sorts_all_distributions() {
        let p = Platform::dgx_a100();
        for dist in Distribution::paper_set() {
            let (report, input, output) = run(&p, 4, dist, 1 << 14, 5);
            assert!(report.validated, "{dist:?}");
            assert!(same_multiset(&input, &output), "{dist:?}");
        }
    }

    #[test]
    fn duplicate_heavy_input_stays_bounded() {
        // The (key, position) splitter tie-break splits hot keys across
        // buckets; without it a 1500-permille Zipf would dump most of the
        // input on one GPU.
        let p = Platform::dgx_a100();
        let n = 1u64 << 15;
        let g = 8;
        let (report, input, output) = run(
            &p,
            g,
            Distribution::ZipfDuplicates {
                skew_permille: 1500,
            },
            n,
            7,
        );
        assert!(report.validated);
        assert!(same_multiset(&input, &output));
        assert!(
            report.max_partition_keys <= 2 * (n / g as u64),
            "bucket imbalance {} exceeds 2x the ideal {}",
            report.max_partition_keys,
            n / g as u64
        );
    }

    #[test]
    fn non_power_of_two_gpu_count() {
        let p = Platform::dgx_a100();
        let n = 3 * (1 << 12);
        let (report, input, output) = run(&p, 3, Distribution::Uniform, n, 9);
        assert!(report.validated);
        assert!(same_multiset(&input, &output));
        assert_eq!(report.gpus.len(), 3);
    }

    #[test]
    fn exchanges_once_like_rp() {
        // Sample sort's defining property: at most one all-to-all, so the
        // exchanged volume is bounded by n (strictly less: the diagonal
        // bucket stays local).
        let p = Platform::dgx_a100();
        let n = 1u64 << 16;
        let (report, _, _) = run(&p, 4, Distribution::Uniform, n, 11);
        assert!(report.p2p_swapped_keys < n);
        assert!(report.p2p_swapped_keys > 0);
    }

    #[test]
    fn sampled_fidelity_runs() {
        let p = Platform::dgx_a100();
        let scale = 1u64 << 10;
        let n = (1u64 << 24) / (scale * 8) * (scale * 8);
        let mut data: Vec<u32> = generate(Distribution::Uniform, (n / scale) as usize, 13);
        let report = sample_sort(&p, &SampleSortConfig::new(8).sampled(scale), &mut data, n);
        assert!(report.validated);
        assert_eq!(report.keys, n);
    }
}
