//! Multiway mergesort — the k-way merge-tree multi-GPU sort after Karsin
//! et al. (arXiv 1702.07961).
//!
//! Where P2P sort keeps all `g` GPUs busy through `g − 1` pairwise
//! swap-and-re-merge stages, multiway mergesort treats the sorted chunks as
//! the leaves of a binary merge tree and merges runs *pairwise across
//! GPUs*:
//!
//! 1. chunks sort locally (same phase 1 as P2P/RP sort);
//! 2. `⌈log₂ g⌉` merge levels: at each level, runs pair up; the loser's
//!    run ships whole to the winner's GPU, which concatenates both runs
//!    into a fresh buffer and merges them with the zero-copy
//!    `gpu_merge_into` path ([`msort_cpu::mergesort::parallel_merge_into`]
//!    under the hood). An odd run gets a bye to the next level;
//! 3. the final run (all `n` keys, on one GPU) copies back to the host in
//!    one DtoH transfer.
//!
//! The data-movement shape is the *opposite* of the all-to-all designs:
//! every level moves half the data point-to-point over whichever links
//! connect the paired GPUs, and the merge work concentrates onto fewer
//! GPUs each level — the top merge runs on one GPU over the full `n`.
//! That makes the algorithm merge-bound (`O(n log g)` merge traffic) and
//! its tail serial, the classic weakness Karsin's analysis predicts for
//! `k = 2`; its strength is simplicity and strictly point-to-point
//! transfers (no g²-stream all-to-all hammering a host interconnect).
//!
//! Memory: the winner of the top-level merge transiently holds `2n` keys
//! (concatenated input + merge output), the steepest footprint of the five
//! algorithm families — the serve layer's admission control accounts for
//! it.
//!
//! Like the other sorts, the phases live in a resumable driver
//! ([`MwmsDriver`]); [`mwms_sort`] drives it alone.

use crate::exec::{DriverStep, SortDriver};
use crate::gpuset::default_gpu_set;
use crate::report::{PhaseBreakdown, SortReport};
use msort_data::{is_sorted, SortKey};
use msort_gpu::{BufId, Fidelity, GpuSystem, OpId, Phase, StreamId};
use msort_sim::{FaultPlan, GpuSortAlgo, SimDuration, SimTime};
use msort_topology::Platform;

/// Configuration for [`mwms_sort`].
#[derive(Debug, Clone)]
pub struct MwmsConfig {
    /// Number of GPUs (any `g >= 1`; odd runs get merge-tree byes).
    pub gpus: usize,
    /// Explicit GPU set (overrides the default). Order matters: adjacent
    /// entries pair first, and earlier entries win the pair (accumulate
    /// the merged runs), so the first entry hosts the final merge.
    pub gpu_set: Option<Vec<usize>>,
    /// Single-GPU sorting primitive for the local sort phase.
    pub algo: GpuSortAlgo,
    /// Simulation fidelity.
    pub fidelity: Fidelity,
    /// Scheduled link faults to inject (empty: pristine fabric).
    pub faults: FaultPlan,
    /// NUMA socket whose host memory stages the input and output (0 on
    /// single-node platforms; the cross-node driver points each inner sort
    /// at its node's home socket).
    pub home_socket: usize,
}

impl MwmsConfig {
    /// Default configuration.
    #[must_use]
    pub fn new(gpus: usize) -> Self {
        Self {
            gpus,
            gpu_set: None,
            algo: GpuSortAlgo::ThrustLike,
            fidelity: Fidelity::Full,
            faults: FaultPlan::new(),
            home_socket: 0,
        }
    }

    /// Stage host buffers on `socket` instead of socket 0.
    #[must_use]
    pub fn with_home_socket(mut self, socket: usize) -> Self {
        self.home_socket = socket;
        self
    }

    /// Use sampled fidelity with the given factor.
    #[must_use]
    pub fn sampled(mut self, scale: u64) -> Self {
        self.fidelity = Fidelity::Sampled { scale };
        self
    }

    /// Use an explicit GPU set.
    #[must_use]
    pub fn with_set(mut self, set: Vec<usize>) -> Self {
        self.gpu_set = Some(set);
        self
    }
}

/// A sorted run living on one GPU during the merge tree.
struct Run {
    buf: BufId,
    /// Logical keys in the run.
    len: u64,
    /// Position in the driver's GPU order (indexes `compute`/`order`).
    pos: usize,
}

/// A pairwise merge whose inputs have been concatenated into `src`.
struct PendingMerge {
    src: BufId,
    /// Logical split point (end of the winner's run).
    mid: u64,
    /// Logical total length.
    len: u64,
    pos: usize,
}

/// Where the driver is in the merge tree.
enum MwmsState {
    /// Nothing enqueued yet.
    Start,
    /// Concatenate the next level's run pairs (or move to gather when one
    /// run remains).
    Copy,
    /// Concatenations drained; enqueue the level's merges.
    Merge,
    /// Merge tree drained; gather next.
    Gather,
    /// Gather enqueued; next step reads the output.
    Gathering,
    /// Output taken from the host buffer; nothing left to do.
    Finished,
}

/// Multiway mergesort as a resumable [`SortDriver`] over a caller-provided
/// [`GpuSystem`]. Merge-tree buffers are allocated level by level (and the
/// consumed level freed), so the footprint peaks at `2n` on the final
/// winner rather than `n log g` fleet-wide.
pub struct MwmsDriver<K: SortKey> {
    order: Vec<usize>,
    algo: GpuSortAlgo,
    logical_len: u64,
    chunk: u64,
    host_in: BufId,
    host_out: BufId,
    copy_in: Vec<StreamId>,
    compute: Vec<StreamId>,
    state: MwmsState,
    level: u32,
    runs: Vec<Run>,
    pending: Vec<PendingMerge>,
    /// Buffers consumed by the ops the driver is currently waiting on;
    /// freed when the next step runs (i.e. once those ops drained).
    to_free: Vec<BufId>,
    /// Every buffer this driver ever allocated on a GPU, for release().
    allocated: Vec<BufId>,
    t0: SimTime,
    t_sorted: SimTime,
    t_merged: SimTime,
    t_end: SimTime,
    htod_ops: Vec<OpId>,
    sort_ops: Vec<OpId>,
    exchanged_keys: u64,
    reroutes_at_start: u64,
    output: Option<Vec<K>>,
    validated: bool,
    released: bool,
}

impl<K: SortKey> MwmsDriver<K> {
    /// Prepare a multiway mergesort of `data` (physical payload for
    /// `logical_len` keys) on `sys`: import the input and pre-allocate the
    /// phase-1 chunk buffers.
    ///
    /// # Panics
    /// Panics if `logical_len` is not divisible by `gpus × scale` (chunks
    /// must hold whole samples), if the buffers exceed GPU memory, or if
    /// `config.fidelity` disagrees with the system's fidelity.
    pub fn new(
        sys: &mut GpuSystem<'_, K>,
        config: &MwmsConfig,
        data: Vec<K>,
        logical_len: u64,
    ) -> Self {
        let g = config.gpus;
        // Adjacent GPUs pair first, so the default set's stage-0-adjacency
        // (fast pairwise links first) is exactly the right order here too.
        let order: Vec<usize> = config.gpu_set.clone().unwrap_or_else(|| {
            if g.is_power_of_two() {
                default_gpu_set(sys.platform(), g)
            } else {
                (0..g).collect()
            }
        });
        assert_eq!(order.len(), g, "gpu_set must list exactly `gpus` GPUs");
        let scale = config.fidelity.scale();
        assert_eq!(
            scale,
            sys.world().scale(),
            "driver fidelity must match the system's"
        );
        assert!(
            logical_len.is_multiple_of(g as u64 * scale),
            "input length must divide evenly into {g} chunks of whole samples"
        );
        let chunk = logical_len / g as u64;

        let home = config.home_socket;
        let host_in = sys.world_mut().import_host(home, data, logical_len);
        let host_out = sys.world_mut().alloc_host(home, logical_len);

        // Phase-1 buffers: primary chunk + sort scratch per GPU. The
        // scratch buffers die after the local sorts; merge-tree buffers
        // are allocated per level.
        let mut allocated = Vec::new();
        let mut runs = Vec::with_capacity(g);
        let mut scratch = Vec::with_capacity(g);
        for (pos, &gpu) in order.iter().enumerate() {
            let primary = sys.world_mut().alloc_gpu(gpu, chunk);
            let aux = sys.world_mut().alloc_gpu(gpu, chunk);
            allocated.push(primary);
            allocated.push(aux);
            runs.push(Run {
                buf: primary,
                len: chunk,
                pos,
            });
            scratch.push(aux);
        }
        let copy_in: Vec<_> = (0..g).map(|_| sys.stream()).collect();
        let compute: Vec<_> = (0..g).map(|_| sys.stream()).collect();

        Self {
            order,
            algo: config.algo,
            logical_len,
            chunk,
            host_in,
            host_out,
            copy_in,
            compute,
            state: MwmsState::Start,
            level: 0,
            runs,
            pending: Vec::new(),
            to_free: scratch,
            allocated,
            t0: SimTime::ZERO,
            t_sorted: SimTime::ZERO,
            t_merged: SimTime::ZERO,
            t_end: SimTime::ZERO,
            htod_ops: Vec::with_capacity(g),
            sort_ops: Vec::with_capacity(g),
            exchanged_keys: 0,
            reroutes_at_start: sys.rerouted_transfers(),
            output: None,
            validated: false,
            released: false,
        }
    }

    fn free_drained(&mut self, sys: &mut GpuSystem<'_, K>) {
        for buf in self.to_free.drain(..) {
            sys.world_mut().free(buf);
        }
    }
}

impl<K: SortKey> SortDriver<K> for MwmsDriver<K> {
    fn step(&mut self, sys: &mut GpuSystem<'_, K>) -> DriverStep {
        let g = self.order.len();
        match self.state {
            MwmsState::Start => {
                // ---- Phase 1: scatter + local sort (aux freed once the
                // sorts drain). ----
                self.t0 = sys.now();
                let mut wait = Vec::with_capacity(g);
                for i in 0..g {
                    let up = sys.memcpy(
                        self.copy_in[i],
                        self.host_in,
                        i as u64 * self.chunk,
                        self.runs[i].buf,
                        0,
                        self.chunk,
                        &[],
                        Phase::HtoD,
                    );
                    let so = sys.gpu_sort(
                        self.compute[i],
                        self.algo,
                        self.runs[i].buf,
                        (0, self.chunk),
                        self.to_free[i],
                        &[up],
                    );
                    self.htod_ops.push(up);
                    self.sort_ops.push(so);
                    wait.push(so);
                }
                self.state = MwmsState::Copy;
                DriverStep::Wait(wait)
            }
            MwmsState::Copy => {
                // ---- Phase 2a (per level): pair runs and concatenate
                // each pair on the winner's GPU. ----
                if self.level == 0 {
                    self.t_sorted = sys.now();
                }
                self.free_drained(sys);
                if self.runs.len() == 1 {
                    self.state = MwmsState::Gather;
                    return self.step(sys);
                }
                let mut wait = Vec::new();
                let mut next_runs = Vec::with_capacity(self.runs.len().div_ceil(2));
                let runs = std::mem::take(&mut self.runs);
                for pair in runs.chunks(2) {
                    if pair.len() == 1 {
                        // Odd run out: a bye to the next level.
                        next_runs.push(Run {
                            buf: pair[0].buf,
                            len: pair[0].len,
                            pos: pair[0].pos,
                        });
                        continue;
                    }
                    let (w, l) = (&pair[0], &pair[1]);
                    let total = w.len + l.len;
                    let gpu = self.order[w.pos];
                    let src = sys.world_mut().alloc_gpu(gpu, total);
                    self.allocated.push(src);
                    // Winner's half moves device-locally; the loser's run
                    // crosses the fabric point-to-point.
                    let s1 = sys.stream();
                    let c1 = sys.memcpy(s1, w.buf, 0, src, 0, w.len, &[], Phase::Merge);
                    let s2 = sys.stream();
                    let c2 = sys.memcpy(s2, l.buf, 0, src, w.len, l.len, &[], Phase::Merge);
                    self.exchanged_keys += l.len;
                    wait.push(c1);
                    wait.push(c2);
                    self.to_free.push(w.buf);
                    self.to_free.push(l.buf);
                    self.pending.push(PendingMerge {
                        src,
                        mid: w.len,
                        len: total,
                        pos: w.pos,
                    });
                    next_runs.push(Run {
                        // Placeholder; the Merge arm replaces it with the
                        // freshly allocated output buffer.
                        buf: src,
                        len: total,
                        pos: w.pos,
                    });
                }
                self.runs = next_runs;
                self.state = MwmsState::Merge;
                DriverStep::Wait(wait)
            }
            MwmsState::Merge => {
                // ---- Phase 2b (per level): the pairwise merges. The
                // consumed input runs are freed here (their copies
                // drained), so the peak footprint is src + dst = 2x the
                // level's run length on each winner. ----
                self.free_drained(sys);
                let mut wait = Vec::new();
                for pm in self.pending.drain(..) {
                    let gpu = self.order[pm.pos];
                    let dst = sys.world_mut().alloc_gpu(gpu, pm.len);
                    self.allocated.push(dst);
                    let mo =
                        sys.gpu_merge_into(self.compute[pm.pos], pm.src, pm.mid, pm.len, dst, &[]);
                    wait.push(mo);
                    self.to_free.push(pm.src);
                    // Point the run at the merge output.
                    let run = self
                        .runs
                        .iter_mut()
                        .find(|r| r.buf == pm.src)
                        .expect("pending merge has a run");
                    run.buf = dst;
                }
                self.level += 1;
                self.state = MwmsState::Copy;
                DriverStep::Wait(wait)
            }
            MwmsState::Gather => {
                // ---- Phase 3: one DtoH transfer of the final run. ----
                self.t_merged = sys.now();
                let run = &self.runs[0];
                debug_assert_eq!(run.len, self.logical_len, "merge tree covers the input");
                let s = sys.stream();
                let op = sys.memcpy(s, run.buf, 0, self.host_out, 0, run.len, &[], Phase::DtoH);
                self.state = MwmsState::Gathering;
                DriverStep::Wait(vec![op])
            }
            MwmsState::Gathering => {
                self.t_end = sys.now();
                let output = sys.world().buffer(self.host_out).data.clone();
                self.validated = is_sorted(&output);
                self.output = Some(output);
                self.state = MwmsState::Finished;
                DriverStep::Done
            }
            MwmsState::Finished => DriverStep::Done,
        }
    }

    fn take_output(&mut self) -> Vec<K> {
        self.output
            .take()
            .expect("multiway mergesort has not finished")
    }

    fn validated(&self) -> bool {
        self.validated
    }

    fn release(&mut self, sys: &mut GpuSystem<'_, K>) {
        if self.released {
            return;
        }
        self.released = true;
        sys.world_mut().free(self.host_in);
        sys.world_mut().free(self.host_out);
        // `free` is idempotent, so re-freeing the levels already freed
        // mid-run is safe.
        for &buf in &self.allocated {
            sys.world_mut().free(buf);
        }
    }

    fn report(&self, sys: &GpuSystem<'_, K>) -> SortReport {
        let htod_busy = sys.ops_busy(&self.htod_ops);
        let sort_busy = sys.ops_busy(&self.sort_ops);
        let window = self.t_sorted.since(self.t0);
        let (htod, sort) = crate::p2p::split_overlapped(window, htod_busy, sort_busy);
        SortReport {
            algorithm: "Multiway mergesort".into(),
            platform: sys.platform().id.name().into(),
            gpus: self.order.clone(),
            keys: self.logical_len,
            bytes: self.logical_len * K::DATA_TYPE.key_bytes(),
            total: self.t_end.since(self.t0),
            phases: PhaseBreakdown {
                htod,
                sort,
                merge: self.t_merged.since(self.t_sorted),
                dtoh: self.t_end.since(self.t_merged),
            },
            validated: self.validated,
            p2p_swapped_keys: self.exchanged_keys,
            rerouted_transfers: sys.rerouted_transfers() - self.reroutes_at_start,
            max_partition_keys: 0,
            inter_node: SimDuration::ZERO,
        }
    }
}

/// Sort `data` (physical payload for `logical_len` keys) with multiway
/// mergesort.
///
/// # Panics
/// Panics if `logical_len` is not divisible by `gpus × scale` (chunks must
/// hold whole samples) or the buffers exceed GPU memory (note the final
/// winner transiently holds `2n` keys).
pub fn mwms_sort<K: SortKey>(
    platform: &Platform,
    config: &MwmsConfig,
    data: &mut Vec<K>,
    logical_len: u64,
) -> SortReport {
    crate::run::run_sort(
        platform,
        &crate::run::RunConfig::mwms(config.clone()),
        data,
        logical_len,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use msort_data::{generate, same_multiset, Distribution};
    use msort_topology::PlatformId;

    fn run(
        platform: &Platform,
        gpus: usize,
        dist: Distribution,
        n: u64,
        seed: u64,
    ) -> (SortReport, Vec<u32>, Vec<u32>) {
        let input: Vec<u32> = generate(dist, n as usize, seed);
        let mut data = input.clone();
        let report = mwms_sort(platform, &MwmsConfig::new(gpus), &mut data, n);
        (report, input, data)
    }

    #[test]
    fn sorts_on_all_platforms() {
        for id in PlatformId::paper_set() {
            let p = Platform::paper(id);
            let (report, input, output) = run(&p, 4, Distribution::Uniform, 1 << 14, 3);
            assert!(report.validated, "{id:?}");
            assert!(same_multiset(&input, &output), "{id:?}");
        }
    }

    #[test]
    fn sorts_all_distributions() {
        let p = Platform::dgx_a100();
        for dist in Distribution::paper_set() {
            let (report, input, output) = run(&p, 4, dist, 1 << 14, 5);
            assert!(report.validated, "{dist:?}");
            assert!(same_multiset(&input, &output), "{dist:?}");
        }
    }

    #[test]
    fn non_power_of_two_gpu_count_gets_byes() {
        let p = Platform::dgx_a100();
        for g in [3u64, 5, 6, 7] {
            let n = g * (1 << 12);
            let (report, input, output) = run(&p, g as usize, Distribution::Uniform, n, 9);
            assert!(report.validated, "g={g}");
            assert!(same_multiset(&input, &output), "g={g}");
            assert_eq!(report.gpus.len(), g as usize);
        }
    }

    #[test]
    fn single_gpu_degenerates_to_local_sort() {
        let p = Platform::dgx_a100();
        let (report, input, output) = run(&p, 1, Distribution::Uniform, 1 << 13, 11);
        assert!(report.validated);
        assert!(same_multiset(&input, &output));
        assert_eq!(report.p2p_swapped_keys, 0);
    }

    #[test]
    fn merge_traffic_is_n_log_g_shaped() {
        // Each of the log2(g) levels ships half the data: g=4 moves n
        // keys total (n/2 per level), strictly more point-to-point volume
        // than RP's single exchange on the same input would.
        let p = Platform::dgx_a100();
        let n = 1u64 << 16;
        let (report, _, _) = run(&p, 4, Distribution::Uniform, n, 13);
        assert_eq!(report.p2p_swapped_keys, n);
    }

    #[test]
    fn sampled_fidelity_runs() {
        let p = Platform::dgx_a100();
        let scale = 1u64 << 10;
        let n = (1u64 << 24) / (scale * 8) * (scale * 8);
        let mut data: Vec<u32> = generate(Distribution::Uniform, (n / scale) as usize, 13);
        let report = mwms_sort(&p, &MwmsConfig::new(8).sampled(scale), &mut data, n);
        assert!(report.validated);
        assert_eq!(report.keys, n);
    }
}
