//! Resumable sort drivers: each multi-GPU sort as an explicit state
//! machine over a *caller-provided* [`GpuSystem`].
//!
//! The classic entry points ([`crate::p2p_sort`], [`crate::rp_sort`],
//! [`crate::het_sort`]) construct their own system, run their phases with
//! `synchronize()` between them, and return — one sort, one clock. That
//! shape cannot express a sort *service*: many jobs in flight at once,
//! contending for the same links on one shared simulated clock.
//!
//! A [`SortDriver`] splits a sort at exactly its host-synchronization
//! points. Each [`SortDriver::step`] call enqueues the next phase's
//! operations and returns the ops to wait for; the caller decides how to
//! advance the clock — [`drive`] runs a single driver to completion
//! (reproducing the classic single-job behavior bit-for-bit), while a
//! scheduler such as `msort-serve` interleaves many drivers on one
//! [`GpuSystem`], stepping whichever job's frontier completed first.
//!
//! Because host-side work between phases (pivot selection, splitter
//! selection) reads only the stepping job's own buffers, interleaving
//! drivers never changes any job's *data* — only its timing, which is the
//! point: co-scheduled jobs genuinely contend in the fluid-flow engine.

use crate::report::SortReport;
use msort_data::SortKey;
use msort_gpu::{GpuSystem, OpId};

/// What a driver wants after enqueuing a phase.
#[derive(Debug, Clone)]
pub enum DriverStep {
    /// Work was enqueued; call [`SortDriver::step`] again once **all**
    /// listed ops have completed.
    Wait(Vec<OpId>),
    /// The sort finished: output, validation, and report are available.
    Done,
}

/// A sort expressed as a resumable state machine over a shared executor.
pub trait SortDriver<K: SortKey> {
    /// Enqueue the next phase. Called once to start the sort and again
    /// every time the previously returned wait-set has fully completed.
    fn step(&mut self, sys: &mut GpuSystem<'_, K>) -> DriverStep;

    /// Take the sorted output (physical payload). Valid once `step`
    /// returned [`DriverStep::Done`]; panics before that.
    fn take_output(&mut self) -> Vec<K>;

    /// Whether the output was verified sorted.
    fn validated(&self) -> bool;

    /// Free every buffer this driver allocated (device and host). Called
    /// by schedulers to return device memory to the fleet when the job's
    /// gang lease ends.
    fn release(&mut self, sys: &mut GpuSystem<'_, K>);

    /// Build the per-job report. Valid once the driver is done.
    fn report(&self, sys: &GpuSystem<'_, K>) -> SortReport;
}

/// Run `driver` to completion as the only job on `sys`.
///
/// For a single job this is exactly the classic phase loop: every wait-set
/// drains fully before the next phase is planned, so timings are
/// bit-identical to the pre-driver implementations.
pub fn drive<K: SortKey, D: SortDriver<K> + ?Sized>(sys: &mut GpuSystem<'_, K>, driver: &mut D) {
    loop {
        match driver.step(sys) {
            DriverStep::Done => return,
            DriverStep::Wait(mut ops) => loop {
                ops.retain(|&o| !sys.op_done(o));
                if ops.is_empty() {
                    break;
                }
                sys.run_until(&ops, None);
            },
        }
    }
}
