//! The paper's three evaluation platforms (Table 1), calibrated.
//!
//! Every link capacity below is the paper's own *measured single-stream*
//! rate from Figures 2–7, not the datasheet number; all multi-stream,
//! parallel, and bidirectional results are then *predicted* by the max-min
//! contention model and compared against the paper in EXPERIMENTS.md.
//!
//! Calibration sources, per platform:
//!
//! **IBM Power System AC922** (2× POWER9, 4× V100, NVLink 2.0 everywhere,
//! X-Bus between sockets):
//! * CPU↔GPU and GPU↔GPU three-brick NVLink 2.0: 72 GB/s measured of 75
//!   theoretical (Fig. 2a / 5a); local bidirectional copies reach 127 GB/s,
//!   modeled as a CPU↔GPU duplex cap.
//! * X-Bus: 41 GB/s sustained toward the remote socket, 35 GB/s back
//!   (Fig. 2a), 65 GB/s duplex (remote bidi bar), though host-traversing
//!   *P2P* streams only reach 32 GB/s (Fig. 5a) — modeled as a per-flow
//!   rate cap — and four concurrent P2P streams collapse to 53 GB/s
//!   (Fig. 5b) — modeled as extra duplex weight.
//! * NUMA memory: parallel HtoD saturates at 141 GB/s (read), DtoH at
//!   109 GB/s (write), mixed streams at ~136-137 GB/s combined (Fig. 2b).
//!
//! **DELTA System D22x M4 PS** (2× Xeon Gold 6148, 4× V100, PCIe 3.0 to the
//! host, two-brick NVLink 2.0 P2P ring, UPI between sockets):
//! * PCIe 3.0: 12–13 GB/s per direction measured, 20 GB/s duplex (Fig. 3a).
//! * NVLink 2.0 pairs (0,1), (2,3), (0,2): 48 GB/s (Fig. 6a); pair (1,3) is
//!   single-brick (Table 1b's 25 GB/s link), ~24 GB/s.
//! * UPI: 62 GB/s per direction (never the bottleneck for CPU-GPU copies).
//! * Host-traversing P2P (e.g. 0→3) crosses PCIe twice and reaches only
//!   9 GB/s (Fig. 6a) — per-flow rate cap.
//!
//! **NVIDIA DGX A100** (2× EPYC 7742, 8× A100, NVLink 3.0 NVSwitch, PCIe
//! 4.0 with one switch per GPU *pair*, Infinity Fabric between sockets):
//! * PCIe 4.0: 24–25 GB/s per direction, 39 GB/s duplex (Fig. 4); GPU pairs
//!   (0,1)(2,3)(4,5)(6,7) share one switch uplink — the scalability ceiling
//!   the paper identifies.
//! * NVSwitch: 265 GB/s effective per GPU per direction (serial P2P
//!   measures 279, all-to-all parallel settles at ~265 per stream, Fig. 7).
//! * Memory (socket 0): 88 GB/s read, 100 GB/s write, 112 GB/s combined —
//!   the saturation plateaus of the 4- and 8-GPU bars in Fig. 4.

use crate::constraint::{ConstraintKind, ConstraintTable};
use crate::graph::{gbps, GpuModel, LinkKind, MemSpec, NodeId, Topology, TopologyBuilder};
use crate::route::{Endpoint, Route};
use crate::FlowRequest;

/// Which system a [`Platform`] models.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PlatformId {
    /// IBM Power System AC922.
    IbmAc922,
    /// DELTA System D22x M4 PS.
    DeltaD22x,
    /// NVIDIA DGX A100.
    DgxA100,
    /// A user-built platform.
    Custom,
}

impl PlatformId {
    /// Display name as used in the paper.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            PlatformId::IbmAc922 => "IBM Power System AC922",
            PlatformId::DeltaD22x => "DELTA System D22x M4 PS",
            PlatformId::DgxA100 => "NVIDIA DGX A100",
            PlatformId::Custom => "custom platform",
        }
    }

    /// The three paper platforms.
    #[must_use]
    pub const fn paper_set() -> [PlatformId; 3] {
        [
            PlatformId::IbmAc922,
            PlatformId::DeltaD22x,
            PlatformId::DgxA100,
        ]
    }

    /// GPUs in one box of this platform.
    ///
    /// # Panics
    /// Panics for [`PlatformId::Custom`], which has no fixed shape.
    #[must_use]
    pub fn gpus_per_node(self) -> usize {
        match self {
            PlatformId::IbmAc922 | PlatformId::DeltaD22x => 4,
            PlatformId::DgxA100 => 8,
            PlatformId::Custom => panic!("custom platforms have no fixed node shape"),
        }
    }

    /// The host CPU silicon of this platform.
    #[must_use]
    pub fn cpu_model(self) -> CpuModel {
        match self {
            PlatformId::IbmAc922 => CpuModel::Power9,
            PlatformId::DeltaD22x => CpuModel::XeonGold6148,
            PlatformId::DgxA100 => CpuModel::Epyc7742,
            PlatformId::Custom => CpuModel::Custom,
        }
    }

    /// The host-traversing-P2P calibration of this platform, if any.
    #[must_use]
    pub fn host_p2p_policy(self) -> Option<HostP2pPolicy> {
        match self {
            PlatformId::IbmAc922 => Some(HostP2pPolicy {
                rate_cap: gbps(32.0),
                duplex_weight: 1.22,
            }),
            PlatformId::DeltaD22x => Some(HostP2pPolicy {
                rate_cap: gbps(9.0),
                duplex_weight: 1.3,
            }),
            // All-to-all NVSwitch: P2P never traverses the host.
            PlatformId::DgxA100 | PlatformId::Custom => None,
        }
    }
}

/// Host CPU silicon; keys the CPU-side cost models in `msort-sim`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CpuModel {
    /// 2× IBM POWER9, 16 cores @ 2.7 GHz each, SMT4.
    Power9,
    /// 2× Intel Xeon Gold 6148, 20 cores @ 2.4 GHz each.
    XeonGold6148,
    /// 2× AMD EPYC 7742, 64 cores @ 2.25 GHz each.
    Epyc7742,
    /// User-defined.
    Custom,
}

impl CpuModel {
    /// Display string (Table 1).
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            CpuModel::Power9 => "2x IBM POWER9 (16 x 2.7 GHz)",
            CpuModel::XeonGold6148 => "2x Intel Xeon Gold 6148 (20 x 2.4 GHz)",
            CpuModel::Epyc7742 => "2x AMD EPYC 7742 (64 x 2.25 GHz)",
            CpuModel::Custom => "custom CPU",
        }
    }

    /// Physical cores across both sockets.
    #[must_use]
    pub fn total_cores(self) -> usize {
        match self {
            CpuModel::Power9 => 32,
            CpuModel::XeonGold6148 => 40,
            CpuModel::Epyc7742 => 128,
            CpuModel::Custom => 16,
        }
    }
}

/// Extra friction for P2P transfers that traverse the host side, which the
/// paper measures to be slower than the bottleneck link would suggest.
#[derive(Debug, Clone, Copy)]
pub struct HostP2pPolicy {
    /// Per-flow rate cap (bytes/s) for host-traversing P2P streams.
    pub rate_cap: f64,
    /// Weight multiplier applied to duplex constraints crossed by such
    /// flows (models the protocol overhead that makes four concurrent
    /// host-traversing P2P streams collapse further than fair sharing).
    pub duplex_weight: f64,
}

/// Inter-node fabric technology for cluster platforms.
///
/// The *effective* per-direction rates are the sustained large-message
/// GPU-to-GPU rates De Sensi et al. report in "Exploring GPU-to-GPU
/// Communication: Insights into Supercomputer Interconnects" (arXiv
/// 2408.14090): about 96% of line rate for 200 Gbit/s InfiniBand HDR and
/// NDR halved lanes, slightly less for Slingshot 11's Ethernet-derived
/// protocol. Theoretical rates are on the [`LinkKind`]s.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Fabric {
    /// InfiniBand HDR 4x: 200 Gbit/s, ~24.1 GB/s sustained per direction.
    IbHdr,
    /// InfiniBand NDR 4x: 400 Gbit/s, ~48.2 GB/s sustained per direction.
    IbNdr,
    /// HPE Cray Slingshot 11: 200 Gbit/s, ~23.4 GB/s sustained per
    /// direction.
    Slingshot,
}

impl Fabric {
    /// The link technology this fabric's links carry.
    #[must_use]
    pub fn link_kind(self) -> LinkKind {
        match self {
            Fabric::IbHdr => LinkKind::InfiniBandHdr,
            Fabric::IbNdr => LinkKind::InfiniBandNdr,
            Fabric::Slingshot => LinkKind::Slingshot,
        }
    }

    /// Calibrated sustained per-direction rate of one fabric link
    /// (bytes/s).
    #[must_use]
    pub fn effective_per_dir(self) -> f64 {
        match self {
            Fabric::IbHdr => gbps(24.1),
            Fabric::IbNdr => gbps(48.2),
            Fabric::Slingshot => gbps(23.4),
        }
    }

    /// Display name.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Fabric::IbHdr => "InfiniBand HDR",
            Fabric::IbNdr => "InfiniBand NDR",
            Fabric::Slingshot => "Slingshot",
        }
    }

    /// The CLI flag spelling (`--fabric ib-hdr|ib-ndr|slingshot`).
    #[must_use]
    pub fn flag(self) -> &'static str {
        match self {
            Fabric::IbHdr => "ib-hdr",
            Fabric::IbNdr => "ib-ndr",
            Fabric::Slingshot => "slingshot",
        }
    }

    /// Parse a CLI flag spelling.
    #[must_use]
    pub fn parse(flag: &str) -> Option<Self> {
        match flag {
            "ib-hdr" => Some(Fabric::IbHdr),
            "ib-ndr" => Some(Fabric::IbNdr),
            "slingshot" => Some(Fabric::Slingshot),
            _ => None,
        }
    }

    /// All fabrics, for sweeps.
    #[must_use]
    pub const fn all() -> [Fabric; 3] {
        [Fabric::IbHdr, Fabric::IbNdr, Fabric::Slingshot]
    }
}

/// How a cluster platform's one big topology divides into nodes.
///
/// A cluster is a single [`Topology`] with globally dense GPU and socket
/// indices: node `k` of a cluster of `g`-GPU, `s`-socket boxes owns GPUs
/// `k*g .. (k+1)*g` and sockets `k*s .. (k+1)*s`, plus its NICs. The
/// layout is pure bookkeeping — routing, allocation, and faults operate on
/// the flat graph.
#[derive(Debug, Clone, Copy)]
pub struct ClusterLayout {
    /// Number of nodes.
    pub nodes: usize,
    /// GPUs per node.
    pub gpus_per_node: usize,
    /// CPU sockets per node.
    pub sockets_per_node: usize,
    /// NICs per node (one per socket).
    pub nics_per_node: usize,
    /// The inter-node fabric.
    pub fabric: Fabric,
}

impl ClusterLayout {
    /// The node owning global GPU index `gpu`.
    #[must_use]
    pub fn node_of_gpu(&self, gpu: usize) -> usize {
        gpu / self.gpus_per_node
    }

    /// Global GPU indices of node `node`.
    #[must_use]
    pub fn node_gpus(&self, node: usize) -> std::ops::Range<usize> {
        node * self.gpus_per_node..(node + 1) * self.gpus_per_node
    }

    /// The first (home) socket of node `node` — where that node's sorts
    /// stage their host buffers.
    #[must_use]
    pub fn node_socket(&self, node: usize) -> usize {
        node * self.sockets_per_node
    }
}

/// A complete modeled system: topology + calibration policies.
#[derive(Debug, Clone)]
pub struct Platform {
    /// Which system this is (the *node* hardware, for clusters).
    pub id: PlatformId,
    /// The interconnect graph.
    pub topology: Topology,
    /// Host CPU silicon.
    pub cpu_model: CpuModel,
    /// Host-traversing-P2P calibration, if the platform needs one.
    pub host_p2p: Option<HostP2pPolicy>,
    /// Node layout when this platform is a multi-node cluster.
    pub cluster: Option<ClusterLayout>,
    table: ConstraintTable,
}

impl Platform {
    /// Build a platform around a custom topology.
    ///
    /// # Panics
    /// Panics if the topology violates a structural invariant (no CPU,
    /// sparse indices, unreachable GPUs) — see
    /// [`msort_topology::graph::Topology::validate`].
    #[must_use]
    pub fn custom(topology: Topology, cpu_model: CpuModel) -> Self {
        Self::from_parts(PlatformId::Custom, topology, cpu_model, None, None)
    }

    /// Assemble a platform from explicit parts, validating the topology and
    /// building the constraint table. This is how constructors outside this
    /// crate (notably `msort-cluster`) mint platforms.
    ///
    /// # Panics
    /// Panics if the topology violates a structural invariant — see
    /// [`crate::graph::Topology::validate`].
    #[must_use]
    pub fn from_parts(
        id: PlatformId,
        topology: Topology,
        cpu_model: CpuModel,
        host_p2p: Option<HostP2pPolicy>,
        cluster: Option<ClusterLayout>,
    ) -> Self {
        if let Err(e) = topology.validate() {
            panic!("invalid topology: {e}");
        }
        let table = ConstraintTable::new(&topology);
        Self {
            id,
            topology,
            cpu_model,
            host_p2p,
            cluster,
            table,
        }
    }

    /// Instantiate one of the paper's platforms.
    #[must_use]
    pub fn paper(id: PlatformId) -> Self {
        match id {
            PlatformId::IbmAc922 => Self::ibm_ac922(),
            PlatformId::DeltaD22x => Self::delta_d22x(),
            PlatformId::DgxA100 => Self::dgx_a100(),
            PlatformId::Custom => panic!("use Platform::custom for custom platforms"),
        }
    }

    /// The IBM Power System AC922 (Table 1a).
    #[must_use]
    pub fn ibm_ac922() -> Self {
        Self::one_paper_node(PlatformId::IbmAc922)
    }

    /// The DELTA System D22x M4 PS (Table 1b).
    #[must_use]
    pub fn delta_d22x() -> Self {
        Self::one_paper_node(PlatformId::DeltaD22x)
    }

    /// The NVIDIA DGX A100 (Table 1c).
    #[must_use]
    pub fn dgx_a100() -> Self {
        Self::one_paper_node(PlatformId::DgxA100)
    }

    fn one_paper_node(id: PlatformId) -> Self {
        let mut b = TopologyBuilder::new();
        append_paper_node(&mut b, id, 0);
        Self::from_parts(id, b.build(), id.cpu_model(), id.host_p2p_policy(), None)
    }

    /// The constraint table of this platform's topology.
    #[must_use]
    pub fn constraint_table(&self) -> &ConstraintTable {
        &self.table
    }

    /// Build the allocator request for one transfer along `route`, applying
    /// this platform's host-traversing-P2P calibration when it applies.
    #[must_use]
    pub fn flow_request(&self, route: &Route) -> FlowRequest {
        let mut constraints = self.table.route_constraints(&self.topology, route);
        let mut rate_cap = None;
        let is_p2p = matches!(
            (route.src, route.dst),
            (Endpoint::GpuMem { .. }, Endpoint::GpuMem { .. })
        );
        // Host-side P2P friction is a within-node phenomenon; flows that
        // cross the inter-node fabric are paced by the NIC links instead.
        if is_p2p && route.traverses_host(&self.topology) && !route.crosses_nic(&self.topology) {
            if let Some(policy) = self.host_p2p {
                rate_cap = Some(policy.rate_cap);
                for (id, weight) in &mut constraints {
                    if matches!(
                        self.table.constraints()[id.0].kind,
                        ConstraintKind::LinkDuplex { .. }
                    ) {
                        *weight *= policy.duplex_weight;
                    }
                }
            }
        }
        FlowRequest {
            constraints,
            rate_cap,
        }
    }

    /// Number of GPUs.
    #[must_use]
    pub fn gpu_count(&self) -> usize {
        self.topology.gpu_count()
    }

    /// Combined GPU memory in bytes (the HET-sort large-data threshold).
    #[must_use]
    pub fn combined_gpu_memory(&self) -> u64 {
        (0..self.gpu_count())
            .map(|g| self.topology.gpu_memory_bytes(g))
            .sum()
    }

    /// Display name; cluster platforms include node count and fabric.
    #[must_use]
    pub fn name(&self) -> String {
        match self.cluster {
            Some(c) if c.nodes > 1 => {
                format!("{}x {} ({})", c.nodes, self.id.name(), c.fabric.name())
            }
            _ => self.id.name().to_owned(),
        }
    }

    /// Multi-line, Table 1-style description of the platform.
    #[must_use]
    pub fn describe(&self) -> String {
        use std::fmt::Write as _;
        let mut s = String::new();
        let _ = writeln!(s, "{}", self.name());
        let _ = writeln!(s, "  CPU: {}", self.cpu_model.name());
        let gpu_model = self.topology.gpu_model(0);
        let _ = writeln!(
            s,
            "  GPUs: {}x NVIDIA {} ({} GB)",
            self.gpu_count(),
            gpu_model.name(),
            gpu_model.memory_bytes() >> 30,
        );
        let _ = writeln!(s, "  Links:");
        for link in self.topology.links() {
            let a = &self.topology.node(link.a).name;
            let bn = &self.topology.node(link.b).name;
            let duplex = link
                .cap_duplex
                .map(|d| format!(", duplex {:.0} GB/s", d / 1e9))
                .unwrap_or_default();
            let _ = writeln!(
                s,
                "    {a} -- {bn}: {} ({:.0}/{:.0} GB/s{duplex})",
                link.kind.name(),
                link.cap_ab / 1e9,
                link.cap_ba / 1e9,
            );
        }
        s
    }

    /// A tiny PCIe-only platform for unit tests and examples: one socket,
    /// `g` GPUs, no P2P interconnects, generous memory caps.
    #[must_use]
    pub fn test_pcie(g: usize) -> Self {
        let mem = MemSpec {
            capacity_bytes: 64 * (1 << 30),
            read_cap: gbps(80.0),
            write_cap: gbps(70.0),
            combined_cap: Some(gbps(100.0)),
        };
        let mut b = TopologyBuilder::new();
        let c0 = b.cpu(0, mem);
        for i in 0..g {
            let gpu = b.gpu(i, GpuModel::Custom);
            b.link_duplex(c0, gpu, LinkKind::Pcie3, gbps(13.0), gbps(20.0));
        }
        Self::custom(b.build(), CpuModel::Custom)
    }
}

/// Append one node's worth of a paper platform's hardware to `b`, using
/// globally dense indices: node `k` gets CPU sockets `2k` and `2k + 1` and
/// GPUs `k*g .. (k+1)*g`. Returns the node's CPU socket ids in socket
/// order. The single-box constructors call this with `node = 0`; the
/// cluster constructors in `msort-cluster` call it once per node and then
/// wire the NICs and fabric on top.
///
/// # Panics
/// Panics for [`PlatformId::Custom`], which has no fixed node shape.
pub fn append_paper_node(b: &mut TopologyBuilder, id: PlatformId, node: usize) -> Vec<NodeId> {
    match id {
        PlatformId::IbmAc922 => append_ac922_node(b, node),
        PlatformId::DeltaD22x => append_delta_node(b, node),
        PlatformId::DgxA100 => append_dgx_node(b, node),
        PlatformId::Custom => panic!("custom platforms have no per-node builder"),
    }
}

fn append_ac922_node(b: &mut TopologyBuilder, node: usize) -> Vec<NodeId> {
    let mem = MemSpec {
        capacity_bytes: 256 * (1 << 30),
        read_cap: gbps(141.0),
        write_cap: gbps(109.0),
        combined_cap: Some(gbps(137.0)),
    };
    let c0 = b.cpu(2 * node, mem);
    let c1 = b.cpu(2 * node + 1, mem);
    let g0 = 4 * node;
    let gpus: Vec<_> = (g0..g0 + 4).map(|i| b.gpu(i, GpuModel::V100)).collect();
    let nv3 = LinkKind::NvLink2 { bricks: 3 };
    // CPU-GPU NVLink 2.0: 72 GB/s per direction, 127 GB/s duplex.
    for &g in &gpus[..2] {
        b.link_full(c0, g, nv3, gbps(72.0), gbps(72.0), Some(gbps(127.0)));
    }
    for &g in &gpus[2..] {
        b.link_full(c1, g, nv3, gbps(72.0), gbps(72.0), Some(gbps(127.0)));
    }
    // GPU-GPU NVLink 2.0: full duplex (145 GB/s bidi measured).
    b.link(gpus[0], gpus[1], nv3, gbps(72.5));
    b.link(gpus[2], gpus[3], nv3, gbps(72.5));
    // X-Bus: asymmetric sustained rates, 65 GB/s duplex.
    b.link_full(
        c0,
        c1,
        LinkKind::XBus,
        gbps(41.0),
        gbps(35.0),
        Some(gbps(65.0)),
    );
    vec![c0, c1]
}

fn append_delta_node(b: &mut TopologyBuilder, node: usize) -> Vec<NodeId> {
    let mem = MemSpec {
        capacity_bytes: 755 * (1 << 30),
        read_cap: gbps(100.0),
        write_cap: gbps(90.0),
        combined_cap: Some(gbps(115.0)),
    };
    let c0 = b.cpu(2 * node, mem);
    let c1 = b.cpu(2 * node + 1, mem);
    let g0 = 4 * node;
    let gpus: Vec<_> = (g0..g0 + 4).map(|i| b.gpu(i, GpuModel::V100)).collect();
    // Each GPU has an exclusive PCIe 3.0 path to its socket.
    for &g in &gpus[..2] {
        b.link_full(
            c0,
            g,
            LinkKind::Pcie3,
            gbps(12.3),
            gbps(13.0),
            Some(gbps(20.0)),
        );
    }
    for &g in &gpus[2..] {
        b.link_full(
            c1,
            g,
            LinkKind::Pcie3,
            gbps(12.3),
            gbps(13.0),
            Some(gbps(20.0)),
        );
    }
    // NVLink 2.0 P2P: two bricks on (0,1), (2,3), (0,2); one on (1,3).
    let nv2 = LinkKind::NvLink2 { bricks: 2 };
    b.link(gpus[0], gpus[1], nv2, gbps(48.5));
    b.link(gpus[2], gpus[3], nv2, gbps(48.5));
    b.link(gpus[0], gpus[2], nv2, gbps(48.5));
    b.link(
        gpus[1],
        gpus[3],
        LinkKind::NvLink2 { bricks: 1 },
        gbps(24.0),
    );
    // UPI between sockets.
    b.link(c0, c1, LinkKind::Upi, gbps(62.0));
    vec![c0, c1]
}

fn append_dgx_node(b: &mut TopologyBuilder, node: usize) -> Vec<NodeId> {
    let mem = MemSpec {
        capacity_bytes: 512 * (1 << 30),
        read_cap: gbps(88.0),
        write_cap: gbps(100.0),
        combined_cap: Some(gbps(112.0)),
    };
    let c0 = b.cpu(2 * node, mem);
    let c1 = b.cpu(2 * node + 1, mem);
    let g0 = 8 * node;
    let gpus: Vec<_> = (g0..g0 + 8).map(|i| b.gpu(i, GpuModel::A100)).collect();
    let nvswitch = b.nvswitch();
    // One PCIe 4.0 switch per GPU *pair*: the shared uplink is the
    // bottleneck the paper identifies in Figure 4.
    for pair in 0..4 {
        let sw = b.pcie_switch(format!("PCIe switch {}", 4 * node + pair));
        let cpu = if pair < 2 { c0 } else { c1 };
        b.link_full(
            cpu,
            sw,
            LinkKind::Pcie4,
            gbps(24.5),
            gbps(25.5),
            Some(gbps(39.0)),
        );
        for &g in &gpus[2 * pair..2 * pair + 2] {
            b.link_full(
                sw,
                g,
                LinkKind::Pcie4,
                gbps(24.5),
                gbps(25.5),
                Some(gbps(39.0)),
            );
        }
    }
    // NVLink 3.0 into the NVSwitch fabric: non-blocking all-to-all.
    for &g in &gpus {
        b.link(g, nvswitch, LinkKind::NvLink3, gbps(265.0));
    }
    // AMD Infinity Fabric between sockets; duplex cap calibrated to the
    // remote bidirectional plateau of Figure 4 (GPU pair (4,6): 61 GB/s).
    b.link_full(
        c0,
        c1,
        LinkKind::InfinityFabric,
        gbps(102.0),
        gbps(102.0),
        Some(gbps(61.0)),
    );
    vec![c0, c1]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::allocate::allocate_rates;
    use crate::route::route;

    #[test]
    fn paper_platforms_build() {
        for id in PlatformId::paper_set() {
            let p = Platform::paper(id);
            assert_eq!(p.id, id);
            assert!(p.gpu_count() >= 4);
            assert_eq!(p.topology.cpu_count(), 2);
            assert!(!p.describe().is_empty());
        }
    }

    #[test]
    fn ac922_local_htod_is_72() {
        let p = Platform::ibm_ac922();
        let r = route(&p.topology, Endpoint::HOST0, Endpoint::gpu(0)).unwrap();
        let rates = allocate_rates(p.constraint_table(), &[p.flow_request(&r)]);
        assert!((rates[0] - gbps(72.0)).abs() < gbps(0.5), "{}", rates[0]);
    }

    #[test]
    fn ac922_remote_htod_is_41_and_dtoh_35() {
        let p = Platform::ibm_ac922();
        let htod = route(&p.topology, Endpoint::HOST0, Endpoint::gpu(2)).unwrap();
        let dtoh = route(&p.topology, Endpoint::gpu(2), Endpoint::HOST0).unwrap();
        let rates = allocate_rates(p.constraint_table(), &[p.flow_request(&htod)]);
        assert!((rates[0] - gbps(41.0)).abs() < gbps(0.5), "{}", rates[0]);
        let rates = allocate_rates(p.constraint_table(), &[p.flow_request(&dtoh)]);
        assert!((rates[0] - gbps(35.0)).abs() < gbps(0.5), "{}", rates[0]);
    }

    #[test]
    fn ac922_host_p2p_capped_at_32() {
        let p = Platform::ibm_ac922();
        let r = route(&p.topology, Endpoint::gpu(0), Endpoint::gpu(2)).unwrap();
        assert!(r.traverses_host(&p.topology));
        let rates = allocate_rates(p.constraint_table(), &[p.flow_request(&r)]);
        assert!((rates[0] - gbps(32.0)).abs() < gbps(0.5), "{}", rates[0]);
    }

    #[test]
    fn ac922_direct_p2p_is_72() {
        let p = Platform::ibm_ac922();
        let r = route(&p.topology, Endpoint::gpu(0), Endpoint::gpu(1)).unwrap();
        assert!(!r.traverses_host(&p.topology));
        let rates = allocate_rates(p.constraint_table(), &[p.flow_request(&r)]);
        assert!((rates[0] - gbps(72.5)).abs() < gbps(1.0), "{}", rates[0]);
    }

    #[test]
    fn delta_host_p2p_capped_at_9() {
        let p = Platform::delta_d22x();
        let r = route(&p.topology, Endpoint::gpu(0), Endpoint::gpu(3)).unwrap();
        assert!(r.traverses_host(&p.topology));
        let rates = allocate_rates(p.constraint_table(), &[p.flow_request(&r)]);
        assert!((rates[0] - gbps(9.0)).abs() < gbps(0.5), "{}", rates[0]);
    }

    #[test]
    fn delta_direct_p2p_pairs() {
        let p = Platform::delta_d22x();
        for (a, bx, expect) in [(0, 1, 48.5), (2, 3, 48.5), (0, 2, 48.5), (1, 3, 24.0)] {
            let r = route(&p.topology, Endpoint::gpu(a), Endpoint::gpu(bx)).unwrap();
            assert!(!r.traverses_host(&p.topology), "({a},{bx})");
            let rates = allocate_rates(p.constraint_table(), &[p.flow_request(&r)]);
            assert!(
                (rates[0] - gbps(expect)).abs() < gbps(0.5),
                "({a},{bx}): {}",
                rates[0]
            );
        }
    }

    #[test]
    fn dgx_p2p_routes_over_nvswitch() {
        let p = Platform::dgx_a100();
        for (a, bx) in [(0, 1), (0, 7), (3, 4)] {
            let r = route(&p.topology, Endpoint::gpu(a), Endpoint::gpu(bx)).unwrap();
            assert_eq!(r.hop_count(), 2, "({a},{bx}) should go via NVSwitch");
            assert!(!r.traverses_host(&p.topology));
            let rates = allocate_rates(p.constraint_table(), &[p.flow_request(&r)]);
            assert!((rates[0] - gbps(265.0)).abs() < gbps(1.0));
        }
    }

    #[test]
    fn dgx_pair_shares_pcie_switch() {
        let p = Platform::dgx_a100();
        let r0 = route(&p.topology, Endpoint::HOST0, Endpoint::gpu(0)).unwrap();
        let r1 = route(&p.topology, Endpoint::HOST0, Endpoint::gpu(1)).unwrap();
        let r2 = route(&p.topology, Endpoint::HOST0, Endpoint::gpu(2)).unwrap();
        // (0, 1) share a switch: combined ~24.5; (0, 2) do not: 2 x 24.5.
        let rates = allocate_rates(
            p.constraint_table(),
            &[p.flow_request(&r0), p.flow_request(&r1)],
        );
        assert!(((rates[0] + rates[1]) - gbps(24.5)).abs() < gbps(0.5));
        let rates = allocate_rates(
            p.constraint_table(),
            &[p.flow_request(&r0), p.flow_request(&r2)],
        );
        assert!(((rates[0] + rates[1]) - gbps(49.0)).abs() < gbps(0.5));
    }

    #[test]
    fn combined_gpu_memory_matches_models() {
        assert_eq!(
            Platform::ibm_ac922().combined_gpu_memory(),
            4 * 32 * (1 << 30)
        );
        assert_eq!(
            Platform::dgx_a100().combined_gpu_memory(),
            8 * 40 * (1 << 30)
        );
    }

    #[test]
    fn fabric_rates_and_parsing() {
        for f in Fabric::all() {
            // Effective rate never exceeds the link's theoretical rate.
            assert!(f.effective_per_dir() <= f.link_kind().theoretical_per_dir());
            assert_eq!(Fabric::parse(f.flag()), Some(f));
        }
        assert!((Fabric::IbNdr.effective_per_dir() - gbps(48.2)).abs() < 1.0);
        assert_eq!(Fabric::parse("ethernet"), None);
    }

    #[test]
    fn cluster_layout_accessors() {
        let c = ClusterLayout {
            nodes: 4,
            gpus_per_node: 8,
            sockets_per_node: 2,
            nics_per_node: 2,
            fabric: Fabric::IbHdr,
        };
        assert_eq!(c.node_of_gpu(0), 0);
        assert_eq!(c.node_of_gpu(23), 2);
        assert_eq!(c.node_gpus(1), 8..16);
        assert_eq!(c.node_socket(3), 6);
    }

    #[test]
    fn platform_name_mentions_cluster_shape() {
        let mut p = Platform::dgx_a100();
        assert_eq!(p.name(), "NVIDIA DGX A100");
        p.cluster = Some(ClusterLayout {
            nodes: 2,
            gpus_per_node: 8,
            sockets_per_node: 2,
            nics_per_node: 2,
            fabric: Fabric::Slingshot,
        });
        assert_eq!(p.name(), "2x NVIDIA DGX A100 (Slingshot)");
    }

    #[test]
    fn append_paper_node_offsets_indices() {
        let mut b = TopologyBuilder::new();
        append_paper_node(&mut b, PlatformId::DgxA100, 0);
        append_paper_node(&mut b, PlatformId::DgxA100, 1);
        let t = b.build();
        assert_eq!(t.gpu_count(), 16);
        assert_eq!(t.cpu_count(), 4);
        // Without a fabric the two nodes are disconnected islands, which
        // validate() must reject.
        assert!(t.validate().is_err());
    }

    #[test]
    fn test_platform_builds() {
        let p = Platform::test_pcie(2);
        assert_eq!(p.gpu_count(), 2);
        let r = route(&p.topology, Endpoint::HOST0, Endpoint::gpu(1)).unwrap();
        let rates = allocate_rates(p.constraint_table(), &[p.flow_request(&r)]);
        assert!((rates[0] - gbps(13.0)).abs() < gbps(0.5));
    }
}
