//! Capacity constraints derived from a topology.
//!
//! Every concurrently active transfer consumes capacity on a set of
//! *constraints*:
//!
//! * one per **directed link** it traverses,
//! * one per traversed link that has a **duplex aggregate** cap (both
//!   directions together),
//! * the source/destination **host-memory** read/write caps, and the
//!   memory's combined cap when present.
//!
//! The [`ConstraintTable`] enumerates all constraints of a topology once;
//! [`ConstraintTable::route_constraints`] maps a [`Route`] to the constraint
//! indices it loads. The max-min allocator in [`crate::allocate`] then works
//! purely on indices and capacities.

use crate::graph::{LinkId, NodeKind, Topology};
use crate::route::{Endpoint, Route};

/// Index into a [`ConstraintTable`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ConstraintId(pub usize);

/// Entries a [`ConstraintVec`] can hold without touching the heap.
///
/// Each hop loads at most two link constraints (direction + duplex) and each
/// host-memory endpoint at most two (read/write + combined). Routes on the
/// single-box paper platforms have at most four hops; cluster routes that
/// cross the inter-node fabric (socket → NIC → fabric switch → NIC →
/// socket, plus the PCIe/NVLink legs on either side) reach about eight, so
/// 20 keeps every real route inline. Longer lists spill transparently.
const CONSTRAINT_VEC_INLINE: usize = 20;

/// A flow's `(constraint, weight)` list with inline (smallvec-style)
/// storage.
///
/// Rate re-allocation runs on every flow start and completion, and the seed
/// engine cloned each flow's constraint `Vec` per event. Storing the common
/// short lists inline makes a [`crate::FlowRequest`] clone-free to read and
/// cheap to build. Lists longer than [`CONSTRAINT_VEC_INLINE`] entries spill
/// to a heap `Vec` transparently.
#[derive(Clone)]
pub struct ConstraintVec {
    /// Inline storage; valid for `..len` when not spilled.
    inline: [(ConstraintId, f64); CONSTRAINT_VEC_INLINE],
    /// Entry count when inline; `usize::MAX` sentinel once spilled.
    len: usize,
    /// Heap storage once the list outgrows the inline buffer.
    spill: Vec<(ConstraintId, f64)>,
}

impl ConstraintVec {
    /// An empty list.
    #[must_use]
    pub fn new() -> Self {
        Self {
            inline: [(ConstraintId(0), 0.0); CONSTRAINT_VEC_INLINE],
            len: 0,
            spill: Vec::new(),
        }
    }

    const SPILLED: usize = usize::MAX;

    /// Append an entry, spilling to the heap if the inline buffer is full.
    pub fn push(&mut self, entry: (ConstraintId, f64)) {
        if self.len == Self::SPILLED {
            self.spill.push(entry);
        } else if self.len < CONSTRAINT_VEC_INLINE {
            self.inline[self.len] = entry;
            self.len += 1;
        } else {
            self.spill.reserve(CONSTRAINT_VEC_INLINE + 1);
            self.spill.extend_from_slice(&self.inline);
            self.spill.push(entry);
            self.len = Self::SPILLED;
        }
    }

    /// The entries as a slice.
    #[must_use]
    pub fn as_slice(&self) -> &[(ConstraintId, f64)] {
        if self.len == Self::SPILLED {
            &self.spill
        } else {
            &self.inline[..self.len]
        }
    }

    /// The entries as a mutable slice.
    pub fn as_mut_slice(&mut self) -> &mut [(ConstraintId, f64)] {
        if self.len == Self::SPILLED {
            &mut self.spill
        } else {
            &mut self.inline[..self.len]
        }
    }

    /// Keep only the entries for which `keep` returns `true`, allowing the
    /// closure to mutate each entry (mirrors `Vec::retain_mut`).
    pub fn retain_mut(&mut self, mut keep: impl FnMut(&mut (ConstraintId, f64)) -> bool) {
        if self.len == Self::SPILLED {
            self.spill.retain_mut(keep);
            return;
        }
        let mut kept = 0;
        for i in 0..self.len {
            let mut entry = self.inline[i];
            if keep(&mut entry) {
                self.inline[kept] = entry;
                kept += 1;
            }
        }
        self.len = kept;
    }
}

impl Default for ConstraintVec {
    fn default() -> Self {
        Self::new()
    }
}

impl std::ops::Deref for ConstraintVec {
    type Target = [(ConstraintId, f64)];

    fn deref(&self) -> &Self::Target {
        self.as_slice()
    }
}

impl std::ops::DerefMut for ConstraintVec {
    fn deref_mut(&mut self) -> &mut Self::Target {
        self.as_mut_slice()
    }
}

impl std::fmt::Debug for ConstraintVec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_list().entries(self.as_slice()).finish()
    }
}

impl From<Vec<(ConstraintId, f64)>> for ConstraintVec {
    fn from(v: Vec<(ConstraintId, f64)>) -> Self {
        let mut out = Self::new();
        for entry in v {
            out.push(entry);
        }
        out
    }
}

impl FromIterator<(ConstraintId, f64)> for ConstraintVec {
    fn from_iter<I: IntoIterator<Item = (ConstraintId, f64)>>(iter: I) -> Self {
        let mut out = Self::new();
        for entry in iter {
            out.push(entry);
        }
        out
    }
}

impl<'a> IntoIterator for &'a ConstraintVec {
    type Item = &'a (ConstraintId, f64);
    type IntoIter = std::slice::Iter<'a, (ConstraintId, f64)>;

    fn into_iter(self) -> Self::IntoIter {
        self.as_slice().iter()
    }
}

impl<'a> IntoIterator for &'a mut ConstraintVec {
    type Item = &'a mut (ConstraintId, f64);
    type IntoIter = std::slice::IterMut<'a, (ConstraintId, f64)>;

    fn into_iter(self) -> Self::IntoIter {
        self.as_mut_slice().iter_mut()
    }
}

impl IntoIterator for ConstraintVec {
    type Item = (ConstraintId, f64);
    type IntoIter = std::vec::IntoIter<(ConstraintId, f64)>;

    fn into_iter(self) -> Self::IntoIter {
        let owned = if self.len == Self::SPILLED {
            self.spill
        } else {
            self.inline[..self.len].to_vec()
        };
        owned.into_iter()
    }
}

/// What a constraint models (for diagnostics and tests).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ConstraintKind {
    /// Link `link` in the `a → b` direction.
    LinkForward {
        /// The link.
        link: LinkId,
    },
    /// Link `link` in the `b → a` direction.
    LinkBackward {
        /// The link.
        link: LinkId,
    },
    /// Duplex aggregate of `link` (both directions combined).
    LinkDuplex {
        /// The link.
        link: LinkId,
    },
    /// Host memory read bandwidth of NUMA socket `socket`.
    MemRead {
        /// Socket index.
        socket: usize,
    },
    /// Host memory write bandwidth of NUMA socket `socket`.
    MemWrite {
        /// Socket index.
        socket: usize,
    },
    /// Combined host memory bandwidth of NUMA socket `socket`.
    MemCombined {
        /// Socket index.
        socket: usize,
    },
}

/// One capacity constraint.
#[derive(Debug, Clone, Copy)]
pub struct Constraint {
    /// What this constraint models.
    pub kind: ConstraintKind,
    /// Capacity in bytes/s.
    pub capacity: f64,
}

/// All constraints of one topology, with fast route lookup.
#[derive(Debug, Clone)]
pub struct ConstraintTable {
    constraints: Vec<Constraint>,
    /// `link.0 -> (forward, backward, duplex)` constraint ids.
    link_index: Vec<(ConstraintId, ConstraintId, Option<ConstraintId>)>,
    /// `socket -> (read, write, combined)` constraint ids.
    mem_index: Vec<(ConstraintId, ConstraintId, Option<ConstraintId>)>,
}

impl ConstraintTable {
    /// Enumerate the constraints of `topo`.
    #[must_use]
    pub fn new(topo: &Topology) -> Self {
        let mut constraints = Vec::new();
        let mut push = |kind, capacity| {
            let id = ConstraintId(constraints.len());
            constraints.push(Constraint { kind, capacity });
            id
        };

        let mut link_index = Vec::with_capacity(topo.links().len());
        for (i, link) in topo.links().iter().enumerate() {
            let link_id = LinkId(i);
            let fwd = push(ConstraintKind::LinkForward { link: link_id }, link.cap_ab);
            let bwd = push(ConstraintKind::LinkBackward { link: link_id }, link.cap_ba);
            let dup = link
                .cap_duplex
                .map(|cap| push(ConstraintKind::LinkDuplex { link: link_id }, cap));
            link_index.push((fwd, bwd, dup));
        }

        // Memory constraints indexed by socket; sockets are assumed dense
        // from 0 (all paper platforms have sockets {0, 1}).
        let mut mems: Vec<(usize, crate::graph::MemSpec)> = topo
            .nodes()
            .iter()
            .filter_map(|n| match n.kind {
                NodeKind::Cpu { socket, mem } => Some((socket, mem)),
                _ => None,
            })
            .collect();
        mems.sort_by_key(|&(s, _)| s);
        let mut mem_index = Vec::with_capacity(mems.len());
        for (socket, mem) in mems {
            debug_assert_eq!(socket, mem_index.len(), "sockets must be dense from 0");
            let read = push(ConstraintKind::MemRead { socket }, mem.read_cap);
            let write = push(ConstraintKind::MemWrite { socket }, mem.write_cap);
            let comb = mem
                .combined_cap
                .map(|cap| push(ConstraintKind::MemCombined { socket }, cap));
            mem_index.push((read, write, comb));
        }

        Self {
            constraints,
            link_index,
            mem_index,
        }
    }

    /// All constraints.
    #[must_use]
    pub fn constraints(&self) -> &[Constraint] {
        &self.constraints
    }

    /// Capacity of constraint `id`.
    #[must_use]
    pub fn capacity(&self, id: ConstraintId) -> f64 {
        self.constraints[id.0].capacity
    }

    /// Overwrite the capacity of constraint `id` (link health scaling).
    pub fn set_capacity(&mut self, id: ConstraintId, capacity: f64) {
        self.constraints[id.0].capacity = capacity;
    }

    /// The `(forward, backward, duplex)` constraint ids of `link`.
    #[must_use]
    pub fn link_constraint_ids(
        &self,
        link: LinkId,
    ) -> (ConstraintId, ConstraintId, Option<ConstraintId>) {
        self.link_index[link.0]
    }

    /// Copy every constraint capacity from `base` (same topology). Used to
    /// reset a health-adjusted table before re-applying link states.
    ///
    /// # Panics
    /// Panics if the tables were built from different topologies.
    pub fn copy_capacities_from(&mut self, base: &ConstraintTable) {
        assert_eq!(
            self.constraints.len(),
            base.constraints.len(),
            "capacity copy requires tables of the same topology"
        );
        for (c, b) in self.constraints.iter_mut().zip(base.constraints.iter()) {
            c.capacity = b.capacity;
        }
    }

    /// The constraint ids a transfer along `route` consumes, each with the
    /// consumption weight per byte transferred (1.0 everywhere today; the
    /// field exists so coherence-traffic overheads can be modeled per
    /// constraint).
    ///
    /// Returns a [`ConstraintVec`], which stores every real route's list
    /// inline (no heap allocation).
    #[must_use]
    pub fn route_constraints(&self, topo: &Topology, route: &Route) -> ConstraintVec {
        let mut out = ConstraintVec::new();
        for hop in &route.hops {
            let link = topo.link(hop.link);
            let (fwd, bwd, dup) = self.link_index[hop.link.0];
            if hop.from == link.a {
                out.push((fwd, 1.0));
            } else {
                out.push((bwd, 1.0));
            }
            if let Some(d) = dup {
                out.push((d, 1.0));
            }
        }
        if let Endpoint::HostMem { socket } = route.src {
            let (read, _, comb) = self.mem_index[socket];
            out.push((read, 1.0));
            if let Some(c) = comb {
                out.push((c, 1.0));
            }
        }
        if let Endpoint::HostMem { socket } = route.dst {
            let (_, write, comb) = self.mem_index[socket];
            out.push((write, 1.0));
            if let Some(c) = comb {
                out.push((c, 1.0));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::{gbps, GpuModel, LinkKind, MemSpec, TopologyBuilder};
    use crate::route::route;

    fn topo() -> Topology {
        let mut b = TopologyBuilder::new();
        let c0 = b.cpu(
            0,
            MemSpec {
                capacity_bytes: 1 << 34,
                read_cap: gbps(140.0),
                write_cap: gbps(110.0),
                combined_cap: Some(gbps(136.0)),
            },
        );
        let g0 = b.gpu(0, GpuModel::V100);
        let g1 = b.gpu(1, GpuModel::V100);
        b.link_duplex(c0, g0, LinkKind::Pcie3, gbps(13.0), gbps(20.0));
        b.link(c0, g1, LinkKind::NvLink2 { bricks: 3 }, gbps(72.0));
        b.link(g0, g1, LinkKind::NvLink2 { bricks: 2 }, gbps(48.0));
        b.build()
    }

    #[test]
    fn table_enumerates_all_constraints() {
        let t = topo();
        let table = ConstraintTable::new(&t);
        // 3 links × 2 directions + 1 duplex + mem (read + write + combined).
        assert_eq!(table.constraints().len(), 3 * 2 + 1 + 3);
    }

    #[test]
    fn htod_route_loads_read_and_forward() {
        let t = topo();
        let table = ConstraintTable::new(&t);
        let r = route(&t, Endpoint::HOST0, Endpoint::gpu(0)).unwrap();
        let cs = table.route_constraints(&t, &r);
        let kinds: Vec<ConstraintKind> = cs
            .iter()
            .map(|&(id, _)| table.constraints()[id.0].kind)
            .collect();
        assert!(kinds.iter().any(|k| matches!(
            k,
            ConstraintKind::LinkForward { .. } | ConstraintKind::LinkBackward { .. }
        )));
        assert!(kinds
            .iter()
            .any(|k| matches!(k, ConstraintKind::LinkDuplex { .. })));
        assert!(kinds
            .iter()
            .any(|k| matches!(k, ConstraintKind::MemRead { socket: 0 })));
        assert!(kinds
            .iter()
            .any(|k| matches!(k, ConstraintKind::MemCombined { socket: 0 })));
        assert!(!kinds
            .iter()
            .any(|k| matches!(k, ConstraintKind::MemWrite { .. })));
    }

    #[test]
    fn dtoh_route_loads_write() {
        let t = topo();
        let table = ConstraintTable::new(&t);
        let r = route(&t, Endpoint::gpu(0), Endpoint::HOST0).unwrap();
        let cs = table.route_constraints(&t, &r);
        let kinds: Vec<ConstraintKind> = cs
            .iter()
            .map(|&(id, _)| table.constraints()[id.0].kind)
            .collect();
        assert!(kinds
            .iter()
            .any(|k| matches!(k, ConstraintKind::MemWrite { socket: 0 })));
    }

    #[test]
    fn opposite_directions_use_distinct_link_constraints() {
        let t = topo();
        let table = ConstraintTable::new(&t);
        let fwd = route(&t, Endpoint::HOST0, Endpoint::gpu(1)).unwrap();
        let bwd = route(&t, Endpoint::gpu(1), Endpoint::HOST0).unwrap();
        let cf: Vec<_> = table
            .route_constraints(&t, &fwd)
            .into_iter()
            .filter(|&(id, _)| {
                matches!(
                    table.constraints()[id.0].kind,
                    ConstraintKind::LinkForward { .. } | ConstraintKind::LinkBackward { .. }
                )
            })
            .collect();
        let cb: Vec<_> = table
            .route_constraints(&t, &bwd)
            .into_iter()
            .filter(|&(id, _)| {
                matches!(
                    table.constraints()[id.0].kind,
                    ConstraintKind::LinkForward { .. } | ConstraintKind::LinkBackward { .. }
                )
            })
            .collect();
        assert_eq!(cf.len(), 1);
        assert_eq!(cb.len(), 1);
        assert_ne!(cf[0].0, cb[0].0);
    }

    #[test]
    fn constraint_vec_stays_inline_for_routes() {
        let t = topo();
        let table = ConstraintTable::new(&t);
        let r = route(&t, Endpoint::HOST0, Endpoint::gpu(0)).unwrap();
        let cs = table.route_constraints(&t, &r);
        assert!(cs.len() <= super::CONSTRAINT_VEC_INLINE);
        assert_eq!(cs.as_slice().len(), cs.len());
    }

    #[test]
    fn constraint_vec_spills_and_round_trips() {
        let mut v = ConstraintVec::new();
        for i in 0..20 {
            v.push((ConstraintId(i), i as f64));
        }
        assert_eq!(v.len(), 20);
        assert_eq!(v[19], (ConstraintId(19), 19.0));
        let collected: Vec<_> = v.clone().into_iter().collect();
        assert_eq!(collected.len(), 20);
        assert_eq!(collected[0], (ConstraintId(0), 0.0));
        // retain_mut works across the spilled representation.
        v.retain_mut(|(id, w)| {
            *w += 1.0;
            id.0 % 2 == 0
        });
        assert_eq!(v.len(), 10);
        assert_eq!(v[1], (ConstraintId(2), 3.0));
    }

    #[test]
    fn constraint_vec_retain_mut_inline() {
        let mut v: ConstraintVec = (0..6).map(|i| (ConstraintId(i), 1.0)).collect();
        v.retain_mut(|(id, _)| id.0 != 3);
        assert_eq!(v.len(), 5);
        assert!(v.iter().all(|&(id, _)| id.0 != 3));
    }

    #[test]
    fn p2p_route_skips_memory_constraints() {
        let t = topo();
        let table = ConstraintTable::new(&t);
        let r = route(&t, Endpoint::gpu(0), Endpoint::gpu(1)).unwrap();
        let cs = table.route_constraints(&t, &r);
        for (id, _) in cs {
            assert!(matches!(
                table.constraints()[id.0].kind,
                ConstraintKind::LinkForward { .. }
                    | ConstraintKind::LinkBackward { .. }
                    | ConstraintKind::LinkDuplex { .. }
            ));
        }
    }
}
