//! Interconnect topology graphs for multi-GPU platforms.
//!
//! The paper's central observation is that *topology decides performance*:
//! which GPUs share a PCIe switch, whether P2P transfers traverse the
//! host-side CPU interconnect, and how much DRAM bandwidth the copy streams
//! compete for. This crate models exactly that structure:
//!
//! * [`graph`] — nodes (CPU sockets with their NUMA memory, PCIe switches,
//!   GPUs, NVSwitch, NICs), links with per-direction and duplex capacities,
//!   and a builder for custom systems;
//! * [`route`] — shortest-path routing between host memory and GPU memory
//!   endpoints;
//! * [`constraint`] — translation of a route into the set of capacity
//!   constraints a transfer consumes (link directions, duplex caps, DRAM
//!   read/write/aggregate caps);
//! * [`allocate`] — weighted max-min fair ("progressive filling") rate
//!   allocation across concurrently active transfers;
//! * [`placement`] — topology-aware gang scoring: which GPU subsets share
//!   the fewest constraints (distinct PCIe switches, NVLink cliques) for a
//!   sort's traffic pattern, degrading gracefully on unhealthy fabrics;
//! * [`platforms`] — the paper's three systems (IBM AC922, DELTA D22x M4 PS,
//!   NVIDIA DGX A100) with link capacities calibrated to the paper's own
//!   single-stream measurements (Figures 2–7), plus builders for custom
//!   platforms.
//!
//! Everything here is pure and time-free; the discrete-event machinery that
//! advances transfers over time lives in `msort-sim`.
//!
//! ```
//! use msort_topology::{Platform, Endpoint, allocate_rates};
//!
//! // A single NVLink-fed copy stream on the AC922 sustains 72 GB/s.
//! let ac922 = Platform::ibm_ac922();
//! let route = msort_topology::route::route(
//!     &ac922.topology, Endpoint::HOST0, Endpoint::gpu(0)).unwrap();
//! let rates = allocate_rates(ac922.constraint_table(), &[ac922.flow_request(&route)]);
//! assert!((rates[0] / 1e9 - 72.0).abs() < 0.5);
//! ```

pub mod allocate;
pub mod constraint;
pub mod graph;
pub mod health;
pub mod placement;
pub mod platforms;
pub mod route;

pub use allocate::{allocate_rates, FlowRequest, RateAllocator};
pub use constraint::{ConstraintId, ConstraintTable, ConstraintVec};
pub use graph::{
    gbps, GpuModel, Link, LinkId, LinkKind, MemSpec, Node, NodeId, NodeKind, Topology,
    TopologyBuilder, TopologyError,
};
pub use health::{FabricHealth, LinkState};
pub use placement::{best_gpu_set, score_gpu_set, SetScore};
pub use platforms::{append_paper_node, ClusterLayout, Fabric, Platform, PlatformId};
pub use route::{Endpoint, Route};
