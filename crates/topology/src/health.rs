//! Dynamic link health: the mutable overlay over the static topology.
//!
//! The topology graph itself stays immutable (routes, constraint ids and
//! node ids never change); what faults change is each link's *state*:
//! fully up, degraded to a fraction of its calibrated capacity, or down.
//! [`FabricHealth`] tracks one [`LinkState`] per link plus a monotonically
//! increasing generation counter, so downstream caches (the executor's
//! per-endpoint route cache, a health-adjusted [`ConstraintTable`]) can
//! detect staleness with one integer compare.
//!
//! Capacities are never edited in place in a platform's canonical table;
//! [`FabricHealth::apply`] writes the scaled capacities into a *separate*
//! table clone, leaving the pristine table — and therefore every fault-free
//! simulation — bit-identical to the unfaulted build.

use crate::constraint::ConstraintTable;
use crate::graph::{LinkId, Topology};
use crate::route::Route;

/// Operational state of one link.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum LinkState {
    /// Fully operational at calibrated capacity.
    Up,
    /// Operational at `factor` × calibrated capacity (`0 < factor < 1`).
    Degraded {
        /// Remaining capacity fraction.
        factor: f64,
    },
    /// Failed: carries no traffic and is skipped by routing.
    Down,
}

impl LinkState {
    /// `true` while the link can carry traffic (up or degraded).
    #[must_use]
    pub fn is_usable(self) -> bool {
        !matches!(self, LinkState::Down)
    }

    /// The capacity multiplier this state applies (1.0 up, 0.0 down).
    #[must_use]
    pub fn factor(self) -> f64 {
        match self {
            LinkState::Up => 1.0,
            LinkState::Degraded { factor } => factor,
            LinkState::Down => 0.0,
        }
    }
}

/// Mutable health of every link in a topology.
#[derive(Debug, Clone)]
pub struct FabricHealth {
    states: Vec<LinkState>,
    /// Bumped on every state change; starts at 0 (pristine). Cache owners
    /// compare their stored generation against this to detect staleness.
    generation: u64,
}

impl FabricHealth {
    /// All links up, generation 0.
    #[must_use]
    pub fn new(topo: &Topology) -> Self {
        Self {
            states: vec![LinkState::Up; topo.links().len()],
            generation: 0,
        }
    }

    /// Current state of `link`.
    #[must_use]
    pub fn state(&self, link: LinkId) -> LinkState {
        self.states[link.0]
    }

    /// Set the state of `link`, bumping the generation.
    pub fn set(&mut self, link: LinkId, state: LinkState) {
        if let LinkState::Degraded { factor } = state {
            assert!(
                factor > 0.0 && factor < 1.0,
                "degradation factor must be in (0, 1), got {factor}"
            );
        }
        self.states[link.0] = state;
        self.generation += 1;
    }

    /// The staleness counter: 0 only while no state was ever changed.
    #[must_use]
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// `true` while every link is fully up.
    #[must_use]
    pub fn all_up(&self) -> bool {
        self.states.iter().all(|&s| s == LinkState::Up)
    }

    /// `true` while `link` can carry traffic.
    #[must_use]
    pub fn is_usable(&self, link: LinkId) -> bool {
        self.states[link.0].is_usable()
    }

    /// `true` while every hop of `route` can carry traffic.
    #[must_use]
    pub fn route_usable(&self, route: &Route) -> bool {
        route.hops.iter().all(|h| self.is_usable(h.link))
    }

    /// Write health-scaled capacities into `table`: every capacity is reset
    /// from `base` (the pristine table) and each non-up link's forward,
    /// backward and duplex constraints are scaled by its state's factor
    /// (down links get capacity 0, so a flow mistakenly left on one would
    /// starve loudly instead of progressing silently).
    pub fn apply(&self, base: &ConstraintTable, table: &mut ConstraintTable) {
        table.copy_capacities_from(base);
        for (i, state) in self.states.iter().enumerate() {
            let factor = state.factor();
            if factor >= 1.0 {
                continue;
            }
            let (fwd, bwd, dup) = base.link_constraint_ids(LinkId(i));
            table.set_capacity(fwd, base.capacity(fwd) * factor);
            table.set_capacity(bwd, base.capacity(bwd) * factor);
            if let Some(d) = dup {
                table.set_capacity(d, base.capacity(d) * factor);
            }
        }
    }

    /// Human-readable summary of the non-healthy links, for diagnostics
    /// (starvation panics, chaos-test failure output).
    #[must_use]
    pub fn describe(&self, topo: &Topology) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        for (i, state) in self.states.iter().enumerate() {
            if *state == LinkState::Up {
                continue;
            }
            let link = topo.link(LinkId(i));
            let _ = writeln!(
                out,
                "  link {i} {} -- {} ({}): {}",
                topo.node(link.a).name,
                topo.node(link.b).name,
                link.kind.name(),
                match state {
                    LinkState::Up => unreachable!(),
                    LinkState::Degraded { factor } =>
                        format!("degraded to {:.0}% capacity", factor * 100.0),
                    LinkState::Down => "DOWN".to_string(),
                }
            );
        }
        if out.is_empty() {
            out.push_str("  (all links healthy)\n");
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::platforms::Platform;
    use crate::route::{route, route_with, Endpoint};

    #[test]
    fn new_health_is_pristine() {
        let p = Platform::delta_d22x();
        let h = FabricHealth::new(&p.topology);
        assert!(h.all_up());
        assert_eq!(h.generation(), 0);
        for i in 0..p.topology.links().len() {
            assert!(h.is_usable(LinkId(i)));
        }
    }

    #[test]
    fn set_bumps_generation_and_tracks_state() {
        let p = Platform::delta_d22x();
        let mut h = FabricHealth::new(&p.topology);
        h.set(LinkId(0), LinkState::Down);
        assert_eq!(h.generation(), 1);
        assert!(!h.is_usable(LinkId(0)));
        h.set(LinkId(0), LinkState::Degraded { factor: 0.5 });
        assert_eq!(h.generation(), 2);
        assert!(h.is_usable(LinkId(0)));
        h.set(LinkId(0), LinkState::Up);
        assert!(h.all_up());
        assert_eq!(h.generation(), 3);
    }

    #[test]
    #[should_panic(expected = "degradation factor")]
    fn zero_degradation_factor_rejected() {
        let p = Platform::test_pcie(1);
        let mut h = FabricHealth::new(&p.topology);
        h.set(LinkId(0), LinkState::Degraded { factor: 0.0 });
    }

    #[test]
    fn apply_scales_only_affected_links() {
        let p = Platform::delta_d22x();
        let base = p.constraint_table();
        let mut table = base.clone();
        let mut h = FabricHealth::new(&p.topology);
        let link = LinkId(2);
        h.set(link, LinkState::Degraded { factor: 0.25 });
        h.apply(base, &mut table);
        let (fwd, bwd, dup) = base.link_constraint_ids(link);
        assert!((table.capacity(fwd) - base.capacity(fwd) * 0.25).abs() < 1e-6);
        assert!((table.capacity(bwd) - base.capacity(bwd) * 0.25).abs() < 1e-6);
        if let Some(d) = dup {
            assert!((table.capacity(d) - base.capacity(d) * 0.25).abs() < 1e-6);
        }
        // Every other constraint is untouched.
        for (i, c) in table.constraints().iter().enumerate() {
            let id = crate::constraint::ConstraintId(i);
            if id != fwd && id != bwd && dup != Some(id) {
                assert_eq!(
                    c.capacity.to_bits(),
                    base.capacity(id).to_bits(),
                    "constraint {i} must be untouched"
                );
            }
        }
        // Restoring the link restores the pristine capacities bit-exactly.
        h.set(link, LinkState::Up);
        h.apply(base, &mut table);
        for (i, c) in table.constraints().iter().enumerate() {
            assert_eq!(
                c.capacity.to_bits(),
                base.capacity(crate::constraint::ConstraintId(i)).to_bits()
            );
        }
    }

    #[test]
    fn routing_avoids_down_links() {
        // DELTA: GPU 0 and GPU 1 share an NVLink; kill it and the healthy
        // route falls back to the host path.
        let p = Platform::delta_d22x();
        let topo = &p.topology;
        let nv01 = topo
            .link_between(topo.gpu(0), topo.gpu(1))
            .expect("DELTA has a 0-1 NVLink");
        let direct = route(topo, Endpoint::gpu(0), Endpoint::gpu(1)).unwrap();
        assert!(direct.hops.iter().any(|h| h.link == nv01));
        let mut h = FabricHealth::new(topo);
        h.set(nv01, LinkState::Down);
        let rerouted = route_with(topo, Endpoint::gpu(0), Endpoint::gpu(1), |l| h.is_usable(l))
            .expect("host path survives");
        assert!(rerouted.hops.iter().all(|hop| hop.link != nv01));
        assert!(rerouted.traverses_host(topo));
        assert!(!h.route_usable(&direct));
        assert!(h.route_usable(&rerouted));
    }

    #[test]
    fn describe_lists_unhealthy_links() {
        let p = Platform::delta_d22x();
        let mut h = FabricHealth::new(&p.topology);
        assert!(h.describe(&p.topology).contains("all links healthy"));
        h.set(LinkId(0), LinkState::Down);
        h.set(LinkId(1), LinkState::Degraded { factor: 0.5 });
        let d = h.describe(&p.topology);
        assert!(d.contains("DOWN"), "{d}");
        assert!(d.contains("degraded to 50%"), "{d}");
    }
}
