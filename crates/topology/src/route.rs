//! Routing between transfer endpoints.
//!
//! A transfer moves bytes between two *endpoints*: a NUMA node's host memory
//! or a GPU's device memory. The route is the sequence of directed link
//! traversals the copy stream occupies. Routing is shortest-path by link
//! [`hop cost`](crate::graph::LinkKind::hop_cost), which encodes the
//! preference order real CUDA copy engines exhibit (NVLink/NVSwitch over
//! PCIe, direct paths over host-traversing ones).

use crate::graph::{LinkId, NodeId, NodeKind, Topology};

/// One end of a transfer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Endpoint {
    /// Host memory attached to CPU `socket`.
    HostMem {
        /// NUMA socket index.
        socket: usize,
    },
    /// Device memory of GPU `index`.
    GpuMem {
        /// System-wide GPU index.
        index: usize,
    },
}

impl Endpoint {
    /// Host memory of socket 0 — where the paper allocates all input data.
    pub const HOST0: Endpoint = Endpoint::HostMem { socket: 0 };

    /// Convenience constructor for a GPU endpoint.
    #[must_use]
    pub fn gpu(index: usize) -> Self {
        Endpoint::GpuMem { index }
    }

    /// Convenience constructor for a host-memory endpoint.
    #[must_use]
    pub fn host(socket: usize) -> Self {
        Endpoint::HostMem { socket }
    }

    /// Resolve to the topology node holding this endpoint's memory.
    #[must_use]
    pub fn node(self, topo: &Topology) -> NodeId {
        match self {
            Endpoint::HostMem { socket } => topo.cpu(socket),
            Endpoint::GpuMem { index } => topo.gpu(index),
        }
    }
}

/// A directed traversal of one link.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Hop {
    /// The link being traversed.
    pub link: LinkId,
    /// Node the traversal leaves from.
    pub from: NodeId,
    /// Node the traversal arrives at.
    pub to: NodeId,
}

/// The path of a transfer from `src` to `dst`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Route {
    /// Source endpoint.
    pub src: Endpoint,
    /// Destination endpoint.
    pub dst: Endpoint,
    /// Directed link traversals in order (empty for device-local copies).
    pub hops: Vec<Hop>,
}

impl Route {
    /// `true` if the route crosses any CPU socket *between* other nodes —
    /// the paper's "host-traversing" transfers whose single-stream rate is
    /// lower than the bottleneck link (Figures 5a and 6a).
    #[must_use]
    pub fn traverses_host(&self, topo: &Topology) -> bool {
        // Interior nodes only: the first hop leaves the source node, the
        // last arrives at the destination node.
        self.hops
            .iter()
            .skip(1)
            .any(|h| matches!(topo.node(h.from).kind, NodeKind::Cpu { .. }))
    }

    /// `true` if the route crosses the inter-node fabric (traverses a NIC
    /// or fabric-switch node). Such transfers leave the box, so intra-node
    /// calibration policies (e.g. the host-traversing P2P rate cap) do not
    /// apply to them.
    #[must_use]
    pub fn crosses_nic(&self, topo: &Topology) -> bool {
        self.hops
            .iter()
            .any(|h| matches!(topo.node(h.to).kind, NodeKind::Nic))
    }

    /// Number of link traversals.
    #[must_use]
    pub fn hop_count(&self) -> usize {
        self.hops.len()
    }

    /// `true` when source and destination are the same device (DtoD copy).
    #[must_use]
    pub fn is_local(&self) -> bool {
        self.hops.is_empty()
    }
}

/// Find the cheapest route between two endpoints.
///
/// Returns `None` when the endpoints are disconnected. Equal-cost ties are
/// broken deterministically by node id so repeated runs take identical
/// paths.
#[must_use]
pub fn route(topo: &Topology, src: Endpoint, dst: Endpoint) -> Option<Route> {
    route_with(topo, src, dst, |_| true)
}

/// [`route`] restricted to links for which `usable` returns `true` — the
/// health-aware variant used after fault injection. `route(..)` is exactly
/// `route_with(.., |_| true)`, so the always-healthy path is unchanged.
#[must_use]
pub fn route_with(
    topo: &Topology,
    src: Endpoint,
    dst: Endpoint,
    usable: impl Fn(LinkId) -> bool,
) -> Option<Route> {
    let src_node = src.node(topo);
    let dst_node = dst.node(topo);
    if src_node == dst_node {
        return Some(Route {
            src,
            dst,
            hops: Vec::new(),
        });
    }

    // Dijkstra over hop costs. Node count is tiny (≤ ~20), so a linear-scan
    // priority selection is simpler and plenty fast.
    let n = topo.nodes().len();
    let mut dist = vec![f64::INFINITY; n];
    let mut prev: Vec<Option<Hop>> = vec![None; n];
    let mut done = vec![false; n];
    dist[src_node.0] = 0.0;

    loop {
        let mut current: Option<usize> = None;
        let mut best = f64::INFINITY;
        for (i, (&d, &fin)) in dist.iter().zip(done.iter()).enumerate() {
            if !fin && d < best {
                best = d;
                current = Some(i);
            }
        }
        let Some(u) = current else { break };
        if u == dst_node.0 {
            break;
        }
        done[u] = true;
        // GPUs are endpoints, not relays: a copy stream never forwards
        // through a third GPU's memory system (the paper discusses such
        // multi-hop routing only as future work, Section 7).
        if u != src_node.0 && matches!(topo.node(NodeId(u)).kind, NodeKind::Gpu { .. }) {
            continue;
        }
        for &(link_id, v) in topo.neighbors(NodeId(u)) {
            if !usable(link_id) {
                continue;
            }
            let cost = dist[u] + topo.link(link_id).kind.hop_cost();
            if cost < dist[v.0] {
                dist[v.0] = cost;
                prev[v.0] = Some(Hop {
                    link: link_id,
                    from: NodeId(u),
                    to: v,
                });
            }
        }
    }

    if dist[dst_node.0].is_infinite() {
        return None;
    }
    let mut hops = Vec::new();
    let mut cursor = dst_node;
    while cursor != src_node {
        let hop = prev[cursor.0].expect("reached node has a predecessor");
        hops.push(hop);
        cursor = hop.from;
    }
    hops.reverse();
    Some(Route { src, dst, hops })
}

/// Find a route that relays through intermediate GPU `via` — the multi-hop
/// P2P routing the paper proposes as future work (Section 7): a pipelined
/// relay occupies both legs simultaneously, so the concatenated route *is*
/// the right fluid-flow model for it.
///
/// Returns `None` if either leg is unroutable, if `via` coincides with an
/// endpoint, or if a leg would itself cross the host (relays exist to avoid
/// the host side; a host-crossing leg defeats the purpose).
#[must_use]
pub fn route_via(topo: &Topology, src: Endpoint, dst: Endpoint, via: usize) -> Option<Route> {
    route_via_with(topo, src, dst, via, |_| true)
}

/// [`route_via`] restricted to links for which `usable` returns `true` —
/// relay resolution over a partially failed fabric.
#[must_use]
pub fn route_via_with(
    topo: &Topology,
    src: Endpoint,
    dst: Endpoint,
    via: usize,
    usable: impl Fn(LinkId) -> bool,
) -> Option<Route> {
    let mid = Endpoint::gpu(via);
    if src == mid || dst == mid || src == dst {
        return None;
    }
    let first = route_with(topo, src, mid, &usable)?;
    let second = route_with(topo, mid, dst, &usable)?;
    if first.traverses_host(topo) || second.traverses_host(topo) {
        return None;
    }
    let mut hops = first.hops;
    hops.extend(second.hops);
    Some(Route { src, dst, hops })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::{gbps, GpuModel, LinkKind, MemSpec, TopologyBuilder};

    fn mem() -> MemSpec {
        MemSpec {
            capacity_bytes: 1 << 34,
            read_cap: gbps(100.0),
            write_cap: gbps(100.0),
            combined_cap: None,
        }
    }

    /// CPU0 — GPU0, GPU1 (NVLink); CPU0 — CPU1 (X-Bus); CPU1 — GPU2.
    fn two_socket() -> crate::graph::Topology {
        let mut b = TopologyBuilder::new();
        let c0 = b.cpu(0, mem());
        let c1 = b.cpu(1, mem());
        let g0 = b.gpu(0, GpuModel::V100);
        let g1 = b.gpu(1, GpuModel::V100);
        let g2 = b.gpu(2, GpuModel::V100);
        b.link(c0, g0, LinkKind::NvLink2 { bricks: 3 }, gbps(72.0));
        b.link(c0, g1, LinkKind::NvLink2 { bricks: 3 }, gbps(72.0));
        b.link(c1, g2, LinkKind::NvLink2 { bricks: 3 }, gbps(72.0));
        b.link(c0, c1, LinkKind::XBus, gbps(41.0));
        b.link(g0, g1, LinkKind::NvLink2 { bricks: 3 }, gbps(72.0));
        b.build()
    }

    #[test]
    fn local_gpu_route_is_direct() {
        let t = two_socket();
        let r = route(&t, Endpoint::HOST0, Endpoint::gpu(0)).unwrap();
        assert_eq!(r.hop_count(), 1);
        assert!(!r.traverses_host(&t));
    }

    #[test]
    fn remote_gpu_route_crosses_xbus() {
        let t = two_socket();
        let r = route(&t, Endpoint::HOST0, Endpoint::gpu(2)).unwrap();
        assert_eq!(r.hop_count(), 2);
        // src is a CPU node but only interior CPUs count as host traversal.
        assert!(r.traverses_host(&t));
        assert_eq!(t.link(r.hops[0].link).kind, LinkKind::XBus);
    }

    #[test]
    fn p2p_direct_beats_host_path() {
        let t = two_socket();
        let r = route(&t, Endpoint::gpu(0), Endpoint::gpu(1)).unwrap();
        assert_eq!(r.hop_count(), 1);
        assert!(!r.traverses_host(&t));
    }

    #[test]
    fn p2p_remote_traverses_host() {
        let t = two_socket();
        let r = route(&t, Endpoint::gpu(0), Endpoint::gpu(2)).unwrap();
        assert_eq!(r.hop_count(), 3); // GPU0 -> CPU0 -> CPU1 -> GPU2
        assert!(r.traverses_host(&t));
    }

    #[test]
    fn device_local_route_is_empty() {
        let t = two_socket();
        let r = route(&t, Endpoint::gpu(1), Endpoint::gpu(1)).unwrap();
        assert!(r.is_local());
        assert!(!r.traverses_host(&t));
    }

    #[test]
    fn disconnected_returns_none() {
        let mut b = TopologyBuilder::new();
        b.cpu(0, mem());
        b.gpu(0, GpuModel::A100);
        let t = b.build();
        assert!(route(&t, Endpoint::HOST0, Endpoint::gpu(0)).is_none());
    }

    #[test]
    fn route_via_builds_relay() {
        let t = two_socket();
        // GPU 0 -> GPU 1 via... there is no third GPU on socket 0; relay
        // through GPU 1 to GPU 2 would cross the host on the second leg.
        assert!(route_via(&t, Endpoint::gpu(0), Endpoint::gpu(2), 1).is_none());
        // Degenerate cases.
        assert!(route_via(&t, Endpoint::gpu(0), Endpoint::gpu(1), 0).is_none());
        assert!(route_via(&t, Endpoint::gpu(0), Endpoint::gpu(1), 1).is_none());
    }

    #[test]
    fn route_via_on_ring_topology() {
        // Build a DELTA-like NVLink ring: 0-1, 1-3, 2-3, 0-2; relay 0->3
        // via 1 stays entirely on NVLink.
        let mut b = TopologyBuilder::new();
        let c0 = b.cpu(0, mem());
        let gpus: Vec<_> = (0..4).map(|i| b.gpu(i, GpuModel::V100)).collect();
        for &g in &gpus {
            b.link(c0, g, LinkKind::Pcie3, gbps(12.0));
        }
        let nv = LinkKind::NvLink2 { bricks: 2 };
        b.link(gpus[0], gpus[1], nv, gbps(48.0));
        b.link(gpus[1], gpus[3], nv, gbps(24.0));
        b.link(gpus[2], gpus[3], nv, gbps(48.0));
        b.link(gpus[0], gpus[2], nv, gbps(48.0));
        let t = b.build();
        let relay = route_via(&t, Endpoint::gpu(0), Endpoint::gpu(3), 1).unwrap();
        assert_eq!(relay.hop_count(), 2);
        assert!(!relay.traverses_host(&t));
        // The direct route crosses the host (no direct 0-3 link).
        let direct = route(&t, Endpoint::gpu(0), Endpoint::gpu(3)).unwrap();
        assert!(direct.traverses_host(&t));
    }

    #[test]
    fn hops_are_contiguous() {
        let t = two_socket();
        let r = route(&t, Endpoint::gpu(0), Endpoint::gpu(2)).unwrap();
        for w in r.hops.windows(2) {
            assert_eq!(w[0].to, w[1].from);
        }
        assert_eq!(r.hops.first().unwrap().from, t.gpu(0));
        assert_eq!(r.hops.last().unwrap().to, t.gpu(2));
    }
}
