//! Weighted max-min fair rate allocation ("progressive filling").
//!
//! Given a set of flows, each loading a set of capacity constraints, the
//! allocator raises all flow rates uniformly until some constraint
//! saturates; flows crossing a saturated constraint are frozen at their
//! current rate and filling continues for the rest. A flow may additionally
//! carry an individual rate cap (used to model single-stream inefficiencies
//! such as host-traversing P2P copies, which the paper measures well below
//! the bottleneck link's capacity).
//!
//! This is the standard fluid model of bandwidth sharing: it reproduces the
//! paper's contention effects (GPU pairs sharing a PCIe switch each get half
//! the switch's rate; four P2P streams sharing the X-Bus collapse to a
//! fraction of direct NVLink throughput) without simulating packets.

use crate::constraint::{ConstraintId, ConstraintTable};

/// One flow's demand: the constraints it loads and an optional rate cap.
#[derive(Debug, Clone)]
pub struct FlowRequest {
    /// `(constraint, weight)` pairs; the flow consumes `weight × rate`
    /// against each listed constraint.
    pub constraints: Vec<(ConstraintId, f64)>,
    /// Per-flow maximum rate (bytes/s), if any.
    pub rate_cap: Option<f64>,
}

impl FlowRequest {
    /// Flow with unit weights on `constraints` and no rate cap.
    #[must_use]
    pub fn new(constraints: Vec<(ConstraintId, f64)>) -> Self {
        Self {
            constraints,
            rate_cap: None,
        }
    }

    /// Attach a rate cap.
    #[must_use]
    pub fn with_cap(mut self, cap: f64) -> Self {
        self.rate_cap = Some(cap);
        self
    }
}

/// Compute max-min fair rates (bytes/s) for `flows` under `table`.
///
/// Returns one rate per flow, in order. Flows with an empty constraint list
/// and no cap are unconstrained; they receive `f64::INFINITY` (callers model
/// such copies — e.g. intra-device — with explicit rate caps instead).
#[must_use]
pub fn allocate_rates(table: &ConstraintTable, flows: &[FlowRequest]) -> Vec<f64> {
    let mut rates = vec![0.0f64; flows.len()];
    if flows.is_empty() {
        return rates;
    }

    let mut remaining: Vec<f64> = table.constraints().iter().map(|c| c.capacity).collect();
    let mut frozen = vec![false; flows.len()];

    loop {
        // Total unfrozen weight per constraint.
        let mut weight = vec![0.0f64; remaining.len()];
        for (f, flow) in flows.iter().enumerate() {
            if frozen[f] {
                continue;
            }
            for &(c, w) in &flow.constraints {
                weight[c.0] += w;
            }
        }

        // The uniform rate increment every unfrozen flow can still take.
        let mut delta = f64::INFINITY;
        for (c, (&rem, &w)) in remaining.iter().zip(weight.iter()).enumerate() {
            if w > 0.0 {
                let _ = c;
                delta = delta.min(rem / w);
            }
        }
        for (f, flow) in flows.iter().enumerate() {
            if frozen[f] {
                continue;
            }
            if let Some(cap) = flow.rate_cap {
                delta = delta.min(cap - rates[f]);
            }
        }
        if !delta.is_finite() {
            // Remaining flows are unconstrained.
            for (f, rate) in rates.iter_mut().enumerate() {
                if !frozen[f] {
                    *rate = f64::INFINITY;
                }
            }
            break;
        }
        let delta = delta.max(0.0);

        // Apply the increment and its consumption.
        for (f, flow) in flows.iter().enumerate() {
            if frozen[f] {
                continue;
            }
            rates[f] += delta;
            for &(c, w) in &flow.constraints {
                remaining[c.0] = (remaining[c.0] - delta * w).max(0.0);
            }
        }

        // Freeze flows at their cap or on a saturated constraint.
        let mut progressed = false;
        for (f, flow) in flows.iter().enumerate() {
            if frozen[f] {
                continue;
            }
            let capped = flow
                .rate_cap
                .is_some_and(|cap| rates[f] >= cap - f64::EPSILON * cap.abs());
            let saturated = flow
                .constraints
                .iter()
                .any(|&(c, w)| w > 0.0 && remaining[c.0] <= saturation_epsilon(table.capacity(c)));
            if capped || saturated {
                frozen[f] = true;
                progressed = true;
            }
        }
        if frozen.iter().all(|&f| f) {
            break;
        }
        if !progressed {
            // Numerical corner: nothing froze but delta was ~0. Freeze all
            // remaining flows to terminate; their rates are already max-min.
            for f in frozen.iter_mut() {
                *f = true;
            }
            break;
        }
    }
    rates
}

/// Tolerance for deciding a constraint is saturated, relative to its size.
fn saturation_epsilon(capacity: f64) -> f64 {
    (capacity * 1e-9).max(1e-6)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::constraint::ConstraintTable;
    use crate::graph::{gbps, GpuModel, LinkKind, MemSpec, TopologyBuilder};
    use crate::route::{route, Endpoint};

    /// CPU0 with one PCIe link to each of two GPUs and a duplex cap.
    fn topo_shared_mem() -> (crate::graph::Topology, ConstraintTable) {
        let mut b = TopologyBuilder::new();
        let c0 = b.cpu(
            0,
            MemSpec {
                capacity_bytes: 1 << 34,
                read_cap: gbps(20.0),
                write_cap: gbps(15.0),
                combined_cap: Some(gbps(24.0)),
            },
        );
        let g0 = b.gpu(0, GpuModel::V100);
        let g1 = b.gpu(1, GpuModel::V100);
        b.link_duplex(c0, g0, LinkKind::Pcie3, gbps(13.0), gbps(20.0));
        b.link_duplex(c0, g1, LinkKind::Pcie3, gbps(13.0), gbps(20.0));
        let t = b.build();
        let table = ConstraintTable::new(&t);
        (t, table)
    }

    fn flow(
        t: &crate::graph::Topology,
        table: &ConstraintTable,
        src: Endpoint,
        dst: Endpoint,
    ) -> FlowRequest {
        let r = route(t, src, dst).unwrap();
        FlowRequest::new(table.route_constraints(t, &r))
    }

    #[test]
    fn single_flow_gets_bottleneck_rate() {
        let (t, table) = topo_shared_mem();
        let f = flow(&t, &table, Endpoint::HOST0, Endpoint::gpu(0));
        let rates = allocate_rates(&table, &[f]);
        assert!((rates[0] - gbps(13.0)).abs() < 1e6, "rate {}", rates[0]);
    }

    #[test]
    fn two_parallel_flows_share_memory_read_cap() {
        let (t, table) = topo_shared_mem();
        let f0 = flow(&t, &table, Endpoint::HOST0, Endpoint::gpu(0));
        let f1 = flow(&t, &table, Endpoint::HOST0, Endpoint::gpu(1));
        let rates = allocate_rates(&table, &[f0, f1]);
        // Each link allows 13, but the memory read cap of 20 splits evenly.
        assert!((rates[0] - gbps(10.0)).abs() < 1e6);
        assert!((rates[1] - gbps(10.0)).abs() < 1e6);
    }

    #[test]
    fn bidirectional_flows_hit_duplex_cap() {
        let (t, table) = topo_shared_mem();
        let up = flow(&t, &table, Endpoint::HOST0, Endpoint::gpu(0));
        let down = flow(&t, &table, Endpoint::gpu(0), Endpoint::HOST0);
        let rates = allocate_rates(&table, &[up, down]);
        // Duplex cap 20 shared evenly: 10 each (below per-dir 13).
        assert!((rates[0] - gbps(10.0)).abs() < 1e6, "up {}", rates[0]);
        assert!((rates[1] - gbps(10.0)).abs() < 1e6, "down {}", rates[1]);
    }

    #[test]
    fn rate_cap_freezes_flow_and_releases_capacity() {
        let (t, table) = topo_shared_mem();
        let f0 = flow(&t, &table, Endpoint::HOST0, Endpoint::gpu(0)).with_cap(gbps(4.0));
        let f1 = flow(&t, &table, Endpoint::HOST0, Endpoint::gpu(1));
        let rates = allocate_rates(&table, &[f0, f1]);
        assert!((rates[0] - gbps(4.0)).abs() < 1e6);
        // f1 takes the rest of the 20 read cap, limited by its 13 link.
        assert!((rates[1] - gbps(13.0)).abs() < 1e6, "f1 {}", rates[1]);
    }

    #[test]
    fn max_min_is_pareto_and_feasible() {
        let (t, table) = topo_shared_mem();
        let flows = vec![
            flow(&t, &table, Endpoint::HOST0, Endpoint::gpu(0)),
            flow(&t, &table, Endpoint::HOST0, Endpoint::gpu(1)),
            flow(&t, &table, Endpoint::gpu(0), Endpoint::HOST0),
            flow(&t, &table, Endpoint::gpu(1), Endpoint::HOST0),
        ];
        let rates = allocate_rates(&table, &flows);
        // Feasibility: per-constraint consumption within capacity.
        let mut used = vec![0.0; table.constraints().len()];
        for (f, fl) in flows.iter().enumerate() {
            for &(c, w) in &fl.constraints {
                used[c.0] += rates[f] * w;
            }
        }
        for (u, c) in used.iter().zip(table.constraints()) {
            assert!(*u <= c.capacity * 1.000001, "{u} > {}", c.capacity);
        }
        // Every flow crosses at least one saturated constraint (Pareto).
        for (f, fl) in flows.iter().enumerate() {
            let bottlenecked = fl
                .constraints
                .iter()
                .any(|&(c, _)| used[c.0] >= table.capacity(c) * 0.999);
            assert!(bottlenecked, "flow {f} has no bottleneck");
        }
    }

    #[test]
    fn empty_flow_list() {
        let (_t, table) = topo_shared_mem();
        assert!(allocate_rates(&table, &[]).is_empty());
    }

    #[test]
    fn unconstrained_flow_is_infinite() {
        let (_t, table) = topo_shared_mem();
        let rates = allocate_rates(&table, &[FlowRequest::new(Vec::new())]);
        assert!(rates[0].is_infinite());
    }

    #[test]
    fn uncapped_and_capped_mix_terminates() {
        let (_t, table) = topo_shared_mem();
        let rates = allocate_rates(&table, &[FlowRequest::new(Vec::new()).with_cap(gbps(5.0))]);
        assert!((rates[0] - gbps(5.0)).abs() < 1e6);
    }
}
