//! Weighted max-min fair rate allocation ("progressive filling").
//!
//! Given a set of flows, each loading a set of capacity constraints, the
//! allocator raises all flow rates uniformly until some constraint
//! saturates; flows crossing a saturated constraint are frozen at their
//! current rate and filling continues for the rest. A flow may additionally
//! carry an individual rate cap (used to model single-stream inefficiencies
//! such as host-traversing P2P copies, which the paper measures well below
//! the bottleneck link's capacity).
//!
//! This is the standard fluid model of bandwidth sharing: it reproduces the
//! paper's contention effects (GPU pairs sharing a PCIe switch each get half
//! the switch's rate; four P2P streams sharing the X-Bus collapse to a
//! fraction of direct NVLink throughput) without simulating packets.

use crate::constraint::{ConstraintTable, ConstraintVec};

/// One flow's demand: the constraints it loads and an optional rate cap.
#[derive(Debug, Clone)]
pub struct FlowRequest {
    /// `(constraint, weight)` pairs; the flow consumes `weight × rate`
    /// against each listed constraint. Stored inline for every real route
    /// (see [`ConstraintVec`]).
    pub constraints: ConstraintVec,
    /// Per-flow maximum rate (bytes/s), if any.
    pub rate_cap: Option<f64>,
}

impl FlowRequest {
    /// Flow with unit weights on `constraints` and no rate cap.
    #[must_use]
    pub fn new(constraints: impl Into<ConstraintVec>) -> Self {
        Self {
            constraints: constraints.into(),
            rate_cap: None,
        }
    }

    /// Attach a rate cap.
    #[must_use]
    pub fn with_cap(mut self, cap: f64) -> Self {
        self.rate_cap = Some(cap);
        self
    }
}

/// Reusable progressive-filling allocator owning its scratch state.
///
/// The allocation loop needs three per-call scratch vectors (per-constraint
/// unfrozen weight, per-constraint remaining capacity, per-flow frozen
/// flags). The free function [`allocate_rates`] allocates them afresh on
/// every call, which is fine for one-shot use but shows up hard in the
/// event loop of `msort-sim`, where every flow start and completion
/// re-allocates. A `RateAllocator` keeps the scratch between calls, so a
/// steady-state re-allocation performs no heap allocation at all, and takes
/// flows by reference (through an index accessor) instead of requiring a
/// contiguous cloned `Vec<FlowRequest>`.
///
/// [`RateAllocator::allocate_with`] is arithmetic-for-arithmetic identical
/// to the original free-function loop: same iteration order, same float
/// operation order, bit-identical results.
#[derive(Debug, Default)]
pub struct RateAllocator {
    /// Per-constraint total unfrozen weight (rebuilt each filling round).
    weight: Vec<f64>,
    /// Per-constraint remaining capacity.
    remaining: Vec<f64>,
    /// Per-flow frozen flag.
    frozen: Vec<bool>,
}

impl RateAllocator {
    /// An allocator with empty scratch (grows on first use).
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Compute max-min fair rates (bytes/s) for the `n` flows returned by
    /// `flow_at`, writing one rate per flow (in order) into `rates`.
    ///
    /// `flow_at(i)` must return the `i`-th flow for `i < n`; taking an
    /// accessor rather than a slice lets callers keep their flows in
    /// non-contiguous storage (e.g. a slab) without cloning per call.
    ///
    /// Flows with an empty constraint list and no cap are unconstrained;
    /// they receive `f64::INFINITY` (callers model such copies — e.g.
    /// intra-device — with explicit rate caps instead).
    pub fn allocate_with<'f>(
        &mut self,
        table: &ConstraintTable,
        n: usize,
        flow_at: impl Fn(usize) -> &'f FlowRequest,
        rates: &mut Vec<f64>,
    ) {
        rates.clear();
        rates.resize(n, 0.0);
        if n == 0 {
            return;
        }

        self.remaining.clear();
        self.remaining
            .extend(table.constraints().iter().map(|c| c.capacity));
        self.frozen.clear();
        self.frozen.resize(n, false);
        self.weight.resize(self.remaining.len(), 0.0);

        loop {
            // Total unfrozen weight per constraint.
            self.weight.fill(0.0);
            for f in 0..n {
                if self.frozen[f] {
                    continue;
                }
                for &(c, w) in &flow_at(f).constraints {
                    self.weight[c.0] += w;
                }
            }

            // The uniform rate increment every unfrozen flow can still take.
            let mut delta = f64::INFINITY;
            for (&rem, &w) in self.remaining.iter().zip(self.weight.iter()) {
                if w > 0.0 {
                    delta = delta.min(rem / w);
                }
            }
            for (f, rate) in rates.iter().enumerate() {
                if self.frozen[f] {
                    continue;
                }
                if let Some(cap) = flow_at(f).rate_cap {
                    delta = delta.min(cap - rate);
                }
            }
            if !delta.is_finite() {
                // Remaining flows are unconstrained.
                for (f, rate) in rates.iter_mut().enumerate() {
                    if !self.frozen[f] {
                        *rate = f64::INFINITY;
                    }
                }
                return;
            }
            let delta = delta.max(0.0);

            // Apply the increment and its consumption.
            for (f, rate) in rates.iter_mut().enumerate() {
                if self.frozen[f] {
                    continue;
                }
                *rate += delta;
                for &(c, w) in &flow_at(f).constraints {
                    self.remaining[c.0] = (self.remaining[c.0] - delta * w).max(0.0);
                }
            }

            // Freeze flows at their cap or on a saturated constraint.
            let mut progressed = false;
            for (f, &rate) in rates.iter().enumerate() {
                if self.frozen[f] {
                    continue;
                }
                let flow = flow_at(f);
                let capped = flow
                    .rate_cap
                    .is_some_and(|cap| rate >= cap - f64::EPSILON * cap.abs());
                let saturated = flow.constraints.iter().any(|&(c, w)| {
                    w > 0.0 && self.remaining[c.0] <= saturation_epsilon(table.capacity(c))
                });
                if capped || saturated {
                    self.frozen[f] = true;
                    progressed = true;
                }
            }
            if self.frozen.iter().all(|&f| f) {
                return;
            }
            if !progressed {
                // Numerical corner: nothing froze but delta was ~0. Stop;
                // the rates are already max-min.
                return;
            }
        }
    }
}

/// Compute max-min fair rates (bytes/s) for `flows` under `table`.
///
/// Returns one rate per flow, in order. This is a convenience wrapper over
/// [`RateAllocator`] for one-shot use; event loops should hold a
/// `RateAllocator` and reuse its scratch.
#[must_use]
pub fn allocate_rates(table: &ConstraintTable, flows: &[FlowRequest]) -> Vec<f64> {
    let mut rates = Vec::with_capacity(flows.len());
    RateAllocator::new().allocate_with(table, flows.len(), |i| &flows[i], &mut rates);
    rates
}

/// Tolerance for deciding a constraint is saturated, relative to its size.
fn saturation_epsilon(capacity: f64) -> f64 {
    (capacity * 1e-9).max(1e-6)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::constraint::ConstraintTable;
    use crate::graph::{gbps, GpuModel, LinkKind, MemSpec, TopologyBuilder};
    use crate::route::{route, Endpoint};

    /// CPU0 with one PCIe link to each of two GPUs and a duplex cap.
    fn topo_shared_mem() -> (crate::graph::Topology, ConstraintTable) {
        let mut b = TopologyBuilder::new();
        let c0 = b.cpu(
            0,
            MemSpec {
                capacity_bytes: 1 << 34,
                read_cap: gbps(20.0),
                write_cap: gbps(15.0),
                combined_cap: Some(gbps(24.0)),
            },
        );
        let g0 = b.gpu(0, GpuModel::V100);
        let g1 = b.gpu(1, GpuModel::V100);
        b.link_duplex(c0, g0, LinkKind::Pcie3, gbps(13.0), gbps(20.0));
        b.link_duplex(c0, g1, LinkKind::Pcie3, gbps(13.0), gbps(20.0));
        let t = b.build();
        let table = ConstraintTable::new(&t);
        (t, table)
    }

    fn flow(
        t: &crate::graph::Topology,
        table: &ConstraintTable,
        src: Endpoint,
        dst: Endpoint,
    ) -> FlowRequest {
        let r = route(t, src, dst).unwrap();
        FlowRequest::new(table.route_constraints(t, &r))
    }

    #[test]
    fn single_flow_gets_bottleneck_rate() {
        let (t, table) = topo_shared_mem();
        let f = flow(&t, &table, Endpoint::HOST0, Endpoint::gpu(0));
        let rates = allocate_rates(&table, &[f]);
        assert!((rates[0] - gbps(13.0)).abs() < 1e6, "rate {}", rates[0]);
    }

    #[test]
    fn two_parallel_flows_share_memory_read_cap() {
        let (t, table) = topo_shared_mem();
        let f0 = flow(&t, &table, Endpoint::HOST0, Endpoint::gpu(0));
        let f1 = flow(&t, &table, Endpoint::HOST0, Endpoint::gpu(1));
        let rates = allocate_rates(&table, &[f0, f1]);
        // Each link allows 13, but the memory read cap of 20 splits evenly.
        assert!((rates[0] - gbps(10.0)).abs() < 1e6);
        assert!((rates[1] - gbps(10.0)).abs() < 1e6);
    }

    #[test]
    fn bidirectional_flows_hit_duplex_cap() {
        let (t, table) = topo_shared_mem();
        let up = flow(&t, &table, Endpoint::HOST0, Endpoint::gpu(0));
        let down = flow(&t, &table, Endpoint::gpu(0), Endpoint::HOST0);
        let rates = allocate_rates(&table, &[up, down]);
        // Duplex cap 20 shared evenly: 10 each (below per-dir 13).
        assert!((rates[0] - gbps(10.0)).abs() < 1e6, "up {}", rates[0]);
        assert!((rates[1] - gbps(10.0)).abs() < 1e6, "down {}", rates[1]);
    }

    #[test]
    fn rate_cap_freezes_flow_and_releases_capacity() {
        let (t, table) = topo_shared_mem();
        let f0 = flow(&t, &table, Endpoint::HOST0, Endpoint::gpu(0)).with_cap(gbps(4.0));
        let f1 = flow(&t, &table, Endpoint::HOST0, Endpoint::gpu(1));
        let rates = allocate_rates(&table, &[f0, f1]);
        assert!((rates[0] - gbps(4.0)).abs() < 1e6);
        // f1 takes the rest of the 20 read cap, limited by its 13 link.
        assert!((rates[1] - gbps(13.0)).abs() < 1e6, "f1 {}", rates[1]);
    }

    #[test]
    fn max_min_is_pareto_and_feasible() {
        let (t, table) = topo_shared_mem();
        let flows = vec![
            flow(&t, &table, Endpoint::HOST0, Endpoint::gpu(0)),
            flow(&t, &table, Endpoint::HOST0, Endpoint::gpu(1)),
            flow(&t, &table, Endpoint::gpu(0), Endpoint::HOST0),
            flow(&t, &table, Endpoint::gpu(1), Endpoint::HOST0),
        ];
        let rates = allocate_rates(&table, &flows);
        // Feasibility: per-constraint consumption within capacity.
        let mut used = vec![0.0; table.constraints().len()];
        for (f, fl) in flows.iter().enumerate() {
            for &(c, w) in &fl.constraints {
                used[c.0] += rates[f] * w;
            }
        }
        for (u, c) in used.iter().zip(table.constraints()) {
            assert!(*u <= c.capacity * 1.000001, "{u} > {}", c.capacity);
        }
        // Every flow crosses at least one saturated constraint (Pareto).
        for (f, fl) in flows.iter().enumerate() {
            let bottlenecked = fl
                .constraints
                .iter()
                .any(|&(c, _)| used[c.0] >= table.capacity(c) * 0.999);
            assert!(bottlenecked, "flow {f} has no bottleneck");
        }
    }

    #[test]
    fn empty_flow_list() {
        let (_t, table) = topo_shared_mem();
        assert!(allocate_rates(&table, &[]).is_empty());
    }

    #[test]
    fn unconstrained_flow_is_infinite() {
        let (_t, table) = topo_shared_mem();
        let rates = allocate_rates(&table, &[FlowRequest::new(Vec::new())]);
        assert!(rates[0].is_infinite());
    }

    #[test]
    fn uncapped_and_capped_mix_terminates() {
        let (_t, table) = topo_shared_mem();
        let rates = allocate_rates(&table, &[FlowRequest::new(Vec::new()).with_cap(gbps(5.0))]);
        assert!((rates[0] - gbps(5.0)).abs() < 1e6);
    }
}
