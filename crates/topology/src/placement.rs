//! Topology-aware GPU set scoring for gang placement.
//!
//! A sort job running on a gang of GPUs generates a predictable traffic
//! pattern: host↔device scatter/gather flows plus pairwise P2P merge
//! traffic inside the gang. Which *constraints* those flows share decides
//! the gang's contended throughput — two GPUs under one PCIe switch fight
//! for its uplink, a cross-socket pair drags every swap over the CPU
//! interconnect, a pair on a half-width NVLink halves the merge rate.
//!
//! [`score_gpu_set`] turns that into a number: it replays the pattern's
//! canonical routes against a [`ConstraintTable`] (the platform's
//! calibrated table, or a health-adjusted clone when links are degraded)
//! and reports the most-loaded constraint relative to its capacity. Lower
//! is better; a gang whose traffic must cross a downed link scores
//! infinite, so degraded fabrics fall back gracefully to whatever healthy
//! placement remains. [`best_gpu_set`] enumerates the candidate subsets of
//! a fleet and returns the deterministic argmin.

use crate::constraint::{ConstraintId, ConstraintTable};
use crate::platforms::Platform;
use crate::route::{route, Endpoint};

/// How much a gang's traffic pattern loads its tightest shared constraint.
///
/// Ordered lexicographically: first by [`SetScore::bottleneck`] (relative
/// load on the most-contended constraint), then by [`SetScore::total`]
/// (sum of relative loads — breaks ties between gangs whose bottleneck is
/// an unshared resource, e.g. per-GPU PCIe links, in favor of the gang
/// with faster interior links).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SetScore {
    /// Maximum over constraints of `load / capacity` (dimensionless).
    /// `f64::INFINITY` when some required route crosses a zero-capacity
    /// (downed) constraint.
    pub bottleneck: f64,
    /// Sum of `load / capacity` over all loaded constraints.
    pub total: f64,
}

impl SetScore {
    /// Comparison key: bottleneck first, total as tie-break.
    #[must_use]
    pub fn key(&self) -> (f64, f64) {
        (self.bottleneck, self.total)
    }

    /// `true` when `self` is a strictly better (lower) score than `other`.
    #[must_use]
    pub fn beats(&self, other: &SetScore) -> bool {
        self.key() < other.key()
    }
}

/// Score the gang `gpus` on `platform` against `table`.
///
/// `table` is usually [`Platform::constraint_table`]; pass a
/// health-adjusted clone (same constraint indexing) to score against a
/// degraded fabric. The modeled pattern is one scatter + one gather flow
/// per GPU (host socket 0, where the paper allocates all input) and one
/// P2P flow per direction per GPU pair — the traffic shape of every sort
/// in `msort-core`.
#[must_use]
pub fn score_gpu_set(platform: &Platform, table: &ConstraintTable, gpus: &[usize]) -> SetScore {
    let topo = &platform.topology;
    let mut load = vec![0.0f64; table.constraints().len()];
    let add_flow = |load: &mut Vec<f64>, src: Endpoint, dst: Endpoint| {
        let r = route(topo, src, dst).expect("platform endpoints are connected");
        for &(id, w) in platform.flow_request(&r).constraints.as_slice() {
            load[id.0] += w;
        }
    };

    for &g in gpus {
        add_flow(&mut load, Endpoint::HOST0, Endpoint::gpu(g));
        add_flow(&mut load, Endpoint::gpu(g), Endpoint::HOST0);
    }
    for (i, &a) in gpus.iter().enumerate() {
        for &b in &gpus[i + 1..] {
            add_flow(&mut load, Endpoint::gpu(a), Endpoint::gpu(b));
            add_flow(&mut load, Endpoint::gpu(b), Endpoint::gpu(a));
        }
    }

    let mut bottleneck = 0.0f64;
    let mut total = 0.0f64;
    for (i, &l) in load.iter().enumerate() {
        if l <= 0.0 {
            continue;
        }
        let cap = table.capacity(ConstraintId(i));
        let ratio = if cap > 0.0 { l / cap } else { f64::INFINITY };
        bottleneck = bottleneck.max(ratio);
        total += ratio;
    }
    SetScore { bottleneck, total }
}

/// The best `g`-GPU subset of `fleet` by [`score_gpu_set`], or `None` when
/// `fleet` has fewer than `g` GPUs or `g == 0`.
///
/// Candidates are enumerated in lexicographic order over `fleet`'s own
/// ordering and compared strictly, so the result is deterministic: ties go
/// to the earliest candidate. The returned set preserves `fleet` order.
#[must_use]
pub fn best_gpu_set(
    platform: &Platform,
    table: &ConstraintTable,
    fleet: &[usize],
    g: usize,
) -> Option<Vec<usize>> {
    if g == 0 || fleet.len() < g {
        return None;
    }
    let mut best: Option<(SetScore, Vec<usize>)> = None;
    for combo in combinations(fleet.len(), g) {
        let set: Vec<usize> = combo.iter().map(|&i| fleet[i]).collect();
        let score = score_gpu_set(platform, table, &set);
        match &best {
            Some((incumbent, _)) if !score.beats(incumbent) => {}
            _ => best = Some((score, set)),
        }
    }
    best.map(|(_, set)| set)
}

/// All `k`-element index subsets of `0..n` in lexicographic order.
fn combinations(n: usize, k: usize) -> Vec<Vec<usize>> {
    let mut out = Vec::new();
    let mut idx: Vec<usize> = (0..k).collect();
    loop {
        out.push(idx.clone());
        // Advance the rightmost index that can still move.
        let mut i = k;
        loop {
            if i == 0 {
                return out;
            }
            i -= 1;
            if idx[i] < n - (k - i) {
                idx[i] += 1;
                for j in i + 1..k {
                    idx[j] = idx[j - 1] + 1;
                }
                break;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::LinkId;
    use crate::health::{FabricHealth, LinkState};

    #[test]
    fn combinations_are_lexicographic_and_complete() {
        let c = combinations(4, 2);
        assert_eq!(
            c,
            vec![
                vec![0, 1],
                vec![0, 2],
                vec![0, 3],
                vec![1, 2],
                vec![1, 3],
                vec![2, 3]
            ]
        );
        assert_eq!(combinations(8, 4).len(), 70);
        assert_eq!(combinations(3, 3), vec![vec![0, 1, 2]]);
    }

    #[test]
    fn ac922_prefers_same_socket_pairs() {
        // NVLink-connected same-socket pairs beat any pair that drags the
        // merge traffic over the X-Bus (Section 5.4).
        let p = Platform::ibm_ac922();
        let t = p.constraint_table();
        let fleet = [0, 1, 2, 3];
        let best = best_gpu_set(&p, t, &fleet, 2).unwrap();
        assert_eq!(best, vec![0, 1]);
        let same = score_gpu_set(&p, t, &[2, 3]);
        let cross = score_gpu_set(&p, t, &[0, 2]);
        assert!(same.beats(&cross), "{same:?} vs {cross:?}");
    }

    #[test]
    fn delta_prefers_full_nvlink_pairs() {
        // (0,1) rides a full-width NVLink; (1,3) only a half-width one;
        // (0,3) has no NVLink at all and must cross the host.
        let p = Platform::delta_d22x();
        let t = p.constraint_table();
        let full = score_gpu_set(&p, t, &[0, 1]);
        let half = score_gpu_set(&p, t, &[1, 3]);
        let hostp = score_gpu_set(&p, t, &[0, 3]);
        assert!(full.beats(&half), "{full:?} vs {half:?}");
        assert!(half.beats(&hostp), "{half:?} vs {hostp:?}");
        assert_eq!(best_gpu_set(&p, t, &[0, 1, 2, 3], 2).unwrap(), vec![0, 1]);
    }

    #[test]
    fn dgx_prefers_switch_disjoint_pairs() {
        // GPUs 0 and 1 share one PCIe switch uplink for their host
        // traffic; 0 and 2 sit under distinct switches. P2P goes over
        // NVSwitch either way, so the uplink is the bottleneck.
        let p = Platform::dgx_a100();
        let t = p.constraint_table();
        let shared = score_gpu_set(&p, t, &[0, 1]);
        let disjoint = score_gpu_set(&p, t, &[0, 2]);
        assert!(disjoint.beats(&shared), "{disjoint:?} vs {shared:?}");
        let best = best_gpu_set(&p, t, &[0, 1, 2, 3], 2).unwrap();
        assert_eq!(best, vec![0, 2]);
    }

    #[test]
    fn downed_link_scores_infinite_and_falls_back() {
        // Kill the AC922's GPU0-GPU1 NVLink: the (0,1) gang's merge
        // traffic would cross a zero-capacity constraint, so placement
        // falls back to the other same-socket pair.
        let p = Platform::ibm_ac922();
        let nv01 = p
            .topology
            .links()
            .iter()
            .enumerate()
            .find(|(_, l)| {
                let a = &p.topology.node(l.a).kind;
                let b = &p.topology.node(l.b).kind;
                matches!(a, crate::graph::NodeKind::Gpu { index: 0, .. })
                    && matches!(b, crate::graph::NodeKind::Gpu { index: 1, .. })
            })
            .map(|(i, _)| LinkId(i))
            .expect("AC922 has a GPU0-GPU1 NVLink");
        let mut health = FabricHealth::new(&p.topology);
        health.set(nv01, LinkState::Down);
        let mut adjusted = p.constraint_table().clone();
        health.apply(p.constraint_table(), &mut adjusted);
        let dead = score_gpu_set(&p, &adjusted, &[0, 1]);
        assert!(dead.bottleneck.is_infinite());
        let best = best_gpu_set(&p, &adjusted, &[0, 1, 2, 3], 2).unwrap();
        assert_eq!(best, vec![2, 3], "placement must avoid the dead link");
    }

    #[test]
    fn scoring_is_deterministic() {
        let p = Platform::dgx_a100();
        let t = p.constraint_table();
        let a = best_gpu_set(&p, t, &[0, 1, 2, 3, 4, 5, 6, 7], 4).unwrap();
        let b = best_gpu_set(&p, t, &[0, 1, 2, 3, 4, 5, 6, 7], 4).unwrap();
        assert_eq!(a, b);
        assert!(best_gpu_set(&p, t, &[0, 1], 4).is_none());
        assert!(best_gpu_set(&p, t, &[0, 1], 0).is_none());
    }
}
