//! Topology graph: nodes, links, and the builder.
//!
//! A topology is an undirected multigraph. Nodes are CPU sockets (each with
//! an attached NUMA memory), PCIe switches, GPUs, or an NVSwitch fabric.
//! Links carry an *effective* per-direction capacity — the sustained rate a
//! single pinned-memory copy stream achieves, which on real hardware is
//! 75–96% of the marketing number depending on the link kind — and an
//! optional duplex aggregate capacity for links whose two directions are not
//! independent in practice (the paper measures e.g. PCIe 3.0 bidirectional
//! copies at ~77–83% of twice the unidirectional rate).

/// Convert a decimal GB/s figure (the unit used throughout the paper) to
/// bytes per second.
#[must_use]
pub fn gbps(gb_per_s: f64) -> f64 {
    gb_per_s * 1e9
}

/// Index of a node in a [`Topology`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub usize);

/// Index of a link in a [`Topology`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct LinkId(pub usize);

/// GPU silicon generation; the kernel cost models in `msort-sim` are keyed
/// by this.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum GpuModel {
    /// NVIDIA Tesla V100 SXM2 (Volta), 32 GB HBM2 — IBM AC922 / DELTA D22x.
    V100,
    /// NVIDIA A100 SXM4 (Ampere), 40 GB HBM2e — DGX A100.
    A100,
    /// A user-defined GPU for custom platforms.
    Custom,
}

impl GpuModel {
    /// Device-memory capacity in bytes (the SXM variants the paper uses).
    #[must_use]
    pub fn memory_bytes(self) -> u64 {
        match self {
            GpuModel::V100 => 32 * (1 << 30),
            GpuModel::A100 => 40 * (1 << 30),
            GpuModel::Custom => 16 * (1 << 30),
        }
    }

    /// Effective device-local copy bandwidth (bytes/s) for DtoD copies.
    ///
    /// Calibrated from paper Section 5.2: device-local copies are 3× faster
    /// than NVLink 3.0 P2P (279 GB/s) on the A100 and 5× faster than three
    /// NVLink 2.0 bricks (72 GB/s) on the V100... the V100 figure is clearly
    /// an effective *transfer-time* ratio; we use published HBM2 copy rates
    /// scaled to the same ratios the paper reports.
    #[must_use]
    pub fn dtod_bandwidth(self) -> f64 {
        match self {
            GpuModel::V100 => gbps(360.0),
            GpuModel::A100 => gbps(840.0),
            GpuModel::Custom => gbps(300.0),
        }
    }

    /// Short display name.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            GpuModel::V100 => "Tesla V100",
            GpuModel::A100 => "A100",
            GpuModel::Custom => "custom GPU",
        }
    }
}

/// NUMA memory behind one CPU socket.
///
/// The three capacities model what the paper observes on the AC922 (Figure
/// 2b): parallel HtoD streams saturate at a *read* rate, DtoH streams at a
/// lower *write* rate, and mixed bidirectional streams at a combined rate
/// below read + write.
#[derive(Debug, Clone, Copy)]
pub struct MemSpec {
    /// Capacity in bytes of this NUMA node's DRAM.
    pub capacity_bytes: u64,
    /// Max aggregate rate of copy streams *reading* host memory (HtoD).
    pub read_cap: f64,
    /// Max aggregate rate of copy streams *writing* host memory (DtoH).
    pub write_cap: f64,
    /// Max combined rate of all copy streams touching this memory, if the
    /// controller cannot sustain read_cap + write_cap simultaneously.
    pub combined_cap: Option<f64>,
}

/// What a node is.
#[derive(Debug, Clone, Copy)]
pub enum NodeKind {
    /// CPU socket `socket` with its NUMA-local memory.
    Cpu {
        /// Socket index (NUMA node id).
        socket: usize,
        /// The attached memory.
        mem: MemSpec,
    },
    /// A PCIe switch (possibly shared by several GPUs — the DGX A100
    /// bottleneck of Figure 4).
    PcieSwitch,
    /// GPU `index` of model `model`.
    Gpu {
        /// System-wide GPU index (the ids used in the paper's figures).
        index: usize,
        /// Silicon generation.
        model: GpuModel,
    },
    /// NVSwitch fabric providing non-blocking all-to-all P2P.
    NvSwitch,
    /// A network interface card (or an inter-node fabric switch): the
    /// attachment point for InfiniBand / Slingshot links between nodes of
    /// a cluster. NICs relay traffic like CPU sockets and PCIe switches
    /// do, so routing, fault reroutes, and the rate allocator treat
    /// inter-node links exactly like NVLink.
    Nic,
}

/// A node with its display name.
#[derive(Debug, Clone)]
pub struct Node {
    /// Human-readable name ("CPU 0", "GPU 3", ...).
    pub name: String,
    /// The node kind and its parameters.
    pub kind: NodeKind,
}

/// Physical link technology; used for reporting and default routing costs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LinkKind {
    /// PCIe 3.0 x16 (16 GB/s per direction theoretical).
    Pcie3,
    /// PCIe 4.0 x16 (32 GB/s per direction theoretical).
    Pcie4,
    /// NVLink 2.0, `bricks` links bonded (25 GB/s per brick per direction).
    NvLink2 {
        /// Number of bonded links.
        bricks: u8,
    },
    /// NVLink 3.0 into an NVSwitch port (12 bricks, 300 GB/s per direction).
    NvLink3,
    /// IBM X-Bus CPU interconnect (64 GB/s per direction theoretical).
    XBus,
    /// Intel Ultra Path Interconnect (~62 GB/s per direction).
    Upi,
    /// AMD Infinity Fabric inter-socket (~102 GB/s per direction).
    InfinityFabric,
    /// InfiniBand HDR 4x (200 Gbit/s ≈ 25 GB/s per direction theoretical).
    InfiniBandHdr,
    /// InfiniBand NDR 4x (400 Gbit/s ≈ 50 GB/s per direction theoretical).
    InfiniBandNdr,
    /// HPE Cray Slingshot-class NIC link (200 Gbit/s ≈ 25 GB/s per
    /// direction theoretical).
    Slingshot,
    /// User-defined technology for custom platforms.
    Custom,
}

impl LinkKind {
    /// Theoretical per-direction bandwidth in bytes/s (what the vendor
    /// datasheets quote; Table 1 of the paper).
    #[must_use]
    pub fn theoretical_per_dir(self) -> f64 {
        match self {
            LinkKind::Pcie3 => gbps(16.0),
            LinkKind::Pcie4 => gbps(32.0),
            LinkKind::NvLink2 { bricks } => gbps(25.0 * f64::from(bricks)),
            LinkKind::NvLink3 => gbps(300.0),
            LinkKind::XBus => gbps(64.0),
            LinkKind::Upi => gbps(62.0),
            LinkKind::InfinityFabric => gbps(102.0),
            LinkKind::InfiniBandHdr => gbps(25.0),
            LinkKind::InfiniBandNdr => gbps(50.0),
            LinkKind::Slingshot => gbps(25.0),
            LinkKind::Custom => f64::INFINITY,
        }
    }

    /// Routing cost per traversal: cheaper links are preferred so that e.g.
    /// a DGX P2P flow routes over NVSwitch rather than over PCIe + IF.
    #[must_use]
    pub fn hop_cost(self) -> f64 {
        match self {
            LinkKind::NvLink3 => 0.5,
            LinkKind::NvLink2 { .. } => 1.0,
            LinkKind::InfinityFabric => 4.0,
            LinkKind::Upi | LinkKind::XBus => 5.0,
            LinkKind::Pcie4 => 8.0,
            LinkKind::Pcie3 => 10.0,
            // Inter-node hops are always the last resort: no intra-node
            // transfer may ever prefer a detour through the fabric.
            LinkKind::InfiniBandHdr | LinkKind::InfiniBandNdr | LinkKind::Slingshot => 12.0,
            LinkKind::Custom => 2.0,
        }
    }

    /// Display name for topology listings.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            LinkKind::Pcie3 => "PCIe 3.0",
            LinkKind::Pcie4 => "PCIe 4.0",
            LinkKind::NvLink2 { .. } => "NVLink 2.0",
            LinkKind::NvLink3 => "NVLink 3.0",
            LinkKind::XBus => "X-Bus",
            LinkKind::Upi => "UPI",
            LinkKind::InfinityFabric => "Infinity Fabric",
            LinkKind::InfiniBandHdr => "InfiniBand HDR",
            LinkKind::InfiniBandNdr => "InfiniBand NDR",
            LinkKind::Slingshot => "Slingshot",
            LinkKind::Custom => "custom",
        }
    }
}

/// An undirected link between two nodes.
#[derive(Debug, Clone)]
pub struct Link {
    /// One endpoint.
    pub a: NodeId,
    /// The other endpoint.
    pub b: NodeId,
    /// Technology.
    pub kind: LinkKind,
    /// Effective sustained capacity in the `a → b` direction (bytes/s) —
    /// calibrated, not theoretical.
    pub cap_ab: f64,
    /// Effective sustained capacity in the `b → a` direction. Usually equal
    /// to `cap_ab`; the AC922's X-Bus sustains measurably less toward the
    /// memory-writing side (paper Figure 2a: 41 vs 35 GB/s).
    pub cap_ba: f64,
    /// Optional aggregate cap across both directions, for links whose
    /// duplex performance is below `cap_ab + cap_ba`.
    pub cap_duplex: Option<f64>,
}

/// A multi-GPU system's interconnect graph.
#[derive(Debug, Clone)]
pub struct Topology {
    nodes: Vec<Node>,
    links: Vec<Link>,
    /// Adjacency: for each node, outgoing `(link, neighbor)` pairs.
    adjacency: Vec<Vec<(LinkId, NodeId)>>,
}

impl Topology {
    /// All nodes.
    #[must_use]
    pub fn nodes(&self) -> &[Node] {
        &self.nodes
    }

    /// All links.
    #[must_use]
    pub fn links(&self) -> &[Link] {
        &self.links
    }

    /// Node lookup.
    #[must_use]
    pub fn node(&self, id: NodeId) -> &Node {
        &self.nodes[id.0]
    }

    /// Link lookup.
    #[must_use]
    pub fn link(&self, id: LinkId) -> &Link {
        &self.links[id.0]
    }

    /// Neighbors of `id` with the links leading to them.
    #[must_use]
    pub fn neighbors(&self, id: NodeId) -> &[(LinkId, NodeId)] {
        &self.adjacency[id.0]
    }

    /// The link directly connecting `a` and `b` (either orientation), if
    /// one exists. Used by fault plans to name a link by its endpoints.
    #[must_use]
    pub fn link_between(&self, a: NodeId, b: NodeId) -> Option<LinkId> {
        self.adjacency[a.0]
            .iter()
            .find(|&&(_, n)| n == b)
            .map(|&(l, _)| l)
    }

    /// The node id of GPU `index`.
    ///
    /// # Panics
    /// Panics if no GPU with that index exists.
    #[must_use]
    pub fn gpu(&self, index: usize) -> NodeId {
        self.try_gpu(index)
            .unwrap_or_else(|| panic!("no GPU with index {index}"))
    }

    /// The node id of GPU `index`, if present.
    #[must_use]
    pub fn try_gpu(&self, index: usize) -> Option<NodeId> {
        self.nodes
            .iter()
            .position(|n| matches!(n.kind, NodeKind::Gpu { index: i, .. } if i == index))
            .map(NodeId)
    }

    /// The node id of CPU socket `socket`.
    ///
    /// # Panics
    /// Panics if no such socket exists.
    #[must_use]
    pub fn cpu(&self, socket: usize) -> NodeId {
        self.nodes
            .iter()
            .position(|n| matches!(n.kind, NodeKind::Cpu { socket: s, .. } if s == socket))
            .map(NodeId)
            .unwrap_or_else(|| panic!("no CPU socket {socket}"))
    }

    /// Number of GPUs in the system.
    #[must_use]
    pub fn gpu_count(&self) -> usize {
        self.nodes
            .iter()
            .filter(|n| matches!(n.kind, NodeKind::Gpu { .. }))
            .count()
    }

    /// Number of CPU sockets.
    #[must_use]
    pub fn cpu_count(&self) -> usize {
        self.nodes
            .iter()
            .filter(|n| matches!(n.kind, NodeKind::Cpu { .. }))
            .count()
    }

    /// All NIC nodes, in insertion order (includes fabric switches, which
    /// are modeled as relay NICs).
    #[must_use]
    pub fn nics(&self) -> Vec<NodeId> {
        self.nodes
            .iter()
            .enumerate()
            .filter(|(_, n)| matches!(n.kind, NodeKind::Nic))
            .map(|(i, _)| NodeId(i))
            .collect()
    }

    /// GPU model of GPU `index`.
    #[must_use]
    pub fn gpu_model(&self, index: usize) -> GpuModel {
        match self.node(self.gpu(index)).kind {
            NodeKind::Gpu { model, .. } => model,
            _ => unreachable!("gpu() returns GPU nodes"),
        }
    }

    /// Device memory capacity (bytes) of GPU `index`.
    #[must_use]
    pub fn gpu_memory_bytes(&self, index: usize) -> u64 {
        self.gpu_model(index).memory_bytes()
    }

    /// Validate structural invariants every platform must satisfy:
    /// at least one CPU socket, dense socket and GPU indices starting at
    /// zero, and every GPU reachable from socket 0 (otherwise the sorting
    /// algorithms cannot even stage their chunks).
    ///
    /// # Errors
    /// Returns the first violated invariant.
    pub fn validate(&self) -> Result<(), TopologyError> {
        let cpus = self.cpu_count();
        if cpus == 0 {
            return Err(TopologyError::NoCpu);
        }
        for s in 0..cpus {
            let found = self
                .nodes
                .iter()
                .any(|n| matches!(n.kind, NodeKind::Cpu { socket, .. } if socket == s));
            if !found {
                return Err(TopologyError::SparseSockets { missing: s });
            }
        }
        let gpus = self.gpu_count();
        for g in 0..gpus {
            if self.try_gpu(g).is_none() {
                return Err(TopologyError::SparseGpus { missing: g });
            }
        }
        for g in 0..gpus {
            let reachable = crate::route::route(
                self,
                crate::route::Endpoint::HostMem { socket: 0 },
                crate::route::Endpoint::GpuMem { index: g },
            )
            .is_some();
            if !reachable {
                return Err(TopologyError::UnreachableGpu { index: g });
            }
        }
        Ok(())
    }

    /// Render the topology in Graphviz DOT format (`dot -Tsvg`): nodes
    /// shaped by kind, edges labeled with technology and effective rate.
    #[must_use]
    pub fn to_dot(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::from("graph topology {\n  layout=neato;\n  overlap=false;\n");
        for (i, node) in self.nodes.iter().enumerate() {
            let (shape, color) = match node.kind {
                NodeKind::Cpu { .. } => ("box", "lightblue"),
                NodeKind::Gpu { .. } => ("ellipse", "palegreen"),
                NodeKind::PcieSwitch => ("diamond", "lightgray"),
                NodeKind::NvSwitch => ("hexagon", "gold"),
                NodeKind::Nic => ("trapezium", "lightsalmon"),
            };
            let _ = writeln!(
                out,
                "  n{i} [label=\"{}\", shape={shape}, style=filled, fillcolor={color}];",
                node.name
            );
        }
        for link in &self.links {
            let rate = if (link.cap_ab - link.cap_ba).abs() < 1.0 {
                format!("{:.0} GB/s", link.cap_ab / 1e9)
            } else {
                format!("{:.0}/{:.0} GB/s", link.cap_ab / 1e9, link.cap_ba / 1e9)
            };
            let _ = writeln!(
                out,
                "  n{} -- n{} [label=\"{}\\n{rate}\"];",
                link.a.0,
                link.b.0,
                link.kind.name(),
            );
        }
        out.push_str("}\n");
        out
    }
}

/// A structural defect found by [`Topology::validate`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TopologyError {
    /// No CPU socket: host memory has nowhere to live.
    NoCpu,
    /// CPU socket indices must be dense from 0; `missing` is absent.
    SparseSockets {
        /// The first missing socket index.
        missing: usize,
    },
    /// GPU indices must be dense from 0; `missing` is absent.
    SparseGpus {
        /// The first missing GPU index.
        missing: usize,
    },
    /// GPU `index` cannot be reached from socket 0's host memory.
    UnreachableGpu {
        /// The unreachable GPU.
        index: usize,
    },
}

impl std::fmt::Display for TopologyError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TopologyError::NoCpu => write!(f, "topology has no CPU socket"),
            TopologyError::SparseSockets { missing } => {
                write!(f, "CPU socket indices are sparse: socket {missing} missing")
            }
            TopologyError::SparseGpus { missing } => {
                write!(f, "GPU indices are sparse: GPU {missing} missing")
            }
            TopologyError::UnreachableGpu { index } => {
                write!(f, "GPU {index} is unreachable from socket 0")
            }
        }
    }
}

impl std::error::Error for TopologyError {}

/// Incremental [`Topology`] construction.
#[derive(Debug, Default)]
pub struct TopologyBuilder {
    nodes: Vec<Node>,
    links: Vec<Link>,
}

impl TopologyBuilder {
    /// Start an empty topology.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Add a CPU socket with its NUMA memory; returns its node id.
    pub fn cpu(&mut self, socket: usize, mem: MemSpec) -> NodeId {
        self.push(Node {
            name: format!("CPU {socket}"),
            kind: NodeKind::Cpu { socket, mem },
        })
    }

    /// Add a GPU; returns its node id.
    pub fn gpu(&mut self, index: usize, model: GpuModel) -> NodeId {
        self.push(Node {
            name: format!("GPU {index}"),
            kind: NodeKind::Gpu { index, model },
        })
    }

    /// Add a PCIe switch; returns its node id.
    pub fn pcie_switch(&mut self, name: impl Into<String>) -> NodeId {
        self.push(Node {
            name: name.into(),
            kind: NodeKind::PcieSwitch,
        })
    }

    /// Add an NVSwitch fabric node; returns its node id.
    pub fn nvswitch(&mut self) -> NodeId {
        self.push(Node {
            name: "NVSwitch".to_owned(),
            kind: NodeKind::NvSwitch,
        })
    }

    /// Add a NIC (or inter-node fabric switch) node; returns its node id.
    pub fn nic(&mut self, name: impl Into<String>) -> NodeId {
        self.push(Node {
            name: name.into(),
            kind: NodeKind::Nic,
        })
    }

    /// Connect `a` and `b` with effective per-direction capacity
    /// `cap_per_dir` (bytes/s); returns the link id.
    pub fn link(&mut self, a: NodeId, b: NodeId, kind: LinkKind, cap_per_dir: f64) -> LinkId {
        self.link_full(a, b, kind, cap_per_dir, cap_per_dir, None)
    }

    /// Like [`TopologyBuilder::link`] with a duplex aggregate cap.
    pub fn link_duplex(
        &mut self,
        a: NodeId,
        b: NodeId,
        kind: LinkKind,
        cap_per_dir: f64,
        cap_duplex: f64,
    ) -> LinkId {
        self.link_full(a, b, kind, cap_per_dir, cap_per_dir, Some(cap_duplex))
    }

    /// Fully general link: separate directional capacities and an optional
    /// duplex aggregate cap.
    pub fn link_full(
        &mut self,
        a: NodeId,
        b: NodeId,
        kind: LinkKind,
        cap_ab: f64,
        cap_ba: f64,
        cap_duplex: Option<f64>,
    ) -> LinkId {
        assert!(a.0 < self.nodes.len(), "unknown node {a:?}");
        assert!(b.0 < self.nodes.len(), "unknown node {b:?}");
        assert!(a != b, "self-links are not allowed");
        assert!(cap_ab > 0.0 && cap_ba > 0.0, "capacity must be positive");
        let id = LinkId(self.links.len());
        self.links.push(Link {
            a,
            b,
            kind,
            cap_ab,
            cap_ba,
            cap_duplex,
        });
        id
    }

    /// Finish construction.
    #[must_use]
    pub fn build(self) -> Topology {
        let mut adjacency = vec![Vec::new(); self.nodes.len()];
        for (i, l) in self.links.iter().enumerate() {
            adjacency[l.a.0].push((LinkId(i), l.b));
            adjacency[l.b.0].push((LinkId(i), l.a));
        }
        Topology {
            nodes: self.nodes,
            links: self.links,
            adjacency,
        }
    }

    fn push(&mut self, node: Node) -> NodeId {
        let id = NodeId(self.nodes.len());
        self.nodes.push(node);
        id
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_mem() -> MemSpec {
        MemSpec {
            capacity_bytes: 1 << 30,
            read_cap: gbps(100.0),
            write_cap: gbps(80.0),
            combined_cap: Some(gbps(120.0)),
        }
    }

    #[test]
    fn builder_constructs_graph() {
        let mut b = TopologyBuilder::new();
        let c0 = b.cpu(0, tiny_mem());
        let g0 = b.gpu(0, GpuModel::V100);
        let g1 = b.gpu(1, GpuModel::V100);
        b.link(c0, g0, LinkKind::Pcie3, gbps(13.0));
        b.link(c0, g1, LinkKind::Pcie3, gbps(13.0));
        b.link(g0, g1, LinkKind::NvLink2 { bricks: 2 }, gbps(48.0));
        let t = b.build();
        assert_eq!(t.gpu_count(), 2);
        assert_eq!(t.cpu_count(), 1);
        assert_eq!(t.links().len(), 3);
        assert_eq!(t.neighbors(c0).len(), 2);
        assert_eq!(t.neighbors(g0).len(), 2);
        assert_eq!(t.gpu(1), g1);
        assert_eq!(t.cpu(0), c0);
        assert_eq!(t.gpu_model(0), GpuModel::V100);
    }

    #[test]
    fn gpu_lookup_missing_is_none() {
        let mut b = TopologyBuilder::new();
        b.gpu(0, GpuModel::A100);
        let t = b.build();
        assert!(t.try_gpu(3).is_none());
        assert!(t.try_gpu(0).is_some());
    }

    #[test]
    #[should_panic(expected = "self-links")]
    fn self_link_panics() {
        let mut b = TopologyBuilder::new();
        let g = b.gpu(0, GpuModel::A100);
        b.link(g, g, LinkKind::NvLink3, gbps(1.0));
    }

    #[test]
    fn link_kinds_have_sane_specs() {
        assert_eq!(LinkKind::Pcie3.theoretical_per_dir(), gbps(16.0));
        assert_eq!(
            LinkKind::NvLink2 { bricks: 3 }.theoretical_per_dir(),
            gbps(75.0)
        );
        assert!(LinkKind::NvLink3.hop_cost() < LinkKind::Pcie4.hop_cost());
        assert!(LinkKind::NvLink2 { bricks: 1 }.hop_cost() < LinkKind::XBus.hop_cost());
    }

    #[test]
    fn dot_export_renders_all_nodes_and_links() {
        let mut b = TopologyBuilder::new();
        let c0 = b.cpu(0, tiny_mem());
        let g0 = b.gpu(0, GpuModel::A100);
        let sw = b.pcie_switch("SW");
        let nvs = b.nvswitch();
        b.link(c0, sw, LinkKind::Pcie4, gbps(24.5));
        b.link(sw, g0, LinkKind::Pcie4, gbps(24.5));
        b.link(g0, nvs, LinkKind::NvLink3, gbps(265.0));
        b.link_full(c0, g0, LinkKind::XBus, gbps(41.0), gbps(35.0), None);
        let dot = b.build().to_dot();
        assert!(dot.starts_with("graph topology {"));
        assert!(dot.contains("CPU 0"));
        assert!(dot.contains("GPU 0"));
        assert!(dot.contains("NVSwitch"));
        assert!(dot.contains("NVLink 3.0"));
        assert!(dot.contains("41/35 GB/s"), "asymmetric rates rendered");
        assert_eq!(dot.matches(" -- ").count(), 4);
        assert!(dot.trim_end().ends_with('}'));
    }

    #[test]
    fn validate_accepts_good_and_rejects_bad() {
        let mut b = TopologyBuilder::new();
        let c0 = b.cpu(0, tiny_mem());
        let g0 = b.gpu(0, GpuModel::V100);
        b.link(c0, g0, LinkKind::Pcie3, gbps(13.0));
        assert!(b.build().validate().is_ok());

        // No CPU.
        let mut b = TopologyBuilder::new();
        b.gpu(0, GpuModel::V100);
        assert_eq!(b.build().validate(), Err(TopologyError::NoCpu));

        // Unreachable GPU.
        let mut b = TopologyBuilder::new();
        b.cpu(0, tiny_mem());
        b.gpu(0, GpuModel::V100);
        assert_eq!(
            b.build().validate(),
            Err(TopologyError::UnreachableGpu { index: 0 })
        );

        // Sparse GPU indices.
        let mut b = TopologyBuilder::new();
        let c0 = b.cpu(0, tiny_mem());
        let g = b.gpu(1, GpuModel::V100);
        b.link(c0, g, LinkKind::Pcie3, gbps(13.0));
        assert_eq!(
            b.build().validate(),
            Err(TopologyError::SparseGpus { missing: 0 })
        );

        // Error display.
        assert!(TopologyError::NoCpu.to_string().contains("no CPU"));
    }

    #[test]
    fn paper_platforms_validate() {
        // Indirect via the platform constructors (they build here).
        // Direct check keeps the invariant pinned.
        for topo in [
            crate::platforms::Platform::ibm_ac922().topology,
            crate::platforms::Platform::delta_d22x().topology,
            crate::platforms::Platform::dgx_a100().topology,
        ] {
            assert!(topo.validate().is_ok());
        }
    }

    #[test]
    fn nic_nodes_and_fabric_links() {
        assert_eq!(LinkKind::InfiniBandHdr.theoretical_per_dir(), gbps(25.0));
        assert_eq!(LinkKind::InfiniBandNdr.theoretical_per_dir(), gbps(50.0));
        assert_eq!(LinkKind::Slingshot.theoretical_per_dir(), gbps(25.0));
        // Inter-node hops must never undercut any intra-node link kind.
        for intra in [
            LinkKind::NvLink3,
            LinkKind::NvLink2 { bricks: 1 },
            LinkKind::InfinityFabric,
            LinkKind::XBus,
            LinkKind::Upi,
            LinkKind::Pcie4,
            LinkKind::Pcie3,
        ] {
            assert!(LinkKind::InfiniBandHdr.hop_cost() > intra.hop_cost());
            assert!(LinkKind::Slingshot.hop_cost() > intra.hop_cost());
        }

        let mut b = TopologyBuilder::new();
        let c0 = b.cpu(0, tiny_mem());
        let g0 = b.gpu(0, GpuModel::A100);
        let nic = b.nic("Node 0 NIC 0");
        let sw = b.nic("IB switch");
        b.link(c0, g0, LinkKind::Pcie4, gbps(24.5));
        b.link(c0, nic, LinkKind::InfiniBandHdr, gbps(24.1));
        b.link(nic, sw, LinkKind::InfiniBandHdr, gbps(24.1));
        let t = b.build();
        assert_eq!(t.nics(), vec![nic, sw]);
        assert!(t.validate().is_ok());
        let dot = t.to_dot();
        assert!(dot.contains("Node 0 NIC 0"));
        assert!(dot.contains("InfiniBand HDR"));
    }

    #[test]
    fn gpu_models_specs() {
        assert!(GpuModel::A100.memory_bytes() > GpuModel::V100.memory_bytes());
        assert!(GpuModel::A100.dtod_bandwidth() > GpuModel::V100.dtod_bandwidth());
        assert_eq!(GpuModel::V100.name(), "Tesla V100");
    }
}
