//! Property tests for the weighted max-min allocator: on randomized
//! topologies and flow sets, every allocation must be
//!
//! * **feasible** — per-constraint consumption never exceeds capacity
//!   (beyond float tolerance);
//! * **Pareto / max-min** — no flow's rate can be raised: each flow either
//!   sits at its rate cap or crosses at least one saturated constraint
//!   (progressive filling stops exactly when every flow is blocked);
//! * **deterministic** — re-running the same input reproduces every rate
//!   bit for bit.

use msort_topology::platforms::CpuModel;
use msort_topology::{
    gbps, Endpoint, FlowRequest, GpuModel, LinkKind, MemSpec, Platform, TopologyBuilder,
};

/// splitmix64, same shape as the sim crate's differential test.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }

    /// Uniform in `[lo, hi)` GB/s.
    fn cap(&mut self, lo: u64, hi: u64) -> f64 {
        gbps((lo + self.below(hi - lo)) as f64)
    }
}

/// A random connected platform: 1–2 CPU sockets, 2–4 GPUs each hanging off
/// a socket, random capacities, a duplex cap on roughly half the links, and
/// occasionally an extra GPU-GPU link.
fn random_platform(rng: &mut Rng) -> Platform {
    let sockets = 1 + rng.below(2) as usize;
    let mut b = TopologyBuilder::new();
    let mut cpus = Vec::new();
    for s in 0..sockets {
        let mem = MemSpec {
            capacity_bytes: 64 << 30,
            read_cap: rng.cap(40, 120),
            write_cap: rng.cap(40, 120),
            combined_cap: (rng.below(2) == 0).then(|| rng.cap(60, 160)),
        };
        cpus.push(b.cpu(s, mem));
    }
    if sockets == 2 {
        b.link_duplex(
            cpus[0],
            cpus[1],
            LinkKind::XBus,
            rng.cap(30, 70),
            rng.cap(40, 90),
        );
    }
    let gpus_total = 2 + rng.below(3) as usize;
    let mut gpus = Vec::new();
    for g in 0..gpus_total {
        let gpu = b.gpu(g, GpuModel::Custom);
        let cpu = cpus[rng.below(sockets as u64) as usize];
        if rng.below(2) == 0 {
            b.link_duplex(cpu, gpu, LinkKind::Pcie3, rng.cap(10, 30), rng.cap(15, 40));
        } else {
            b.link(cpu, gpu, LinkKind::NvLink2 { bricks: 3 }, rng.cap(30, 80));
        }
        gpus.push(gpu);
    }
    if gpus_total >= 2 && rng.below(2) == 0 {
        b.link(
            gpus[0],
            gpus[1],
            LinkKind::NvLink2 { bricks: 2 },
            rng.cap(20, 60),
        );
    }
    Platform::custom(b.build(), CpuModel::Custom)
}

/// Random flow set over the platform's routable endpoint pairs; a few
/// flows additionally get a random rate cap.
fn random_flows(rng: &mut Rng, p: &Platform) -> Vec<FlowRequest> {
    let mut endpoints = Vec::new();
    for s in 0..p.topology.cpu_count() {
        endpoints.push(Endpoint::HostMem { socket: s });
    }
    for g in 0..p.gpu_count() {
        endpoints.push(Endpoint::gpu(g));
    }
    let n = 1 + rng.below(10) as usize;
    let mut flows = Vec::new();
    while flows.len() < n {
        let a = endpoints[rng.below(endpoints.len() as u64) as usize];
        let b = endpoints[rng.below(endpoints.len() as u64) as usize];
        if a == b {
            continue;
        }
        let Some(route) = msort_topology::route::route(&p.topology, a, b) else {
            continue;
        };
        let mut req = p.flow_request(&route);
        if rng.below(4) == 0 {
            req.rate_cap = Some(rng.cap(1, 40));
        }
        flows.push(req);
    }
    flows
}

/// Mirror of the allocator's internal saturation tolerance (allocate.rs);
/// the Pareto check must not be stricter than the allocator itself.
fn saturation_epsilon(capacity: f64) -> f64 {
    (capacity * 1e-9).max(1e-6)
}

#[test]
fn allocations_are_feasible_pareto_and_deterministic() {
    let mut rng = Rng(0xA110_CA7E);
    for _case in 0..200 {
        let p = random_platform(&mut rng);
        let flows = random_flows(&mut rng, &p);
        let table = p.constraint_table();
        let rates = msort_topology::allocate_rates(table, &flows);
        assert_eq!(rates.len(), flows.len());

        // Feasibility: per-constraint consumption within capacity.
        let mut used = vec![0.0f64; table.constraints().len()];
        for (req, &rate) in flows.iter().zip(&rates) {
            assert!(rate.is_finite() && rate >= 0.0, "rate {rate}");
            for &(c, w) in &req.constraints {
                used[c.0] += rate * w;
            }
        }
        for (i, c) in table.constraints().iter().enumerate() {
            assert!(
                used[i] <= c.capacity * (1.0 + 1e-6) + 1e-3,
                "constraint {i} ({:?}) over capacity: {} > {}",
                c.kind,
                used[i],
                c.capacity
            );
        }

        // Pareto: every flow is blocked — at its cap, or crossing a
        // constraint the allocation saturated.
        for (f, (req, &rate)) in flows.iter().zip(&rates).enumerate() {
            let capped = req.rate_cap.is_some_and(|cap| rate >= cap * (1.0 - 1e-9));
            let blocked = req.constraints.iter().any(|&(c, w)| {
                w > 0.0
                    && used[c.0] >= table.capacity(c) - 2.0 * saturation_epsilon(table.capacity(c))
            });
            assert!(
                capped || blocked,
                "flow {f} (rate {rate}) could still be raised: cap {:?}, \
                 no saturated constraint on its route",
                req.rate_cap
            );
        }

        // Determinism: bit-identical on a re-run.
        let again = msort_topology::allocate_rates(table, &flows);
        for (a, b) in rates.iter().zip(&again) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }
}
